// Tests for the serve module: HTTP parsing/serialization, the bounded
// connection executor (timeouts, load shedding, graceful shutdown), the
// /metrics surface, and the MCBound JSON API endpoints.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>

#include "serve/api.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "util/strings.hpp"
#include "workload/generator.hpp"

namespace mcb {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Raw loopback socket for misbehaving-client tests (http_request always
// sends a complete request, which is exactly what these tests must not do).
int connect_raw(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Read until the server closes (or the 5 s client timeout trips).
std::string read_until_closed(int fd) {
  std::string received;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<std::size_t>(n));
  }
  return received;
}

int parse_status(const std::string& wire) {
  const std::size_t sp = wire.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(wire.c_str() + sp + 1);
}

// ------------------------------------------------------------- parsing

TEST(HttpParse, SimpleGet) {
  const auto request = parse_http_request("GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/health");
  EXPECT_EQ(request->headers.at("host"), "x");
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpParse, PostWithBody) {
  const std::string raw =
      "POST /predict HTTP/1.1\r\nContent-Type: application/json\r\n"
      "Content-Length: 11\r\n\r\n{\"a\":\"b\"}xx";
  const auto request = parse_http_request(raw);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "{\"a\":\"b\"}xx");
}

TEST(HttpParse, QueryStringSplit) {
  const auto request = parse_http_request("GET /jobs?from=1&to=2 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->path, "/jobs");
  EXPECT_EQ(request->query, "from=1&to=2");
}

TEST(HttpParse, HeaderKeysAreLowercased) {
  const auto request =
      parse_http_request("GET / HTTP/1.1\r\nX-CUSTOM-Header:  Value \r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers.at("x-custom-header"), "Value");
}

TEST(HttpParse, RejectsMalformed) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("GET\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_request("GET /x\r\n\r\n").has_value());           // no version
  EXPECT_FALSE(parse_http_request("GET /x SMTP/1.0\r\n\r\n").has_value());  // bad proto
  EXPECT_FALSE(parse_http_request("GET /x HTTP/1.1\r\nbadheader\r\n\r\n").has_value());
}

TEST(HttpParse, IncompleteBodyIsRejected) {
  const std::string raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
  EXPECT_FALSE(parse_http_request(raw).has_value());
}

TEST(HttpParse, RejectsExtraSpacesInRequestLine) {
  // find/rfind splitting used to accept this with path "/a b".
  EXPECT_FALSE(parse_http_request("GET /a b HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_request("GET  /a HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_request("GET /a HTTP/1.1 \r\n\r\n").has_value());
  EXPECT_TRUE(parse_http_request("GET /a HTTP/1.1\r\n\r\n").has_value());
}

TEST(HttpParse, RejectsDuplicateContentLength) {
  // emplace used to silently keep the first value (smuggling vector).
  const std::string raw =
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd";
  EXPECT_FALSE(parse_http_request(raw).has_value());
  // Other duplicate headers remain first-wins, not fatal.
  const auto ok = parse_http_request("GET / HTTP/1.1\r\nX-A: 1\r\nX-A: 2\r\n\r\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->headers.at("x-a"), "1");
}

TEST(HttpSerialize, ResponseWireFormat) {
  HttpResponse response = HttpResponse::json(404, "{}");
  const std::string wire = serialize_http_response(response);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{}"), std::string::npos);
}

TEST(HttpSerialize, ExpectedRequestLength) {
  EXPECT_EQ(expected_request_length("GET / HTTP/1.1"), 0U);  // incomplete head
  const std::string head = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_EQ(expected_request_length(head), head.size());
  const std::string with_body = "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
  EXPECT_EQ(expected_request_length(with_body), with_body.size() + 5);
}

TEST(HttpSerialize, InvalidContentLengthFramingIsFlagged) {
  // Unparsable Content-Length used to fall through to "no body", silently
  // truncating the request instead of rejecting it.
  EXPECT_EQ(expected_request_length("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            kInvalidRequestFraming);
  EXPECT_EQ(expected_request_length("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            kInvalidRequestFraming);
  EXPECT_EQ(expected_request_length(
                "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\n"),
            kInvalidRequestFraming);
}

// ------------------------------------------------------------- routing

TEST(HttpServer, DispatchRoutesAndErrors) {
  HttpServer server;
  server.route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::json(200, R"({"pong":true})");
  });
  HttpRequest ok{"GET", "/ping", "", {}, ""};
  EXPECT_EQ(server.dispatch(ok).status, 200);
  HttpRequest wrong_method{"POST", "/ping", "", {}, ""};
  EXPECT_EQ(server.dispatch(wrong_method).status, 405);
  HttpRequest missing{"GET", "/nope", "", {}, ""};
  EXPECT_EQ(server.dispatch(missing).status, 404);
}

TEST(HttpServer, HandlerExceptionsBecome500) {
  HttpServer server;
  server.route("GET", "/boom",
               [](const HttpRequest&) -> HttpResponse { throw std::runtime_error("bad"); });
  HttpRequest request{"GET", "/boom", "", {}, ""};
  const auto response = server.dispatch(request);
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("bad"), std::string::npos);
}

TEST(HttpServer, HandlerExceptionMessageIsJsonEscaped) {
  // A what() containing quotes/backslashes used to splice raw into the
  // 500 body and produce malformed JSON.
  HttpServer server;
  server.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error(R"(bad "quote" and \backslash)");
  });
  HttpRequest request{"GET", "/boom", "", {}, ""};
  const auto response = server.dispatch(request);
  EXPECT_EQ(response.status, 500);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value()) << response.body;
  EXPECT_EQ((*json)["error"].as_string(), R"(bad "quote" and \backslash)");
}

TEST(HttpServer, SocketRoundTrip) {
  HttpServer server;
  server.route("POST", "/echo", [](const HttpRequest& request) {
    return HttpResponse::json(200, request.body);
  });
  ASSERT_TRUE(server.start(0));
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_request(server.port(), "POST", "/echo", R"({"x":1})", status, body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, R"({"x":1})");

  ASSERT_TRUE(http_request(server.port(), "GET", "/missing", "", status, body));
  EXPECT_EQ(status, 404);
  server.stop();
  EXPECT_FALSE(server.is_running());
}

TEST(HttpServer, ConcurrentRequests) {
  HttpServer server;
  server.route("GET", "/n", [](const HttpRequest&) {
    return HttpResponse::json(200, "{}");
  });
  ASSERT_TRUE(server.start(0));
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&server, &ok_count] {
      int status = 0;
      std::string body;
      if (http_request(server.port(), "GET", "/n", "", status, body) && status == 200) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_count.load(), 8);
  server.stop();
}

// ------------------------------------------------- connection executor

TEST(HttpServer, SlowClientTimesOutAndStopIsPrompt) {
  // Regression: a client that connects and sends nothing used to pin a
  // worker in recv() forever and make stop() hang in join().
  ServerConfig config;
  config.worker_threads = 2;
  config.recv_timeout_ms = 100;
  config.request_deadline_ms = 400;
  config.drain_timeout_ms = 1000;
  HttpServer server(config);
  server.route("GET", "/n",
               [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  ASSERT_TRUE(server.start(0));

  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const auto started = Clock::now();
  const std::string wire = read_until_closed(fd);  // send nothing
  ::close(fd);
  EXPECT_EQ(parse_status(wire), 408);
  EXPECT_LT(seconds_since(started), 2.0);
  EXPECT_GE(server.stats().timed_out.load(), 1U);

  const auto stop_started = Clock::now();
  server.stop();
  EXPECT_LT(seconds_since(stop_started), 1.5);
  EXPECT_FALSE(server.is_running());
}

TEST(HttpServer, PartialRequestTimesOut) {
  ServerConfig config;
  config.recv_timeout_ms = 100;
  config.request_deadline_ms = 400;
  HttpServer server(config);
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const std::string partial = "GET /n";  // no header terminator, ever
  ASSERT_GT(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL), 0);
  const auto started = Clock::now();
  const std::string wire = read_until_closed(fd);
  ::close(fd);
  EXPECT_EQ(parse_status(wire), 408);
  EXPECT_LT(seconds_since(started), 2.0);
  server.stop();
}

TEST(HttpServer, InvalidContentLengthIsImmediate400) {
  // Must be rejected as soon as the head arrives — not parsed with a
  // truncated body and not held until a timeout.
  ServerConfig config;
  config.recv_timeout_ms = 2000;  // large: the 400 must not wait for it
  HttpServer server(config);
  server.route("POST", "/n",
               [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const std::string raw = "POST /n HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  ASSERT_GT(::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL), 0);
  const auto started = Clock::now();
  const std::string wire = read_until_closed(fd);
  ::close(fd);
  EXPECT_EQ(parse_status(wire), 400);
  EXPECT_LT(seconds_since(started), 1.0);
  EXPECT_GE(server.stats().malformed.load(), 1U);
  server.stop();
}

TEST(HttpServer, QueueFullSheds503) {
  ServerConfig config;
  config.worker_threads = 1;
  config.max_pending = 0;  // admit only when the one worker is idle
  HttpServer server(config);
  std::promise<void> release;
  const std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> entered{false};
  server.route("GET", "/block", [&](const HttpRequest&) {
    entered.store(true);
    released.wait();
    return HttpResponse::json(200, "{}");
  });
  ASSERT_TRUE(server.start(0));

  std::thread blocker([&] {
    int status = 0;
    std::string body;
    http_request(server.port(), "GET", "/block", "", status, body);
    EXPECT_EQ(status, 200);
  });
  while (!entered.load()) std::this_thread::yield();

  // The single worker is pinned and the queue holds nothing: shed.
  int status = 0;
  std::string body;
  ASSERT_TRUE(http_request(server.port(), "GET", "/block", "", status, body));
  EXPECT_EQ(status, 503);
  EXPECT_GE(server.stats().rejected.load(), 1U);

  release.set_value();
  blocker.join();
  server.stop();
}

TEST(HttpServer, StopUnderLoadCompletesWithinDrainDeadline) {
  ServerConfig config;
  config.worker_threads = 4;
  config.drain_timeout_ms = 1500;
  HttpServer server(config);
  server.route("GET", "/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return HttpResponse::json(200, "{}");
  });
  ASSERT_TRUE(server.start(0));

  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&server] {
      int status = 0;
      std::string body;
      http_request(server.port(), "GET", "/slow", "", status, body);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // some in flight

  const auto stop_started = Clock::now();
  server.stop();
  EXPECT_LT(seconds_since(stop_started), 3.0);
  EXPECT_FALSE(server.is_running());
  for (auto& c : clients) c.join();
}

TEST(HttpServer, StatsCountersAndMetricsJson) {
  HttpServer server;
  server.route("GET", "/n",
               [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  ASSERT_TRUE(server.start(0));
  int status = 0;
  std::string body;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(http_request(server.port(), "GET", "/n", "", status, body));
    EXPECT_EQ(status, 200);
  }
  ASSERT_TRUE(http_request(server.port(), "GET", "/missing", "", status, body));
  EXPECT_EQ(status, 404);
  server.stop();

  EXPECT_GE(server.stats().accepted.load(), 4U);
  EXPECT_GE(server.stats().handled.load(), 4U);

  const Json metrics = server.stats_json();
  EXPECT_GE(metrics["server"]["accepted"].as_int(), 4);
  EXPECT_EQ(metrics["server"]["worker_threads"].as_int(), 8);
  const Json& route = metrics["routes"]["GET /n"];
  EXPECT_EQ(route["count"].as_int(), 3);
  EXPECT_EQ(route["status"]["2xx"].as_int(), 3);
  EXPECT_GT(route["latency_us"]["p50"].as_double(), 0.0);
  EXPECT_GT(route["latency_us"]["max"].as_double(), 0.0);
  EXPECT_EQ(metrics["routes"]["(unmatched)"]["count"].as_int(), 1);
}

TEST(HttpServer, StatusClassesPartitionRouteCounts) {
  // record_route used to fold everything below 400 into 2xx; 1xx/3xx
  // now land in "other" and the classes partition the route count.
  HttpServer server;
  server.route("GET", "/boom",
               [](const HttpRequest&) -> HttpResponse { throw std::runtime_error("x"); });
  server.route("GET", "/redirect",
               [](const HttpRequest&) { return HttpResponse::json(302, "{}"); });
  HttpRequest boom{"GET", "/boom", "", {}, ""};
  EXPECT_EQ(server.dispatch(boom).status, 500);
  HttpRequest redirect{"GET", "/redirect", "", {}, ""};
  EXPECT_EQ(server.dispatch(redirect).status, 302);

  const Json metrics = server.stats_json();
  const Json& boom_route = metrics["routes"]["GET /boom"];
  EXPECT_EQ(boom_route["count"].as_int(), 1);
  EXPECT_EQ(boom_route["status"]["5xx"].as_int(), 1);
  EXPECT_EQ(boom_route["status"]["2xx"].as_int(), 0);
  const Json& redirect_route = metrics["routes"]["GET /redirect"];
  EXPECT_EQ(redirect_route["count"].as_int(), 1);
  EXPECT_EQ(redirect_route["status"]["other"].as_int(), 1);
  EXPECT_EQ(redirect_route["status"]["2xx"].as_int(), 0);
  // A handler failure is a dispatched request, not a protocol error.
  EXPECT_EQ(server.stats().malformed.load(), 0U);
}

TEST(HttpServer, ThrowingHandlerCountsExactlyOnceOverSocket) {
  HttpServer server;
  server.route("GET", "/boom",
               [](const HttpRequest&) -> HttpResponse { throw std::runtime_error("x"); });
  ASSERT_TRUE(server.start(0));
  int status = 0;
  std::string body;
  ASSERT_TRUE(http_request(server.port(), "GET", "/boom", "", status, body));
  EXPECT_EQ(status, 500);
  server.stop();

  EXPECT_EQ(server.stats().malformed.load(), 0U);
  EXPECT_EQ(server.stats().handled.load(), 1U);
  const Json metrics = server.stats_json();
  EXPECT_EQ(metrics["routes"]["GET /boom"]["count"].as_int(), 1);
  EXPECT_EQ(metrics["routes"]["GET /boom"]["status"]["5xx"].as_int(), 1);
}

TEST(HttpServer, OversizedRequestIsMalformedOnlyNotARoute) {
  // The connection-level 413 never reaches dispatch: it must count once
  // under `malformed` and leave the per-route map untouched.
  ServerConfig config;
  config.max_request_bytes = 128;
  HttpServer server(config);
  server.route("POST", "/n",
               [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  ASSERT_TRUE(server.start(0));
  int status = 0;
  std::string out;
  ASSERT_TRUE(http_request(server.port(), "POST", "/n", std::string(1024, 'x'), status, out));
  EXPECT_EQ(status, 413);
  server.stop();

  EXPECT_EQ(server.stats().malformed.load(), 1U);
  const Json metrics = server.stats_json();
  EXPECT_FALSE(metrics["routes"].contains("POST /n"));
}

// --------------------------------------------- reactor-specific behavior

// Read exactly `n` complete HTTP responses off a raw socket (framed via
// Content-Length), for keep-alive tests where the server does not close.
std::vector<std::string> read_responses(int fd, std::size_t n) {
  std::vector<std::string> responses;
  std::string buffer;
  char chunk[4096];
  while (responses.size() < n) {
    const std::size_t head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      std::size_t body_len = 0;
      const std::string head = buffer.substr(0, head_end);
      const std::size_t cl = to_lower(head).find("content-length:");
      if (cl != std::string::npos) {
        body_len = static_cast<std::size_t>(std::atoi(head.c_str() + cl + 15));
      }
      const std::size_t total = head_end + 4 + body_len;
      if (buffer.size() >= total) {
        responses.push_back(buffer.substr(0, total));
        buffer.erase(0, total);
        continue;
      }
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;  // closed or client timeout: return what we have
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  return responses;
}

TEST(HttpReactor, SlowLorisRequestCompletesAcrossManyWakeups) {
  // A client dripping one byte per write forces the reactor to resume
  // the same partial request over dozens of epoll wakeups; the request
  // must still parse and dispatch once the last byte lands.
  HttpServer server;
  server.route("GET", "/drip",
               [](const HttpRequest&) { return HttpResponse::json(200, R"({"ok":1})"); });
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /drip HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  for (const char byte : request) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string wire = read_until_closed(fd);
  ::close(fd);
  server.stop();
  EXPECT_EQ(parse_status(wire), 200);
  EXPECT_NE(wire.find(R"({"ok":1})"), std::string::npos);
  EXPECT_EQ(server.stats().handled.load(), 1U);
  EXPECT_EQ(server.stats().timed_out.load(), 0U);
}

TEST(HttpReactor, KeepAliveSequenceReusesOneConnection) {
  HttpServer server;
  server.route("GET", "/ka",
               [](const HttpRequest&) { return HttpResponse::json(200, R"({"n":1})"); });
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /ka HTTP/1.1\r\nHost: x\r\n\r\n";  // 1.1: keep-alive
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    const auto responses = read_responses(fd, 1);
    ASSERT_EQ(responses.size(), 1u) << "request " << i << " got no response";
    EXPECT_EQ(parse_status(responses[0]), 200);
    EXPECT_NE(to_lower(responses[0]).find("connection: keep-alive"), std::string::npos);
  }
  ::close(fd);
  server.stop();
  // All three requests rode one accepted connection and its reused buffers.
  EXPECT_EQ(server.stats().accepted.load(), 1U);
  EXPECT_EQ(server.stats().handled.load(), 3U);
}

TEST(HttpReactor, PipelinedBurstIsAnsweredInOrder) {
  HttpServer server;
  for (const std::string path : {"/p0", "/p1", "/p2", "/p3"}) {
    server.route("GET", path, [path](const HttpRequest&) {
      return HttpResponse::json(200, R"({"path":")" + path + R"("})");
    });
  }
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  // One write carrying four pipelined requests; responses must come back
  // complete and in request order even though handlers run on a pool.
  std::string burst;
  for (int i = 0; i < 4; ++i) {
    burst += "GET /p" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0), static_cast<ssize_t>(burst.size()));
  const auto responses = read_responses(fd, 4);
  ::close(fd);
  server.stop();
  ASSERT_EQ(responses.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(parse_status(responses[i]), 200);
    EXPECT_NE(responses[i].find(R"({"path":"/p)" + std::to_string(i) + R"("})"),
              std::string::npos)
        << "response " << i << " out of order: " << responses[i];
  }
  EXPECT_EQ(server.stats().handled.load(), 4U);
}

TEST(HttpReactor, HalfCloseStillReceivesTheResponse) {
  // shutdown(SHUT_WR) after the request is a legal HTTP close handshake:
  // the server sees EOF on its read side but must still send the
  // response before closing.
  HttpServer server;
  server.route("GET", "/hc",
               [](const HttpRequest&) { return HttpResponse::json(200, R"({"hc":1})"); });
  ASSERT_TRUE(server.start(0));
  const int fd = connect_raw(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /hc HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string wire = read_until_closed(fd);
  ::close(fd);
  server.stop();
  EXPECT_EQ(parse_status(wire), 200);
  EXPECT_NE(wire.find(R"({"hc":1})"), std::string::npos);
  EXPECT_EQ(server.stats().handled.load(), 1U);
  EXPECT_EQ(server.stats().malformed.load(), 0U);
}

TEST(HttpReactor, StopHammerUnderConcurrentConnectionChurn) {
  // TSan-facing: clients connect/request/disconnect at full speed while
  // the main thread stops the server mid-flight. No outcome assertions
  // beyond accounting sanity — the point is that the reactor, the
  // handler pool and stop() race cleanly.
  ServerConfig config;
  config.worker_threads = 4;
  config.drain_timeout_ms = 500;
  HttpServer server(config);
  server.route("GET", "/churn",
               [](const HttpRequest&) { return HttpResponse::json(200, "{}"); });
  ASSERT_TRUE(server.start(0));
  const int port = server.port();
  std::atomic<bool> go{true};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([port, &go] {
      while (go.load()) {
        int status = 0;
        std::string body;
        // Failures are expected once stop() lands; just keep churning.
        (void)http_request(port, "GET", "/churn", "", status, body);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server.stop();
  go.store(false);
  for (auto& t : clients) t.join();
  EXPECT_FALSE(server.is_running());
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(HttpReactor, BacklogIsConfigurableAndClampReported) {
  ServerConfig config;
  config.listen_backlog = 1 << 20;  // far beyond any somaxconn
  HttpServer server(config);
  ASSERT_TRUE(server.start(0));
  // The effective backlog is the configured value clamped to the
  // kernel's somaxconn — never zero, never above the request.
  EXPECT_GT(server.effective_backlog(), 0);
  EXPECT_LE(server.effective_backlog(), config.listen_backlog);
  const Json metrics = server.stats_json();
  EXPECT_EQ(metrics["server"]["listen_backlog"].as_int(), server.effective_backlog());
  EXPECT_EQ(metrics["server"]["max_connections"].as_int(),
            static_cast<std::int64_t>(config.max_connections));
  server.stop();
}

// ----------------------------------------------------- job JSON mapping

TEST(JobJson, RoundTrip) {
  JobRecord job;
  job.job_id = 7;
  job.user_name = "u00001";
  job.job_name = "wrf_sim";
  job.environment = "lang/tcsds";
  job.nodes_requested = 4;
  job.cores_requested = 192;
  job.frequency = FrequencyMode::kBoost;
  job.submit_time = 1000;
  job.start_time = 1100;
  job.end_time = 2100;
  job.nodes_allocated = 4;
  job.perf2 = 1e12;
  job.perf3 = 2e12;
  job.perf4 = 3e12;
  job.perf5 = 4e12;

  const auto parsed = job_from_json(job_to_json(job));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->job_id, 7U);
  EXPECT_EQ(parsed->job_name, "wrf_sim");
  EXPECT_EQ(parsed->frequency, FrequencyMode::kBoost);
  EXPECT_DOUBLE_EQ(parsed->perf4, 3e12);
  EXPECT_EQ(parsed->duration(), 1000);
}

TEST(JobJson, DefaultsAndValidation) {
  std::string error;
  // Minimal valid job: just a name.
  const auto minimal = job_from_json(*Json::parse(R"({"job_name":"x"})"), &error);
  ASSERT_TRUE(minimal.has_value()) << error;
  EXPECT_EQ(minimal->nodes_requested, 1U);
  EXPECT_EQ(minimal->frequency, FrequencyMode::kNormal);
  EXPECT_EQ(minimal->nodes_allocated, 1U);

  EXPECT_FALSE(job_from_json(*Json::parse(R"({})"), &error).has_value());
  EXPECT_FALSE(
      job_from_json(*Json::parse(R"({"job_name":"x","nodes_requested":0})"), &error)
          .has_value());
  EXPECT_FALSE(job_from_json(*Json::parse(R"([1,2,3])"), &error).has_value());
}

// ---------------------------------------------------------------- API

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_dir_ = (fs::temp_directory_path() / "mcb_api_test").string();
    fs::remove_all(registry_dir_);

    const TimePoint base = timepoint_from_ymd(2024, 1, 10);
    last_end_ = base;
    for (std::uint64_t i = 0; i < 60; ++i) {
      const bool compute = i % 2 == 1;
      JobRecord job;
      job.job_id = i;
      job.user_name = compute ? "u2" : "u1";
      job.job_name = compute ? "dgemm_app" : "stream_app";
      job.environment = "env";
      job.nodes_requested = job.nodes_allocated = 2;
      job.cores_requested = 96;
      job.submit_time = base + static_cast<TimePoint>(i) * 3600;
      job.start_time = job.submit_time + 100;
      job.end_time = job.start_time + 900;
      if (compute) {
        job.perf2 = 1e15;
        job.perf4 = job.perf5 = 1e6;
      } else {
        job.perf2 = 1e6;
        job.perf4 = job.perf5 = 1e12;
      }
      last_end_ = std::max(last_end_, job.end_time);
      store_.insert(std::move(job));
    }

    config_.registry_dir = registry_dir_;
    config_.model = ModelKind::kKnn;
    config_.alpha_days = 40;
    framework_ = std::make_unique<Framework>(config_, store_);
    api_ = std::make_unique<ApiServer>(*framework_);
  }

  void TearDown() override { fs::remove_all(registry_dir_); }

  HttpResponse call(const std::string& method, const std::string& path,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = body;
    return api_->dispatch(request);
  }

  std::string registry_dir_;
  JobStore store_;
  FrameworkConfig config_;
  std::unique_ptr<Framework> framework_;
  std::unique_ptr<ApiServer> api_;
  TimePoint last_end_ = 0;
};

TEST_F(ApiTest, HealthBeforeTraining) {
  const auto response = call("GET", "/health");
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ((*json)["status"].as_string(), "ok");
  EXPECT_FALSE((*json)["trained"].as_bool(true));
}

TEST_F(ApiTest, PredictWithoutModelIs503) {
  const auto response = call("POST", "/predict", R"({"job_name":"stream_app"})");
  EXPECT_EQ(response.status, 503);
}

TEST_F(ApiTest, TrainThenPredictFlow) {
  const auto train_response =
      call("POST", "/train", "{\"now\": " + std::to_string(last_end_ + 10) + "}");
  EXPECT_EQ(train_response.status, 201);
  const auto train_json = Json::parse(train_response.body);
  EXPECT_EQ((*train_json)["jobs_used"].as_int(), 60);
  EXPECT_EQ((*train_json)["version"].as_int(), 1);

  const auto predict_response = call(
      "POST", "/predict",
      R"({"job_name":"stream_app","user_name":"u1","nodes_requested":2,"cores_requested":96,"environment":"env"})");
  EXPECT_EQ(predict_response.status, 200);
  const auto predict_json = Json::parse(predict_response.body);
  EXPECT_EQ((*predict_json)["label"].as_string(), "memory-bound");

  const auto predict2 = call(
      "POST", "/predict",
      R"({"job_name":"dgemm_app","user_name":"u2","nodes_requested":2,"cores_requested":96,"environment":"env"})");
  EXPECT_EQ(*Json::parse(predict2.body), *Json::parse(predict2.body));
  EXPECT_EQ((*Json::parse(predict2.body))["label"].as_string(), "compute-bound");

  const auto health = Json::parse(call("GET", "/health").body);
  EXPECT_TRUE((*health)["trained"].as_bool());
}

TEST_F(ApiTest, ClassifyBatchWithoutModelIs503) {
  const auto response = call("POST", "/classify_batch", R"({"jobs":[{"job_name":"x"}]})");
  EXPECT_EQ(response.status, 503);
}

TEST_F(ApiTest, ClassifyBatchValidation) {
  EXPECT_EQ(call("POST", "/classify_batch", "{not json").status, 400);
  EXPECT_EQ(call("POST", "/classify_batch", R"({"no_jobs":1})").status, 400);
  EXPECT_EQ(call("POST", "/classify_batch", R"({"jobs":"x"})").status, 400);
  EXPECT_EQ(call("POST", "/classify_batch", R"({"jobs":[]})").status, 400);
  // A bad element is reported with its index.
  const auto response =
      call("POST", "/classify_batch", R"({"jobs":[{"job_name":"ok"},{"user_name":"no-name"}]})");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(Json::parse(response.body)->operator[]("error").as_string().find("jobs[1]"),
            std::string::npos);
}

TEST_F(ApiTest, ClassifyBatchFlow) {
  ASSERT_EQ(call("POST", "/train", "{\"now\": " + std::to_string(last_end_ + 10) + "}").status,
            201);
  const std::string batch =
      R"({"jobs":[
           {"job_name":"stream_app","user_name":"u1","nodes_requested":2,"cores_requested":96,"environment":"env"},
           {"job_name":"dgemm_app","user_name":"u2","nodes_requested":2,"cores_requested":96,"environment":"env"},
           {"job_name":"stream_app","user_name":"u1","nodes_requested":2,"cores_requested":96,"environment":"env"}]})";
  const auto response = call("POST", "/classify_batch", batch);
  ASSERT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ((*json)["count"].as_int(), 3);
  const auto& labels = (*json)["labels"].as_array();
  ASSERT_EQ(labels.size(), 3U);
  EXPECT_EQ(labels[0].as_string(), "memory-bound");
  EXPECT_EQ(labels[1].as_string(), "compute-bound");
  EXPECT_EQ(labels[2].as_string(), "memory-bound");

  // A repeat of the whole batch is pure embedding-cache hits (lookups
  // run before the miss-encoding pass, so intra-batch duplicates miss
  // on the first round); the app metrics section must reflect that.
  EXPECT_EQ(call("POST", "/classify_batch", batch).status, 200);
  const auto metrics = Json::parse(call("GET", "/metrics").body);
  ASSERT_TRUE(metrics.has_value());
  const Json& cache = (*metrics)["app"]["embedding_cache"];
  EXPECT_EQ(cache["hits"].as_int(), 3);    // the repeated batch
  EXPECT_EQ(cache["misses"].as_int(), 3);  // first batch, duplicate included
  EXPECT_EQ(cache["size"].as_int(), 2);    // two distinct canonical strings
  const Json& counters = (*metrics)["app"]["classify_batch"];
  EXPECT_EQ(counters["requests"].as_int(), 2);
  EXPECT_EQ(counters["jobs"].as_int(), 6);
  EXPECT_EQ(counters["max_batch"].as_int(), 3);
}

TEST_F(ApiTest, PredictSharesEmbeddingCacheWithBatch) {
  ASSERT_EQ(call("POST", "/train", "{\"now\": " + std::to_string(last_end_ + 10) + "}").status,
            201);
  const std::string job =
      R"({"job_name":"stream_app","user_name":"u1","nodes_requested":2,"cores_requested":96,"environment":"env"})";
  EXPECT_EQ(call("POST", "/predict", job).status, 200);
  EXPECT_EQ(call("POST", "/predict", job).status, 200);
  const auto metrics = Json::parse(call("GET", "/metrics").body);
  EXPECT_GE((*metrics)["app"]["embedding_cache"]["hits"].as_int(), 1);
  EXPECT_EQ((*metrics)["app"]["embedding_cache"]["misses"].as_int(), 1);
}

TEST_F(ApiTest, TrainEmptyWindowIs409) {
  const auto response = call("POST", "/train", R"({"now": 1000})");  // before any data
  EXPECT_EQ(response.status, 409);
}

TEST_F(ApiTest, CharacterizeEndpoint) {
  const auto response = call(
      "POST", "/characterize",
      R"({"job_name":"x","nodes_allocated":1,"start_time":0,"end_time":1000,"perf2":1e15,"perf3":0,"perf4":1,"perf5":1})");
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  EXPECT_EQ((*json)["label"].as_string(), "compute-bound");
  EXPECT_GT((*json)["metrics"]["operational_intensity"].as_double(), 3.3);
}

TEST_F(ApiTest, CharacterizeRejectsZeroDuration) {
  const auto response =
      call("POST", "/characterize", R"({"job_name":"x","start_time":5,"end_time":5})");
  EXPECT_EQ(response.status, 400);
}

TEST_F(ApiTest, MalformedJsonIs400) {
  EXPECT_EQ(call("POST", "/predict", "{not json").status, 400);
  EXPECT_EQ(call("POST", "/train", "[[[").status, 400);
}

TEST_F(ApiTest, ModelInfoListsFeatures) {
  const auto response = call("GET", "/model/info");
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  EXPECT_EQ((*json)["encoder_dim"].as_int(), 384);
  EXPECT_EQ((*json)["features"].size(), 6U);
  EXPECT_NEAR((*json)["ridge_point_flops_per_byte"].as_double(), 3.3, 0.05);
}

TEST_F(ApiTest, ModelInfoReportsKnnIndexState) {
  // 60 training rows sit below the index's min_rows threshold, so this
  // deployment serves through the scan: the knn_index object must say
  // so rather than disappear.
  ASSERT_EQ(call("POST", "/train", "{\"now\": " + std::to_string(last_end_ + 10) + "}").status,
            201);
  const auto scan_info = Json::parse(call("GET", "/model/info").body);
  ASSERT_TRUE(scan_info->contains("knn_index"));
  EXPECT_EQ((*scan_info)["knn_index"]["mode"].as_string(), "none");
  EXPECT_TRUE((*scan_info)["knn_index"]["exact"].as_bool(false));

  // Lowering min_rows (the knn_index_min_rows config knob) flips the
  // same deployment to the bounding-box tree, and the stats follow.
  FrameworkConfig indexed_config = config_;
  indexed_config.knn.index.min_rows = 1;
  Framework indexed_framework(indexed_config, store_);
  ApiServer indexed_api(indexed_framework);
  HttpRequest train;
  train.method = "POST";
  train.path = "/train";
  train.body = "{\"now\": " + std::to_string(last_end_ + 10) + "}";
  ASSERT_EQ(indexed_api.dispatch(train).status, 201);
  HttpRequest info;
  info.method = "GET";
  info.path = "/model/info";
  const auto tree_info = Json::parse(indexed_api.dispatch(info).body);
  ASSERT_TRUE(tree_info->contains("knn_index"));
  EXPECT_EQ((*tree_info)["knn_index"]["mode"].as_string(), "tree");
  EXPECT_TRUE((*tree_info)["knn_index"]["exact"].as_bool(false));
  EXPECT_EQ((*tree_info)["knn_index"]["rows"].as_int(), 60);
  EXPECT_GE((*tree_info)["knn_index"]["unique_rows"].as_int(), 1);
  EXPECT_LE((*tree_info)["knn_index"]["unique_rows"].as_int(), 60);

  // The same state reaches the metrics endpoint as mcb_knn_index_*.
  HttpRequest metrics;
  metrics.method = "GET";
  metrics.path = "/metrics";
  metrics.query = "format=prometheus";
  const std::string exposition = indexed_api.dispatch(metrics).body;
  EXPECT_NE(exposition.find("mcb_knn_index_info{mode=\"tree\""), std::string::npos);
  EXPECT_NE(exposition.find("mcb_knn_index_rows{kind=\"unique\"}"), std::string::npos);
}

TEST_F(ApiTest, EncodeEndpointReturnsNormalizedEmbedding) {
  const auto response =
      call("POST", "/encode", R"({"job_name":"stream_app","user_name":"u1"})");
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value());
  const auto& embedding = (*json)["embedding"].as_array();
  EXPECT_EQ(embedding.size(), 384U);
  double norm = 0.0;
  for (const Json& v : embedding) norm += v.as_double() * v.as_double();
  EXPECT_NEAR(norm, 1.0, 1e-4);
  EXPECT_FALSE((*json)["feature_string"].as_string().empty());
}

TEST_F(ApiTest, JobsRangeEndpoint) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/jobs";
  request.query = "from=0&to=99999999999&field=end&limit=5";
  const auto response = api_->dispatch(request);
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ((*json)["count"].as_int(), 60);
  EXPECT_EQ((*json)["jobs"].size(), 5U);  // limit applied

  request.query = "from=5&to=2";
  EXPECT_EQ(api_->dispatch(request).status, 400);
  request.query = "from=0&to=1&field=bogus";
  EXPECT_EQ(api_->dispatch(request).status, 400);
}

TEST_F(ApiTest, MetricsEndpointCountsRequests) {
  const auto before = call("GET", "/metrics");
  EXPECT_EQ(before.status, 200);
  const auto before_json = Json::parse(before.body);
  ASSERT_TRUE(before_json.has_value());
  EXPECT_TRUE((*before_json)["server"].is_object());

  call("GET", "/health");
  call("GET", "/health");
  call("POST", "/predict", "{not json");

  const auto after_json = Json::parse(call("GET", "/metrics").body);
  ASSERT_TRUE(after_json.has_value());
  const Json& health = (*after_json)["routes"]["GET /health"];
  EXPECT_EQ(health["count"].as_int(), 2);
  EXPECT_EQ(health["status"]["2xx"].as_int(), 2);
  EXPECT_GE(health["latency_us"]["mean"].as_double(), 0.0);
  EXPECT_EQ((*after_json)["routes"]["POST /predict"]["status"]["4xx"].as_int(), 1);
  // The metrics route observes itself too.
  EXPECT_GE((*after_json)["routes"]["GET /metrics"]["count"].as_int(), 1);
}

TEST_F(ApiTest, OversizedBatchIs413CountedOnce) {
  // The handler-level 413 (batch above kMaxBatch) is a dispatched
  // request: one 4xx on its route, nothing under `malformed`.
  std::string body = R"({"jobs":[)";
  for (int i = 0; i < 4097; ++i) {
    if (i > 0) body += ',';
    body += R"({"job_name":"x"})";
  }
  body += "]}";
  const auto response = call("POST", "/classify_batch", body);
  EXPECT_EQ(response.status, 413);

  const auto metrics = Json::parse(call("GET", "/metrics").body);
  ASSERT_TRUE(metrics.has_value());
  const Json& route = (*metrics)["routes"]["POST /classify_batch"];
  EXPECT_EQ(route["count"].as_int(), 1);
  EXPECT_EQ(route["status"]["4xx"].as_int(), 1);
  EXPECT_EQ((*metrics)["server"]["malformed"].as_int(), 0);
}

TEST_F(ApiTest, HealthzReadyzLifecycle) {
  EXPECT_EQ(call("GET", "/healthz").status, 200);
  const auto not_ready = call("GET", "/readyz");
  EXPECT_EQ(not_ready.status, 503);
  const auto not_ready_json = Json::parse(not_ready.body);
  ASSERT_TRUE(not_ready_json.has_value());
  EXPECT_FALSE((*not_ready_json)["ready"].as_bool(true));

  ASSERT_EQ(call("POST", "/train", "{\"now\": " + std::to_string(last_end_ + 10) + "}").status,
            201);
  const auto ready = call("GET", "/readyz");
  EXPECT_EQ(ready.status, 200);
  EXPECT_TRUE((*Json::parse(ready.body))["ready"].as_bool());
}

TEST_F(ApiTest, MetricsReportsUptimeAndBuildInfo) {
  const auto metrics = Json::parse(call("GET", "/metrics").body);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(metrics->contains("uptime_seconds"));
  EXPECT_FALSE((*metrics)["build"]["version"].as_string().empty());
  EXPECT_TRUE((*metrics)["stages"].is_object());
}

TEST_F(ApiTest, DebugRequestsRetainsErrors) {
  EXPECT_EQ(call("GET", "/no-such-endpoint").status, 404);
  const auto response = call("GET", "/debug/requests");
  EXPECT_EQ(response.status, 200);
  const auto json = Json::parse(response.body);
  ASSERT_TRUE(json.has_value());
  ASSERT_GE((*json)["count"].as_int(), 1);
  bool found = false;
  for (const Json& entry : (*json)["requests"].as_array()) {
    if (entry["route"].as_string() == "(unmatched)" && entry["status"].as_int() == 404) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ApiTest, PrometheusExposition) {
  call("GET", "/healthz");  // ensure at least one dispatched request
  HttpRequest request;
  request.method = "GET";
  request.path = "/metrics";
  request.query = "format=prometheus";
  const auto response = api_->dispatch(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_stage_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(response.body.find("mcb_build_info{"), std::string::npos);
  EXPECT_NE(response.body.find("mcb_ready 0"), std::string::npos);
  EXPECT_NE(response.body.find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ApiTest, PrometheusExposesSelfCharacterizationFamilies) {
  // Whatever this machine's perf support, the scrape contract holds:
  // mcb_perf_available is present (0 in the degraded path) and the
  // counter + roofline families exist (possibly with no points yet).
  HttpRequest request;
  request.method = "GET";
  request.path = "/metrics";
  request.query = "format=prometheus";
  const auto response = api_->dispatch(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("# TYPE mcb_perf_available gauge"),
            std::string::npos);
  EXPECT_NE(response.body.find("mcb_perf_available "), std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_stage_cycles_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_stage_llc_miss_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_stage_arith_intensity gauge"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE mcb_stage_boundedness gauge"),
            std::string::npos);
}

TEST_F(ApiTest, FakeCountersFlowThroughToRooflineFamilies) {
  // Inject a counter source through the same seam the server uses, then
  // drive requests through the normal dispatch path: the raw totals and
  // the derived intensity/boundedness must all reach /metrics.
  class TickingSource final : public obs::perf::CounterSource {
   public:
    bool read_counters(obs::perf::CounterSample& out) noexcept override {
      // relaxed: any unique monotonic value works; no ordering needed
      const std::uint64_t tick = tick_.fetch_add(11, std::memory_order_relaxed);
      for (std::size_t i = 0; i < obs::perf::kCounterCount; ++i) {
        out.value[i] = tick * (i + 1);
      }
      return true;
    }
    bool available() const noexcept override { return true; }
    int error() const noexcept override { return 0; }
    bool hot_path_capable() const noexcept override { return true; }

   private:
    std::atomic<std::uint64_t> tick_{1};
  };
  TickingSource source;
  api_->tracer().set_counter_source(&source);
  ASSERT_TRUE(api_->tracer().counters_attached());

  for (int i = 0; i < 3; ++i) call("GET", "/healthz");

  HttpRequest request;
  request.method = "GET";
  request.path = "/metrics";
  request.query = "format=prometheus";
  const std::string exposition = api_->dispatch(request).body;
  EXPECT_NE(exposition.find("mcb_perf_available 1"), std::string::npos);
  // Every dispatch runs the route span, so the route stage accumulated
  // cycles and classifies against the ridge point.
  EXPECT_NE(exposition.find("mcb_stage_cycles_total{stage=\"route\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("mcb_stage_arith_intensity{stage=\"route\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("mcb_stage_boundedness{stage=\"route\""),
            std::string::npos);
  api_->tracer().set_counter_source(nullptr);
}

TEST_F(ApiTest, DebugProfileReturnsCollapsedStacks) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/debug/profile";
  request.query = "seconds=1&hz=397";
  const auto response = api_->dispatch(request);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  ASSERT_FALSE(response.body.empty());
  EXPECT_EQ(response.body.back(), '\n');
  // First line is "frame;frame;... count".
  const std::string first_line =
      response.body.substr(0, response.body.find('\n'));
  const std::size_t space = first_line.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_FALSE(first_line.substr(0, space).empty());
  bool header_found = false;
  for (const auto& [key, value] : response.headers) {
    if (key == "X-Profile-Samples") {
      header_found = true;
      EXPECT_NE(value, "0");
    }
  }
  EXPECT_TRUE(header_found);
}

TEST_F(ApiTest, EndToEndOverSockets) {
  ASSERT_TRUE(api_->start(0));
  int status = 0;
  std::string body;
  ASSERT_TRUE(http_request(api_->port(), "GET", "/health", "", status, body));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(http_request(api_->port(), "POST", "/train",
                           "{\"now\": " + std::to_string(last_end_ + 10) + "}", status,
                           body));
  EXPECT_EQ(status, 201);
  ASSERT_TRUE(http_request(api_->port(), "POST", "/predict",
                           R"({"job_name":"stream_app","user_name":"u1"})", status, body));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(http_request(api_->port(), "GET", "/metrics", "", status, body));
  EXPECT_EQ(status, 200);
  const auto metrics = Json::parse(body);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_GE((*metrics)["server"]["accepted"].as_int(), 4);
  EXPECT_GE((*metrics)["server"]["handled"].as_int(), 3);
  api_->stop();
}

}  // namespace
}  // namespace mcb
