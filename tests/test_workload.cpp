// Tests for the synthetic Fugaku workload generator: determinism,
// calendar structure, campaign batching, counter consistency and the
// calibration targets from the paper's Table II / Figures 2-5.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "roofline/analysis.hpp"
#include "util/stats.hpp"
#include "roofline/characterizer.hpp"
#include "workload/generator.hpp"

namespace mcb {
namespace {

WorkloadConfig small_config(std::uint64_t seed = 15) {
  WorkloadConfig config = scaled_workload_config(120.0, seed);
  return config;
}

class GeneratedWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = std::make_unique<WorkloadConfig>(small_config());
    generator_ = std::make_unique<WorkloadGenerator>(*config_);
    jobs_ = std::make_unique<std::vector<JobRecord>>(generator_->generate());
  }
  static void TearDownTestSuite() {
    jobs_.reset();
    generator_.reset();
    config_.reset();
  }

  static std::unique_ptr<WorkloadConfig> config_;
  static std::unique_ptr<WorkloadGenerator> generator_;
  static std::unique_ptr<std::vector<JobRecord>> jobs_;
};

std::unique_ptr<WorkloadConfig> GeneratedWorkload::config_;
std::unique_ptr<WorkloadGenerator> GeneratedWorkload::generator_;
std::unique_ptr<std::vector<JobRecord>> GeneratedWorkload::jobs_;

TEST_F(GeneratedWorkload, VolumeMatchesConfiguredRate) {
  // ~122 days minus 3 maintenance days at 120 jobs/day.
  const double expected = 119.0 * config_->jobs_per_day;
  EXPECT_NEAR(static_cast<double>(jobs_->size()), expected, expected * 0.15);
}

TEST_F(GeneratedWorkload, SortedBySubmitTimeWithSequentialIds) {
  for (std::size_t i = 1; i < jobs_->size(); ++i) {
    EXPECT_LE((*jobs_)[i - 1].submit_time, (*jobs_)[i].submit_time);
    EXPECT_EQ((*jobs_)[i].job_id, (*jobs_)[i - 1].job_id + 1);
  }
  EXPECT_EQ(jobs_->front().job_id, config_->first_job_id);
}

TEST_F(GeneratedWorkload, AllTimestampsWithinPeriod) {
  for (const auto& job : *jobs_) {
    EXPECT_GE(job.submit_time, config_->start_time);
    EXPECT_LT(job.submit_time, config_->end_time);
    EXPECT_GE(job.start_time, job.submit_time);
    EXPECT_GT(job.end_time, job.start_time);
  }
}

TEST_F(GeneratedWorkload, MaintenanceWindowIsSilent) {
  for (const auto& job : *jobs_) {
    EXPECT_FALSE(job.submit_time >= config_->maintenance_start &&
                 job.submit_time < config_->maintenance_end)
        << "job submitted during maintenance at " << format_datetime(job.submit_time);
  }
}

TEST_F(GeneratedWorkload, SubmissionRateUniformOutsideMaintenance) {
  // Daily counts should be within a reasonable band of the mean (Fig. 2:
  // "job submission rate is uniform except for ... maintenance").
  std::map<std::int64_t, std::size_t> daily;
  for (const auto& job : *jobs_) {
    ++daily[day_index(job.submit_time, config_->start_time)];
  }
  const double mean = static_cast<double>(jobs_->size()) / static_cast<double>(daily.size());
  std::size_t outliers = 0;
  for (const auto& [day, count] : daily) {
    (void)day;
    if (count < mean * 0.3 || count > mean * 3.0) ++outliers;
  }
  EXPECT_LE(outliers, daily.size() / 10);
}

TEST_F(GeneratedWorkload, CountersAreConsistentWithRoofline) {
  const Characterizer ch(config_->machine);
  for (const auto& job : *jobs_) {
    const auto metrics = ch.compute_metrics(job);
    ASSERT_TRUE(metrics.has_value());
    // Jobs can never exceed the roofline of their intensity (boost spec).
    const double roof = config_->machine.attainable_gflops(metrics->operational_intensity);
    EXPECT_LE(metrics->performance_gflops, roof * 1.0001);
    EXPECT_GE(metrics->flops, 0.0);
    EXPECT_GT(metrics->moved_bytes, 0.0);
  }
}

TEST_F(GeneratedWorkload, MemoryToComputeRatioNearPaper) {
  const Characterizer ch(config_->machine);
  const auto analysis = analyze_jobs(ch, *jobs_);
  // Paper Table II: ratio ~3.44. Seed-to-seed spread is real (heavy-
  // hitter apps), so accept a generous band around it.
  const double ratio = analysis.breakdown.memory_to_compute_ratio();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.5);
}

TEST_F(GeneratedWorkload, FrequencyModesMatchTableII) {
  const Characterizer ch(config_->machine);
  const auto analysis = analyze_jobs(ch, *jobs_);
  // Paper: ~54% of memory-bound jobs at normal mode; ~30% of
  // compute-bound jobs at boost mode.
  EXPECT_NEAR(analysis.breakdown.memory_bound_normal_fraction(), 0.54, 0.10);
  EXPECT_NEAR(analysis.breakdown.compute_bound_boost_fraction(), 0.31, 0.12);
}

TEST_F(GeneratedWorkload, FrequencyUncorrelatedWithIntensity) {
  const Characterizer ch(config_->machine);
  const auto analysis = analyze_jobs(ch, *jobs_);
  // Fig. 5: "no observable correlation" — allow a weak residual.
  EXPECT_LT(std::abs(analysis.frequency_intensity_correlation()), 0.3);
}

TEST_F(GeneratedWorkload, MostJobsAreFarFromRoofline) {
  const Characterizer ch(config_->machine);
  const auto analysis = analyze_jobs(ch, *jobs_);
  // Fig. 3: only a few clusters sit close to the roofline.
  const double near = analysis.fraction_near_roofline(ch, 0.5);
  EXPECT_GT(near, 0.01);
  EXPECT_LT(near, 0.4);
}

TEST_F(GeneratedWorkload, JobsArriveInCampaignsOfIdenticalJobs) {
  // The same (job name, user, nodes, cores, frequency) tuple should
  // repeat many times (batches of identical jobs).
  std::map<std::string, std::size_t> signature_counts;
  for (const auto& job : *jobs_) {
    signature_counts[job.user_name + '|' + job.job_name + '|' +
                     std::to_string(job.nodes_requested) + '|' +
                     std::to_string(frequency_mhz(job.frequency))]++;
  }
  std::size_t repeated_jobs = 0;
  for (const auto& [sig, count] : signature_counts) {
    (void)sig;
    if (count >= 4) repeated_jobs += count;
  }
  EXPECT_GT(static_cast<double>(repeated_jobs) / static_cast<double>(jobs_->size()), 0.5);
}

TEST_F(GeneratedWorkload, UsersOwnTheirApps) {
  // A job name family (base name) must always come from the same user.
  std::map<std::string, std::set<std::string>> users_by_base;
  for (const auto& job : *jobs_) {
    const std::size_t cut = job.job_name.rfind("_r");
    const std::string base = cut != std::string::npos &&
                                     job.job_name.find_first_not_of(
                                         "0123456789", cut + 2) == std::string::npos
                                 ? job.job_name.substr(0, cut)
                                 : job.job_name;
    users_by_base[base].insert(job.user_name);
  }
  for (const auto& [base, users] : users_by_base) {
    EXPECT_EQ(users.size(), 1U) << "base name " << base << " has multiple owners";
  }
}

TEST_F(GeneratedWorkload, SchedulingWaitAveragesMinutes) {
  double total_wait = 0.0;
  for (const auto& job : *jobs_) {
    total_wait += static_cast<double>(job.start_time - job.submit_time);
  }
  const double mean_wait = total_wait / static_cast<double>(jobs_->size());
  EXPECT_GT(mean_wait, 60.0);   // paper: ~3 minutes
  EXPECT_LT(mean_wait, 600.0);
}

TEST_F(GeneratedWorkload, AppPopulationIsPlausible) {
  const auto& apps = generator_->apps();
  EXPECT_GT(apps.size(), config_->target_active_apps);
  for (const auto& app : apps) {
    EXPECT_LT(app.birth_day, app.death_day);
    EXPECT_GT(app.death_day, 0);  // overlaps the observed period
    EXPECT_FALSE(app.base_name.empty());
    EXPECT_FALSE(app.user_name.empty());
    EXPECT_GE(app.efficiency, 0.001);
    EXPECT_LE(app.efficiency, 0.95);
    EXPECT_GE(app.nodes_typical, 1U);
  }
}

// ------------------------------------------------------- determinism

TEST(WorkloadGenerator, DeterministicForSeed) {
  WorkloadConfig config = scaled_workload_config(30.0, 42);
  WorkloadGenerator a(config), b(config);
  const auto jobs_a = a.generate();
  const auto jobs_b = b.generate();
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  for (std::size_t i = 0; i < jobs_a.size(); ++i) {
    EXPECT_EQ(jobs_a[i].job_name, jobs_b[i].job_name);
    EXPECT_EQ(jobs_a[i].submit_time, jobs_b[i].submit_time);
    EXPECT_DOUBLE_EQ(jobs_a[i].perf3, jobs_b[i].perf3);
  }
}

TEST(WorkloadGenerator, DifferentSeedsDiffer) {
  WorkloadGenerator a(scaled_workload_config(30.0, 1));
  WorkloadGenerator b(scaled_workload_config(30.0, 2));
  const auto jobs_a = a.generate();
  const auto jobs_b = b.generate();
  // Same calendar so sizes are similar, but contents must differ.
  bool any_difference = jobs_a.size() != jobs_b.size();
  for (std::size_t i = 0; !any_difference && i < std::min(jobs_a.size(), jobs_b.size());
       ++i) {
    any_difference = jobs_a[i].job_name != jobs_b[i].job_name;
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadGenerator, FrequencyAffectsComputePerformance) {
  // At fixed app efficiency, a compute-bound job in normal mode attains
  // ~9% lower per-node performance than in boost mode (clock scaling).
  WorkloadConfig config = scaled_workload_config(200.0, 3);
  config.frac_memory_apps = 0.0;
  config.frac_straddler_apps = 0.0;
  config.frac_compute_apps = 1.0;
  WorkloadGenerator gen(config);
  const auto jobs = gen.generate();
  const Characterizer ch(config.machine);
  OnlineStats normal_eff, boost_eff;
  for (const auto& job : jobs) {
    const auto metrics = ch.compute_metrics(job);
    if (!metrics.has_value() || metrics->operational_intensity < 5.0) continue;
    const double eff = metrics->performance_gflops / config.machine.peak_gflops;
    (job.frequency == FrequencyMode::kNormal ? normal_eff : boost_eff).add(eff);
  }
  ASSERT_GT(normal_eff.count(), 100U);
  ASSERT_GT(boost_eff.count(), 100U);
  // Ratio of mean attained fractions ~ 2.0/2.2.
  EXPECT_NEAR(normal_eff.mean() / boost_eff.mean(), 2.0 / 2.2, 0.08);
}

TEST(WorkloadGenerator, EmptyPeriodProducesNoJobs) {
  WorkloadConfig config = scaled_workload_config(100.0, 5);
  config.end_time = config.start_time + kSecondsPerDay;  // one day
  config.maintenance_start = config.start_time;
  config.maintenance_end = config.end_time;  // fully under maintenance
  WorkloadGenerator gen(config);
  EXPECT_TRUE(gen.generate().empty());
}

TEST(WorkloadGenerator, FirstJobIdOffset) {
  WorkloadConfig config = scaled_workload_config(20.0, 6);
  config.first_job_id = 1000;
  WorkloadGenerator gen(config);
  const auto jobs = gen.generate();
  ASSERT_FALSE(jobs.empty());
  EXPECT_EQ(jobs.front().job_id, 1000U);
}

// --------------------------------------- parameterized mixture sweep

class MixtureProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MixtureProperty, MemoryFractionTracksMixture) {
  const auto [mem, strad, comp] = GetParam();
  WorkloadConfig config = scaled_workload_config(150.0, 11);
  config.frac_memory_apps = mem;
  config.frac_straddler_apps = strad;
  config.frac_compute_apps = comp;
  WorkloadGenerator gen(config);
  const auto jobs = gen.generate();
  const Characterizer ch(config.machine);
  std::size_t memory = 0;
  for (const auto& job : jobs) {
    memory += *ch.characterize(job) == Boundedness::kMemoryBound;
  }
  const double frac = static_cast<double>(memory) / static_cast<double>(jobs.size());
  const double expected = mem + strad * 0.5;
  EXPECT_NEAR(frac, expected, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Mixtures, MixtureProperty,
                         ::testing::Values(std::make_tuple(1.0, 0.0, 0.0),
                                           std::make_tuple(0.0, 0.0, 1.0),
                                           std::make_tuple(0.5, 0.0, 0.5),
                                           std::make_tuple(0.7, 0.15, 0.15)));

}  // namespace
}  // namespace mcb
