// Tests for the §VI future-work extensions: the multi-roof
// ExtendedCharacterizer (interconnect-bound class), the KNN regressor
// (duration/power prediction) and the generator's power/network synthesis.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/knn_regressor.hpp"
#include "roofline/extended.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mcb {
namespace {

JobRecord counters_job(double perf2, double perf4, double perf6,
                       std::int64_t duration = 1000, std::uint32_t nodes = 1) {
  JobRecord job;
  job.job_id = 1;
  job.job_name = "x";
  job.start_time = 0;
  job.end_time = duration;
  job.nodes_allocated = nodes;
  job.perf2 = perf2;
  job.perf4 = perf4;
  job.perf5 = 0;
  job.perf6 = perf6;
  return job;
}

// ------------------------------------------------- ExtendedCharacterizer

TEST(ExtendedCharacterizer, AgreesWithBaseOnTwoClasses) {
  // With no network traffic the 3-class label must match the 2-class one.
  const ExtendedCharacterizer extended(fugaku_node_spec());
  const Characterizer base(fugaku_node_spec());
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const JobRecord job = counters_job(rng.uniform(0, 1e15), rng.uniform(1, 1e13), 0.0,
                                       static_cast<std::int64_t>(rng.range(1, 50'000)),
                                       static_cast<std::uint32_t>(rng.range(1, 256)));
    const auto two = base.characterize(job);
    const auto three = extended.characterize(job);
    ASSERT_TRUE(two.has_value() && three.has_value());
    EXPECT_NE(*three, ExtendedBoundedness::kInterconnectBound);
    EXPECT_EQ(*two == Boundedness::kComputeBound,
              *three == ExtendedBoundedness::kComputeBound);
  }
}

TEST(ExtendedCharacterizer, DetectsInterconnectBound) {
  const ExtendedCharacterizer extended(fugaku_node_spec());
  // Low flops and memory traffic, but network at ~full Tofu injection:
  // 40 GB/s * 1000 s = 4e13 bytes.
  const JobRecord job = counters_job(/*perf2=*/1e12, /*perf4=*/1e9, /*perf6=*/4.0e13);
  const auto label = extended.characterize(job);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, ExtendedBoundedness::kInterconnectBound);
}

TEST(ExtendedCharacterizer, UtilizationValues) {
  const ExtendedCharacterizer extended(fugaku_node_spec());
  // 1000 s, 1 node: p = 1690 GF/s (half of peak), mb = 512 GB/s (half),
  // nb = 20.4 GB/s (half of Tofu).
  JobRecord job = counters_job(1690.0 * 1e9 * 1000.0,
                               512.0 * 1e9 * 1000.0 * 12.0 / 256.0,
                               20.4 * 1e9 * 1000.0);
  const auto util = extended.utilization(job);
  ASSERT_TRUE(util.has_value());
  EXPECT_NEAR(util->compute, 0.5, 1e-9);
  EXPECT_NEAR(util->memory, 0.5, 1e-9);
  EXPECT_NEAR(util->interconnect, 0.5, 1e-9);
  // Exact three-way tie resolves to memory (base convention).
  EXPECT_EQ(util->dominant(), ExtendedBoundedness::kMemoryBound);
}

TEST(ExtendedCharacterizer, UnmodeledNetworkDegeneratesToTwoClasses) {
  MachineSpec spec = fugaku_node_spec();
  spec.peak_network_gbs = 0.0;
  const ExtendedCharacterizer extended(spec);
  const JobRecord job = counters_job(1e12, 1e9, 1e20);  // huge net traffic ignored
  const auto label = extended.characterize(job);
  ASSERT_TRUE(label.has_value());
  EXPECT_NE(*label, ExtendedBoundedness::kInterconnectBound);
}

TEST(ExtendedCharacterizer, GenerateLabelsWithSkips) {
  const ExtendedCharacterizer extended(fugaku_node_spec());
  std::vector<JobRecord> jobs{counters_job(1e15, 1e6, 0),
                              counters_job(1, 1, 1, /*duration=*/0)};
  std::size_t skipped = 0;
  const auto labels = extended.generate_labels(jobs, &skipped);
  ASSERT_EQ(labels.size(), 2U);
  EXPECT_EQ(labels[0], ExtendedBoundedness::kComputeBound);
  EXPECT_EQ(skipped, 1U);
}

TEST(ExtendedCharacterizer, NamesAreStable) {
  EXPECT_STREQ(extended_boundedness_name(ExtendedBoundedness::kInterconnectBound),
               "interconnect-bound");
}

// ------------------------------------------ generator power & network

TEST(GeneratorExtensions, PowerIsPlausiblePerNode) {
  WorkloadGenerator generator(scaled_workload_config(60.0, 9));
  const auto jobs = generator.generate();
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) {
    const double per_node = job.avg_power_watts / job.nodes_allocated;
    EXPECT_GT(per_node, 30.0) << job.job_name;   // above idle floor
    EXPECT_LT(per_node, 320.0) << job.job_name;  // below node TDP
  }
}

TEST(GeneratorExtensions, BoostJobsDrawMorePowerAtSameUtilization) {
  WorkloadConfig config = scaled_workload_config(150.0, 9);
  config.frac_memory_apps = 0.0;
  config.frac_straddler_apps = 0.0;
  config.frac_compute_apps = 1.0;
  WorkloadGenerator generator(config);
  const auto jobs = generator.generate();
  OnlineStats normal_power, boost_power;
  for (const auto& job : jobs) {
    const double per_node = job.avg_power_watts / job.nodes_allocated;
    (job.frequency == FrequencyMode::kBoost ? boost_power : normal_power).add(per_node);
  }
  ASSERT_GT(normal_power.count(), 100U);
  ASSERT_GT(boost_power.count(), 100U);
  EXPECT_GT(boost_power.mean(), normal_power.mean());
}

TEST(GeneratorExtensions, SingleNodeJobsHaveNoNetworkTraffic) {
  WorkloadGenerator generator(scaled_workload_config(60.0, 11));
  const auto jobs = generator.generate();
  std::size_t multi_with_net = 0, multi = 0;
  for (const auto& job : jobs) {
    if (job.nodes_allocated == 1) {
      EXPECT_DOUBLE_EQ(job.perf6, 0.0);
    } else {
      ++multi;
      multi_with_net += job.perf6 > 0.0;
    }
  }
  ASSERT_GT(multi, 100U);
  EXPECT_EQ(multi_with_net, multi);
}

TEST(GeneratorExtensions, NetworkBandwidthRespectsTofuRoof) {
  WorkloadGenerator generator(scaled_workload_config(120.0, 13));
  const auto jobs = generator.generate();
  const MachineSpec spec = fugaku_node_spec();
  std::size_t interconnect_bound = 0;
  for (const auto& job : jobs) {
    const double nb = ExtendedCharacterizer::network_bandwidth_gbs(job);
    EXPECT_LE(nb, spec.peak_network_gbs * 1.0001);
    if (nb > 0.5 * spec.peak_network_gbs) ++interconnect_bound;
  }
  // Communication-heavy apps exist (the extension's raison d'etre).
  EXPECT_GT(interconnect_bound, 0U);
}

TEST(GeneratorExtensions, ExtendedCensusHasAllThreeClasses) {
  WorkloadGenerator generator(scaled_workload_config(150.0, 15));
  const auto jobs = generator.generate();
  const ExtendedCharacterizer extended(fugaku_node_spec());
  std::array<std::size_t, 3> counts{};
  for (const auto& job : jobs) {
    const auto label = extended.characterize(job);
    if (label.has_value()) ++counts[static_cast<std::size_t>(*label)];
  }
  EXPECT_GT(counts[0], counts[1]);  // memory majority
  EXPECT_GT(counts[1], counts[2]);  // interconnect is the smallest class
  EXPECT_GT(counts[2], 0U);
}

// ------------------------------------------------------- KnnRegressor

TEST(KnnRegressor, ExactNeighborRecall) {
  // k = 1: predicting a training point returns its own target.
  FeatureMatrix x(5, 2);
  std::vector<double> y{10, 20, 30, 40, 50};
  for (int i = 0; i < 5; ++i) x.row(i)[0] = static_cast<float>(i * 10);
  KnnRegressorConfig config;
  config.k = 1;
  KnnRegressor regressor(config);
  regressor.fit(x.view(), y);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(regressor.predict_one(x.view().row(i)), y[i]);
  }
}

TEST(KnnRegressor, UniformMeanOfNeighbors) {
  FeatureMatrix x(3, 1);
  x.row(0)[0] = 0.0F;
  x.row(1)[0] = 1.0F;
  x.row(2)[0] = 100.0F;
  const std::vector<double> y{10.0, 20.0, 999.0};
  KnnRegressorConfig config;
  config.k = 2;
  KnnRegressor regressor(config);
  regressor.fit(x.view(), y);
  FeatureMatrix query(1, 1);
  query.row(0)[0] = 0.5F;
  EXPECT_DOUBLE_EQ(regressor.predict(query.view())[0], 15.0);
}

TEST(KnnRegressor, DistanceWeightingFavorsExactMatch) {
  FeatureMatrix x(2, 1);
  x.row(0)[0] = 0.0F;
  x.row(1)[0] = 1.0F;
  const std::vector<double> y{100.0, 0.0};
  KnnRegressorConfig config;
  config.k = 2;
  config.distance_weighted = true;
  KnnRegressor regressor(config);
  regressor.fit(x.view(), y);
  FeatureMatrix query(1, 1);
  query.row(0)[0] = 0.0F;  // exact match with target 100
  EXPECT_GT(regressor.predict(query.view())[0], 99.0);
}

TEST(KnnRegressor, LearnsSmoothFunction) {
  Rng rng(21);
  FeatureMatrix x(500, 3);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    for (int d = 0; d < 3; ++d) x.row(i)[d] = static_cast<float>(rng.uniform());
    y[i] = 3.0 * x.view().row(i)[0] + x.view().row(i)[1];
  }
  KnnRegressor regressor;
  regressor.fit(x.view(), y);
  FeatureMatrix test(100, 3);
  std::vector<double> truth(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (int d = 0; d < 3; ++d) test.row(i)[d] = static_cast<float>(rng.uniform());
    truth[i] = 3.0 * test.view().row(i)[0] + test.view().row(i)[1];
  }
  const auto predicted = regressor.predict(test.view());
  const auto metrics = evaluate_regression(truth, predicted);
  EXPECT_GT(metrics.r2, 0.8);
  EXPECT_LT(metrics.mae, 0.4);
}

TEST(KnnRegressor, SaveLoadRoundTrip) {
  Rng rng(23);
  FeatureMatrix x(60, 4);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    for (int d = 0; d < 4; ++d) x.row(i)[d] = static_cast<float>(rng.normal());
    y[i] = rng.uniform();
  }
  KnnRegressor regressor;
  regressor.fit(x.view(), y);
  std::stringstream stream;
  ASSERT_TRUE(regressor.save(stream));
  KnnRegressor loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.train_size(), 60U);
  EXPECT_EQ(loaded.predict(x.view()), regressor.predict(x.view()));
}

TEST(KnnRegressor, ErrorsOnMisuse) {
  KnnRegressor regressor;
  FeatureMatrix x(1, 1);
  EXPECT_THROW(regressor.predict(x.view()), std::logic_error);
  const std::vector<double> wrong_size{1.0, 2.0};
  EXPECT_THROW(regressor.fit(x.view(), wrong_size), std::invalid_argument);
}

TEST(EvaluateRegression, HandComputed) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> perfect = truth;
  const auto m = evaluate_regression(truth, perfect);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.r2, 1.0);

  const std::vector<double> off{2.0, 3.0, 4.0, 5.0};  // +1 everywhere
  const auto m2 = evaluate_regression(truth, off);
  EXPECT_DOUBLE_EQ(m2.mae, 1.0);
  EXPECT_LT(m2.r2, 1.0);
  EXPECT_EQ(m2.n, 4U);
}

TEST(EvaluateRegression, EmptyInput) {
  const auto m = evaluate_regression({}, {});
  EXPECT_EQ(m.n, 0U);
  EXPECT_DOUBLE_EQ(m.r2, 0.0);
}

}  // namespace
}  // namespace mcb
