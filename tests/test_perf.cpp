// Tests for the self-characterization subsystem (DESIGN.md §14): the
// CounterSource seam and its degradation contract, multiplexing scaling
// and wraparound clamping, per-stage counter attribution through Span,
// the atomic per-request enable/disable snapshot, the roofline
// StageProfileCollector, the SIGPROF sampling profiler's collapsed
// output, and a TSan hammer racing request threads against a /metrics
// scraper and a live profiler capture.
//
// Everything drives fake CounterSources: the real perf_event_open path
// is exercised opportunistically (most CI containers and VMs have no
// usable PMU — exactly the degraded path these tests pin down).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf/counters.hpp"
#include "obs/perf/profiler.hpp"
#include "obs/trace.hpp"
#include "roofline/machine_spec.hpp"
#include "roofline/stage_profile.hpp"

namespace mcb {
namespace {

using obs::perf::Counter;
using obs::perf::CounterSample;
using obs::perf::CounterSource;
using obs::perf::kCounterCount;
using obs::perf::kLlcLineBytes;

/// A source that fails every read with a fixed errno — what the
/// production source looks like under seccomp (ENOSYS), perf_event_
/// paranoid (EACCES/EPERM) or a PMU-less VM (ENOENT).
class FailingCounterSource final : public CounterSource {
 public:
  explicit FailingCounterSource(int error) : error_(error) {}
  bool read_counters(CounterSample&) noexcept override { return false; }
  bool available() const noexcept override { return false; }
  int error() const noexcept override { return error_; }
  bool hot_path_capable() const noexcept override { return false; }

 private:
  int error_;
};

/// A scripted source: each read returns the next sample in the script
/// (the last one repeats once exhausted). Thread-compatible, not
/// thread-safe — for single-threaded attribution tests.
class ScriptedCounterSource final : public CounterSource {
 public:
  explicit ScriptedCounterSource(std::vector<CounterSample> script)
      : script_(std::move(script)) {}
  bool read_counters(CounterSample& out) noexcept override {
    if (script_.empty()) return false;
    out = script_[next_];
    if (next_ + 1 < script_.size()) ++next_;
    return true;
  }
  bool available() const noexcept override { return !script_.empty(); }
  int error() const noexcept override { return 0; }
  bool hot_path_capable() const noexcept override { return true; }

 private:
  std::vector<CounterSample> script_;
  std::size_t next_ = 0;
};

/// Thread-safe monotonic source for the hammer: every read advances a
/// shared tick so deltas are always positive and non-zero.
class TickingCounterSource final : public CounterSource {
 public:
  bool read_counters(CounterSample& out) noexcept override {
    // relaxed: any unique monotonic value works; no ordering needed
    const std::uint64_t tick = tick_.fetch_add(7, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out.value[i] = tick * (i + 1);
    }
    return true;
  }
  bool available() const noexcept override { return true; }
  int error() const noexcept override { return 0; }
  bool hot_path_capable() const noexcept override { return true; }

 private:
  std::atomic<std::uint64_t> tick_{1};
};

CounterSample sample_of(std::uint64_t cycles, std::uint64_t instructions,
                        std::uint64_t llc_loads, std::uint64_t llc_misses,
                        std::uint64_t branch_misses) {
  CounterSample s;
  s.value = {cycles, instructions, llc_loads, llc_misses, branch_misses};
  return s;
}

// --------------------------------------------------- scaling arithmetic

TEST(PerfCounters, ScaleForMultiplexing) {
  using obs::perf::scale_for_multiplexing;
  // Fully scheduled: raw value passes through.
  EXPECT_EQ(scale_for_multiplexing(1000, 500, 500), 1000U);
  EXPECT_EQ(scale_for_multiplexing(1000, 500, 600), 1000U);
  // Never scheduled: nothing to extrapolate.
  EXPECT_EQ(scale_for_multiplexing(1000, 500, 0), 0U);
  // Half-scheduled: the estimate doubles the raw count.
  EXPECT_EQ(scale_for_multiplexing(1000, 1000, 500), 2000U);
  // Quarter-scheduled.
  EXPECT_EQ(scale_for_multiplexing(400, 4000, 1000), 1600U);
}

TEST(PerfCounters, CounterNamesAreStable) {
  EXPECT_STREQ(obs::perf::counter_name(Counter::kCycles), "cycles");
  EXPECT_STREQ(obs::perf::counter_name(Counter::kInstructions), "instructions");
  EXPECT_STREQ(obs::perf::counter_name(Counter::kLlcLoads), "llc_loads");
  EXPECT_STREQ(obs::perf::counter_name(Counter::kLlcMisses), "llc_misses");
  EXPECT_STREQ(obs::perf::counter_name(Counter::kBranchMisses), "branch_misses");
}

// ------------------------------------------------------- degraded path

TEST(PerfCounters, TracerDegradesWhenSourceUnavailable) {
  for (const int err : {ENOSYS, EACCES, EPERM}) {
    obs::RequestTracer tracer;
    FailingCounterSource source(err);
    tracer.set_counter_source(&source);
    EXPECT_FALSE(tracer.counters_attached());
    EXPECT_EQ(tracer.counter_source()->error(), err);

    // Latency-only fallback: spans still time stages.
    std::uint64_t now = 0;
    tracer.set_clock([&now] { return now; });
    obs::TraceContext trace = tracer.make_trace();
    obs::TraceScope scope(&trace);
    {
      obs::Span span(obs::Stage::kEncode);
      now += 100;
    }
    EXPECT_EQ(trace.stage_ns(obs::Stage::kEncode), 100U);
    EXPECT_EQ(trace.stage_counter(obs::Stage::kEncode, Counter::kCycles), 0U);
    tracer.finish(trace, 200, "POST /predict");
    EXPECT_EQ(tracer.counted_requests(), 0U);

    // The availability gauge is exported with value 0 — present either
    // way is the scrape contract.
    std::vector<obs::MetricFamily> families;
    tracer.collect_metrics(families);
    const std::string text = obs::render_prometheus(families);
    EXPECT_NE(text.find("mcb_perf_available 0"), std::string::npos);
  }
}

TEST(PerfCounters, ForceAttachOverridesHotPathCapability) {
  // A source that works but only via syscall reads is skipped by kAuto
  // semantics and attached under force.
  class SyscallOnlySource final : public CounterSource {
   public:
    bool read_counters(CounterSample& out) noexcept override {
      out = sample_of(1, 1, 1, 1, 1);
      return true;
    }
    bool available() const noexcept override { return true; }
    int error() const noexcept override { return 0; }
    bool hot_path_capable() const noexcept override { return false; }
  };
  SyscallOnlySource source;
  obs::RequestTracer tracer;
  tracer.set_counter_source(&source, /*force=*/false);
  EXPECT_FALSE(tracer.counters_attached());
  tracer.set_counter_source(&source, /*force=*/true);
  EXPECT_TRUE(tracer.counters_attached());
}

// -------------------------------------------------- counter attribution

TEST(PerfCounters, SpanAttributesCounterDeltasPerStage) {
  obs::RequestTracer tracer;
  // Script: span start, span end — instructions +6400, misses +10.
  ScriptedCounterSource source({
      sample_of(1000, 10000, 500, 100, 50),
      sample_of(3000, 16400, 900, 110, 70),
  });
  tracer.set_counter_source(&source);
  ASSERT_TRUE(tracer.counters_attached());

  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kClassify); }
  EXPECT_EQ(trace.stage_counter(obs::Stage::kClassify, Counter::kCycles), 2000U);
  EXPECT_EQ(trace.stage_counter(obs::Stage::kClassify, Counter::kInstructions),
            6400U);
  EXPECT_EQ(trace.stage_counter(obs::Stage::kClassify, Counter::kLlcMisses), 10U);

  // Totals flush once, at finish().
  EXPECT_EQ(tracer.stage_counter_total(obs::Stage::kClassify, Counter::kCycles), 0U);
  tracer.finish(trace, 200, "POST /predict");
  EXPECT_EQ(tracer.stage_counter_total(obs::Stage::kClassify, Counter::kCycles),
            2000U);
  EXPECT_EQ(tracer.stage_counter_total(obs::Stage::kClassify, Counter::kLlcMisses),
            10U);
  EXPECT_EQ(tracer.counted_requests(), 1U);

  // The exported byte family applies the 64-byte line model.
  std::vector<obs::MetricFamily> families;
  tracer.collect_metrics(families);
  const std::string text = obs::render_prometheus(families);
  EXPECT_NE(text.find("mcb_perf_available 1"), std::string::npos);
  EXPECT_NE(text.find("mcb_stage_cycles_total{stage=\"classify\"} 2000"),
            std::string::npos);
  EXPECT_NE(
      text.find("mcb_stage_llc_miss_bytes_total{stage=\"classify\"} 640"),
      std::string::npos);
}

TEST(PerfCounters, MultiplexedReadingsScaleLikeProduction) {
  // Simulate what PerfCounterSource does under multiplexing: raw counts
  // scaled by enabled/running before they reach the tracer. A group
  // that ran half the time doubles its raw deltas.
  const std::uint64_t raw_start = 500, raw_end = 900;
  const std::uint64_t start_scaled =
      obs::perf::scale_for_multiplexing(raw_start, 2000, 1000);
  const std::uint64_t end_scaled =
      obs::perf::scale_for_multiplexing(raw_end, 4000, 2000);
  ScriptedCounterSource source({
      sample_of(start_scaled, start_scaled, 0, 0, 0),
      sample_of(end_scaled, end_scaled, 0, 0, 0),
  });
  obs::RequestTracer tracer;
  tracer.set_counter_source(&source);
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kEncode); }
  EXPECT_EQ(trace.stage_counter(obs::Stage::kEncode, Counter::kCycles),
            (raw_end - raw_start) * 2);
}

TEST(PerfCounters, WraparoundClampsToZeroInsteadOfPoisoning) {
  // End < start (counter wrap, or a multiplexing rescale that shrank
  // the estimate): the delta must clamp to 0, not add ~2^64.
  ScriptedCounterSource source({
      sample_of(/*cycles=*/1000, 5000, 0, 40, 0),
      sample_of(/*cycles=*/900, 6000, 0, 30, 0),
  });
  obs::RequestTracer tracer;
  tracer.set_counter_source(&source);
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kParse); }
  EXPECT_EQ(trace.stage_counter(obs::Stage::kParse, Counter::kCycles), 0U);
  EXPECT_EQ(trace.stage_counter(obs::Stage::kParse, Counter::kLlcMisses), 0U);
  // Counters that did advance still attribute normally.
  EXPECT_EQ(trace.stage_counter(obs::Stage::kParse, Counter::kInstructions),
            1000U);
}

// ------------------------------- satellite 1: atomic per-request enable

TEST(PerfCounters, DisableBeforeRequestRecordsNothing) {
  obs::RequestTracer tracer;
  std::uint64_t now = 0;
  tracer.set_clock([&now] { return now; });
  tracer.set_enabled(false);
  obs::TraceContext trace = tracer.make_trace();
  EXPECT_FALSE(trace.armed());
  obs::TraceScope scope(&trace);
  {
    obs::Span span(obs::Stage::kEncode);
    now += 500;
  }
  EXPECT_EQ(trace.stage_ns(obs::Stage::kEncode), 0U);
  EXPECT_EQ(trace.stage_calls(obs::Stage::kEncode), 0U);
  tracer.finish(trace, 500, "POST /predict");  // errored would retain
  EXPECT_EQ(tracer.traces_recorded(), 0U);
  std::vector<obs::MetricFamily> families;
  tracer.collect_metrics(families);
  for (const auto& point : families[0].points) EXPECT_EQ(point.count, 0U);
}

TEST(PerfCounters, DisableMidRequestKeepsTheRequestConsistent) {
  // The regression this satellite pins down: the enable flag used to be
  // (conceptually) global, so a request whose spans recorded could see
  // its TraceScope torn down under a different enable state. The
  // per-request snapshot makes the whole request record — spans AND
  // finish — under the state captured at make_trace().
  obs::TracerConfig config;
  config.slow_threshold_ns = 0;  // retain everything
  obs::RequestTracer tracer(config);
  std::uint64_t now = 0;
  tracer.set_clock([&now] { return now; });

  obs::TraceContext trace = tracer.make_trace();
  EXPECT_TRUE(trace.armed());
  obs::TraceScope scope(&trace);
  {
    obs::Span span(obs::Stage::kClassify);
    now += 250;
    tracer.set_enabled(false);  // flips mid-span, mid-request
    now += 250;
  }
  {
    obs::Span span(obs::Stage::kSerialize);
    now += 100;
  }
  tracer.finish(trace, 200, "POST /predict");

  // Everything recorded under the armed snapshot: both spans and the
  // flight-recorder entry — not half a request.
  EXPECT_EQ(trace.stage_ns(obs::Stage::kClassify), 500U);
  EXPECT_EQ(trace.stage_ns(obs::Stage::kSerialize), 100U);
  EXPECT_EQ(tracer.traces_recorded(), 1U);

  // The *next* request observes the disable atomically.
  obs::TraceContext next = tracer.make_trace();
  EXPECT_FALSE(next.armed());
  obs::TraceScope next_scope(&next);
  {
    obs::Span span(obs::Stage::kClassify);
    now += 100;
  }
  tracer.finish(next, 200, "POST /predict");
  EXPECT_EQ(next.stage_calls(obs::Stage::kClassify), 0U);
  EXPECT_EQ(tracer.traces_recorded(), 1U);

  tracer.set_enabled(true);
  EXPECT_TRUE(tracer.make_trace().armed());
}

// ---------------------------------------- roofline stage self-profiling

TEST(StageProfile, DerivesIntensityAndBoundedness) {
  obs::RequestTracer tracer;
  // classify: 64000 instructions over 10 misses * 64 B = 100 F/B —
  // far above Fugaku's ~3.3 ridge, so compute-bound. parse: 640
  // instructions over 1000 misses — deep memory-bound.
  ScriptedCounterSource source({
      sample_of(0, 0, 0, 0, 0),
      sample_of(0, 64000, 0, 10, 0),
      sample_of(0, 64000, 0, 10, 0),
      sample_of(0, 64640, 0, 1010, 0),
  });
  tracer.set_counter_source(&source);
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kClassify); }
  { obs::Span span(obs::Stage::kParse); }
  tracer.finish(trace, 200, "POST /predict");

  const Characterizer characterizer(fugaku_node_spec());
  const StageProfileCollector collector(tracer, characterizer);
  EXPECT_DOUBLE_EQ(collector.stage_intensity(obs::Stage::kClassify),
                   64000.0 / (10.0 * 64.0));
  EXPECT_DOUBLE_EQ(collector.stage_intensity(obs::Stage::kParse),
                   640.0 / (1000.0 * 64.0));
  // No data for encode: absent, not fabricated.
  EXPECT_DOUBLE_EQ(collector.stage_intensity(obs::Stage::kEncode), 0.0);

  std::vector<obs::MetricFamily> families;
  collector.collect_metrics(families);
  ASSERT_EQ(families.size(), 2U);
  const std::string text = obs::render_prometheus(families);
  EXPECT_NE(text.find("mcb_stage_arith_intensity{stage=\"classify\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("mcb_stage_boundedness{stage=\"classify\",label=\"compute-bound\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mcb_stage_boundedness{stage=\"parse\",label=\"memory-bound\"} 0"),
            std::string::npos);
  EXPECT_EQ(text.find("stage=\"encode\""), std::string::npos);
}

TEST(StageProfile, PureComputeStageUsesTheSentinel) {
  obs::RequestTracer tracer;
  ScriptedCounterSource source({
      sample_of(0, 0, 0, 0, 0),
      sample_of(0, 5000, 0, 0, 0),  // instructions, zero misses
  });
  tracer.set_counter_source(&source);
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kRoute); }
  tracer.finish(trace, 200, "GET /jobs");

  const Characterizer characterizer(fugaku_node_spec());
  const StageProfileCollector collector(tracer, characterizer);
  EXPECT_DOUBLE_EQ(collector.stage_intensity(obs::Stage::kRoute),
                   kPureComputeIntensity);
  std::vector<obs::MetricFamily> families;
  collector.collect_metrics(families);
  const std::string text = obs::render_prometheus(families);
  EXPECT_NE(text.find("label=\"compute-bound\""), std::string::npos);
}

TEST(StageProfile, DegradedTracerYieldsEmptyFamilies) {
  obs::RequestTracer tracer;  // no counter source at all
  const Characterizer characterizer(fugaku_node_spec());
  const StageProfileCollector collector(tracer, characterizer);
  std::vector<obs::MetricFamily> families;
  collector.collect_metrics(families);
  ASSERT_EQ(families.size(), 2U);
  EXPECT_TRUE(families[0].points.empty());
  EXPECT_TRUE(families[1].points.empty());
}

// ------------------------------------------------------------ profiler

TEST(Profiler, CaptureProducesWellFormedCollapsedStacks) {
  // Keep a thread busy so the capture has something to attribute even
  // if the runner's wall-clock sampling lands between test work.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    volatile std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 4096; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  });

  obs::perf::ProfileOptions options;
  options.hz = 997;
  options.seconds = 0.4;
  obs::perf::ProfileReport report;
  std::string error;
  const bool ok = obs::perf::SamplingProfiler::capture(options, report, error);
  stop.store(true, std::memory_order_relaxed);
  burner.join();

  ASSERT_TRUE(ok) << error;
  EXPECT_GT(report.samples, 0U);
  ASSERT_FALSE(report.collapsed.empty());
  // Every line: at least one frame, ';'-joined, exactly one trailing
  // " <count>" with count >= 1. Frames never contain spaces (sanitized).
  std::size_t line_start = 0;
  std::size_t lines = 0;
  while (line_start < report.collapsed.size()) {
    std::size_t line_end = report.collapsed.find('\n', line_start);
    ASSERT_NE(line_end, std::string::npos) << "unterminated last line";
    const std::string line =
        report.collapsed.substr(line_start, line_end - line_start);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), space) << "frame contains a space: " << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty());
    for (const char c : count) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_FALSE(line.substr(0, space).empty());
    ++lines;
    line_start = line_end + 1;
  }
  EXPECT_GT(lines, 0U);
}

TEST(Profiler, ConcurrentCaptureIsRejectedAsBusy) {
  std::string first_error;
  obs::perf::ProfileReport first_report;
  std::thread first([&first_error, &first_report] {
    obs::perf::ProfileOptions options;
    options.seconds = 0.6;
    options.hz = 97;
    (void)obs::perf::SamplingProfiler::capture(options, first_report,
                                               first_error);
  });
  // Wait until the first capture holds the busy flag.
  for (int i = 0; i < 200 && !obs::perf::SamplingProfiler::busy(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (obs::perf::SamplingProfiler::busy()) {
    obs::perf::ProfileOptions options;
    options.seconds = 0.2;
    obs::perf::ProfileReport report;
    std::string error;
    EXPECT_FALSE(obs::perf::SamplingProfiler::capture(options, report, error));
    EXPECT_NE(error.find("busy"), std::string::npos);
  }
  first.join();
  EXPECT_FALSE(obs::perf::SamplingProfiler::busy());
}

// ------------------------------------------------ satellite 3: the hammer

TEST(PerfCounters, HammerWithScraperAndProfileCapture) {
  obs::TracerConfig config;
  config.recorder_slots = 16;
  config.recorder_shards = 4;
  config.slow_threshold_ns = 0;
  obs::RequestTracer tracer(config);
  TickingCounterSource source;
  tracer.set_counter_source(&source);
  ASSERT_TRUE(tracer.counters_attached());
  const Characterizer characterizer(fugaku_node_spec());
  const StageProfileCollector stage_profile(tracer, characterizer);

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kIters; ++i) {
        obs::TraceContext trace = tracer.make_trace();
        obs::TraceScope scope(&trace);
        { obs::Span span(obs::Stage::kParse); }
        { obs::Span span(obs::Stage::kClassify); }
        tracer.finish(trace, 200, "POST /predict");
      }
    });
  }
  // A scraper races the writers (tracer + derived roofline families),
  // exactly what a live /metrics endpoint does.
  threads.emplace_back([&tracer, &stage_profile, &done] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::MetricFamily> families;
      tracer.collect_metrics(families);
      stage_profile.collect_metrics(families);
      (void)obs::render_prometheus(families);
      std::this_thread::yield();
    }
  });
  // And one /debug/profile capture runs while the hammer is hot.
  threads.emplace_back([] {
    obs::perf::ProfileOptions options;
    options.hz = 397;
    options.seconds = 0.3;
    obs::perf::ProfileReport report;
    std::string error;
    (void)obs::perf::SamplingProfiler::capture(options, report, error);
  });

  for (int t = 0; t < kThreads; ++t) threads[static_cast<std::size_t>(t)].join();
  done.store(true, std::memory_order_release);
  for (std::size_t t = kThreads; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(tracer.counted_requests(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Every span advanced the ticking source, so both stages accumulated
  // positive instruction counts and the collector classifies them.
  EXPECT_GT(tracer.stage_counter_total(obs::Stage::kParse, Counter::kInstructions),
            0U);
  EXPECT_GT(
      tracer.stage_counter_total(obs::Stage::kClassify, Counter::kInstructions),
      0U);
  std::vector<obs::MetricFamily> families;
  stage_profile.collect_metrics(families);
  ASSERT_EQ(families.size(), 2U);
  EXPECT_EQ(families[0].points.size(), 2U);
}

// --------------------------------------- the real source, best effort

TEST(PerfCounters, ProductionSourceHonorsItsOwnContract) {
  // Whatever this machine supports, the source must be internally
  // consistent: available() implies reads succeed; !available() implies
  // an errno and failed reads.
  obs::perf::PerfCounterSource source;
  CounterSample sample;
  if (source.available()) {
    EXPECT_TRUE(source.read_counters(sample));
    EXPECT_EQ(source.error(), 0);
  } else {
    EXPECT_FALSE(source.read_counters(sample));
    EXPECT_NE(source.error(), 0);
    EXPECT_FALSE(source.hot_path_capable());
  }
  // Either way the tracer wires it without crashing.
  obs::RequestTracer tracer;
  tracer.set_counter_source(&source);
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  { obs::Span span(obs::Stage::kEncode); }
  tracer.finish(trace, 200, "POST /predict");
}

}  // namespace
}  // namespace mcb
