#pragma once

namespace fixture {
inline int thing() { return 3; }
}  // namespace fixture
