#pragma once

#include "util/base.hpp"

namespace fixture {
inline int api() { return base(); }
}  // namespace fixture
