#pragma once

#include "util/base.hpp"

namespace fixture {
inline int frame() { return base(); }
}  // namespace fixture
