#pragma once

namespace fixture {
inline int base() { return 1; }
}  // namespace fixture
