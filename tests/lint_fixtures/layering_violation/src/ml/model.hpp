#pragma once

// Back-edge: ml (layer 1) reaching up into serve (layer 2).
#include "serve/api.hpp"
// Peer-layer include: data sits on ml's own layer.
#include "data/frame.hpp"
// Edge into a module the manifest does not declare.
#include "rogue/thing.hpp"

namespace fixture {
inline int model() { return api() + frame() + thing(); }
}  // namespace fixture
