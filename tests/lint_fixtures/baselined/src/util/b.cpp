// Fixture: grandfathered naked new — absorbed by baseline.txt.
int* fixture_grandfathered = new int(7);
