// Fixture: a scoped mutex acquisition reachable from a reactor root
// (`reactor_tick` / `handle_event`) is R19; the same acquisition behind
// an MCB_REACTOR_BOUNDARY handoff runs on the pool and must stay
// silent.

#define MCB_REACTOR_BOUNDARY

namespace fix {

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

Mutex g_state_mutex;

void guarded_update() {
  MutexLock lock(g_state_mutex);
}

void reactor_tick() { guarded_update(); }

void locked_on_the_pool() {
  MutexLock lock(g_state_mutex);
}

// Handoff: below here the work runs on a pool worker, so waiting on the
// mutex is fine.
MCB_REACTOR_BOUNDARY
void submit_to_pool() { locked_on_the_pool(); }

void handle_event() { submit_to_pool(); }

}  // namespace fix
