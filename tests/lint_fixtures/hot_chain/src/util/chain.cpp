// Fixture: an allocation two calls below an MCB_HOT_PATH root must be
// reported by R18 with the full root→leaf call chain; the identical
// pattern behind an MCB_HOT_PATH_BOUNDARY handoff must stay silent.

#define MCB_HOT_PATH
#define MCB_HOT_PATH_BOUNDARY

namespace fix {

int* leaf_allocates() {
  return new int(7);
}

int* middle() { return leaf_allocates(); }

MCB_HOT_PATH
int* hot_root() { return middle(); }

int* cold_leaf_allocates() { return new int(9); }

// The handoff asserts everything below it honors the discipline (or is
// off the hot path entirely), so the allocation behind it is unreported.
MCB_HOT_PATH_BOUNDARY
int* handoff() { return cold_leaf_allocates(); }

MCB_HOT_PATH
int* hot_root_with_boundary() { return handoff(); }

}  // namespace fix
