// Fixture: a suppressed R2 — the run over this tree must report nothing
// for this file.

// mcb-lint: suppress(R2: fixture exercises the one-line suppression scope)
int* fixture_leak = new int(42);
