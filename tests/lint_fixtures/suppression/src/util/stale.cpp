// Fixture: this suppression excuses nothing, so the run must report it
// back as R15.

// mcb-lint: suppress(R7: nothing detaches here and the lint must say so)
int fixture_clean() { return 0; }
