// Fixture: two mutexes taken in opposite orders on two code paths must
// produce exactly one R20 cycle, with a witness chain for each order.

namespace fix {

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

struct Store {
  Mutex index_mutex;
  Mutex blob_mutex;

  void read_path() {
    MutexLock index_lock(index_mutex);
    MutexLock blob_lock(blob_mutex);
  }

  void write_path() {
    MutexLock blob_lock(blob_mutex);
    MutexLock index_lock(index_mutex);
  }
};

}  // namespace fix
