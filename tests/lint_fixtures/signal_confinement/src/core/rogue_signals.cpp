// Fixture: signal machinery outside src/obs/perf. Each free-function
// call is an R22 confinement finding; the member-call lookalike and the
// quoted spelling must stay silent.
namespace fix {

struct Registrar {};

int install_everywhere() {
  sigaction(7, nullptr, nullptr);     // R22: disposition change
  timer_create(1, nullptr, nullptr);  // R22: profiling timer
  backtrace(nullptr, 8);              // R22: stack walk
  Registrar r;
  r.sigaction();  // member call, not the libc symbol
  const char* text = "sigprocmask(everything)";  // quoted: silent
  return text != nullptr ? 0 : 1;
}

}  // namespace fix
