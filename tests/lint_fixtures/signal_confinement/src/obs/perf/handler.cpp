// Fixture: the profiler module may own signal machinery (no confinement
// findings for the declarations/calls below), but MCB_SIGNAL_HANDLER
// bodies are still scanned for async-signal-unsafe constructs, and the
// marker on a declaration guards nothing (R16).

#define MCB_SIGNAL_HANDLER

namespace fix {

long g_slot;
void* g_frames[32];

int backtrace(void** frames, int depth);
char** backtrace_symbols(void* const* frames, int depth);

// Atomics-and-backtrace only: the shape the real handler has.
MCB_SIGNAL_HANDLER void good_handler(int) {
  g_slot = g_slot + 1;
  backtrace(g_frames, 32);  // permitted: warmed before the timer arms
}

MCB_SIGNAL_HANDLER void bad_handler(int) {
  char** names = backtrace_symbols(g_frames, 8);  // R22: mallocs
  if (names != nullptr) g_slot = 2;
}

MCB_SIGNAL_HANDLER void declared_only(int);  // R16: guards nothing

void arm() {
  sigaction(7, nullptr, nullptr);     // allowed here
  timer_create(1, nullptr, nullptr);  // allowed here
}

}  // namespace fix
