#pragma once

#include "core/b.hpp"

namespace fixture {
inline int a() { return 1; }
}  // namespace fixture
