#pragma once

#include "core/a.hpp"

namespace fixture {
inline int b() { return 2; }
}  // namespace fixture
