// Fixture: a bool status silently dropped at statement position is R21;
// an explicit `(void)` cast and a checked negation both count as
// handling the result.

namespace fix {

bool try_reserve_slot() { return true; }

void caller() {
  try_reserve_slot();  // the one violation in this tree
  (void)try_reserve_slot();
  if (!try_reserve_slot()) {
    return;
  }
}

}  // namespace fix
