// Shared driver for the deterministic fuzz-style property harnesses.
//
// Each harness defines
//     int mcb_fuzz_one(const std::uint8_t* data, std::size_t size);
// returning 0 (the libFuzzer convention) and aborting (assert/abort) on
// any property violation. Two build modes share that entry point:
//
//   * default (plain ctest): this header provides a main() that replays
//     every file in the corpus directories passed as argv — a fully
//     deterministic regression run, no fuzzer runtime required.
//   * -DMCB_FUZZ=ON (Clang): compiled with -fsanitize=fuzzer; libFuzzer
//     provides main() and LLVMFuzzerTestOneInput forwards to the same
//     callback, so coverage-guided exploration exercises exactly the
//     code the replay mode regression-tests.
//
// New crashing inputs found by a fuzzing session are checked into
// tests/corpus/<harness>/ so the replay mode pins the fix forever.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

int mcb_fuzz_one(const std::uint8_t* data, std::size_t size);

#if defined(MCB_FUZZ)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return mcb_fuzz_one(data, size);
}

#else  // corpus replay mode

inline std::vector<std::uint8_t> mcb_fuzz_read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path root = argv[i];
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      // Sorted traversal so failures reproduce at a stable index.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        const auto bytes = mcb_fuzz_read_file(file);
        std::fprintf(stderr, "replay %s (%zu bytes)\n", file.c_str(), bytes.size());
        mcb_fuzz_one(bytes.data(), bytes.size());
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      const auto bytes = mcb_fuzz_read_file(root);
      std::fprintf(stderr, "replay %s (%zu bytes)\n", root.c_str(), bytes.size());
      mcb_fuzz_one(bytes.data(), bytes.size());
      ++replayed;
    } else {
      std::fprintf(stderr, "missing corpus path: %s\n", root.c_str());
      return 2;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 2;
  }
  std::fprintf(stderr, "replayed %zu corpus inputs, all properties held\n", replayed);
  return 0;
}

#endif  // MCB_FUZZ
