// Equivalence tests for the batched inference fast path (DESIGN.md §8):
// the flat-forest and tiled-KNN kernels must return results identical to
// the scalar reference implementations on randomized inputs and on the
// shapes that stress their edge handling (single row, one feature,
// dimensions that do not divide the unroll width, k larger than the
// training set). Plus the sharded embedding-cache contract: LRU
// eviction, bounded capacity, stats, and data-race freedom under
// concurrent hit/miss/evict traffic (run under TSan in CI).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "ml/flat_forest.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "text/embedding_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcb {
namespace {

/// Random matrix with a weak class signal in the first column, enough
/// for trees to find splits everywhere rather than degenerate stumps.
struct RandomData {
  FeatureMatrix x;
  std::vector<Label> y;
};

RandomData make_random_data(std::size_t rows, std::size_t dims, std::uint64_t seed,
                            std::size_t n_classes = 2) {
  Rng rng(seed);
  RandomData data{FeatureMatrix(rows, dims), std::vector<Label>(rows)};
  for (std::size_t i = 0; i < rows; ++i) {
    const Label label = static_cast<Label>(rng.bounded(n_classes));
    data.y[i] = label;
    float* row = data.x.row(i);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.normal(d == 0 ? static_cast<double>(label) : 0.0, 1.0));
    }
  }
  return data;
}

RandomForestConfig forest_config(std::size_t n_trees, std::uint64_t seed = 42) {
  RandomForestConfig config;
  config.n_trees = n_trees;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------------
// Flat forest vs scalar recursion
// ---------------------------------------------------------------------------

void expect_forest_paths_identical(const RandomForestClassifier& rf, FeatureView queries) {
  const auto scalar_labels = rf.predict_scalar(queries);
  const auto flat_labels = rf.predict(queries);
  EXPECT_EQ(scalar_labels, flat_labels);
  // Bit-identical probabilities: both paths accumulate the same leaf
  // distributions in the same tree order.
  const auto scalar_proba = rf.predict_proba_scalar(queries);
  const auto flat_proba = rf.predict_proba(queries);
  ASSERT_EQ(scalar_proba.size(), flat_proba.size());
  for (std::size_t i = 0; i < scalar_proba.size(); ++i) {
    EXPECT_EQ(scalar_proba[i], flat_proba[i]) << "probability " << i << " diverged";
  }
}

TEST(FlatForest, MatchesScalarOnRandomizedInputs) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    const auto train = make_random_data(300, 16, seed);
    RandomForestConfig config;
    config.n_trees = 25;
    config.seed = seed;
    RandomForestClassifier rf(config);
    rf.fit(train.x.view(), train.y);
    ASSERT_FALSE(rf.flat().empty());
    const auto queries = make_random_data(257, 16, seed + 1000);
    expect_forest_paths_identical(rf, queries.x.view());
  }
}

TEST(FlatForest, MatchesScalarMulticlass) {
  const auto train = make_random_data(400, 8, 5, /*n_classes=*/4);
  RandomForestConfig config;
  config.n_trees = 15;
  RandomForestClassifier rf(config);
  rf.fit(train.x.view(), train.y);
  const auto queries = make_random_data(100, 8, 6, /*n_classes=*/4);
  expect_forest_paths_identical(rf, queries.x.view());
}

TEST(FlatForest, MatchesScalarSingleRowAndSingleFeature) {
  const auto train = make_random_data(120, 1, 9);
  RandomForestClassifier rf(forest_config(10));
  rf.fit(train.x.view(), train.y);
  const auto one = make_random_data(1, 1, 10);
  expect_forest_paths_identical(rf, one.x.view());
}

TEST(FlatForest, MatchesScalarOnNonFiniteInputs) {
  const auto train = make_random_data(200, 6, 11);
  RandomForestClassifier rf(forest_config(12));
  rf.fit(train.x.view(), train.y);
  // NaN bins to code 0 in the scalar path and !(NaN > t) goes left in
  // the flat path; infinities exercise the top edge. All must agree.
  FeatureMatrix queries(4, 6);
  for (std::size_t d = 0; d < 6; ++d) {
    queries.row(0)[d] = std::numeric_limits<float>::quiet_NaN();
    queries.row(1)[d] = std::numeric_limits<float>::infinity();
    queries.row(2)[d] = -std::numeric_limits<float>::infinity();
    queries.row(3)[d] = d % 2 == 0 ? std::numeric_limits<float>::quiet_NaN() : 0.5f;
  }
  expect_forest_paths_identical(rf, queries.view());
}

TEST(FlatForest, ParallelBlocksMatchSerial) {
  const auto train = make_random_data(300, 12, 13);
  RandomForestClassifier rf(forest_config(20));
  rf.fit(train.x.view(), train.y);
  const auto queries = make_random_data(500, 12, 14);
  ThreadPool pool(4);
  const auto serial = rf.predict_proba(queries.x.view(), nullptr);
  const auto parallel = rf.predict_proba(queries.x.view(), &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]);
}

TEST(FlatForest, SaveLoadRoundTrip) {
  const auto train = make_random_data(250, 10, 17);
  RandomForestClassifier rf(forest_config(18));
  rf.fit(train.x.view(), train.y);

  std::stringstream stream;
  rf.flat().save(stream);
  FlatForest restored;
  ASSERT_TRUE(restored.load(stream));
  EXPECT_EQ(restored.tree_count(), rf.flat().tree_count());
  EXPECT_EQ(restored.node_count(), rf.flat().node_count());
  EXPECT_EQ(restored.n_classes(), rf.flat().n_classes());

  const auto queries = make_random_data(64, 10, 18);
  std::vector<double> expected(64 * rf.flat().n_classes(), 0.0);
  std::vector<double> actual(expected.size(), 0.0);
  rf.flat().accumulate_proba_block(queries.x.view(), 0, 64, expected.data());
  restored.accumulate_proba_block(queries.x.view(), 0, 64, actual.data());
  EXPECT_EQ(expected, actual);
}

TEST(FlatForest, LoadRejectsGarbageAndTruncation) {
  FlatForest forest;
  std::stringstream garbage("definitely not a flat forest");
  EXPECT_FALSE(forest.load(garbage));

  const auto train = make_random_data(100, 4, 19);
  RandomForestClassifier rf(forest_config(5));
  rf.fit(train.x.view(), train.y);
  std::stringstream stream;
  rf.flat().save(stream);
  const std::string bytes = stream.str();
  for (const std::size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    FlatForest partial;
    EXPECT_FALSE(partial.load(truncated)) << "accepted a stream cut at " << cut;
  }
}

TEST(FlatForest, RandomForestLoadRebuildsFlat) {
  const auto train = make_random_data(200, 8, 21);
  RandomForestClassifier rf(forest_config(10));
  rf.fit(train.x.view(), train.y);
  std::stringstream stream;
  ASSERT_TRUE(rf.save(stream));
  RandomForestClassifier restored;
  ASSERT_TRUE(restored.load(stream));
  ASSERT_FALSE(restored.flat().empty());
  const auto queries = make_random_data(50, 8, 22);
  EXPECT_EQ(rf.predict(queries.x.view()), restored.predict(queries.x.view()));
  expect_forest_paths_identical(restored, queries.x.view());
}

// ---------------------------------------------------------------------------
// Tiled KNN vs scalar scan
// ---------------------------------------------------------------------------

TEST(KnnFastPath, MatchesScalarOnRandomizedInputs) {
  for (const std::uint64_t seed : {2ULL, 31ULL, 77ULL}) {
    // 300 rows spans two full 128-row tiles plus a partial tail; dim 19
    // leaves a 3-wide remainder for the 4-accumulator unroll.
    const auto train = make_random_data(300, 19, seed);
    KnnClassifier knn;
    knn.fit(train.x.view(), train.y);
    const auto queries = make_random_data(97, 19, seed + 500);
    EXPECT_EQ(knn.predict_scalar(queries.x.view()), knn.predict(queries.x.view()));
    for (std::size_t i = 0; i < queries.x.view().rows; ++i) {
      const auto row = queries.x.view().row(i);
      EXPECT_EQ(knn.kneighbors_scalar(row), knn.kneighbors(row)) << "query " << i;
    }
  }
}

TEST(KnnFastPath, KLargerThanTrainingSet) {
  const auto train = make_random_data(3, 7, 41);
  KnnConfig config;
  config.k = 10;  // > n_rows: both scans must return all 3 rows
  KnnClassifier knn(config);
  knn.fit(train.x.view(), train.y);
  const auto query = make_random_data(1, 7, 42);
  const auto tiled = knn.kneighbors(query.x.view().row(0));
  EXPECT_EQ(tiled.size(), 3u);
  EXPECT_EQ(tiled, knn.kneighbors_scalar(query.x.view().row(0)));
  EXPECT_EQ(knn.predict(query.x.view()), knn.predict_scalar(query.x.view()));
}

TEST(KnnFastPath, SingleRowAndNarrowDims) {
  // dims 1..5 cover every remainder class of the 4-wide unroll.
  for (const std::size_t dims : {1UL, 2UL, 3UL, 4UL, 5UL}) {
    const auto train = make_random_data(150, dims, 50 + dims);
    KnnClassifier knn;
    knn.fit(train.x.view(), train.y);
    const auto query = make_random_data(1, dims, 60 + dims);
    EXPECT_EQ(knn.kneighbors(query.x.view().row(0)), knn.kneighbors_scalar(query.x.view().row(0)))
        << "dims=" << dims;
  }
}

TEST(KnnFastPath, ExactTileBoundary) {
  // Exactly one tile (128) and one-past (129): the tile loop must not
  // read past the end or skip the final row.
  for (const std::size_t rows : {128UL, 129UL, 256UL}) {
    const auto train = make_random_data(rows, 9, 70 + rows);
    KnnClassifier knn;
    knn.fit(train.x.view(), train.y);
    const auto query = make_random_data(5, 9, 90 + rows);
    EXPECT_EQ(knn.predict(query.x.view()), knn.predict_scalar(query.x.view())) << "rows=" << rows;
  }
}

// ---------------------------------------------------------------------------
// Sharded embedding cache
// ---------------------------------------------------------------------------

std::vector<float> vec_of(std::size_t dim, float fill) { return std::vector<float>(dim, fill); }

TEST(EmbeddingCache, HitMissAndStats) {
  ShardedEmbeddingCache cache(4, {.capacity = 8, .shards = 2});
  std::vector<float> out(4);
  EXPECT_FALSE(cache.lookup("alpha", out));
  cache.insert("alpha", vec_of(4, 1.5f));
  ASSERT_TRUE(cache.lookup("alpha", out));
  EXPECT_EQ(out, vec_of(4, 1.5f));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EmbeddingCache, RejectsWrongWidth) {
  ShardedEmbeddingCache cache(4);
  cache.insert("key", vec_of(3, 1.0f));  // too narrow: ignored
  std::vector<float> out(4);
  EXPECT_FALSE(cache.lookup("key", out));
}

TEST(EmbeddingCache, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  ShardedEmbeddingCache cache(2, {.capacity = 2, .shards = 1});
  std::vector<float> out(2);
  cache.insert("a", vec_of(2, 1.0f));
  cache.insert("b", vec_of(2, 2.0f));
  ASSERT_TRUE(cache.lookup("a", out));  // promotes "a"; "b" is now LRU
  cache.insert("c", vec_of(2, 3.0f));   // evicts "b"
  EXPECT_TRUE(cache.lookup("a", out));
  EXPECT_FALSE(cache.lookup("b", out));
  EXPECT_TRUE(cache.lookup("c", out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EmbeddingCache, InsertRefreshesExistingKey) {
  ShardedEmbeddingCache cache(2, {.capacity = 4, .shards = 1});
  cache.insert("k", vec_of(2, 1.0f));
  cache.insert("k", vec_of(2, 9.0f));
  std::vector<float> out(2);
  ASSERT_TRUE(cache.lookup("k", out));
  EXPECT_EQ(out, vec_of(2, 9.0f));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EmbeddingCache, ClearDropsEntriesKeepsStats) {
  ShardedEmbeddingCache cache(2, {.capacity = 8, .shards = 2});
  cache.insert("x", vec_of(2, 1.0f));
  std::vector<float> out(2);
  ASSERT_TRUE(cache.lookup("x", out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("x", out));
  EXPECT_EQ(cache.stats().hits, 1u);  // preserved across clear()
}

TEST(EmbeddingCache, ConcurrentHitMissEvict) {
  // Small capacity forces constant eviction while 8 threads hammer
  // overlapping key ranges; run under TSan this is the data-race gate.
  constexpr std::size_t kDim = 8;
  ShardedEmbeddingCache cache(kDim, {.capacity = 32, .shards = 4});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      std::vector<float> out(kDim);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string key = "job-" + std::to_string(rng.bounded(64));
        if (!cache.lookup(key, out)) {
          cache.insert(key, vec_of(kDim, static_cast<float>(t)));
        }
        if (op % 1024 == 0 && t == 0) cache.clear();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(cache.size(), 32u);
}

}  // namespace
}  // namespace mcb
