// End-to-end integration tests: synthetic Fugaku workload -> job store ->
// characterization -> online training/inference -> evaluation, plus the
// HTTP deployment path. These assert the *shape* of the paper's headline
// results at reduced scale (see DESIGN.md §3-4).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/mcbound.hpp"
#include "core/online_evaluator.hpp"
#include "roofline/analysis.hpp"
#include "serve/api.hpp"
#include "workload/generator.hpp"

namespace mcb {
namespace {

namespace fs = std::filesystem;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = std::make_unique<WorkloadConfig>(scaled_workload_config(200.0, 15));
    WorkloadGenerator generator(*config_);
    store_ = std::make_unique<JobStore>();
    store_->insert_all(generator.generate());
  }
  static void TearDownTestSuite() {
    store_.reset();
    config_.reset();
  }

  static std::unique_ptr<WorkloadConfig> config_;
  static std::unique_ptr<JobStore> store_;
};

std::unique_ptr<WorkloadConfig> IntegrationTest::config_;
std::unique_ptr<JobStore> IntegrationTest::store_;

TEST_F(IntegrationTest, WorkloadShapeMatchesPaperAnalysis) {
  const Characterizer ch(config_->machine);
  const auto analysis = analyze_jobs(ch, store_->all());
  ASSERT_GT(analysis.jobs.size(), 10'000U);

  // §IV-C: majority memory-bound, skew toward intensities below ridge.
  const double ratio = analysis.breakdown.memory_to_compute_ratio();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.5);

  // §IV-C: suboptimal frequency selection on both sides.
  EXPECT_GT(analysis.breakdown.memory_bound_normal_fraction(), 0.40);
  EXPECT_LT(analysis.breakdown.compute_bound_boost_fraction(), 0.50);
}

TEST_F(IntegrationTest, OnlineKnnReachesPaperBandAndBeatsStaleSettings) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(*store_, ch, encoder);

  OnlineEvalConfig best;
  best.alpha_days = 30;
  best.beta_days = 1;
  const auto knn =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, best);
  EXPECT_EQ(knn.retrains, 29U);  // daily retrain through February
  EXPECT_GT(knn.predictions, 1000U);
  // Paper: F1 >= 0.89 at full scale; at ~0.4% of the data volume we
  // accept a band that still rules out degenerate classifiers.
  EXPECT_GT(knn.f1_macro(), 0.80);
  EXPECT_LT(knn.f1_macro(), 0.99);  // straddler noise must be present

  // Stale model (beta = 10) must do worse than daily retraining.
  OnlineEvalConfig stale = best;
  stale.beta_days = 10;
  const auto stale_knn =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, stale);
  EXPECT_LT(stale_knn.f1_macro(), knn.f1_macro() + 0.005);
}

TEST_F(IntegrationTest, RandomForestMatchesOrBeatsKnn) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(*store_, ch, encoder);

  OnlineEvalConfig rf_config;
  // The paper's best RF setting is alpha = 15 at 25K jobs/day; at the
  // reduced test scale RF needs the same 30-day window as KNN for full
  // app coverage (the paper finds RF insensitive to alpha at full scale).
  rf_config.alpha_days = 30;
  rf_config.beta_days = 1;
  RandomForestConfig forest;
  forest.n_trees = 100;
  forest.tree.max_features = 48;
  const auto rf = evaluator.evaluate(
      [&] { return ClassificationModel(ModelKind::kRandomForest, {}, forest); },
      rf_config);
  // 0.80 rules out a majority-class predictor (whose F1-macro is ~0.44).
  EXPECT_GT(rf.f1_macro(), 0.80);

  OnlineEvalConfig knn_config;
  knn_config.alpha_days = 30;
  knn_config.beta_days = 1;
  const auto knn =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, knn_config);
  // Paper §V-C(d): RF 0.90 vs KNN 0.89 — near-parity with RF ahead.
  EXPECT_GT(rf.f1_macro(), knn.f1_macro() - 0.03);
}

TEST_F(IntegrationTest, BothModelsBeatTheLookupBaseline) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(*store_, ch, encoder);

  OnlineEvalConfig config;
  config.alpha_days = 30;
  config.beta_days = 1;
  const auto knn =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);
  const auto baseline = evaluator.evaluate_baseline(config);
  // Paper §V-C(a): baseline 0.83 vs 0.90.
  EXPECT_GT(knn.f1_macro(), baseline.f1_macro() + 0.02);
}

TEST_F(IntegrationTest, TrainingTimeScalesWithAlphaForRf) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(*store_, ch, encoder);

  RandomForestConfig forest;
  forest.n_trees = 30;
  OnlineEvalConfig small, large;
  small.alpha_days = 15;
  large.alpha_days = 60;
  // Limit to one retrain each to keep the test fast.
  small.beta_days = large.beta_days = 40;
  const auto small_result = evaluator.evaluate(
      [&] { return ClassificationModel(ModelKind::kRandomForest, {}, forest); }, small);
  const auto large_result = evaluator.evaluate(
      [&] { return ClassificationModel(ModelKind::kRandomForest, {}, forest); }, large);
  // Fig. 7: RF training time grows with the window.
  EXPECT_GT(large_result.train_set_size.mean(), small_result.train_set_size.mean() * 2);
  EXPECT_GT(large_result.train_seconds.mean(), small_result.train_seconds.mean());
}

TEST_F(IntegrationTest, EncodingCacheEliminatesRecomputation) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  StoreDataFetcher fetcher(*store_);
  EncodingCache cache(encoder.dim());
  const TrainingWorkflow training(fetcher, ch, encoder, &cache);

  const TimePoint t = timepoint_from_ymd(2024, 2, 1);
  ClassificationModel first(ModelKind::kKnn);
  const auto report1 = training.run(first, t - 15 * kSecondsPerDay, t);
  EXPECT_EQ(report1.cache_hits, 0U);
  EXPECT_GT(report1.cache_misses, 0U);

  // Retraining a day later re-uses all overlapping encodings (§V-A).
  ClassificationModel second(ModelKind::kKnn);
  const auto report2 =
      training.run(second, t - 14 * kSecondsPerDay, t + kSecondsPerDay);
  EXPECT_GT(report2.cache_hits, report2.cache_misses * 5);
}

TEST_F(IntegrationTest, ThetaRandomBeatsLatestAtSmallBudgets) {
  const Characterizer ch(config_->machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(*store_, ch, encoder);

  OnlineEvalConfig config;
  config.alpha_days = 30;
  config.beta_days = 2;  // fewer retrains to keep runtime sane
  config.theta.theta = 200;

  config.theta.mode = ThetaConfig::Sampling::kLatest;
  const auto latest =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);

  config.theta.mode = ThetaConfig::Sampling::kRandom;
  double random_sum = 0.0;
  for (const std::uint64_t seed : {520ULL, 90ULL, 1905ULL}) {
    config.theta.seed = seed;
    random_sum += evaluator
                      .evaluate([] { return ClassificationModel(ModelKind::kKnn); },
                                config)
                      .f1_macro();
  }
  const double random_mean = random_sum / 3.0;
  // Figs. 9/10: random sampling dominates latest-first at small theta
  // (batches of identical jobs make "latest" redundant).
  EXPECT_GT(random_mean, latest.f1_macro());
}

TEST_F(IntegrationTest, FullDeploymentOverHttp) {
  const std::string registry_dir =
      (fs::temp_directory_path() / "mcb_integration_api").string();
  fs::remove_all(registry_dir);

  FrameworkConfig config;
  config.registry_dir = registry_dir;
  config.model = ModelKind::kKnn;
  config.alpha_days = 30;
  Framework framework(config, *store_);
  ApiServer api(framework);
  ASSERT_TRUE(api.start(0));

  int status = 0;
  std::string body;
  const TimePoint feb1 = timepoint_from_ymd(2024, 2, 1);
  ASSERT_TRUE(http_request(api.port(), "POST", "/train",
                           "{\"now\": " + std::to_string(feb1) + "}", status, body));
  ASSERT_EQ(status, 201) << body;

  // Predict a real February submission and compare against ground truth.
  JobQuery q;
  q.field = JobQuery::TimeField::kSubmitTime;
  q.start_time = feb1;
  q.end_time = feb1 + kSecondsPerDay;
  const auto submitted = store_->query(q);
  ASSERT_FALSE(submitted.empty());

  const Characterizer ch(config_->machine);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(submitted.size(), 50); ++i) {
    const JobRecord& job = *submitted[i];
    ASSERT_TRUE(http_request(api.port(), "POST", "/predict",
                             job_to_json(job).dump(), status, body));
    ASSERT_EQ(status, 200) << body;
    const auto response = Json::parse(body);
    const auto predicted = parse_boundedness((*response)["label"].as_string());
    ASSERT_TRUE(predicted.has_value());
    const auto truth = ch.characterize(job);
    ASSERT_TRUE(truth.has_value());
    correct += *predicted == *truth;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.7);
  api.stop();
  fs::remove_all(registry_dir);
}

TEST_F(IntegrationTest, CsvExportReimportPreservesEvaluation) {
  const std::string path = (fs::temp_directory_path() / "mcb_trace.csv").string();
  ASSERT_TRUE(store_->save_csv(path));
  JobStore reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.load_csv(path, &error)) << error;
  ASSERT_EQ(reloaded.size(), store_->size());

  const Characterizer ch(config_->machine);
  const auto original = analyze_jobs(ch, store_->all());
  const auto roundtrip = analyze_jobs(ch, reloaded.all());
  EXPECT_EQ(roundtrip.breakdown.total(), original.breakdown.total());
  EXPECT_EQ(roundtrip.breakdown.by_label(Boundedness::kComputeBound),
            original.breakdown.by_label(Boundedness::kComputeBound));
  fs::remove(path);
}

}  // namespace
}  // namespace mcb
