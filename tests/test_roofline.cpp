// Tests for the roofline module: the machine spec / ridge point, the
// counter conversions of Eq. 4-5, the per-job metrics of Eq. 1-3, label
// generation and the workload-level analysis. Includes parameterized
// property tests over random counter values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "roofline/analysis.hpp"
#include "roofline/characterizer.hpp"
#include "roofline/machine_spec.hpp"
#include "util/rng.hpp"

namespace mcb {
namespace {

JobRecord executed_job(double perf2, double perf3, double perf4, double perf5,
                       std::int64_t duration = 1000, std::uint32_t nodes = 1) {
  JobRecord job;
  job.job_id = 1;
  job.job_name = "test";
  job.start_time = 0;
  job.end_time = duration;
  job.nodes_allocated = nodes;
  job.perf2 = perf2;
  job.perf3 = perf3;
  job.perf4 = perf4;
  job.perf5 = perf5;
  return job;
}

// ----------------------------------------------------------- MachineSpec

TEST(MachineSpec, FugakuRidgePoint) {
  const MachineSpec spec = fugaku_node_spec();
  EXPECT_DOUBLE_EQ(spec.peak_gflops, 3380.0);
  EXPECT_DOUBLE_EQ(spec.peak_bandwidth_gbs, 1024.0);
  // Paper §IV-B: ridge point ~3.3 Flops/Byte.
  EXPECT_NEAR(spec.ridge_point(), 3.3, 0.05);
}

TEST(MachineSpec, AttainableFollowsRoofline) {
  const MachineSpec spec = fugaku_node_spec();
  // Below the ridge: bandwidth-bound.
  EXPECT_DOUBLE_EQ(spec.attainable_gflops(1.0), 1024.0);
  // Above the ridge: compute-bound at peak.
  EXPECT_DOUBLE_EQ(spec.attainable_gflops(100.0), 3380.0);
  // At the ridge, both bounds coincide.
  EXPECT_NEAR(spec.attainable_gflops(spec.ridge_point()), 3380.0, 1e-9);
}

TEST(MachineSpec, DegenerateBandwidth) {
  MachineSpec spec;
  spec.peak_gflops = 100.0;
  spec.peak_bandwidth_gbs = 0.0;
  EXPECT_DOUBLE_EQ(spec.ridge_point(), 0.0);
}

// --------------------------------------------------- counter conversions

TEST(CounterConversion, Equation4Flops) {
  // #flops = perf2 + perf3 * 4 (512-bit SVE = 4 x 128-bit slices).
  const JobRecord job = executed_job(1e9, 2e9, 0, 0);
  EXPECT_DOUBLE_EQ(flops_from_counters(job), 1e9 + 4 * 2e9);
}

TEST(CounterConversion, Equation5MovedBytes) {
  // #moved_bytes = (perf4 + perf5) * 256 / 12.
  const JobRecord job = executed_job(0, 0, 6e9, 6e9);
  EXPECT_DOUBLE_EQ(moved_bytes_from_counters(job), 12e9 * 256.0 / 12.0);
}

TEST(CounterConversion, CustomCounterModel) {
  CounterModel model;
  model.sve_width_factor = 2.0;
  model.cache_line_bytes = 64.0;
  model.cmg_core_count = 4.0;
  const JobRecord job = executed_job(1e6, 1e6, 4e6, 0);
  EXPECT_DOUBLE_EQ(flops_from_counters(job, model), 3e6);
  EXPECT_DOUBLE_EQ(moved_bytes_from_counters(job, model), 4e6 * 64.0 / 4.0);
}

// ---------------------------------------------------------- JobMetrics

TEST(Characterizer, Equations1To3) {
  const Characterizer ch(fugaku_node_spec());
  // 1000 s on 2 nodes; flops = 2e9 + 4*0 = 2e9; bytes = (12e9)*256/12 = 2.56e11.
  const JobRecord job = executed_job(2e12, 0, 6e9, 6e9, 1000, 2);
  const auto metrics = ch.compute_metrics(job);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_DOUBLE_EQ(metrics->flops, 2e12);
  EXPECT_DOUBLE_EQ(metrics->moved_bytes, 2.56e11);
  // p = flops / (duration * nodes) / 1e9 GFlop/s
  EXPECT_DOUBLE_EQ(metrics->performance_gflops, 2e12 / 2000.0 / 1e9);
  EXPECT_DOUBLE_EQ(metrics->bandwidth_gbs, 2.56e11 / 2000.0 / 1e9);
  EXPECT_NEAR(metrics->operational_intensity, 2e12 / 2.56e11, 1e-12);
}

TEST(Characterizer, ZeroDurationUncharacterizable) {
  const Characterizer ch(fugaku_node_spec());
  EXPECT_FALSE(ch.compute_metrics(executed_job(1, 1, 1, 1, 0)).has_value());
  EXPECT_FALSE(ch.characterize(executed_job(1, 1, 1, 1, -5)).has_value());
}

TEST(Characterizer, ZeroNodesUncharacterizable) {
  const Characterizer ch(fugaku_node_spec());
  JobRecord job = executed_job(1, 1, 1, 1);
  job.nodes_allocated = 0;
  EXPECT_FALSE(ch.compute_metrics(job).has_value());
}

TEST(Characterizer, NegativeCountersRejected) {
  const Characterizer ch(fugaku_node_spec());
  EXPECT_FALSE(ch.compute_metrics(executed_job(-1, 0, 1, 1)).has_value());
}

TEST(Characterizer, ZeroMemoryTrafficIsComputeBound) {
  const Characterizer ch(fugaku_node_spec());
  const auto metrics = ch.compute_metrics(executed_job(1e12, 0, 0, 0));
  ASSERT_TRUE(metrics.has_value());
  // Zero traffic yields the documented finite sentinel, not inf/UB, so
  // downstream log10/binning arithmetic stays well-defined.
  EXPECT_TRUE(std::isfinite(metrics->operational_intensity));
  EXPECT_EQ(metrics->operational_intensity, kPureComputeIntensity);
  EXPECT_GT(metrics->operational_intensity, ch.ridge_point());
  EXPECT_EQ(*ch.characterize(executed_job(1e12, 0, 0, 0)), Boundedness::kComputeBound);
}

TEST(Characterizer, NoCounterActivityUncharacterizable) {
  const Characterizer ch(fugaku_node_spec());
  // Zero flops AND zero traffic is 0/0 in Eq. 3: reject instead of
  // inventing a label.
  EXPECT_FALSE(ch.compute_metrics(executed_job(0, 0, 0, 0)).has_value());
}

TEST(Characterizer, ZeroFlopsIsMemoryBound) {
  const Characterizer ch(fugaku_node_spec());
  EXPECT_EQ(*ch.characterize(executed_job(0, 0, 1e9, 1e9)), Boundedness::kMemoryBound);
}

TEST(Characterizer, LabelBoundary) {
  const Characterizer ch(fugaku_node_spec());
  const double ridge = ch.ridge_point();
  // op exactly at the ridge is memory-bound ("compute-bound if GREATER").
  EXPECT_EQ(ch.classify_intensity(ridge), Boundedness::kMemoryBound);
  EXPECT_EQ(ch.classify_intensity(ridge * 1.0001), Boundedness::kComputeBound);
  EXPECT_EQ(ch.classify_intensity(ridge * 0.9999), Boundedness::kMemoryBound);
}

TEST(Characterizer, GenerateLabelsBatchWithSkips) {
  const Characterizer ch(fugaku_node_spec());
  std::vector<JobRecord> jobs{
      executed_job(1e15, 0, 1e6, 1e6),    // clearly compute-bound
      executed_job(1e6, 0, 1e12, 1e12),   // clearly memory-bound
      executed_job(1, 1, 1, 1, 0),        // uncharacterizable (zero duration)
  };
  std::size_t skipped = 0;
  const auto labels = ch.generate_labels(jobs, &skipped);
  ASSERT_EQ(labels.size(), 3U);
  EXPECT_EQ(labels[0], Boundedness::kComputeBound);
  EXPECT_EQ(labels[1], Boundedness::kMemoryBound);
  EXPECT_EQ(labels[2], Boundedness::kMemoryBound);  // fallback
  EXPECT_EQ(skipped, 1U);
}

TEST(Boundedness, ParseAndName) {
  EXPECT_EQ(*parse_boundedness("memory-bound"), Boundedness::kMemoryBound);
  EXPECT_EQ(*parse_boundedness("compute"), Boundedness::kComputeBound);
  EXPECT_FALSE(parse_boundedness("gpu-bound").has_value());
  EXPECT_STREQ(boundedness_name(Boundedness::kMemoryBound), "memory-bound");
  EXPECT_STREQ(boundedness_name(Boundedness::kComputeBound), "compute-bound");
}

// ------------------------------------------- property tests (TEST_P)

class CharacterizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CharacterizerProperty, MetricsAreConsistent) {
  Rng rng(GetParam());
  const Characterizer ch(fugaku_node_spec());
  for (int i = 0; i < 200; ++i) {
    const JobRecord job = executed_job(
        rng.uniform(0, 1e15), rng.uniform(0, 1e15), rng.uniform(1, 1e13),
        rng.uniform(1, 1e13), static_cast<std::int64_t>(rng.range(1, 100'000)),
        static_cast<std::uint32_t>(rng.range(1, 1024)));
    const auto metrics = ch.compute_metrics(job);
    ASSERT_TRUE(metrics.has_value());
    // Invariant: op == p / mb.
    EXPECT_NEAR(metrics->operational_intensity,
                metrics->performance_gflops / metrics->bandwidth_gbs, 1e-9);
    // Invariant: label agrees with intensity vs ridge.
    const auto label = ch.characterize(job);
    ASSERT_TRUE(label.has_value());
    EXPECT_EQ(*label == Boundedness::kComputeBound,
              metrics->operational_intensity > ch.ridge_point());
    // Non-negative physical quantities.
    EXPECT_GE(metrics->performance_gflops, 0.0);
    EXPECT_GE(metrics->bandwidth_gbs, 0.0);
  }
}

TEST_P(CharacterizerProperty, PerformanceScalesInverselyWithNodes) {
  Rng rng(GetParam() + 1000);
  const Characterizer ch(fugaku_node_spec());
  for (int i = 0; i < 50; ++i) {
    JobRecord job = executed_job(rng.uniform(1e9, 1e14), rng.uniform(1e9, 1e14),
                                 rng.uniform(1e6, 1e12), rng.uniform(1e6, 1e12), 500, 1);
    const auto one_node = ch.compute_metrics(job);
    job.nodes_allocated = 4;
    const auto four_nodes = ch.compute_metrics(job);
    ASSERT_TRUE(one_node.has_value() && four_nodes.has_value());
    EXPECT_NEAR(one_node->performance_gflops, 4.0 * four_nodes->performance_gflops, 1e-6);
    // Intensity is node-count invariant.
    EXPECT_NEAR(one_node->operational_intensity, four_nodes->operational_intensity, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharacterizerProperty,
                         ::testing::Values(1, 7, 42, 1905, 520));

// -------------------------------------------------------------- analysis

TEST(Analysis, BreakdownCountsAndRatios) {
  const Characterizer ch(fugaku_node_spec());
  std::vector<JobRecord> jobs;
  // 6 memory-bound at normal, 2 memory-bound at boost, 1 compute at each.
  for (int i = 0; i < 8; ++i) {
    JobRecord job = executed_job(1e6, 0, 1e12, 1e12);
    job.frequency = i < 6 ? FrequencyMode::kNormal : FrequencyMode::kBoost;
    jobs.push_back(job);
  }
  for (int i = 0; i < 2; ++i) {
    JobRecord job = executed_job(1e15, 0, 1e6, 1e6);
    job.frequency = i == 0 ? FrequencyMode::kNormal : FrequencyMode::kBoost;
    jobs.push_back(job);
  }
  const auto analysis = analyze_jobs(ch, jobs);
  EXPECT_EQ(analysis.breakdown.total(), 10U);
  EXPECT_EQ(analysis.breakdown.by_label(Boundedness::kMemoryBound), 8U);
  EXPECT_EQ(analysis.breakdown.by_label(Boundedness::kComputeBound), 2U);
  EXPECT_EQ(analysis.breakdown.at(FrequencyMode::kNormal, Boundedness::kMemoryBound), 6U);
  EXPECT_DOUBLE_EQ(analysis.breakdown.memory_to_compute_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(analysis.breakdown.memory_bound_normal_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(analysis.breakdown.compute_bound_boost_fraction(), 0.5);
}

TEST(Analysis, SkipsUncharacterizable) {
  const Characterizer ch(fugaku_node_spec());
  std::vector<JobRecord> jobs{executed_job(1, 1, 1, 1, 0)};
  const auto analysis = analyze_jobs(ch, jobs);
  EXPECT_EQ(analysis.skipped, 1U);
  EXPECT_TRUE(analysis.jobs.empty());
}

TEST(Analysis, EmptyBreakdownRatiosAreZero) {
  JobTypeBreakdown empty;
  EXPECT_DOUBLE_EQ(empty.memory_to_compute_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(empty.memory_bound_normal_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.compute_bound_boost_fraction(), 0.0);
}

TEST(Analysis, RooflineGridFiltersByFrequency) {
  const Characterizer ch(fugaku_node_spec());
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 4; ++i) {
    JobRecord job = executed_job(1e12, 0, 1e10, 1e10);
    job.frequency = i % 2 == 0 ? FrequencyMode::kNormal : FrequencyMode::kBoost;
    jobs.push_back(job);
  }
  const auto analysis = analyze_jobs(ch, jobs);
  EXPECT_EQ(roofline_grid(analysis).total(), 4U);
  const FrequencyMode boost = FrequencyMode::kBoost;
  EXPECT_EQ(roofline_grid(analysis, 50, 10, &boost).total(), 2U);
}

TEST(Analysis, DailyTypeCounts) {
  const Characterizer ch(fugaku_node_spec());
  const TimePoint start = timepoint_from_ymd(2024, 1, 1);
  std::vector<JobRecord> jobs;
  for (int day = 0; day < 3; ++day) {
    JobRecord mem = executed_job(1e6, 0, 1e12, 1e12);
    mem.submit_time = start + day * kSecondsPerDay + 100;
    jobs.push_back(mem);
  }
  JobRecord comp = executed_job(1e15, 0, 1e6, 1e6);
  comp.submit_time = start + 1 * kSecondsPerDay + 100;
  jobs.push_back(comp);

  const auto analysis = analyze_jobs(ch, jobs);
  const auto daily = daily_type_counts(analysis, start, start + 3 * kSecondsPerDay);
  ASSERT_EQ(daily.memory_bound.size(), 3U);
  EXPECT_EQ(daily.memory_bound[0], 1U);
  EXPECT_EQ(daily.compute_bound[1], 1U);
  EXPECT_EQ(daily.compute_bound[0], 0U);
}

TEST(Analysis, NearRooflineFraction) {
  const Characterizer ch(fugaku_node_spec());
  // Job at ~100% of bandwidth roof: op = 1, p = 1024 GF/s per node.
  // flops/s/node = 1024e9, bytes/s/node = 1024e9.
  JobRecord near = executed_job(1024e9 * 100, 0, 1024e9 * 100 * 12 / 256, 0, 100, 1);
  // Job far below the roof.
  JobRecord far = executed_job(1e9, 0, 1e12, 1e12, 100, 1);
  const auto analysis = analyze_jobs(ch, std::vector<JobRecord>{near, far});
  EXPECT_NEAR(analysis.fraction_near_roofline(ch, 0.5), 0.5, 1e-9);
}

}  // namespace
}  // namespace mcb
