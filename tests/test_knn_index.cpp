// Equivalence tests for the pruned KNN spatial index (DESIGN.md §11):
// the bounding-box tree must return results *identical* to the scalar
// reference scan — same neighbor ids, same predictions — on randomized
// inputs and on the shapes that stress its invariants (duplicate rows
// and equal distances, k larger than the training set, narrow dims,
// tile boundaries, zero-extent splits, non-finite features). IVF-flat
// must be exact when nprobe covers every cell and well-behaved when it
// does not. Plus the KnnIndex save/load contract: round-trip identity
// and rejection of truncated or foreign streams.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "ml/knn.hpp"
#include "ml/knn_index.hpp"
#include "ml/knn_regressor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcb {
namespace {

struct RandomData {
  FeatureMatrix x;
  std::vector<Label> y;
};

RandomData make_random_data(std::size_t rows, std::size_t dims, std::uint64_t seed,
                            std::size_t n_classes = 2) {
  Rng rng(seed);
  RandomData data{FeatureMatrix(rows, dims), std::vector<Label>(rows)};
  for (std::size_t i = 0; i < rows; ++i) {
    const Label label = static_cast<Label>(rng.bounded(n_classes));
    data.y[i] = label;
    float* row = data.x.row(i);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.normal(d == 0 ? static_cast<double>(label) : 0.0, 1.0));
    }
  }
  return data;
}

/// HPC-trace-shaped data: many byte-identical rows (Fugaku jobs arrive
/// in batches of identical jobs), so equal distances are the common
/// case, not the corner case.
RandomData make_duplicate_data(std::size_t rows, std::size_t dims, std::size_t unique,
                               std::uint64_t seed, std::size_t n_classes = 2) {
  const RandomData base = make_random_data(unique, dims, seed, n_classes);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  RandomData data{FeatureMatrix(rows, dims), std::vector<Label>(rows)};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t pick = rng.bounded(unique);
    data.y[i] = base.y[pick];
    std::copy_n(base.x.row(pick).data(), dims, data.x.row(i));
  }
  return data;
}

KnnConfig tree_config(std::size_t k, std::size_t leaf_size = 8) {
  KnnConfig config;
  config.k = k;
  config.index.mode = KnnIndexMode::kBoundTree;
  config.index.min_rows = 1;  // always index, even tiny training sets
  config.index.leaf_size = leaf_size;
  return config;
}

/// The core contract: index-backed neighbors and predictions must be
/// bit-identical to the scalar reference scan, query by query.
void expect_index_matches_scalar(const KnnClassifier& knn, FeatureView queries) {
  ASSERT_TRUE(knn.index().ready()) << "index was expected to be active";
  EXPECT_EQ(knn.predict(queries), knn.predict_scalar(queries));
  for (std::size_t i = 0; i < queries.rows; ++i) {
    EXPECT_EQ(knn.kneighbors(queries.row(i)), knn.kneighbors_scalar(queries.row(i)))
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Bounding-box tree vs scalar scan
// ---------------------------------------------------------------------------

TEST(KnnIndexTree, MatchesScalarOnRandomizedInputs) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    const auto train = make_random_data(500, 8, seed);
    const auto queries = make_random_data(100, 8, seed + 1000);
    KnnClassifier knn(tree_config(5));
    knn.fit(train.x.view(), train.y);
    expect_index_matches_scalar(knn, queries.x.view());
  }
}

TEST(KnnIndexTree, MatchesScalarOnDuplicateHeavyData) {
  // 1500 rows collapsing onto 60 unique points: every neighbor set is
  // decided by the (distance, row id) tie-break, and queries drawn from
  // the same pool hit exact distance-0 matches.
  const auto train = make_duplicate_data(1500, 6, 60, 91);
  const auto queries = make_duplicate_data(80, 6, 60, 91);
  KnnClassifier knn(tree_config(5));
  knn.fit(train.x.view(), train.y);
  EXPECT_LT(knn.index().stats().unique_rows, 100U);
  expect_index_matches_scalar(knn, queries.x.view());
}

TEST(KnnIndexTree, DuplicateGroupExpandsToLowestRowIds) {
  // Four copies of the same point scattered through the training set:
  // k = 3 must return the three *lowest* original row ids, exactly as a
  // sequential first-seen-wins scan would.
  FeatureMatrix x(6, 2);
  const float rows[6][2] = {{5, 5}, {0, 0}, {9, 9}, {0, 0}, {0, 0}, {0, 0}};
  for (std::size_t i = 0; i < 6; ++i) std::copy_n(rows[i], 2, x.row(i));
  const std::vector<Label> y{0, 1, 0, 1, 1, 1};
  KnnClassifier knn(tree_config(3));
  knn.fit(x.view(), y);
  const std::vector<float> query{0.1F, 0.1F};
  const std::vector<std::size_t> expected{1, 3, 4};
  EXPECT_EQ(knn.kneighbors(query), expected);
  EXPECT_EQ(knn.kneighbors_scalar(query), expected);
}

TEST(KnnIndexTree, NarrowDimsAndTileBoundaries) {
  for (const std::size_t dims : {1U, 2U, 3U, 4U, 5U}) {
    for (const std::size_t rows : {127U, 128U, 129U, 256U}) {
      const auto train = make_random_data(rows, dims, dims * 1000 + rows);
      const auto queries = make_random_data(20, dims, dims * 2000 + rows);
      KnnClassifier knn(tree_config(5));
      knn.fit(train.x.view(), train.y);
      expect_index_matches_scalar(knn, queries.x.view());
    }
  }
}

TEST(KnnIndexTree, KLargerThanTrainingSet) {
  const auto train = make_random_data(10, 3, 5);
  const auto queries = make_random_data(8, 3, 6);
  KnnClassifier knn(tree_config(50));
  knn.fit(train.x.view(), train.y);
  expect_index_matches_scalar(knn, queries.x.view());
  EXPECT_EQ(knn.kneighbors(queries.x.row(0)).size(), 10U);
}

TEST(KnnIndexTree, ZeroExtentSplitForcesLeaf) {
  // All rows value-equal but byte-distinct in one dimension (-0.0 vs
  // 0.0): the widest split extent is zero, which must terminate the
  // build (forced leaf) rather than recurse forever.
  FeatureMatrix x(64, 2);
  for (std::size_t i = 0; i < 64; ++i) {
    x.row(i)[0] = (i % 2 == 0) ? 0.0F : -0.0F;
    x.row(i)[1] = 1.0F;
  }
  std::vector<Label> y(64);
  for (std::size_t i = 0; i < 64; ++i) y[i] = static_cast<Label>(i % 2);
  KnnClassifier knn(tree_config(5));
  knn.fit(x.view(), y);
  ASSERT_TRUE(knn.index().ready());
  const std::vector<float> query{0.0F, 0.9F};
  EXPECT_EQ(knn.kneighbors(query), knn.kneighbors_scalar(query));
}

TEST(KnnIndexTree, NonFiniteQueryFallsBackToScan) {
  const auto train = make_random_data(300, 4, 17);
  KnnClassifier knn(tree_config(5));
  knn.fit(train.x.view(), train.y);
  ASSERT_TRUE(knn.index().ready());
  FeatureMatrix queries(3, 4);
  queries.row(0)[1] = std::numeric_limits<float>::quiet_NaN();
  queries.row(1)[2] = std::numeric_limits<float>::infinity();
  queries.row(2)[0] = -std::numeric_limits<float>::infinity();
  // The index refuses these queries; predict must agree with the scalar
  // path (which handles them via the NaN-rejecting TopK) in both cases.
  EXPECT_EQ(knn.predict(queries.view()), knn.predict_scalar(queries.view()));
}

TEST(KnnIndexTree, NonFiniteTrainingDataDisablesIndex) {
  auto train = make_random_data(300, 4, 19);
  train.x.row(7)[2] = std::numeric_limits<float>::quiet_NaN();
  KnnClassifier knn(tree_config(5));
  knn.fit(train.x.view(), train.y);
  EXPECT_FALSE(knn.index().ready()) << "non-finite training data must refuse the index";
  const auto queries = make_random_data(20, 4, 20);
  EXPECT_EQ(knn.predict(queries.x.view()), knn.predict_scalar(queries.x.view()));
}

TEST(KnnIndexTree, MinRowsThresholdKeepsScan) {
  const auto train = make_random_data(100, 4, 21);
  KnnConfig config = tree_config(5);
  config.index.min_rows = 512;  // the default serving threshold
  KnnClassifier knn(config);
  knn.fit(train.x.view(), train.y);
  EXPECT_FALSE(knn.index().ready());
  const auto queries = make_random_data(20, 4, 22);
  EXPECT_EQ(knn.predict(queries.x.view()), knn.predict_scalar(queries.x.view()));
}

TEST(KnnIndexTree, ParallelPredictionMatchesSerial) {
  const auto train = make_duplicate_data(1000, 5, 80, 33);
  const auto queries = make_random_data(64, 5, 34);
  KnnClassifier knn(tree_config(5));
  knn.fit(train.x.view(), train.y);
  ThreadPool pool(4);
  EXPECT_EQ(knn.predict(queries.x.view(), &pool), knn.predict(queries.x.view(), nullptr));
}

// ---------------------------------------------------------------------------
// IVF-flat mode
// ---------------------------------------------------------------------------

TEST(KnnIndexIvf, ExactWhenNprobeCoversAllCells) {
  const auto train = make_random_data(600, 6, 55);
  const auto queries = make_random_data(60, 6, 56);
  KnnConfig config = tree_config(5);
  config.index.mode = KnnIndexMode::kIvfFlat;
  config.index.ivf_clusters = 16;
  config.index.ivf_nprobe = 1000;  // >= cells → provably exact
  KnnClassifier knn(config);
  knn.fit(train.x.view(), train.y);
  ASSERT_TRUE(knn.index().ready());
  EXPECT_TRUE(knn.index().stats().exact);
  expect_index_matches_scalar(knn, queries.x.view());
}

TEST(KnnIndexIvf, ApproximateModeStaysReasonable) {
  // nprobe half the cells is approximate by construction; predictions
  // must still agree with the scan on the vast majority of separable
  // queries (neighbors live in nearby cells).
  const auto train = make_random_data(800, 6, 57);
  const auto queries = make_random_data(200, 6, 58);
  KnnConfig config = tree_config(5);
  config.index.mode = KnnIndexMode::kIvfFlat;
  config.index.ivf_clusters = 8;
  config.index.ivf_nprobe = 4;
  KnnClassifier knn(config);
  knn.fit(train.x.view(), train.y);
  ASSERT_TRUE(knn.index().ready());
  EXPECT_FALSE(knn.index().stats().exact);
  const auto fast = knn.predict(queries.x.view());
  const auto scalar = knn.predict_scalar(queries.x.view());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < fast.size(); ++i) agree += fast[i] == scalar[i];
  EXPECT_GE(agree, fast.size() * 8 / 10);
}

// ---------------------------------------------------------------------------
// Regressor on the same index
// ---------------------------------------------------------------------------

TEST(KnnIndexRegressor, IndexedPredictionsMatchScanBitwise) {
  for (const bool weighted : {false, true}) {
    const auto train = make_duplicate_data(900, 5, 70, 77);
    std::vector<double> targets(train.y.size());
    Rng rng(78);
    for (auto& t : targets) t = rng.uniform(0.0, 100.0);

    KnnRegressorConfig indexed;
    indexed.k = 5;
    indexed.distance_weighted = weighted;
    indexed.index.mode = KnnIndexMode::kBoundTree;
    indexed.index.min_rows = 1;
    indexed.index.leaf_size = 8;
    KnnRegressorConfig scan = indexed;
    scan.index.mode = KnnIndexMode::kNone;

    KnnRegressor fast(indexed);
    fast.fit(train.x.view(), targets);
    ASSERT_TRUE(fast.index().ready());
    KnnRegressor reference(scan);
    reference.fit(train.x.view(), targets);
    ASSERT_FALSE(reference.index().ready());

    const auto queries = make_duplicate_data(60, 5, 70, 79);
    EXPECT_EQ(fast.predict(queries.x.view()), reference.predict(queries.x.view()))
        << "weighted = " << weighted;
  }
}

// ---------------------------------------------------------------------------
// KnnIndex persistence
// ---------------------------------------------------------------------------

TEST(KnnIndexIo, SaveLoadRoundTripIsSearchIdentical) {
  for (const KnnIndexMode mode : {KnnIndexMode::kBoundTree, KnnIndexMode::kIvfFlat}) {
    const auto train = make_duplicate_data(700, 5, 90, 101);
    KnnIndexConfig config;
    config.mode = mode;
    config.min_rows = 1;
    config.leaf_size = 8;
    config.ivf_clusters = 8;
    KnnIndex index;
    ASSERT_TRUE(index.build(train.x.view(), config));
    std::stringstream stream;
    ASSERT_TRUE(index.save(stream));
    KnnIndex loaded;
    ASSERT_TRUE(loaded.load(stream));

    EXPECT_EQ(loaded.stats().rows, index.stats().rows);
    EXPECT_EQ(loaded.stats().unique_rows, index.stats().unique_rows);
    EXPECT_EQ(loaded.stats().nodes, index.stats().nodes);
    EXPECT_EQ(loaded.stats().clusters, index.stats().clusters);

    const auto queries = make_random_data(40, 5, 102);
    std::vector<std::size_t> idx_a, idx_b;
    std::vector<double> dist_a, dist_b;
    for (std::size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(index.search(queries.x.view().row(i), 5, idx_a, dist_a));
      ASSERT_TRUE(loaded.search(queries.x.view().row(i), 5, idx_b, dist_b));
      EXPECT_EQ(idx_a, idx_b) << "query " << i;
      EXPECT_EQ(dist_a, dist_b) << "query " << i;
    }
  }
}

TEST(KnnIndexIo, RejectsTruncatedStreams) {
  const auto train = make_random_data(200, 4, 111);
  KnnIndexConfig config;
  config.min_rows = 1;
  KnnIndex index;
  ASSERT_TRUE(index.build(train.x.view(), config));
  std::stringstream stream;
  ASSERT_TRUE(index.save(stream));
  const std::string bytes = stream.str();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 97) {
    std::stringstream in(bytes.substr(0, cut));
    KnnIndex loaded;
    EXPECT_FALSE(loaded.load(in)) << "cut at " << cut;
    EXPECT_FALSE(loaded.ready());
  }
}

TEST(KnnIndexIo, RejectsForeignAndGarbageStreams) {
  {
    std::stringstream in("definitely not a model");
    KnnIndex index;
    EXPECT_FALSE(index.load(in));
  }
  {
    // A valid *classifier* stream must be rejected at the kind tag.
    const auto train = make_random_data(50, 3, 113);
    KnnClassifier knn;
    knn.fit(train.x.view(), train.y);
    std::stringstream stream;
    ASSERT_TRUE(knn.save(stream));
    KnnIndex index;
    EXPECT_FALSE(index.load(stream));
  }
}

TEST(KnnIndexIo, SearchContractOnUnreadyOrBadInput) {
  KnnIndex index;
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  const std::vector<float> query{1.0F, 2.0F};
  EXPECT_FALSE(index.search(query, 5, idx, dist)) << "unbuilt index";

  const auto train = make_random_data(100, 2, 115);
  KnnIndexConfig config;
  config.min_rows = 1;
  ASSERT_TRUE(index.build(train.x.view(), config));
  EXPECT_FALSE(index.search(query, 0, idx, dist)) << "k == 0";
  const std::vector<float> wrong_dim{1.0F, 2.0F, 3.0F};
  EXPECT_FALSE(index.search(wrong_dim, 5, idx, dist)) << "dimension mismatch";
  EXPECT_TRUE(index.search(query, 5, idx, dist));
  EXPECT_EQ(idx.size(), 5U);
}

}  // namespace
}  // namespace mcb
