// Tests for the mcbound_lint analyzer library (tools/lint/): the
// lexical front-end, the hot-path pass, rule R8's comment/string
// separation, suppression parsing, the function index / call graph and
// the whole-program rules R18–R21, the report back-ends (text chains,
// SARIF codeFlows golden, markdown catalog), and whole-tree runs over
// the deliberately-broken trees in tests/lint_fixtures/ (layering
// violations, an include cycle, suppression and baseline round-trips,
// hot/reactor chains, a lock-order inversion, a discarded status).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/call_graph.hpp"
#include "lint/diagnostics.hpp"
#include "lint/driver.hpp"
#include "lint/function_index.hpp"
#include "lint/hot_path.hpp"
#include "lint/include_graph.hpp"
#include "lint/report.hpp"
#include "lint/source_view.hpp"
#include "lint/text_rules.hpp"

namespace mcb::lint {
namespace {

std::size_t count_rule(const std::vector<Violation>& violations, std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      violations.begin(), violations.end(),
      [&](const Violation& v) { return v.rule == rule; }));
}

bool any_message_contains(const std::vector<Violation>& violations, std::string_view rule,
                          std::string_view needle) {
  return std::any_of(violations.begin(), violations.end(), [&](const Violation& v) {
    return v.rule == rule && v.message.find(needle) != std::string::npos;
  });
}

LintResult lint_fixture(const std::string& name, const std::string& baseline = "") {
  LintOptions options;
  options.root = std::string(MCB_LINT_FIXTURE_DIR) + "/" + name;
  options.compiler = "";  // fixtures are not self-contained-compile targets
  options.layers_file = "layers.txt";
  options.baseline_file = baseline;
  return run_lint(options);
}

// ------------------------------------------------------------ tokenizer

TEST(SourceView, ViewsStayByteAligned) {
  const std::string src = "int x; // c\nauto s = \"str\";\n/* b */ char c = 'q';\n";
  const SourceView view = scan_source(src);
  EXPECT_EQ(view.raw.size(), src.size());
  EXPECT_EQ(view.code.size(), src.size());
  EXPECT_EQ(view.comments.size(), src.size());
  EXPECT_EQ(view.raw, src);
}

TEST(SourceView, StringContentsAreBlankedInCode) {
  const SourceView view = scan_source("auto s = \"new delete throw\"; int y;");
  EXPECT_EQ(find_word(view.code, "new", 0), std::string_view::npos);
  EXPECT_EQ(find_word(view.code, "delete", 0), std::string_view::npos);
  EXPECT_NE(find_word(view.code, "y", 0), std::string_view::npos);
}

TEST(SourceView, RawStringLiteralRunsToItsDelimiter) {
  // The )" inside the raw string must not terminate it; only )x" does.
  const SourceView view =
      scan_source("auto s = R\"x(new /* not a comment */ )\" still )x\"; int tail;");
  EXPECT_EQ(find_word(view.code, "new", 0), std::string_view::npos);
  EXPECT_EQ(view.comments.find("not a comment"), std::string::npos);
  EXPECT_NE(find_word(view.code, "tail", 0), std::string_view::npos);
}

TEST(SourceView, BlockCommentsDoNotNest) {
  // C++ block comments end at the FIRST */ — the second open marker is
  // inert, so the trailing code is live again.
  const SourceView view = scan_source("/* outer /* inner */ int* p = new int;");
  EXPECT_NE(find_word(view.code, "new", 0), std::string_view::npos);
  EXPECT_NE(view.comments.find("inner"), std::string::npos);
}

TEST(SourceView, CharLiteralQuoteDoesNotOpenString) {
  // '"' must not start a string that swallows the rest of the file.
  const SourceView view = scan_source("char q = '\"'; int* p = new int; char e = '\\'';");
  EXPECT_NE(find_word(view.code, "new", 0), std::string_view::npos);
}

TEST(SourceView, LineCommentKeepsTextInCommentsView) {
  const SourceView view = scan_source("x.store(1);  // relaxed: stat counter\n");
  EXPECT_NE(view.comments.find("relaxed: stat counter"), std::string::npos);
  EXPECT_EQ(find_word(view.code, "relaxed", 0), std::string_view::npos);
}

TEST(LineIndex, PositionToLine) {
  const std::string text = "one\ntwo\nthree\n";
  LineIndex lines(text);
  EXPECT_EQ(lines.line_of(0), 1u);
  EXPECT_EQ(lines.line_of(4), 2u);
  EXPECT_EQ(lines.line_of(8), 3u);
  EXPECT_EQ(lines.line(text, 2), "two");
}

// --------------------------------------------------------- R8 regression

TEST(TextRules, RelaxedJustifiedByAdjacentComment) {
  FileContext ctx("src/x/a.cpp",
                  scan_source("// relaxed: stat counter\n"
                              "hits.fetch_add(1, std::memory_order_relaxed);\n"));
  std::vector<Violation> out;
  check_relaxed_order_justified(ctx, out);
  EXPECT_TRUE(out.empty());
}

TEST(TextRules, RelaxedStringLiteralIsNotAJustification) {
  // Pre-rewrite weakness: a string literal containing `relaxed:` on a
  // nearby line satisfied the justification scan. The justification must
  // now live in a comment.
  FileContext ctx("src/x/a.cpp",
                  scan_source("log(\"relaxed: not a justification\");\n"
                              "hits.fetch_add(1, std::memory_order_relaxed);\n"));
  std::vector<Violation> out;
  check_relaxed_order_justified(ctx, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "R8");
  EXPECT_EQ(out[0].line, 2u);
}

TEST(TextRules, RelaxedInStringIsNotAnAtomicOp) {
  FileContext ctx("src/x/a.cpp",
                  scan_source("log(\"uses std::memory_order_relaxed internally\");\n"));
  std::vector<Violation> out;
  check_relaxed_order_justified(ctx, out);
  EXPECT_TRUE(out.empty());
}

// ----------------------------------------------- R17 reactor confinement

TEST(TextRules, SocketSyscallOutsideReactorIsR17) {
  FileContext ctx("src/serve/api.cpp",
                  scan_source("void f(int fd) {\n"
                              "  char b[8];\n"
                              "  ::recv(fd, b, sizeof(b), 0);\n"
                              "  ::send(fd, b, sizeof(b), 0);\n"
                              "}\n"));
  std::vector<Violation> out;
  check_reactor_syscall_confinement(ctx, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rule, "R17");
  EXPECT_EQ(out[0].line, 3u);
  EXPECT_EQ(out[1].line, 4u);
}

TEST(TextRules, MemberCallsAndIdentifiersAreNotSyscalls) {
  // `queue.accept(...)` is a member call; `epoll_wait_count` is an
  // identifier; `do_send` has the word only as a suffix. None may trip.
  FileContext ctx("src/serve/api.cpp",
                  scan_source("void f(Q& queue, int epoll_wait_count) {\n"
                              "  queue.accept(1);\n"
                              "  this->send(2);\n"
                              "  do_send(epoll_wait_count);\n"
                              "}\n"));
  std::vector<Violation> out;
  check_reactor_syscall_confinement(ctx, out);
  EXPECT_TRUE(out.empty());
}

TEST(TextRules, SyscallInStringOrCommentIsInert) {
  FileContext ctx("src/serve/http.cpp",
                  scan_source("// recv(fd) is the reactor's job\n"
                              "const char* kDoc = \"connect(addr) then send()\";\n"));
  std::vector<Violation> out;
  check_reactor_syscall_confinement(ctx, out);
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------- hot paths

TEST(HotPath, AllocationThrowAndLockAreFlagged) {
  FileContext ctx("src/x/hot.cpp",
                  scan_source("MCB_HOT_PATH void f(int n) {\n"
                              "  auto* p = new int(n);\n"
                              "  if (n < 0) throw n;\n"
                              "  std::lock_guard<std::mutex> g(m);\n"
                              "  (void)p;\n"
                              "}\n"));
  std::vector<Violation> out;
  EXPECT_EQ(check_hot_paths(ctx, out), 1u);
  EXPECT_EQ(count_rule(out, "R10"), 1u);
  EXPECT_EQ(count_rule(out, "R11"), 1u);
  EXPECT_EQ(count_rule(out, "R12"), 1u);
}

TEST(HotPath, MemberGrowthCallsFlaggedBareWordsNot) {
  FileContext ctx("src/x/hot.cpp",
                  scan_source("MCB_HOT_PATH void f(std::vector<int>& v, int x) {\n"
                              "  v.push_back(x);\n"
                              "  push_back(x);\n"  // free function: not container growth
                              "}\n"));
  std::vector<Violation> out;
  check_hot_paths(ctx, out);
  EXPECT_EQ(count_rule(out, "R10"), 1u);
}

TEST(HotPath, UnannotatedFunctionIsNotChecked) {
  FileContext ctx("src/x/cold.cpp",
                  scan_source("void f() { auto* p = new int(1); (void)p; }\n"));
  std::vector<Violation> out;
  EXPECT_EQ(check_hot_paths(ctx, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(HotPath, CtorInitListBracesDoNotEndTheSearch) {
  FileContext ctx("src/x/hot.cpp",
                  scan_source("MCB_HOT_PATH Thing::Thing(int v) noexcept\n"
                              "    : member_{v}, other_(v) {\n"
                              "  auto* p = new int(v);\n"
                              "  (void)p;\n"
                              "}\n"));
  std::vector<Violation> out;
  EXPECT_EQ(check_hot_paths(ctx, out), 1u);
  EXPECT_EQ(count_rule(out, "R10"), 1u);
}

TEST(HotPath, MarkerOnDeclarationIsR16) {
  FileContext ctx("src/x/hot.hpp", scan_source("MCB_HOT_PATH void f(int n);\n"));
  std::vector<Violation> out;
  EXPECT_EQ(check_hot_paths(ctx, out), 0u);
  ASSERT_EQ(count_rule(out, "R16"), 1u);
}

TEST(HotPath, SignatureSuppressionWidensToWholeBody) {
  FileContext ctx("src/x/hot.cpp",
                  scan_source("MCB_HOT_PATH\n"
                              "// mcb-lint: suppress(R10: warm scratch fixture)\n"
                              "void f(std::vector<int>& v) {\n"
                              "  int pad = 0;\n"
                              "  (void)pad;\n"
                              "  v.push_back(1);\n"
                              "}\n"));
  std::vector<Violation> out;
  check_hot_paths(ctx, out);
  ASSERT_EQ(ctx.suppressions.size(), 1u);
  const Suppression& s = ctx.suppressions[0];
  EXPECT_EQ(s.scope_begin, 1u);
  EXPECT_EQ(s.scope_end, 7u);  // closing brace's line
  // The R10 finding (line 6) falls inside the widened scope.
  ASSERT_EQ(count_rule(out, "R10"), 1u);
  EXPECT_GE(out[0].line, s.scope_begin);
  EXPECT_LE(out[0].line, s.scope_end);
}

// ----------------------------------------------------------- suppression

TEST(Suppression, ParsesRuleAndReason) {
  const SourceView view =
      scan_source("int x;  // mcb-lint: suppress(R2: fixture reason here)\n");
  const std::vector<Suppression> parsed = parse_suppressions(view);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_FALSE(parsed[0].malformed);
  EXPECT_EQ(parsed[0].rule, "R2");
  EXPECT_EQ(parsed[0].reason, "fixture reason here");
  EXPECT_EQ(parsed[0].line, 1u);
}

TEST(Suppression, MissingReasonOrUnknownRuleIsMalformed) {
  for (const char* text : {"// mcb-lint: suppress(R2:)\n",
                           "// mcb-lint: suppress(R99: unknown rule)\n",
                           "// mcb-lint: suppress(R2)\n",
                           "// mcb-lint: sup-press(R2: typo verb)\n"}) {
    const std::vector<Suppression> parsed = parse_suppressions(scan_source(text));
    ASSERT_EQ(parsed.size(), 1u) << text;
    EXPECT_TRUE(parsed[0].malformed) << text;
  }
}

TEST(Suppression, QuotedSuppressionTextInCodeIsInert) {
  const SourceView view =
      scan_source("auto s = \"// mcb-lint: suppress(R2: inside a string)\";\n");
  EXPECT_TRUE(parse_suppressions(view).empty());
}

// -------------------------------------------------------------- baseline

TEST(Baseline, ParsesEntriesAndMatches) {
  const std::vector<BaselineEntry> entries =
      parse_baseline("# comment\nsrc/a.cpp|R2|*\nsrc/b.cpp|R9|stream\nbroken line\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_FALSE(entries[0].malformed);
  EXPECT_TRUE(baseline_matches(entries[0], {"src/a.cpp", 3, "R2", "anything", {}}));
  EXPECT_FALSE(baseline_matches(entries[0], {"src/a.cpp", 3, "R9", "anything", {}}));
  EXPECT_TRUE(baseline_matches(entries[1], {"src/b.cpp", 1, "R9", "direct stream write", {}}));
  EXPECT_FALSE(baseline_matches(entries[1], {"src/b.cpp", 1, "R9", "no match", {}}));
  EXPECT_TRUE(entries[2].malformed);
}

// ----------------------------------------------------------- module graph

TEST(ModuleGraph, DotRenderIsSortedAndDeterministic) {
  ModuleGraph graph;
  graph.add_edge("serve", "util", {"src/serve/a.cpp", 1, "util/x.hpp"});
  graph.add_edge("core", "util", {"src/core/b.cpp", 2, "util/x.hpp"});
  graph.add_edge("core", "ml", {"src/core/b.cpp", 3, "ml/y.hpp"});
  const std::string dot = graph.to_dot();
  const std::size_t core_ml = dot.find("\"core\" -> \"ml\"");
  const std::size_t core_util = dot.find("\"core\" -> \"util\"");
  const std::size_t serve_util = dot.find("\"serve\" -> \"util\"");
  ASSERT_NE(core_ml, std::string::npos);
  ASSERT_NE(core_util, std::string::npos);
  ASSERT_NE(serve_util, std::string::npos);
  EXPECT_LT(core_ml, core_util);
  EXPECT_LT(core_util, serve_util);
}

// --------------------------------------------------------- fixture trees

TEST(Fixtures, LayeringViolationsReported) {
  const LintResult result = lint_fixture("layering_violation");
  ASSERT_FALSE(result.config_error) << result.config_message;
  EXPECT_TRUE(any_message_contains(result.violations, "R13", "back-edge"));
  EXPECT_TRUE(any_message_contains(result.violations, "R13", "peer-layer"));
  EXPECT_TRUE(any_message_contains(result.violations, "R13", "`rogue`"));
  EXPECT_EQ(count_rule(result.violations, "R13"), 3u);
  // The offending include is named so the finding is actionable.
  EXPECT_TRUE(any_message_contains(result.violations, "R13", "serve/api.hpp"));
}

TEST(Fixtures, IncludeCycleReportedWithChain) {
  const LintResult result = lint_fixture("include_cycle");
  ASSERT_FALSE(result.config_error) << result.config_message;
  ASSERT_GE(count_rule(result.violations, "R14"), 1u);
  EXPECT_TRUE(any_message_contains(result.violations, "R14", "src/core/a.hpp"));
  EXPECT_TRUE(any_message_contains(result.violations, "R14", "src/core/b.hpp"));
  EXPECT_TRUE(any_message_contains(result.violations, "R14", "->"));
}

TEST(Fixtures, SuppressionRoundTrip) {
  const LintResult result = lint_fixture("suppression");
  ASSERT_FALSE(result.config_error) << result.config_message;
  // ok.cpp's naked new is excused; stale.cpp's unused suppression is the
  // one and only finding.
  EXPECT_EQ(count_rule(result.violations, "R2"), 0u);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].rule, "R15");
  EXPECT_EQ(result.violations[0].file, "src/util/stale.cpp");
  EXPECT_NE(result.violations[0].message.find("unused"), std::string::npos);
  EXPECT_EQ(result.stats.suppressions_used, 1u);
}

TEST(Fixtures, BaselineAbsorbsAndStaleEntriesSurface) {
  const LintResult result = lint_fixture("baselined", "baseline.txt");
  ASSERT_FALSE(result.config_error) << result.config_message;
  EXPECT_EQ(count_rule(result.violations, "R2"), 0u);  // grandfathered
  ASSERT_EQ(count_rule(result.violations, "R15"), 1u);
  EXPECT_TRUE(any_message_contains(result.violations, "R15", "stale baseline entry"));
  EXPECT_EQ(result.stats.baselined, 1u);

  // Without the baseline the naked new comes back.
  const LintResult bare = lint_fixture("baselined");
  EXPECT_EQ(count_rule(bare.violations, "R2"), 1u);
}

// ------------------------------------------------------- function index

std::vector<FunctionDef> index_source(std::string_view src) {
  FileContext ctx("src/util/t.cpp", scan_source(src));
  std::vector<Violation> sink;
  return index_functions(ctx, sink);
}

const FunctionDef* def_named(const std::vector<FunctionDef>& defs,
                             std::string_view qualified) {
  const auto it = std::find_if(defs.begin(), defs.end(), [&](const FunctionDef& d) {
    return d.qualified_name == qualified;
  });
  return it == defs.end() ? nullptr : &*it;
}

TEST(FunctionIndex, QualifiesMethodsAndOutOfLineDefinitions) {
  const auto defs = index_source(R"cpp(
namespace ns {
struct Widget {
  int inline_method(int v) { return v; }
};
int free_helper() { return 0; }
int Widget::out_of_line(int v) { return v; }
}  // namespace ns
int declared_only();
)cpp");
  EXPECT_NE(def_named(defs, "ns::Widget::inline_method"), nullptr);
  EXPECT_NE(def_named(defs, "ns::free_helper"), nullptr);
  EXPECT_NE(def_named(defs, "ns::Widget::out_of_line"), nullptr);
  EXPECT_EQ(def_named(defs, "declared_only"), nullptr);  // no body, no def
}

TEST(FunctionIndex, InitListMembersAreNotDefinitions) {
  const auto defs = index_source(R"cpp(
struct Widget {
 public:
  Widget() : count_(0), label_("w") {}
  int size_hint() { return count_; }
 private:
  int count_;
  const char* label_;
};
)cpp");
  // The ctor body must not be claimed by its init-list members...
  EXPECT_EQ(def_named(defs, "Widget::count_"), nullptr);
  EXPECT_EQ(def_named(defs, "Widget::label_"), nullptr);
  // ...while the ctor itself and a method right after an access
  // specifier both still index.
  EXPECT_NE(def_named(defs, "Widget::Widget"), nullptr);
  EXPECT_NE(def_named(defs, "Widget::size_hint"), nullptr);
}

TEST(FunctionIndex, TemplatesOperatorsAndLambdasIndex) {
  const auto defs = index_source(R"cpp(
template <typename T>
T twice(T value) { return value + value; }
struct Id { int v; };
bool operator==(const Id& a, const Id& b) { return a.v == b.v; }
int outer() {
  auto hop = [&] { return helper_call(); };
  return hop();
}
)cpp");
  EXPECT_NE(def_named(defs, "twice"), nullptr);
  const FunctionDef* eq = def_named(defs, "operator==");
  ASSERT_NE(eq, nullptr);
  EXPECT_TRUE(eq->returns_bool);
  // The lambda is not a definition: its call belongs to `outer`.
  const FunctionDef* outer = def_named(defs, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_TRUE(std::any_of(outer->calls.begin(), outer->calls.end(),
                          [](const CallSite& c) { return c.name == "helper_call"; }));
}

TEST(FunctionIndex, ControlFlowHeadsAreNotDefinitions) {
  const auto defs = index_source(R"cpp(
int use(const Opt& o) {
  if (o.has_value()) { return 1; }
  while (o.pending()) { break; }
  return 0;
}
)cpp");
  // `if (o.has_value()) {` must not index a definition named has_value
  // whose "body" is the if-block.
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs.front().qualified_name, "use");
}

TEST(CallGraph, StdVocabularyCallsAreNotLinked) {
  FunctionIndex index;
  std::vector<Violation> sink;
  const FileContext a("src/util/a.cpp", scan_source(R"cpp(
namespace m {
struct Model {
  bool load(int v) { return v > 0; }
};
void refresh_cache() {}
}  // namespace m
)cpp"));
  const FileContext b("src/util/b.cpp", scan_source(R"cpp(
namespace m {
void tick(Model& obj) {
  obj.load(1);
  refresh_cache();
}
}  // namespace m
)cpp"));
  index.add_file(a, 0, sink);
  index.add_file(b, 1, sink);
  const CallGraph graph(index);

  EXPECT_TRUE(CallGraph::ambiguous_vocabulary("load"));
  EXPECT_TRUE(CallGraph::ambiguous_vocabulary("push_back"));
  EXPECT_FALSE(CallGraph::ambiguous_vocabulary("refresh_cache"));

  const FunctionDef* tick = def_named(index.defs, "m::tick");
  ASSERT_NE(tick, nullptr);
  const std::size_t tick_id = static_cast<std::size_t>(tick - index.defs.data());
  // `obj.load(1)` is std vocabulary and stays unlinked; refresh_cache links.
  ASSERT_EQ(graph.edges_of(tick_id).size(), 1u);
  EXPECT_EQ(index.defs[graph.edges_of(tick_id).front().callee].qualified_name,
            "m::refresh_cache");
  // R21's relaxed resolution still sees the bool-returning load.
  const auto relaxed = graph.resolve({"load", 0, true}, false);
  ASSERT_EQ(relaxed.size(), 1u);
  EXPECT_EQ(index.defs[relaxed.front()].qualified_name, "m::Model::load");
}

// ------------------------------------------- whole-program rule fixtures

TEST(Fixtures, TransitiveHotAllocationReportedWithChain) {
  const LintResult result = lint_fixture("hot_chain");
  ASSERT_FALSE(result.config_error);
  ASSERT_EQ(count_rule(result.violations, "R18"), 1u);
  const auto it =
      std::find_if(result.violations.begin(), result.violations.end(),
                   [](const Violation& v) { return v.rule == "R18"; });
  // The allocation sits two calls below the hot root and the finding
  // carries the whole chain.
  EXPECT_NE(it->message.find("hot_root -> middle -> leaf_allocates"),
            std::string::npos);
  ASSERT_EQ(it->chain.size(), 4u);
  EXPECT_EQ(it->chain.front().note, "fix::hot_root (root)");
  EXPECT_EQ(it->chain.back().line, it->line);
  // The identical allocation behind MCB_HOT_PATH_BOUNDARY stays silent.
  EXPECT_FALSE(
      any_message_contains(result.violations, "R18", "hot_root_with_boundary"));
}

TEST(Fixtures, ReactorBlockingReportedAndBoundaryCuts) {
  const LintResult result = lint_fixture("reactor_block");
  ASSERT_EQ(count_rule(result.violations, "R19"), 1u);
  EXPECT_TRUE(any_message_contains(result.violations, "R19",
                                   "reactor_tick -> guarded_update"));
  // The same mutex behind MCB_REACTOR_BOUNDARY runs on the pool.
  EXPECT_FALSE(any_message_contains(result.violations, "R19", "locked_on_the_pool"));
  EXPECT_FALSE(any_message_contains(result.violations, "R19", "handle_event"));
}

TEST(Fixtures, LockOrderInversionReportedWithWitnesses) {
  const LintResult result = lint_fixture("lock_inversion");
  ASSERT_EQ(count_rule(result.violations, "R20"), 1u);
  const auto it =
      std::find_if(result.violations.begin(), result.violations.end(),
                   [](const Violation& v) { return v.rule == "R20"; });
  EXPECT_NE(it->message.find("fix::Store::index_mutex"), std::string::npos);
  EXPECT_NE(it->message.find("fix::Store::blob_mutex"), std::string::npos);
  EXPECT_NE(it->message.find("witnesses"), std::string::npos);
  // One hold→acquire witness pair per direction of the cycle.
  ASSERT_EQ(it->chain.size(), 4u);
}

TEST(Fixtures, DiscardedStatusReportedOnceNegativesSilent) {
  const LintResult result = lint_fixture("discarded_status");
  ASSERT_EQ(count_rule(result.violations, "R21"), 1u);
  const auto it =
      std::find_if(result.violations.begin(), result.violations.end(),
                   [](const Violation& v) { return v.rule == "R21"; });
  EXPECT_NE(it->message.find("try_reserve_slot"), std::string::npos);
  // Only the bare statement: `(void)` and `if (!...)` both count as handled.
  EXPECT_EQ(it->line, 10u);
}

TEST(Fixtures, SignalMachineryConfinedToThePerfModule) {
  const LintResult result = lint_fixture("signal_confinement");
  ASSERT_FALSE(result.config_error);
  // src/core: sigaction + timer_create + backtrace, each confined.
  // src/obs/perf: backtrace_symbols inside the bad handler body. The
  // member call, the quoted spelling, and the machinery in arm() (the
  // owning module) all stay silent.
  EXPECT_EQ(count_rule(result.violations, "R22"), 4u);
  EXPECT_TRUE(any_message_contains(result.violations, "R22",
                                   "sigaction()` outside src/obs/perf"));
  EXPECT_TRUE(any_message_contains(result.violations, "R22",
                                   "timer_create()` outside src/obs/perf"));
  EXPECT_TRUE(any_message_contains(result.violations, "R22",
                                   "backtrace()` outside src/obs/perf"));
  for (const Violation& v : result.violations) {
    if (v.rule == "R22" && v.message.find("outside src/obs/perf") != std::string::npos) {
      EXPECT_EQ(v.file, "src/core/rogue_signals.cpp");
    }
  }
}

TEST(Fixtures, SignalHandlerBodyScanAndDeclarationMisuse) {
  const LintResult result = lint_fixture("signal_confinement");
  // bad_handler symbolizes in async-signal context; good_handler's
  // atomics + pre-warmed backtrace() pass clean.
  EXPECT_TRUE(any_message_contains(result.violations, "R22",
                                   "backtrace_symbols mallocs inside "
                                   "MCB_SIGNAL_HANDLER `bad_handler`"));
  EXPECT_FALSE(any_message_contains(result.violations, "R22", "good_handler"));
  // The marker on a declaration guards nothing (R16, shared grammar
  // with MCB_HOT_PATH).
  EXPECT_TRUE(any_message_contains(result.violations, "R16",
                                   "MCB_SIGNAL_HANDLER on a declaration of "
                                   "`declared_only`"));
  EXPECT_EQ(result.stats.signal_handlers, 2u);
}

TEST(Fixtures, DriverRecordsPassTimingsAndGraphStats) {
  const LintResult result = lint_fixture("hot_chain");
  EXPECT_GT(result.stats.functions_indexed, 0u);
  EXPECT_GT(result.stats.call_edges, 0u);
  const auto ran = [&](std::string_view name) {
    return std::any_of(result.stats.passes.begin(), result.stats.passes.end(),
                       [&](const PassTiming& p) { return p.name == name; });
  };
  EXPECT_TRUE(ran("load+tokenize"));
  EXPECT_TRUE(ran("function index"));
  EXPECT_TRUE(ran("call graph + R18-R21"));
  EXPECT_NE(result.call_graph_dot.find("digraph"), std::string::npos);
}

// ------------------------------------------------------- report back-ends

TEST(Report, TextRendersChainSubLines) {
  const LintResult result = lint_fixture("hot_chain");
  std::ostringstream text;
  print_text(text, result.violations);
  EXPECT_NE(text.str().find("    1. fix::hot_root (root) (src/util/chain.cpp:17)"),
            std::string::npos);
  EXPECT_NE(text.str().find("operator new allocates (R10)"), std::string::npos);
}

TEST(Report, SarifMatchesGoldenSnapshot) {
  const LintResult result = lint_fixture("hot_chain");
  std::ostringstream sarif;
  print_sarif(sarif, result.violations);
  std::ifstream golden(std::string(MCB_LINT_FIXTURE_DIR) +
                       "/hot_chain/expected.sarif");
  ASSERT_TRUE(golden.good());
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(sarif.str(), want.str());
}

TEST(Report, MarkdownCatalogCoversEveryRuleWithAnchors) {
  std::ostringstream md;
  print_rules_markdown(md);
  const std::string text = md.str();
  for (const RuleInfo& info : rule_catalog()) {
    EXPECT_NE(text.find("## " + std::string(info.id)), std::string::npos) << info.id;
  }
  EXPECT_EQ(rule_anchor("R18"), "#r18");
}

TEST(Fixtures, MissingManifestIsAConfigError) {
  LintOptions options;
  options.root = std::string(MCB_LINT_FIXTURE_DIR) + "/suppression";
  options.compiler = "";
  options.layers_file = "no_such_layers.txt";
  options.baseline_file = "";
  const LintResult result = run_lint(options);
  EXPECT_TRUE(result.config_error);
  EXPECT_NE(result.config_message.find("no_such_layers.txt"), std::string::npos);
}

}  // namespace
}  // namespace mcb::lint
