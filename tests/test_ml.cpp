// Tests for the ml module: metrics, feature binning, decision trees,
// random forests, KNN, the lookup baseline and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "ml/baseline.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"
#include "ml/knn.hpp"
#include "ml/knn_regressor.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcb {
namespace {

/// Gaussian two-blob dataset: class 0 around -1, class 1 around +1 in the
/// first `informative` dims; the rest is noise.
struct Blobs {
  FeatureMatrix x;
  std::vector<Label> y;
};

Blobs make_blobs(std::size_t n, std::size_t dims, std::size_t informative, double spread,
                 std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs{FeatureMatrix(n, dims), std::vector<Label>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    const Label label = static_cast<Label>(rng.bounded(2));
    blobs.y[i] = label;
    const double center = label == 0 ? -1.0 : 1.0;
    float* row = blobs.x.row(i);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(d < informative ? rng.normal(center, spread)
                                                  : rng.normal(0.0, 1.0));
    }
  }
  return blobs;
}

double accuracy(std::span<const Label> truth, std::span<const Label> pred) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) correct += truth[i] == pred[i];
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

// -------------------------------------------------------------- metrics

TEST(ConfusionMatrix, HandComputedBinaryMetrics) {
  ConfusionMatrix cm(2);
  // truth 0: 8 correct, 2 predicted as 1. truth 1: 3 correct, 1 as 0.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 3; ++i) cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_EQ(cm.total(), 14U);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 11.0 / 14.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 4.0);
  const double f1_0 = 2.0 * (8.0 / 9.0) * 0.8 / (8.0 / 9.0 + 0.8);
  const double f1_1 = 2.0 * 0.6 * 0.75 / (0.6 + 0.75);
  EXPECT_NEAR(cm.f1(0), f1_0, 1e-12);
  EXPECT_NEAR(cm.f1(1), f1_1, 1e-12);
  EXPECT_NEAR(cm.f1_macro(), (f1_0 + f1_1) / 2.0, 1e-12);
}

TEST(ConfusionMatrix, PerfectPrediction) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 5; ++i) cm.add(i % 2, i % 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1_macro(), 1.0);
}

TEST(ConfusionMatrix, UndefinedClassesScoreZero) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);  // class 1 never appears
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1_macro(), 0.5);  // (1 + 0) / 2
}

TEST(ConfusionMatrix, IgnoresOutOfRangeLabels) {
  ConfusionMatrix cm(2);
  cm.add(-1, 0);
  cm.add(0, 5);
  EXPECT_EQ(cm.total(), 0U);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(1, 0);
  a.merge(b);
  EXPECT_EQ(a.total(), 2U);
  EXPECT_EQ(a.count(1, 0), 1U);
}

TEST(ConfusionMatrix, AddAllAndSupport) {
  ConfusionMatrix cm(2);
  const std::vector<Label> truth{0, 0, 1, 1, 1};
  const std::vector<Label> pred{0, 1, 1, 1, 0};
  cm.add_all(truth, pred);
  EXPECT_EQ(cm.support(0), 2U);
  EXPECT_EQ(cm.support(1), 3U);
}

TEST(ConfusionMatrix, RenderContainsClassNames) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  const std::string out = cm.render({"memory-bound", "compute-bound"});
  EXPECT_NE(out.find("memory-bound"), std::string::npos);
  EXPECT_NE(out.find("f1_macro"), std::string::npos);
}

// --------------------------------------------------------------- binner

TEST(FeatureBinner, DistinctValuesGetDistinctBins) {
  FeatureMatrix x(4, 1);
  x.row(0)[0] = 1.0F;
  x.row(1)[0] = 2.0F;
  x.row(2)[0] = 3.0F;
  x.row(3)[0] = 4.0F;
  FeatureBinner binner;
  binner.fit(x.view());
  EXPECT_EQ(binner.n_bins(0), 4U);
  EXPECT_LT(binner.bin_value(0, 1.0F), binner.bin_value(0, 2.0F));
  EXPECT_LT(binner.bin_value(0, 3.0F), binner.bin_value(0, 4.0F));
}

TEST(FeatureBinner, ConstantFeatureHasSingleBin) {
  FeatureMatrix x(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    x.row(i)[0] = 7.0F;
    x.row(i)[1] = static_cast<float>(i);
  }
  FeatureBinner binner;
  binner.fit(x.view());
  EXPECT_EQ(binner.n_bins(0), 1U);
  EXPECT_EQ(binner.n_bins(1), 5U);
}

TEST(FeatureBinner, AllColumnsIndependent) {
  // Regression test: a shrunken scratch buffer from one column must not
  // leak into the next (this was a real bug — binning collapsed all
  // columns after the first to one bin).
  Rng rng(5);
  FeatureMatrix x(300, 8);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t d = 0; d < 8; ++d) x.row(i)[d] = static_cast<float>(rng.uniform());
  }
  FeatureBinner binner;
  binner.fit(x.view());
  for (std::size_t d = 0; d < 8; ++d) EXPECT_GT(binner.n_bins(d), 100U) << "col " << d;
}

TEST(FeatureBinner, RespectsMaxBins) {
  Rng rng(5);
  FeatureMatrix x(5000, 1);
  for (std::size_t i = 0; i < 5000; ++i) x.row(i)[0] = static_cast<float>(rng.uniform());
  FeatureBinner binner;
  binner.fit(x.view(), 32);
  EXPECT_LE(binner.n_bins(0), 32U);
  EXPECT_GT(binner.n_bins(0), 16U);
}

TEST(FeatureBinner, TransformColumnMajorLayout) {
  FeatureMatrix x(3, 2);
  x.row(0)[0] = 1.0F; x.row(0)[1] = 10.0F;
  x.row(1)[0] = 2.0F; x.row(1)[1] = 20.0F;
  x.row(2)[0] = 3.0F; x.row(2)[1] = 30.0F;
  FeatureBinner binner;
  binner.fit(x.view());
  const auto codes = binner.transform_column_major(x.view());
  ASSERT_EQ(codes.size(), 6U);
  // Column 0 occupies the first 3 entries.
  EXPECT_EQ(codes[0], binner.bin_value(0, 1.0F));
  EXPECT_EQ(codes[3], binner.bin_value(1, 10.0F));
}

TEST(FeatureBinner, SaveLoadRoundTrip) {
  Rng rng(9);
  FeatureMatrix x(200, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t d = 0; d < 3; ++d) x.row(i)[d] = static_cast<float>(rng.normal());
  }
  FeatureBinner binner;
  binner.fit(x.view());
  std::stringstream stream;
  binner.save(stream);
  FeatureBinner loaded;
  ASSERT_TRUE(loaded.load(stream));
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(loaded.n_bins(d), binner.n_bins(d));
    EXPECT_EQ(loaded.bin_value(d, 0.123F), binner.bin_value(d, 0.123F));
  }
}

// ----------------------------------------------------------------- tree

TEST(DecisionTree, LearnsAxisAlignedRule) {
  const Blobs blobs = make_blobs(500, 5, 1, 0.3, 42);
  FeatureBinner binner;
  binner.fit(blobs.x.view());
  const auto codes = binner.transform_column_major(blobs.x.view());
  std::vector<std::uint32_t> rows(500);
  std::iota(rows.begin(), rows.end(), 0U);

  DecisionTree tree;
  Rng rng(1);
  tree.fit(codes.data(), 500, rows, blobs.y, 5, 2, TreeConfig{}, rng);
  EXPECT_TRUE(tree.is_fitted());
  EXPECT_GE(tree.depth(), 1U);

  // Predict on the training data (binned row-major).
  std::size_t correct = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    std::uint8_t row_codes[5];
    for (std::size_t d = 0; d < 5; ++d) {
      row_codes[d] = binner.bin_value(d, blobs.x.view().row(i)[d]);
    }
    correct += tree.predict_binned(row_codes) == blobs.y[i];
  }
  EXPECT_GT(static_cast<double>(correct) / 500.0, 0.95);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  FeatureMatrix x(10, 2);
  std::vector<Label> y(10, 1);  // all one class
  Rng data_rng(3);
  for (std::size_t i = 0; i < 10; ++i) {
    x.row(i)[0] = static_cast<float>(data_rng.uniform());
    x.row(i)[1] = static_cast<float>(data_rng.uniform());
  }
  FeatureBinner binner;
  binner.fit(x.view());
  const auto codes = binner.transform_column_major(x.view());
  std::vector<std::uint32_t> rows(10);
  std::iota(rows.begin(), rows.end(), 0U);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(codes.data(), 10, rows, y, 2, 2, TreeConfig{}, rng);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_EQ(tree.leaf_count(), 1U);
  EXPECT_EQ(tree.depth(), 0U);
}

TEST(DecisionTree, MaxDepthIsRespected) {
  const Blobs blobs = make_blobs(1000, 4, 2, 1.5, 7);
  FeatureBinner binner;
  binner.fit(blobs.x.view());
  const auto codes = binner.transform_column_major(blobs.x.view());
  std::vector<std::uint32_t> rows(1000);
  std::iota(rows.begin(), rows.end(), 0U);
  TreeConfig config;
  config.max_depth = 3;
  DecisionTree tree;
  Rng rng(1);
  tree.fit(codes.data(), 1000, rows, blobs.y, 4, 2, config, rng);
  EXPECT_LE(tree.depth(), 3U);
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  const Blobs blobs = make_blobs(200, 3, 1, 1.0, 11);
  FeatureBinner binner;
  binner.fit(blobs.x.view());
  const auto codes = binner.transform_column_major(blobs.x.view());
  std::vector<std::uint32_t> rows(200);
  std::iota(rows.begin(), rows.end(), 0U);
  TreeConfig config;
  config.min_samples_leaf = 150;  // forces the root to stay a leaf
  DecisionTree tree;
  Rng rng(1);
  tree.fit(codes.data(), 200, rows, blobs.y, 3, 2, config, rng);
  EXPECT_EQ(tree.leaf_count(), 1U);
}

TEST(DecisionTree, EmptyRowsThrows) {
  DecisionTree tree;
  Rng rng(1);
  const std::uint8_t codes = 0;
  std::vector<Label> labels;
  EXPECT_THROW(tree.fit(&codes, 0, {}, labels, 1, 2, TreeConfig{}, rng),
               std::invalid_argument);
}

TEST(DecisionTree, SaveLoadPredictsIdentically) {
  const Blobs blobs = make_blobs(300, 4, 2, 0.5, 21);
  FeatureBinner binner;
  binner.fit(blobs.x.view());
  const auto codes = binner.transform_column_major(blobs.x.view());
  std::vector<std::uint32_t> rows(300);
  std::iota(rows.begin(), rows.end(), 0U);
  DecisionTree tree;
  Rng rng(2);
  tree.fit(codes.data(), 300, rows, blobs.y, 4, 2, TreeConfig{}, rng);

  std::stringstream stream;
  tree.save(stream);
  DecisionTree loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < 300; ++i) {
    std::uint8_t row_codes[4];
    for (std::size_t d = 0; d < 4; ++d) {
      row_codes[d] = binner.bin_value(d, blobs.x.view().row(i)[d]);
    }
    EXPECT_EQ(loaded.predict_binned(row_codes), tree.predict_binned(row_codes));
  }
}

// ------------------------------------------------------------------ KNN

TEST(Knn, ExactNeighborRecovery) {
  // k = 1 on well-separated points returns the identical training row.
  FeatureMatrix x(4, 2);
  x.row(0)[0] = 0.0F; x.row(0)[1] = 0.0F;
  x.row(1)[0] = 10.0F; x.row(1)[1] = 0.0F;
  x.row(2)[0] = 0.0F; x.row(2)[1] = 10.0F;
  x.row(3)[0] = 10.0F; x.row(3)[1] = 10.0F;
  const std::vector<Label> y{0, 1, 0, 1};
  KnnConfig config;
  config.k = 1;
  KnnClassifier knn(config);
  knn.fit(x.view(), y);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto neighbors = knn.kneighbors(x.view().row(i));
    ASSERT_EQ(neighbors.size(), 1U);
    EXPECT_EQ(neighbors[0], i);
  }
}

TEST(Knn, MajorityVote) {
  // 3 nearby class-1 points vs 2 slightly closer class-0 points, k = 5.
  FeatureMatrix x(5, 1);
  x.row(0)[0] = 0.9F;  // class 0
  x.row(1)[0] = 1.1F;  // class 0
  x.row(2)[0] = 1.5F;  // class 1
  x.row(3)[0] = 1.6F;  // class 1
  x.row(4)[0] = 1.7F;  // class 1
  const std::vector<Label> y{0, 0, 1, 1, 1};
  KnnClassifier knn;  // k = 5
  knn.fit(x.view(), y);
  FeatureMatrix query(1, 1);
  query.row(0)[0] = 1.0F;
  EXPECT_EQ(knn.predict(query.view())[0], 1);  // 3 votes beat 2
}

TEST(Knn, TieBreaksTowardLowerClass) {
  FeatureMatrix x(4, 1);
  for (int i = 0; i < 4; ++i) x.row(i)[0] = static_cast<float>(i);
  const std::vector<Label> y{0, 1, 0, 1};
  KnnConfig config;
  config.k = 4;
  KnnClassifier knn(config);
  knn.fit(x.view(), y);
  FeatureMatrix query(1, 1);
  query.row(0)[0] = 1.5F;
  EXPECT_EQ(knn.predict(query.view())[0], 0);
}

TEST(Knn, KLargerThanTrainingSet) {
  FeatureMatrix x(2, 1);
  x.row(0)[0] = 0.0F;
  x.row(1)[0] = 1.0F;
  KnnConfig config;
  config.k = 10;
  KnnClassifier knn(config);
  knn.fit(x.view(), {std::vector<Label>{1, 1}});
  FeatureMatrix query(1, 1);
  query.row(0)[0] = 0.5F;
  EXPECT_EQ(knn.predict(query.view())[0], 1);
}

TEST(Knn, MinkowskiP1MatchesManhattanRanking) {
  // Point A at (0, 3), B at (2, 2): from origin, L2 ranks A closer
  // (9 < 8? no: A=9, B=8 -> B closer); L1 ranks A (3) closer than B (4).
  FeatureMatrix x(2, 2);
  x.row(0)[0] = 0.0F; x.row(0)[1] = 3.0F;  // A, class 0
  x.row(1)[0] = 2.0F; x.row(1)[1] = 2.0F;  // B, class 1
  const std::vector<Label> y{0, 1};
  FeatureMatrix query(1, 2);  // origin

  KnnConfig l2;
  l2.k = 1;
  KnnClassifier knn_l2(l2);
  knn_l2.fit(x.view(), y);
  EXPECT_EQ(knn_l2.predict(query.view())[0], 1);

  KnnConfig l1;
  l1.k = 1;
  l1.minkowski_p = 1.0;
  KnnClassifier knn_l1(l1);
  knn_l1.fit(x.view(), y);
  EXPECT_EQ(knn_l1.predict(query.view())[0], 0);
}

TEST(Knn, BlobsGeneralization) {
  const Blobs train = make_blobs(400, 8, 3, 0.5, 31);
  const Blobs test = make_blobs(100, 8, 3, 0.5, 32);
  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  const auto pred = knn.predict(test.x.view());
  EXPECT_GT(accuracy(test.y, pred), 0.9);
}

TEST(Knn, PredictBeforeFitThrows) {
  KnnClassifier knn;
  FeatureMatrix x(1, 1);
  EXPECT_THROW(knn.predict(x.view()), std::logic_error);
}

TEST(Knn, DimensionMismatchThrows) {
  KnnClassifier knn;
  FeatureMatrix x(2, 3);
  knn.fit(x.view(), {std::vector<Label>{0, 1}});
  FeatureMatrix bad(1, 2);
  EXPECT_THROW(knn.predict(bad.view()), std::invalid_argument);
}

TEST(Knn, ParallelPredictionMatchesSerial) {
  const Blobs train = make_blobs(200, 6, 2, 0.8, 41);
  const Blobs test = make_blobs(64, 6, 2, 0.8, 43);
  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  ThreadPool pool(4);
  EXPECT_EQ(knn.predict(test.x.view(), &pool), knn.predict(test.x.view(), nullptr));
}

TEST(Knn, SaveLoadRoundTrip) {
  const Blobs train = make_blobs(150, 4, 2, 0.5, 51);
  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  std::stringstream stream;
  ASSERT_TRUE(knn.save(stream));
  KnnClassifier loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.train_size(), knn.train_size());
  EXPECT_EQ(loaded.n_classes(), knn.n_classes());
  const Blobs test = make_blobs(40, 4, 2, 0.5, 52);
  EXPECT_EQ(loaded.predict(test.x.view()), knn.predict(test.x.view()));
}

TEST(Knn, LoadRejectsGarbage) {
  std::stringstream stream("not a model");
  KnnClassifier knn;
  EXPECT_FALSE(knn.load(stream));
}

// ------------------------------------------------------------ forest

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  const Blobs train = make_blobs(800, 12, 3, 1.2, 61);
  const Blobs test = make_blobs(400, 12, 3, 1.2, 62);

  RandomForestConfig single_config;
  single_config.n_trees = 1;
  RandomForestClassifier single(single_config);
  single.fit(train.x.view(), train.y);

  RandomForestConfig forest_config;
  forest_config.n_trees = 60;
  RandomForestClassifier forest(forest_config);
  forest.fit(train.x.view(), train.y);

  const double single_acc = accuracy(test.y, single.predict(test.x.view()));
  const double forest_acc = accuracy(test.y, forest.predict(test.x.view()));
  EXPECT_GE(forest_acc, single_acc);
  EXPECT_GT(forest_acc, 0.8);
}

TEST(RandomForest, DeterministicForSeed) {
  const Blobs train = make_blobs(300, 6, 2, 0.8, 71);
  const Blobs test = make_blobs(50, 6, 2, 0.8, 72);
  RandomForestConfig config;
  config.n_trees = 20;
  config.seed = 99;
  RandomForestClassifier a(config), b(config);
  a.fit(train.x.view(), train.y);
  b.fit(train.x.view(), train.y);
  EXPECT_EQ(a.predict(test.x.view()), b.predict(test.x.view()));
}

TEST(RandomForest, DifferentSeedsDifferentForests) {
  const Blobs train = make_blobs(300, 6, 2, 1.5, 73);
  RandomForestConfig a_config, b_config;
  a_config.n_trees = b_config.n_trees = 5;
  a_config.seed = 1;
  b_config.seed = 2;
  RandomForestClassifier a(a_config), b(b_config);
  a.fit(train.x.view(), train.y);
  b.fit(train.x.view(), train.y);
  // Probabilities should differ on at least some test points.
  const Blobs test = make_blobs(50, 6, 2, 1.5, 74);
  EXPECT_NE(a.predict_proba(test.x.view()), b.predict_proba(test.x.view()));
}

TEST(RandomForest, ProbabilitiesSumToOne) {
  const Blobs train = make_blobs(200, 4, 2, 0.5, 81);
  RandomForestConfig config;
  config.n_trees = 10;
  RandomForestClassifier forest(config);
  forest.fit(train.x.view(), train.y);
  const auto probs = forest.predict_proba(train.x.view());
  for (std::size_t i = 0; i < train.x.rows(); ++i) {
    const double sum = probs[i * 2] + probs[i * 2 + 1];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForest, ParallelTrainingMatchesSerial) {
  const Blobs train = make_blobs(300, 6, 2, 0.8, 91);
  const Blobs test = make_blobs(60, 6, 2, 0.8, 92);
  RandomForestConfig config;
  config.n_trees = 12;
  RandomForestClassifier serial(config), parallel(config);
  serial.fit(train.x.view(), train.y);
  ThreadPool pool(4);
  parallel.set_training_pool(&pool);
  parallel.fit(train.x.view(), train.y);
  EXPECT_EQ(serial.predict(test.x.view()), parallel.predict(test.x.view()));
}

TEST(RandomForest, MulticlassSupport) {
  Rng rng(13);
  FeatureMatrix x(300, 2);
  std::vector<Label> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const Label label = static_cast<Label>(rng.bounded(3));
    y[i] = label;
    x.row(i)[0] = static_cast<float>(rng.normal(label * 5.0, 0.5));
    x.row(i)[1] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  RandomForestConfig config;
  config.n_trees = 15;
  RandomForestClassifier forest(config);
  forest.fit(x.view(), y);
  EXPECT_EQ(forest.n_classes(), 3U);
  EXPECT_GT(accuracy(y, forest.predict(x.view())), 0.95);
}

TEST(RandomForest, SaveLoadRoundTrip) {
  const Blobs train = make_blobs(250, 5, 2, 0.7, 101);
  RandomForestConfig config;
  config.n_trees = 8;
  RandomForestClassifier forest(config);
  forest.fit(train.x.view(), train.y);
  std::stringstream stream;
  ASSERT_TRUE(forest.save(stream));
  RandomForestClassifier loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.tree_count(), 8U);
  const Blobs test = make_blobs(60, 5, 2, 0.7, 102);
  EXPECT_EQ(loaded.predict(test.x.view()), forest.predict(test.x.view()));
}

TEST(RandomForest, LoadRejectsWrongKind) {
  const Blobs train = make_blobs(50, 3, 1, 0.5, 111);
  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  std::stringstream stream;
  knn.save(stream);
  RandomForestClassifier forest;
  EXPECT_FALSE(forest.load(stream));
}

TEST(ModelFiles, TruncatedStreamsFailCleanly) {
  // Failure injection: every strict prefix of a serialized model must be
  // rejected by load() without crashing or partially initializing.
  const Blobs train = make_blobs(80, 4, 2, 0.5, 121);
  RandomForestConfig config;
  config.n_trees = 3;
  RandomForestClassifier forest(config);
  forest.fit(train.x.view(), train.y);
  std::stringstream full;
  ASSERT_TRUE(forest.save(full));
  const std::string bytes = full.str();
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    std::stringstream cut(bytes.substr(0, static_cast<std::size_t>(
                                              frac * static_cast<double>(bytes.size()))));
    RandomForestClassifier loaded;
    EXPECT_FALSE(loaded.load(cut)) << "fraction " << frac;
  }

  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  std::stringstream knn_full;
  ASSERT_TRUE(knn.save(knn_full));
  const std::string knn_bytes = knn_full.str();
  std::stringstream knn_cut(knn_bytes.substr(0, knn_bytes.size() / 2));
  KnnClassifier knn_loaded;
  EXPECT_FALSE(knn_loaded.load(knn_cut));
}

TEST(ModelFiles, UnfittedKnnRefusesToSave) {
  // Saving an unfitted model must fail up front, not write a header for
  // a model that load() would then reject (or worse, accept as empty).
  KnnClassifier knn;
  std::stringstream out;
  EXPECT_FALSE(knn.save(out));
  EXPECT_TRUE(out.str().empty());
}

TEST(ModelFiles, UnfittedRandomForestRefusesToSave) {
  RandomForestClassifier forest;
  std::stringstream out;
  EXPECT_FALSE(forest.save(out));
  EXPECT_TRUE(out.str().empty());
}

TEST(ModelFiles, BitFlippedMagicRejected) {
  const Blobs train = make_blobs(40, 3, 1, 0.5, 131);
  KnnClassifier knn;
  knn.fit(train.x.view(), train.y);
  std::stringstream out;
  knn.save(out);
  std::string bytes = out.str();
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);  // corrupt the magic
  std::stringstream in(bytes);
  KnnClassifier loaded;
  EXPECT_FALSE(loaded.load(in));
}

// ------------------------- hardened deserialization (crafted streams)
//
// These streams are built field by field with the same io primitives the
// models use, so they are byte-identical to what save() emits except for
// the one poisoned field under test. Every rejected stream must leave
// the model unfitted (no half-loaded state).

std::string craft_knn_classifier(std::uint64_t k, double p, std::uint64_t dim,
                                 std::uint64_t n_classes, const std::vector<float>& data,
                                 const std::vector<Label>& labels) {
  std::stringstream out;
  io::write_header(out, io::kKindKnn);
  io::write_pod(out, k);
  io::write_pod(out, p);
  io::write_pod(out, dim);
  io::write_pod(out, n_classes);
  io::write_vec(out, data);
  io::write_vec(out, labels);
  return out.str();
}

std::string craft_knn_regressor(std::uint64_t k, std::uint8_t weighted, std::uint64_t dim,
                                const std::vector<float>& data,
                                const std::vector<double>& targets) {
  std::stringstream out;
  io::write_header(out, io::kKindKnnRegressor);
  io::write_pod(out, k);
  io::write_pod(out, weighted);
  io::write_pod(out, dim);
  io::write_vec(out, data);
  io::write_vec(out, targets);
  return out.str();
}

TEST(ModelHardening, CraftedClassifierStreamMatchesSaveFormat) {
  // Canary: if the crafting helper drifts from the real on-disk layout,
  // every rejection test below would pass vacuously. A fully valid
  // crafted stream must load and predict.
  const std::vector<float> data{0.0F, 0.0F, 1.0F, 1.0F};
  const std::vector<Label> labels{0, 1};
  std::stringstream in(craft_knn_classifier(1, 2.0, 2, 2, data, labels));
  KnnClassifier knn;
  ASSERT_TRUE(knn.load(in));
  EXPECT_EQ(knn.train_size(), 2U);
  const std::vector<float> query{0.1F, -0.1F};
  FeatureView view{query.data(), 1, 2};
  EXPECT_EQ(knn.predict(view)[0], 0);
}

TEST(ModelHardening, ClassifierRejectsKZero) {
  // The ctor clamps k == 0 but load() bypasses the ctor; an accepted
  // k == 0 builds an empty TopK whose dist_.back() is UB.
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<Label> labels{0, 1};
  std::stringstream in(craft_knn_classifier(0, 2.0, 1, 2, data, labels));
  KnnClassifier knn;
  EXPECT_FALSE(knn.load(in));
  EXPECT_FALSE(knn.is_fitted());
}

TEST(ModelHardening, ClassifierRejectsNegativeLabel) {
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<Label> labels{0, -1};  // OOB write in vote()
  std::stringstream in(craft_knn_classifier(1, 2.0, 1, 2, data, labels));
  KnnClassifier knn;
  EXPECT_FALSE(knn.load(in));
  EXPECT_FALSE(knn.is_fitted());
}

TEST(ModelHardening, ClassifierRejectsLabelBeyondNClasses) {
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<Label> labels{0, 2};  // == n_classes → votes[2] OOB
  std::stringstream in(craft_knn_classifier(1, 2.0, 1, 2, data, labels));
  KnnClassifier knn;
  EXPECT_FALSE(knn.load(in));
  EXPECT_FALSE(knn.is_fitted());
}

TEST(ModelHardening, ClassifierRejectsBadMinkowskiP) {
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<Label> labels{0, 1};
  for (const double p : {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(), 0.5, -2.0, 0.0}) {
    std::stringstream in(craft_knn_classifier(1, p, 1, 2, data, labels));
    KnnClassifier knn;
    EXPECT_FALSE(knn.load(in)) << "p = " << p;
  }
}

TEST(ModelHardening, ClassifierRejectsZeroClassesAndHugeFields) {
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<Label> labels{0, 1};
  {
    std::stringstream in(craft_knn_classifier(1, 2.0, 1, 0, data, labels));
    KnnClassifier knn;
    EXPECT_FALSE(knn.load(in)) << "n_classes == 0";
  }
  {
    // A giant n_classes would make vote() allocate a counter per class.
    std::stringstream in(craft_knn_classifier(1, 2.0, 1, 1ULL << 40, data, labels));
    KnnClassifier knn;
    EXPECT_FALSE(knn.load(in)) << "n_classes == 2^40";
  }
  {
    // A giant dim fails the rows * dim == data check only modulo 2^64;
    // the explicit cap rejects it before any arithmetic can wrap.
    std::stringstream in(craft_knn_classifier(1, 2.0, 1ULL << 40, 2, data, labels));
    KnnClassifier knn;
    EXPECT_FALSE(knn.load(in)) << "dim == 2^40";
  }
}

TEST(ModelHardening, ClassifierRejectsEmptyTrainingSet) {
  std::stringstream in(craft_knn_classifier(1, 2.0, 1, 2, {}, {}));
  KnnClassifier knn;
  EXPECT_FALSE(knn.load(in));
  EXPECT_FALSE(knn.is_fitted());
}

TEST(ModelHardening, RegressorCraftedStreamMatchesSaveFormat) {
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<double> targets{10.0, 20.0};
  std::stringstream in(craft_knn_regressor(1, 0, 1, data, targets));
  KnnRegressor reg;
  ASSERT_TRUE(reg.load(in));
  const std::vector<float> query{0.1F};
  EXPECT_DOUBLE_EQ(reg.predict_one(query), 10.0);
}

TEST(ModelHardening, RegressorRejectsKZero) {
  // k == 0 in the regressor is both the empty-TopK UB and a division by
  // zero in the unweighted average.
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<double> targets{10.0, 20.0};
  std::stringstream in(craft_knn_regressor(0, 0, 1, data, targets));
  KnnRegressor reg;
  EXPECT_FALSE(reg.load(in));
  EXPECT_FALSE(reg.is_fitted());
}

TEST(ModelHardening, RegressorRejectsNonCanonicalBoolByte) {
  // The weighted flag is (de)serialized as uint8_t precisely so load can
  // reject bytes other than 0/1 instead of loading them into a bool (UB).
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<double> targets{10.0, 20.0};
  std::stringstream in(craft_knn_regressor(1, 2, 1, data, targets));
  KnnRegressor reg;
  EXPECT_FALSE(reg.load(in));
}

TEST(ModelHardening, RegressorAndFlatForestKindsNoLongerCollide) {
  // KnnRegressor used to keep a private kind tag of 4 — the same value
  // as kKindFlatForest — so each model's loader would happily start
  // parsing the other's payload. Both directions must now be rejected
  // at the header.
  const std::vector<float> data{0.0F, 1.0F};
  const std::vector<double> targets{10.0, 20.0};
  KnnRegressor reg;
  {
    std::stringstream stream(craft_knn_regressor(1, 0, 1, data, targets));
    ASSERT_TRUE(reg.load(stream));
  }
  std::stringstream reg_bytes;
  ASSERT_TRUE(reg.save(reg_bytes));
  FlatForest forest;
  EXPECT_FALSE(forest.load(reg_bytes));
}

TEST(ModelHardening, RegressorTruncatedStreamsFailCleanly) {
  std::vector<float> data(64);
  std::vector<double> targets(32);
  for (std::size_t i = 0; i < 32; ++i) {
    data[2 * i] = static_cast<float>(i);
    data[2 * i + 1] = static_cast<float>(i) * 0.5F;
    targets[i] = static_cast<double>(i);
  }
  const std::string bytes = craft_knn_regressor(3, 1, 2, data, targets);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::stringstream in(bytes.substr(0, cut));
    KnnRegressor reg;
    EXPECT_FALSE(reg.load(in)) << "cut at " << cut;
    EXPECT_FALSE(reg.is_fitted());
  }
}

TEST(RandomForest, EmptyTrainingThrows) {
  RandomForestClassifier forest;
  FeatureMatrix x(0, 3);
  EXPECT_THROW(forest.fit(x.view(), {}), std::invalid_argument);
}

// --------------------------------------------------------------- baseline

TEST(LookupBaseline, ExactKeyLookup) {
  LookupBaseline baseline;
  const std::vector<LookupBaseline::Key> keys{{"wrf", 48}, {"gemm", 96}, {"wrf", 48}};
  const std::vector<Label> labels{0, 1, 0};
  baseline.fit(keys, labels);
  EXPECT_EQ(baseline.table_size(), 2U);
  EXPECT_EQ(baseline.predict_one({"wrf", 48}), 0);
  EXPECT_EQ(baseline.predict_one({"gemm", 96}), 1);
}

TEST(LookupBaseline, CoresDisambiguateSameName) {
  LookupBaseline baseline;
  const std::vector<LookupBaseline::Key> keys{{"app", 48}, {"app", 96}};
  const std::vector<Label> labels{0, 1};
  baseline.fit(keys, labels);
  EXPECT_EQ(baseline.predict_one({"app", 48}), 0);
  EXPECT_EQ(baseline.predict_one({"app", 96}), 1);
}

TEST(LookupBaseline, MajorityWithinKey) {
  LookupBaseline baseline;
  std::vector<LookupBaseline::Key> keys;
  std::vector<Label> labels;
  for (int i = 0; i < 5; ++i) {
    keys.push_back({"mixed", 48});
    labels.push_back(i < 3 ? 1 : 0);
  }
  baseline.fit(keys, labels);
  EXPECT_EQ(baseline.predict_one({"mixed", 48}), 1);
}

TEST(LookupBaseline, UnseenKeyFallsBackToGlobalMajority) {
  LookupBaseline baseline;
  const std::vector<LookupBaseline::Key> keys{{"a", 1}, {"b", 1}, {"c", 1}};
  const std::vector<Label> labels{0, 0, 1};
  baseline.fit(keys, labels);
  EXPECT_EQ(baseline.predict_one({"unseen", 99}), 0);
  const std::vector<LookupBaseline::Key> queries{{"a", 1}, {"zzz", 7}};
  baseline.predict(queries);
  EXPECT_DOUBLE_EQ(baseline.last_fallback_rate(), 0.5);
}

TEST(LookupBaseline, SaveLoadRoundTrip) {
  LookupBaseline baseline;
  const std::vector<LookupBaseline::Key> keys{{"x", 1}, {"y", 2}};
  const std::vector<Label> labels{1, 0};
  baseline.fit(keys, labels);
  std::stringstream stream;
  ASSERT_TRUE(baseline.save(stream));
  LookupBaseline loaded;
  ASSERT_TRUE(loaded.load(stream));
  EXPECT_EQ(loaded.table_size(), 2U);
  EXPECT_EQ(loaded.predict_one({"x", 1}), 1);
  EXPECT_EQ(loaded.predict_one({"y", 2}), 0);
}

TEST(LookupBaseline, RejectsOutOfRangeLabels) {
  LookupBaseline baseline(2);
  const std::vector<LookupBaseline::Key> keys{{"a", 1}};
  EXPECT_THROW(baseline.fit(keys, {std::vector<Label>{5}}), std::invalid_argument);
}

// -------------------------------------------- property tests (TEST_P)

struct ForestParams {
  std::size_t trees;
  std::size_t max_bins;
};

class ForestProperty : public ::testing::TestWithParam<ForestParams> {};

TEST_P(ForestProperty, TrainAccuracyIsHighOnSeparableData) {
  const auto [trees, max_bins] = GetParam();
  const Blobs train = make_blobs(400, 6, 2, 0.3, trees * 1000 + max_bins);
  RandomForestConfig config;
  config.n_trees = trees;
  config.max_bins = max_bins;
  RandomForestClassifier forest(config);
  forest.fit(train.x.view(), train.y);
  EXPECT_GT(accuracy(train.y, forest.predict(train.x.view())), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Grid, ForestProperty,
                         ::testing::Values(ForestParams{5, 16}, ForestParams{5, 256},
                                           ForestParams{40, 16}, ForestParams{40, 256},
                                           ForestParams{1, 64}));

class KnnKProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnnKProperty, SeparableBlobsStayAccurate) {
  const Blobs train = make_blobs(300, 5, 2, 0.3, 7);
  const Blobs test = make_blobs(100, 5, 2, 0.3, 8);
  KnnConfig config;
  config.k = GetParam();
  KnnClassifier knn(config);
  knn.fit(train.x.view(), train.y);
  EXPECT_GT(accuracy(test.y, knn.predict(test.x.view())), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnKProperty, ::testing::Values(1, 3, 5, 9, 15));

}  // namespace
}  // namespace mcb
