// Tests for the data module: JobRecord CSV round-trips, JobStore
// indexing/queries and the Data Fetcher.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "data/data_fetcher.hpp"
#include "data/job_record.hpp"
#include "data/job_store.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mcb {
namespace {

JobRecord make_job(std::uint64_t id, TimePoint submit, std::int64_t duration = 600) {
  JobRecord job;
  job.job_id = id;
  job.user_name = "u00042";
  job.job_name = "cfd_solve_x" + std::to_string(id % 7);
  job.environment = "lang/tcsds-1.2.38";
  job.nodes_requested = 4;
  job.cores_requested = 192;
  job.frequency = id % 2 == 0 ? FrequencyMode::kNormal : FrequencyMode::kBoost;
  job.submit_time = submit;
  job.start_time = submit + 180;
  job.end_time = job.start_time + duration;
  job.nodes_allocated = 4;
  job.perf2 = 1e12;
  job.perf3 = 2e12;
  job.perf4 = 3e12;
  job.perf5 = 1e12;
  return job;
}

// ------------------------------------------------------------ JobRecord

TEST(JobRecord, DurationIsEndMinusStart) {
  const JobRecord job = make_job(1, 1000, 500);
  EXPECT_EQ(job.duration(), 500);
}

TEST(JobRecord, FrequencyHelpers) {
  EXPECT_EQ(frequency_mhz(FrequencyMode::kNormal), 2000);
  EXPECT_EQ(frequency_mhz(FrequencyMode::kBoost), 2200);
  EXPECT_STREQ(frequency_mode_name(FrequencyMode::kNormal), "normal");
  EXPECT_STREQ(frequency_mode_name(FrequencyMode::kBoost), "boost");
}

TEST(JobRecord, CsvRoundTrip) {
  const JobRecord original = make_job(99, 1'700'000'000);
  const auto fields = job_to_csv(original);
  ASSERT_EQ(fields.size(), job_csv_header().size());

  JobRecord parsed;
  ASSERT_TRUE(job_from_csv(fields, parsed));
  EXPECT_EQ(parsed.job_id, original.job_id);
  EXPECT_EQ(parsed.user_name, original.user_name);
  EXPECT_EQ(parsed.job_name, original.job_name);
  EXPECT_EQ(parsed.environment, original.environment);
  EXPECT_EQ(parsed.nodes_requested, original.nodes_requested);
  EXPECT_EQ(parsed.cores_requested, original.cores_requested);
  EXPECT_EQ(parsed.frequency, original.frequency);
  EXPECT_EQ(parsed.submit_time, original.submit_time);
  EXPECT_EQ(parsed.end_time, original.end_time);
  EXPECT_DOUBLE_EQ(parsed.perf2, original.perf2);
  EXPECT_DOUBLE_EQ(parsed.perf5, original.perf5);
}

TEST(JobRecord, CsvRejectsWrongFieldCount) {
  JobRecord out;
  EXPECT_FALSE(job_from_csv({"1", "2"}, out));
}

TEST(JobRecord, CsvRejectsNonNumeric) {
  auto fields = job_to_csv(make_job(1, 0));
  fields[0] = "not-a-number";
  JobRecord out;
  EXPECT_FALSE(job_from_csv(fields, out));
}

// -------------------------------------------------------------- JobStore

TEST(JobStore, InsertAndFind) {
  JobStore store;
  EXPECT_TRUE(store.insert(make_job(1, 100)));
  EXPECT_TRUE(store.insert(make_job(2, 200)));
  EXPECT_EQ(store.size(), 2U);
  const JobRecord* found = store.find(2);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->job_id, 2U);
  EXPECT_EQ(store.find(99), nullptr);
}

TEST(JobStore, RejectsDuplicateIds) {
  JobStore store;
  EXPECT_TRUE(store.insert(make_job(1, 100)));
  EXPECT_FALSE(store.insert(make_job(1, 999)));
  EXPECT_EQ(store.size(), 1U);
}

TEST(JobStore, QueryByEndTimeRange) {
  JobStore store;
  for (std::uint64_t i = 0; i < 10; ++i) {
    store.insert(make_job(i, static_cast<TimePoint>(i * 1000)));
  }
  // Jobs end at submit + 180 + 600.
  JobQuery q;
  q.field = JobQuery::TimeField::kEndTime;
  q.start_time = 780 + 2000;  // end_time of job 2
  q.end_time = 780 + 5000;    // exclusive of job 5
  const auto result = store.query(q);
  ASSERT_EQ(result.size(), 3U);
  EXPECT_EQ(result[0]->job_id, 2U);
  EXPECT_EQ(result[2]->job_id, 4U);
}

TEST(JobStore, QueryBySubmitTime) {
  JobStore store;
  for (std::uint64_t i = 0; i < 5; ++i) {
    store.insert(make_job(i, static_cast<TimePoint>(100 - i * 10)));  // reverse order
  }
  JobQuery q;
  q.field = JobQuery::TimeField::kSubmitTime;
  q.start_time = 70;
  q.end_time = 101;
  const auto result = store.query(q);
  ASSERT_EQ(result.size(), 4U);
  // Ordered by submit_time ascending.
  EXPECT_EQ(result[0]->submit_time, 70);
  EXPECT_EQ(result[3]->submit_time, 100);
}

TEST(JobStore, QueryWithFilters) {
  JobStore store;
  for (std::uint64_t i = 0; i < 8; ++i) store.insert(make_job(i, 100));
  JobQuery q;
  q.start_time = 0;
  q.end_time = 1'000'000;
  q.frequency = FrequencyMode::kBoost;
  EXPECT_EQ(store.query(q).size(), 4U);  // odd ids
  q.frequency.reset();
  q.user_name = "nobody";
  EXPECT_TRUE(store.query(q).empty());
  q.user_name = "u00042";
  EXPECT_EQ(store.query(q).size(), 8U);
}

TEST(JobStore, EmptyRangeQuery) {
  JobStore store;
  store.insert(make_job(1, 100));
  JobQuery q;
  q.start_time = 1'000'000;
  q.end_time = 2'000'000;
  EXPECT_TRUE(store.query(q).empty());
}

TEST(JobStore, OutOfOrderInsertsAreSorted) {
  JobStore store;
  Rng rng(3);
  std::vector<TimePoint> submits;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto t = static_cast<TimePoint>(rng.bounded(1'000'000));
    submits.push_back(t);
    store.insert(make_job(i, t));
  }
  const auto all = store.all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].end_time, all[i].end_time);
  }
  EXPECT_EQ(store.min_end_time(), all.front().end_time);
  EXPECT_EQ(store.max_end_time(), all.back().end_time);
}

TEST(JobStore, FindSurvivesResorting) {
  JobStore store;
  store.insert(make_job(10, 5000));
  store.insert(make_job(20, 1000));  // out of order -> triggers lazy sort
  const JobRecord* a = store.find(10);
  const JobRecord* b = store.find(20);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->submit_time, 5000);
  EXPECT_EQ(b->submit_time, 1000);
}

TEST(JobStore, InsertAllCountsInsertions) {
  JobStore store;
  std::vector<JobRecord> jobs{make_job(1, 10), make_job(2, 20), make_job(1, 30)};
  EXPECT_EQ(store.insert_all(std::move(jobs)), 2U);
}

TEST(JobStore, CsvSaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "mcb_store_test.csv";
  JobStore store;
  for (std::uint64_t i = 0; i < 50; ++i) {
    store.insert(make_job(i, static_cast<TimePoint>(i * 777)));
  }
  ASSERT_TRUE(store.save_csv(path));

  JobStore loaded;
  std::string error;
  ASSERT_TRUE(loaded.load_csv(path, &error)) << error;
  EXPECT_EQ(loaded.size(), store.size());
  const JobRecord* job = loaded.find(17);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->submit_time, 17 * 777);
  EXPECT_EQ(job->job_name, store.find(17)->job_name);
  std::remove(path.c_str());
}

TEST(JobStore, LoadRejectsMissingFile) {
  JobStore store;
  std::string error;
  EXPECT_FALSE(store.load_csv("/nonexistent/path.csv", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JobStore, LoadRejectsBadHeader) {
  const std::string path = std::filesystem::temp_directory_path() / "mcb_bad_header.csv";
  {
    std::ofstream out(path);
    out << "wrong,header\n1,2\n";
  }
  JobStore store;
  std::string error;
  EXPECT_FALSE(store.load_csv(path, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  std::remove(path.c_str());
}

// Malformed rows must produce a diagnostic naming the offending data row
// — never an abort, exception or silently-partial success.
class JobStoreMalformedCsv : public ::testing::Test {
 protected:
  // Returns the error string from loading `rows` under a valid header.
  static std::string load_error(const std::string& rows) {
    std::string csv = join(job_csv_header(), ",") + "\n" + rows;
    std::istringstream in(csv);
    JobStore store;
    std::string error;
    EXPECT_FALSE(store.load_csv(in, &error));
    EXPECT_FALSE(error.empty());
    return error;
  }

  static std::string valid_row(std::uint64_t id) {
    return join(job_to_csv(make_job(id, 1000)), ",");
  }
};

TEST_F(JobStoreMalformedCsv, TruncatedLine) {
  const std::string error = load_error("1,u00001,name,env,4,192\n");
  EXPECT_NE(error.find("data row 2"), std::string::npos) << error;
}

TEST_F(JobStoreMalformedCsv, QuotedCommaShiftsNothingButShortRowFails) {
  // A quoted comma is one field; dropping the quotes makes 19 fields.
  const std::string good =
      R"(7,"user,name",job,env,4,192,2200,100,280,880,4,0,1,1,1,1,0,1.0)";
  std::istringstream in(join(job_csv_header(), ",") + "\n" + good + "\n");
  JobStore store;
  std::string error;
  ASSERT_TRUE(store.load_csv(in, &error)) << error;
  EXPECT_EQ(store.find(7)->user_name, "user,name");

  const std::string bad =
      "8,user,name,job,env,4,192,2200,100,280,880,4,0,1,1,1,1,0,1.0";
  EXPECT_NE(load_error(bad + "\n").find("data row 2"), std::string::npos);
}

TEST_F(JobStoreMalformedCsv, NonNumericField) {
  const std::string error =
      load_error("9,u,j,e,4,192,2200,100,280,NOT_A_TIME,4,0,1,1,1,1,0,1.0\n");
  EXPECT_NE(error.find("data row 2"), std::string::npos) << error;
}

TEST_F(JobStoreMalformedCsv, DuplicateJobId) {
  const std::string error = load_error(valid_row(5) + "\n" + valid_row(5) + "\n");
  EXPECT_NE(error.find("duplicate job id"), std::string::npos) << error;
  EXPECT_NE(error.find("data row 3"), std::string::npos) << error;
}

TEST_F(JobStoreMalformedCsv, ErrorRowNumberSkipsBlankLines) {
  const std::string error = load_error(valid_row(6) + "\n\n\nbroken\n");
  // Blank lines are skipped by the reader; the broken row is data row 3.
  EXPECT_NE(error.find("data row 3"), std::string::npos) << error;
}

TEST_F(JobStoreMalformedCsv, OverflowingNumericFieldRejected) {
  const std::string error = load_error(
      "10,u,j,e,4,192,2200,99999999999999999999999999,280,880,4,0,1,1,1,1,0,1.0\n");
  EXPECT_NE(error.find("data row 2"), std::string::npos) << error;
}

class StoreQueryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreQueryProperty, RangeQueryMatchesLinearScan) {
  Rng rng(GetParam());
  JobStore store;
  std::vector<JobRecord> reference;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    JobRecord job = make_job(i, static_cast<TimePoint>(rng.bounded(100'000)),
                             static_cast<std::int64_t>(1 + rng.bounded(5'000)));
    reference.push_back(job);
    store.insert(std::move(job));
  }
  for (int round = 0; round < 50; ++round) {
    JobQuery q;
    q.field = rng.bernoulli(0.5) ? JobQuery::TimeField::kEndTime
                                 : JobQuery::TimeField::kSubmitTime;
    q.start_time = static_cast<TimePoint>(rng.bounded(120'000));
    q.end_time = q.start_time + static_cast<TimePoint>(rng.bounded(50'000));
    const auto result = store.query(q);

    std::size_t expected = 0;
    for (const auto& job : reference) {
      const TimePoint t =
          q.field == JobQuery::TimeField::kEndTime ? job.end_time : job.submit_time;
      expected += t >= q.start_time && t < q.end_time;
    }
    EXPECT_EQ(result.size(), expected);
    for (std::size_t i = 1; i < result.size(); ++i) {
      const TimePoint a = q.field == JobQuery::TimeField::kEndTime
                              ? result[i - 1]->end_time
                              : result[i - 1]->submit_time;
      const TimePoint b = q.field == JobQuery::TimeField::kEndTime
                              ? result[i]->end_time
                              : result[i]->submit_time;
      EXPECT_LE(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreQueryProperty, ::testing::Values(7, 22, 520));

// ----------------------------------------------------------- JobQuery SQL

TEST(JobQuery, RendersSql) {
  JobQuery q;
  q.field = JobQuery::TimeField::kEndTime;
  q.start_time = 100;
  q.end_time = 200;
  EXPECT_EQ(q.to_sql(),
            "SELECT * FROM jobs WHERE end_time >= 100 AND end_time < 200 ORDER BY end_time");
}

TEST(JobQuery, RendersSqlWithFilters) {
  JobQuery q;
  q.field = JobQuery::TimeField::kSubmitTime;
  q.start_time = 1;
  q.end_time = 2;
  q.user_name = "u1";
  q.frequency = FrequencyMode::kBoost;
  const std::string sql = q.to_sql();
  EXPECT_NE(sql.find("submit_time >= 1"), std::string::npos);
  EXPECT_NE(sql.find("user_name = 'u1'"), std::string::npos);
  EXPECT_NE(sql.find("freq_mhz = 2200"), std::string::npos);
}

// ----------------------------------------------------------- DataFetcher

TEST(StoreDataFetcher, FetchById) {
  JobStore store;
  store.insert(make_job(7, 700));
  StoreDataFetcher fetcher(store);
  const auto job = fetcher.fetch(7);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->job_id, 7U);
  EXPECT_FALSE(fetcher.fetch(8).has_value());
}

TEST(StoreDataFetcher, FetchRangeCopiesRecords) {
  JobStore store;
  for (std::uint64_t i = 0; i < 10; ++i) {
    store.insert(make_job(i, static_cast<TimePoint>(i * 100)));
  }
  StoreDataFetcher fetcher(store);
  const auto jobs = fetcher.fetch(0, 10'000, JobQuery::TimeField::kSubmitTime);
  EXPECT_EQ(jobs.size(), 10U);
  // Ordered by submit time.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
  }
}

TEST(StoreDataFetcher, RenderSqlMatchesQuery) {
  const std::string sql =
      StoreDataFetcher::render_sql(5, 10, JobQuery::TimeField::kEndTime);
  EXPECT_NE(sql.find("end_time >= 5"), std::string::npos);
}

// Regression for the latent unguarded-concurrent-access gap closed by
// the store's SharedMutex: HTTP handlers read the store while ingest
// appends. Under TSan (CI's MCB_SANITIZE=thread leg) the pre-lock store
// raced here; the test also pins down result sanity either way. Some
// inserts land out of end_time order on purpose, forcing lazy re-sorts
// to happen *while* readers are mid-query.
TEST(JobStore, ConcurrentReadersDuringInserts) {
  constexpr std::uint64_t kJobs = 2000;
  constexpr int kReaders = 4;
  JobStore store;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kJobs; ++i) {
      // Every 5th job completes "late" (out of order) to invalidate the
      // sorted index under the readers' feet.
      const auto submit = static_cast<TimePoint>(i * 100 + (i % 5 == 0 ? 7000 : 0));
      store.insert(make_job(i, submit));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t probe = static_cast<std::uint64_t>(r);
      while (!done.load(std::memory_order_acquire)) {
        JobQuery q;
        q.field = r % 2 == 0 ? JobQuery::TimeField::kEndTime
                             : JobQuery::TimeField::kSubmitTime;
        q.start_time = 0;
        q.end_time = static_cast<TimePoint>(kJobs * 200);
        const auto jobs = store.query_records(q);
        for (std::size_t i = 1; i < jobs.size(); ++i) {
          const TimePoint prev = q.field == JobQuery::TimeField::kEndTime
                                     ? jobs[i - 1].end_time
                                     : jobs[i - 1].submit_time;
          const TimePoint cur = q.field == JobQuery::TimeField::kEndTime
                                    ? jobs[i].end_time
                                    : jobs[i].submit_time;
          ASSERT_LE(prev, cur);
        }
        const auto record = store.find_record(probe % kJobs);
        if (record.has_value()) {
          ASSERT_EQ(record->job_id, probe % kJobs);
        }
        probe += 13;
        ASSERT_LE(store.min_end_time(), store.max_end_time());
        ASSERT_LE(store.size(), kJobs);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(store.size(), kJobs);
  // Post-hoc integrity: every job is findable and the full range scan
  // sees all of them in order.
  JobQuery q;
  q.start_time = 0;
  q.end_time = static_cast<TimePoint>(kJobs * 200);
  EXPECT_EQ(store.query_records(q).size(), kJobs);
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(store.find_record(i).has_value());
  }
}

}  // namespace
}  // namespace mcb
