// Tests for the text module: tokenization, n-grams, hashing and the
// sentence encoder's embedding properties (determinism, normalization,
// locality — the properties the SBERT substitution must preserve).
#include <gtest/gtest.h>

#include <cmath>

#include "text/sentence_encoder.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcb {
namespace {

// ------------------------------------------------------------ tokenizer

TEST(Tokenizer, SplitsOnNonAlnumAndLowercases) {
  const auto tokens = word_tokens("WRF_run-12,user/03");
  ASSERT_EQ(tokens.size(), 5U);
  EXPECT_EQ(tokens[0], "wrf");
  EXPECT_EQ(tokens[1], "run");
  EXPECT_EQ(tokens[2], "12");
  EXPECT_EQ(tokens[3], "user");
  EXPECT_EQ(tokens[4], "03");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(word_tokens("").empty());
  EXPECT_TRUE(word_tokens(",;- /").empty());
}

TEST(Tokenizer, CharNgramsWithBoundaries) {
  const auto grams = char_ngrams("wrf", 3);
  ASSERT_EQ(grams.size(), 3U);
  EXPECT_EQ(grams[0], "^wr");
  EXPECT_EQ(grams[1], "wrf");
  EXPECT_EQ(grams[2], "rf$");
}

TEST(Tokenizer, ShortWordYieldsWholePaddedWord) {
  const auto grams = char_ngrams("a", 3);
  ASSERT_EQ(grams.size(), 1U);
  EXPECT_EQ(grams[0], "^a$");
}

TEST(Tokenizer, ZeroNgramSize) { EXPECT_TRUE(char_ngrams("abc", 0).empty()); }

TEST(Tokenizer, Fnv1a64KnownProperties) {
  // Deterministic, salt-sensitive, content-sensitive.
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64("abc", 0), fnv1a64("abc", 1));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

// -------------------------------------------------------------- encoder

TEST(SentenceEncoder, OutputDimensionAndDefaults) {
  const SentenceEncoder encoder;
  EXPECT_EQ(encoder.dim(), 384U);  // matches SBERT all-MiniLM
  EXPECT_EQ(encoder.encode("hello world").size(), 384U);
}

TEST(SentenceEncoder, Deterministic) {
  const SentenceEncoder encoder;
  const auto a = encoder.encode("u00123,wrf_solve,192,4,lang/tcsds,2200");
  const auto b = encoder.encode("u00123,wrf_solve,192,4,lang/tcsds,2200");
  EXPECT_EQ(a, b);
}

TEST(SentenceEncoder, L2Normalized) {
  const SentenceEncoder encoder;
  const auto v = encoder.encode("some job feature string,48,2");
  double norm = 0.0;
  for (const float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(SentenceEncoder, EmptyStringIsZeroVector) {
  const SentenceEncoder encoder;
  const auto v = encoder.encode("");
  for (const float x : v) EXPECT_EQ(x, 0.0F);
}

TEST(SentenceEncoder, SimilarStringsAreCloserThanDissimilar) {
  const SentenceEncoder encoder;
  const auto base = encoder.encode("u00123,wrf_solve_a1,192,4,lang/tcsds-1.2.38,2200");
  const auto variant = encoder.encode("u00123,wrf_solve_a2,192,4,lang/tcsds-1.2.38,2200");
  const auto unrelated = encoder.encode("u09999,gemm_bench_zz,48,1,python/3.11,2000");
  EXPECT_GT(cosine_similarity(base, variant), 0.8);
  EXPECT_GT(cosine_similarity(base, variant), cosine_similarity(base, unrelated) + 0.3);
}

TEST(SentenceEncoder, SeedChangesEmbedding) {
  EncoderConfig a_cfg, b_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const SentenceEncoder a(a_cfg), b(b_cfg);
  const auto va = a.encode("wrf_solve");
  const auto vb = b.encode("wrf_solve");
  EXPECT_NE(va, vb);
}

TEST(SentenceEncoder, CustomDimension) {
  EncoderConfig cfg;
  cfg.dim = 64;
  const SentenceEncoder encoder(cfg);
  EXPECT_EQ(encoder.encode("abc def").size(), 64U);
}

TEST(SentenceEncoder, ZeroDimClampedToOne) {
  EncoderConfig cfg;
  cfg.dim = 0;
  const SentenceEncoder encoder(cfg);
  EXPECT_EQ(encoder.dim(), 1U);
}

TEST(SentenceEncoder, BatchMatchesSingle) {
  const SentenceEncoder encoder;
  const std::vector<std::string> sentences{"a b c", "u01,job,48", ""};
  const auto batch = encoder.encode_batch(sentences);
  ASSERT_EQ(batch.size(), 3 * encoder.dim());
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    const auto single = encoder.encode(sentences[i]);
    for (std::size_t j = 0; j < encoder.dim(); ++j) {
      EXPECT_EQ(batch[i * encoder.dim() + j], single[j]);
    }
  }
}

TEST(SentenceEncoder, BatchParallelMatchesSerial) {
  const SentenceEncoder encoder;
  std::vector<std::string> sentences;
  for (int i = 0; i < 64; ++i) sentences.push_back("job_" + std::to_string(i) + ",u1,48");
  ThreadPool pool(4);
  const auto serial = encoder.encode_batch(sentences, nullptr);
  const auto parallel = encoder.encode_batch(sentences, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(SentenceEncoder, FieldTokensChangeEmbedding) {
  EncoderConfig with, without;
  with.use_field_tokens = true;
  without.use_field_tokens = false;
  const SentenceEncoder a(with), b(without);
  EXPECT_NE(a.encode("x,y"), b.encode("x,y"));
}

TEST(SentenceEncoder, FieldTokensDistinguishFieldOrder) {
  EncoderConfig cfg;
  cfg.use_field_tokens = true;
  cfg.use_word_tokens = false;
  cfg.ngram_sizes = {};
  const SentenceEncoder encoder(cfg);
  // Same multiset of values in different fields must differ.
  EXPECT_NE(encoder.encode("48,192"), encoder.encode("192,48"));
}

TEST(SentenceEncoder, DensifyPreservesDistancesApproximately) {
  EncoderConfig sparse_cfg, dense_cfg;
  dense_cfg.densify = true;
  const SentenceEncoder sparse(sparse_cfg), dense(dense_cfg);
  const std::string s1 = "u00123,wrf_solve_a1,192,4,lang/tcsds,2200";
  const std::string s2 = "u00123,wrf_solve_a2,192,4,lang/tcsds,2200";
  const std::string s3 = "u09999,gemm_bench,48,1,python/3.11,2000";
  const double sim12_sparse = cosine_similarity(sparse.encode(s1), sparse.encode(s2));
  const double sim12_dense = cosine_similarity(dense.encode(s1), dense.encode(s2));
  const double sim13_dense = cosine_similarity(dense.encode(s1), dense.encode(s3));
  // JL-style rotation: similar pairs stay similar, ordering preserved.
  EXPECT_NEAR(sim12_dense, sim12_sparse, 0.15);
  EXPECT_GT(sim12_dense, sim13_dense);
}

TEST(SentenceEncoder, MultiHashingSpreadsMass) {
  EncoderConfig one, three;
  one.hashes_per_feature = 1;
  three.hashes_per_feature = 3;
  const SentenceEncoder a(one), b(three);
  const auto va = a.encode("single_token");
  const auto vb = b.encode("single_token");
  const auto nonzeros = [](const std::vector<float>& v) {
    std::size_t n = 0;
    for (const float x : v) n += x != 0.0F;
    return n;
  };
  EXPECT_GT(nonzeros(vb), nonzeros(va));
}

TEST(CosineSimilarity, EdgeCases) {
  const std::vector<float> zero(4, 0.0F);
  const std::vector<float> unit{1.0F, 0.0F, 0.0F, 0.0F};
  EXPECT_DOUBLE_EQ(cosine_similarity(zero, unit), 0.0);
  EXPECT_NEAR(cosine_similarity(unit, unit), 1.0, 1e-9);
  const std::vector<float> neg{-1.0F, 0.0F, 0.0F, 0.0F};
  EXPECT_NEAR(cosine_similarity(unit, neg), -1.0, 1e-9);
}

// ------------------------------------------- property tests (TEST_P)

class EncoderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncoderProperty, RandomStringsAreNormalizedAndDeterministic) {
  Rng rng(GetParam());
  const SentenceEncoder encoder;
  for (int i = 0; i < 50; ++i) {
    std::string s;
    const int len = static_cast<int>(rng.range(1, 60));
    for (int c = 0; c < len; ++c) {
      static constexpr char kAlphabet[] = "abcdefghij0123456789_,-/";
      s += kAlphabet[rng.bounded(sizeof(kAlphabet) - 1)];
    }
    const auto v1 = encoder.encode(s);
    const auto v2 = encoder.encode(s);
    EXPECT_EQ(v1, v2);
    double norm = 0.0;
    for (const float x : v1) norm += static_cast<double>(x) * x;
    EXPECT_TRUE(norm == 0.0 || std::abs(norm - 1.0) < 1e-5) << "norm=" << norm;
  }
}

TEST_P(EncoderProperty, IdenticalUpToCaseAndSeparators) {
  Rng rng(GetParam() + 99);
  const SentenceEncoder encoder;
  // Tokenization lower-cases and strips separators, so these collide by
  // construction — a documented property of the hashed encoder.
  EXPECT_EQ(encoder.encode("WRF RUN"), encoder.encode("wrf run"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderProperty, ::testing::Values(1, 2, 3, 520, 1905));

}  // namespace
}  // namespace mcb
