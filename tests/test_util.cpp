// Unit and property tests for the util module: RNG, streaming stats,
// strings, civil time, JSON, CSV, histograms, tables, CLI flags and the
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"
#include "util/timer_wheel.hpp"

namespace mcb {
namespace {

// ----------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, BoundedNeverExceedsBound) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.bounded(17), 17U);
}

TEST(Rng, BoundedZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.bounded(0), 0U);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(static_cast<double>(rng.poisson(3.0)));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.variance(), 3.0, 0.15);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
  Rng rng(29);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(static_cast<double>(rng.poisson(100.0)));
  EXPECT_NEAR(stats.mean(), 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0U);
  EXPECT_EQ(rng.poisson(-1.0), 0U);
}

TEST(Rng, GeometricMean) {
  Rng rng(31);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(static_cast<double>(rng.geometric(0.25)));
  // mean failures before success = (1-p)/p = 3
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, GeometricProbabilityOneIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.geometric(1.0), 0U);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 100'000; ++i) ones += rng.categorical(weights) == 1;
  EXPECT_NEAR(ones / 100'000.0, 0.75, 0.01);
}

TEST(Rng, CategoricalEmptyOrDegenerate) {
  Rng rng(1);
  EXPECT_EQ(rng.categorical(std::vector<double>{}), 0U);
  EXPECT_EQ(rng.categorical(std::vector<double>{0.0, 0.0}), 0U);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  for (const std::size_t k : {1UL, 5UL, 50UL, 99UL}) {
    const auto sample = rng.sample_indices(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (const auto idx : sample) EXPECT_LT(idx, 100U);
  }
}

TEST(Rng, SampleIndicesKGreaterThanN) {
  Rng rng(43);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5U);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(47);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------- stats

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(59);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1U);
  b.merge(a);
  EXPECT_EQ(b.count(), 1U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, KnownQuantiles) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_NEAR(percentile(v, 50), 5.5, 1e-12);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(PearsonCorrelation, PerfectAndNone) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
  const std::vector<double> constant{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, constant), 0.0);
}

// -------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-12"), "abc-12"); }

TEST(Strings, IfindCaseInsensitive) {
  EXPECT_EQ(ifind("Content-Length: 12", "content-length:"), 0u);
  EXPECT_EQ(ifind("X: 1\r\nCONTENT-LENGTH: 9", "content-length:"), 6u);
  EXPECT_EQ(ifind("content-type: text", "content-length:"), std::string_view::npos);
}

TEST(Strings, IfindFromOffsetAndEdgeCases) {
  EXPECT_EQ(ifind("abcabc", "abc", 1), 3u);
  EXPECT_EQ(ifind("abcabc", "abc", 4), std::string_view::npos);
  EXPECT_EQ(ifind("short", "longer needle"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("abc", "", 3), 3u);
  EXPECT_EQ(ifind("abc", "", 4), std::string_view::npos);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-1234567), "-1,234,567");
}

TEST(Strings, ParseI64) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(parse_i64(" 7 ", v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(parse_i64("4x", v));
  EXPECT_FALSE(parse_i64("", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
}

TEST(Strings, FormatDouble) { EXPECT_EQ(format_double(3.14159, 2), "3.14"); }

// ----------------------------------------------------------------- time

TEST(CivilTime, KnownEpochs) {
  EXPECT_EQ(timepoint_from_ymd(1970, 1, 1), 0);
  EXPECT_EQ(timepoint_from_ymd(1970, 1, 2), 86'400);
  EXPECT_EQ(timepoint_from_ymd(2024, 2, 1), 1'706'745'600);
}

TEST(CivilTime, RoundTripThroughDays) {
  for (const int year : {1999, 2000, 2023, 2024}) {
    for (const int month : {1, 2, 6, 12}) {
      for (const int day : {1, 15, 28}) {
        const auto days = days_from_civil({year, month, day});
        const CivilDate back = civil_from_days(days);
        EXPECT_EQ(back.year, year);
        EXPECT_EQ(back.month, month);
        EXPECT_EQ(back.day, day);
      }
    }
  }
}

TEST(CivilTime, LeapYearFebruary) {
  // 2024 is a leap year: Feb 29 exists.
  const auto feb29 = timepoint_from_ymd(2024, 2, 29);
  const auto mar1 = timepoint_from_ymd(2024, 3, 1);
  EXPECT_EQ(mar1 - feb29, kSecondsPerDay);
}

TEST(CivilTime, DayIndex) {
  const TimePoint epoch = timepoint_from_ymd(2023, 12, 1);
  EXPECT_EQ(day_index(epoch, epoch), 0);
  EXPECT_EQ(day_index(epoch + kSecondsPerDay - 1, epoch), 0);
  EXPECT_EQ(day_index(epoch + kSecondsPerDay, epoch), 1);
  EXPECT_EQ(day_index(epoch - 1, epoch), -1);
}

TEST(CivilTime, FormatDate) {
  EXPECT_EQ(format_date(timepoint_from_ymd(2024, 2, 29)), "2024-02-29");
  EXPECT_EQ(format_datetime(timepoint_from_ymd(2024, 1, 2) + 3661), "2024-01-02 01:01:01");
}

TEST(CivilTime, ParseDate) {
  TimePoint t = 0;
  EXPECT_TRUE(parse_date("2024-02-01", t));
  EXPECT_EQ(t, timepoint_from_ymd(2024, 2, 1));
  EXPECT_FALSE(parse_date("2024-13-01", t));
  EXPECT_FALSE(parse_date("2024/02/01", t));
  EXPECT_FALSE(parse_date("nonsense", t));
}

// ----------------------------------------------------------------- JSON

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("3.25")->as_double(), 3.25);
  EXPECT_EQ(Json::parse("-17")->as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  const auto json = Json::parse(R"({"a":[1,2,{"b":true}],"c":"x"})");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ((*json)["a"].size(), 3U);
  EXPECT_TRUE((*json)["a"].as_array()[2]["b"].as_bool());
  EXPECT_EQ((*json)["c"].as_string(), "x");
}

TEST(Json, MissingKeyIsNull) {
  const auto json = Json::parse(R"({"a":1})");
  EXPECT_TRUE((*json)["nope"].is_null());
  EXPECT_FALSE(json->contains("nope"));
  EXPECT_TRUE(json->contains("a"));
}

TEST(Json, DumpParseRoundTrip) {
  Json original = Json::object();
  original.set("name", "mcbound");
  original.set("pi", 3.5);
  original.set("n", static_cast<std::int64_t>(42));
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  original.set("list", arr);

  const auto parsed = Json::parse(original.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(Json, EscapesSpecialCharacters) {
  Json j(std::string("a\"b\\c\nd\te"));
  const auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParseUnicodeEscape) {
  const auto json = Json::parse(R"("Aé")");
  ASSERT_TRUE(json.has_value());
  EXPECT_EQ(json->as_string(), "A\xC3\xA9");
}

TEST(Json, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
}

TEST(Json, IntegersSerializeWithoutDecimals) {
  Json j(static_cast<std::int64_t>(1'706'745'600));
  EXPECT_EQ(j.dump(), "1706745600");
}

TEST(Json, PrettyIsReparseable) {
  Json j = Json::object();
  j.set("a", Json::array());
  j.set("b", Json::object());
  const auto parsed = Json::parse(j.pretty());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, j);
}

class JsonFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Build a random JSON value of bounded depth.
  static Json random_json(Rng& rng, int depth) {
    switch (depth <= 0 ? rng.bounded(4) : rng.bounded(6)) {
      case 0: return Json(nullptr);
      case 1: return Json(rng.bernoulli(0.5));
      case 2: return Json(rng.uniform(-1e6, 1e6));
      case 3: {
        std::string s;
        const int len = static_cast<int>(rng.bounded(12));
        for (int i = 0; i < len; ++i) {
          static constexpr char kChars[] = "ab\"\n\t,:{}[]0987 ";
          s += kChars[rng.bounded(sizeof(kChars) - 1)];
        }
        return Json(s);
      }
      case 4: {
        Json arr = Json::array();
        const int n = static_cast<int>(rng.bounded(4));
        for (int i = 0; i < n; ++i) arr.push_back(random_json(rng, depth - 1));
        return arr;
      }
      default: {
        Json obj = Json::object();
        const int n = static_cast<int>(rng.bounded(4));
        for (int i = 0; i < n; ++i) {
          obj.set("k" + std::to_string(rng.bounded(8)), random_json(rng, depth - 1));
        }
        return obj;
      }
    }
  }
};

TEST_P(JsonFuzzProperty, RandomValuesRoundTripThroughDumpAndPretty) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Json original = random_json(rng, 4);
    const auto compact = Json::parse(original.dump());
    ASSERT_TRUE(compact.has_value()) << original.dump();
    EXPECT_EQ(*compact, original);
    const auto pretty = Json::parse(original.pretty());
    ASSERT_TRUE(pretty.has_value());
    EXPECT_EQ(*pretty, original);
  }
}

TEST_P(JsonFuzzProperty, GarbageNeverCrashesTheParser) {
  Rng rng(GetParam() + 77);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const int len = static_cast<int>(rng.bounded(40));
    for (int c = 0; c < len; ++c) {
      garbage += static_cast<char>(rng.bounded(127) + 1);
    }
    // Must either parse or fail cleanly — never crash or hang.
    std::string error;
    (void)Json::parse(garbage, &error);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzProperty, ::testing::Values(1, 2, 3, 520, 1905));

// ------------------------------------------------------------------ CSV

TEST(Csv, QuoteOnlyWhenNeeded) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, ParseQuotedFields) {
  const auto fields = csv_parse_line(R"(a,"b,c","d""e",f)");
  ASSERT_EQ(fields.size(), 4U);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(Csv, RoundTripThroughStream) {
  std::stringstream stream;
  CsvWriter writer(stream);
  const std::vector<std::string> row1{"x", "1,5", "z\"q"};
  const std::vector<std::string> row2{"", "plain", ""};
  writer.write_row(row1);
  writer.write_row(row2);

  CsvReader reader(stream);
  std::vector<std::string> out;
  ASSERT_TRUE(reader.next_row(out));
  EXPECT_EQ(out, row1);
  ASSERT_TRUE(reader.next_row(out));
  EXPECT_EQ(out, row2);
  EXPECT_FALSE(reader.next_row(out));
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream stream("a,b\n\n\nc,d\n");
  CsvReader reader(stream);
  std::vector<std::string> out;
  ASSERT_TRUE(reader.next_row(out));
  ASSERT_TRUE(reader.next_row(out));
  EXPECT_EQ(out[0], "c");
  EXPECT_FALSE(reader.next_row(out));
}

class CsvFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzzProperty, RandomFieldsRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> fields;
    const int n = static_cast<int>(1 + rng.bounded(8));
    for (int f = 0; f < n; ++f) {
      std::string field;
      const int len = static_cast<int>(rng.bounded(20));
      for (int c = 0; c < len; ++c) {
        static constexpr char kChars[] = "abc,\"'; |0123";
        field += kChars[rng.bounded(sizeof(kChars) - 1)];
      }
      fields.push_back(field);
    }
    std::string line = csv_row(fields);
    line.pop_back();  // strip trailing newline
    EXPECT_EQ(csv_parse_line(line), fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzProperty, ::testing::Values(11, 22, 33));

TEST(Csv, ToleratesCrLf) {
  std::stringstream stream("a,b\r\nc,d\r\n");
  CsvReader reader(stream);
  std::vector<std::string> out;
  ASSERT_TRUE(reader.next_row(out));
  EXPECT_EQ(out[1], "b");
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(9), 1U);
  EXPECT_EQ(h.bin_count(5), 1U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(3), 1U);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 10);
  EXPECT_EQ(h.bin_count(0), 10U);
  EXPECT_EQ(h.total(), 10U);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  // Uniform over [0, 10): quantiles track q * 10 to within one bin.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 1.0);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileSingleBin) {
  Histogram h(0.0, 8.0, 4);
  h.add(3.0, 10);  // everything in bin [2, 4)
  EXPECT_GE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 3);
  const std::string out = h.render();
  EXPECT_NE(out.find("3"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(LogGrid2D, CountsAndBounds) {
  LogGrid2D grid(1e-3, 1e3, 10, 1e-3, 1e3, 10);
  grid.add(1.0, 1.0);
  grid.add(1e-9, 1e9);  // clamped to corner cells
  EXPECT_EQ(grid.total(), 2U);
  std::uint64_t sum = 0;
  for (std::size_t x = 0; x < grid.x_bins(); ++x)
    for (std::size_t y = 0; y < grid.y_bins(); ++y) sum += grid.cell(x, y);
  EXPECT_EQ(sum, 2U);
}

TEST(LogGrid2D, RenderHasAxes) {
  LogGrid2D grid(1e-3, 1e3, 20, 1e-3, 1e3, 5);
  grid.add(0.5, 10.0);
  const std::string out = grid.render(3.3);
  EXPECT_NE(out.find("ridge"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

// ---------------------------------------------------------------- table

TEST(TextTable, AlignsAndRenders) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "15"});
  table.add_row({"beta", "1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("15"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable table({"a"});
  table.add_row({"1", "extra"});
  EXPECT_NE(table.render().find("extra"), std::string::npos);
}

// ------------------------------------------------------------------ CLI

TEST(CliFlags, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "15", "--beta=2", "--name", "rf"};
  auto flags = CliFlags::parse(6, const_cast<char**>(argv), {"alpha", "beta", "name"}, "usage");
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->get_int("alpha", 0), 15);
  EXPECT_EQ(flags->get_int("beta", 0), 2);
  EXPECT_EQ(flags->get("name", ""), "rf");
  EXPECT_EQ(flags->get_int("missing", 7), 7);
}

TEST(CliFlags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(CliFlags::parse(3, const_cast<char**>(argv), {"alpha"}, "usage").has_value());
}

TEST(CliFlags, RejectsMissingValue) {
  const char* argv[] = {"prog", "--alpha"};
  EXPECT_FALSE(CliFlags::parse(2, const_cast<char**>(argv), {"alpha"}, "usage").has_value());
}

TEST(CliFlags, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  auto flags = CliFlags::parse(2, const_cast<char**>(argv), {}, "usage");
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->help_requested());
}

TEST(CliFlags, BoolParsing) {
  const char* argv[] = {"prog", "--x=true", "--y=0", "--z=maybe"};
  auto flags = CliFlags::parse(4, const_cast<char**>(argv), {"x", "y", "z"}, "usage");
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->get_bool("x", false));
  EXPECT_FALSE(flags->get_bool("y", true));
  EXPECT_TRUE(flags->get_bool("z", true));  // unparseable -> fallback
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, TrySubmitShedsWhenSaturated) {
  ThreadPool pool(1);
  std::promise<void> release;
  const std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> entered{false};

  std::function<void()> blocker = [&] {
    entered.store(true);
    released.wait();
  };
  ASSERT_TRUE(pool.try_submit(blocker, 0));  // worker idle: admitted
  while (!entered.load()) std::this_thread::yield();

  std::function<void()> task = [] {};
  EXPECT_FALSE(pool.try_submit(task, 0));  // worker busy, no backlog allowed
  EXPECT_TRUE(task != nullptr);            // rejected task is left intact
  EXPECT_TRUE(pool.try_submit(task, 1));   // one queued slot allowed
  task = [] {};
  EXPECT_FALSE(pool.try_submit(task, 1));  // backlog slot now occupied
  EXPECT_EQ(pool.pending(), 1U);
  EXPECT_EQ(pool.in_flight(), 1U);

  release.set_value();
  pool.wait_idle();
  EXPECT_TRUE(pool.try_submit(task, 0));  // idle again
  pool.wait_idle();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each(&pool, 0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackWithNullPool) {
  int sum = 0;
  parallel_for_each(nullptr, 0, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(&pool, 5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_each(&pool, 0, 100,
                        [](std::size_t i) {
                          if (i == 50) throw std::runtime_error("boom");
                        },
                        1),
      std::runtime_error);
  pool.wait_idle();
}

// ---------------------------------------------------------- TimerWheel

TEST(TimerWheel, FiresAtOrAfterDeadline) {
  TimerWheel wheel(10, 8);
  wheel.schedule(1, 25);  // rounds up to 3 ticks = 30ms
  std::vector<std::uint64_t> expired;
  wheel.advance(20, expired);
  EXPECT_TRUE(expired.empty());  // must not fire early
  wheel.advance(30, expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, ZeroDelayFiresOnNextTick) {
  TimerWheel wheel(10, 8);
  wheel.schedule(7, 0);
  std::vector<std::uint64_t> expired;
  wheel.advance(0, expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(10, expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7u);
}

TEST(TimerWheel, LongDelayLapsTheWheelWithoutFiringEarly) {
  // 8 slots * 10ms = one 80ms lap; a 200ms timer shares a slot with
  // earlier laps and must stay parked until its own lap comes around.
  TimerWheel wheel(10, 8);
  wheel.schedule(1, 200);
  wheel.schedule(2, 40);
  std::vector<std::uint64_t> expired;
  wheel.advance(40, expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2u);
  expired.clear();
  wheel.advance(190, expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(200, expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
}

TEST(TimerWheel, ManyTimersAllFireExactlyOnce) {
  TimerWheel wheel(10, 16);
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t id = 0; id < kCount; ++id) wheel.schedule(id, (id * 7) % 400);
  EXPECT_EQ(wheel.armed(), kCount);
  std::vector<std::uint64_t> all;
  std::vector<std::uint64_t> expired;
  for (std::uint64_t now = 0; now <= 500; now += 10) {
    expired.clear();
    wheel.advance(now, expired);
    all.insert(all.end(), expired.begin(), expired.end());
  }
  EXPECT_EQ(all.size(), kCount);
  EXPECT_EQ(std::set<std::uint64_t>(all.begin(), all.end()).size(), kCount);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, AdvanceIsIdempotentForPastTime) {
  TimerWheel wheel(10, 8);
  wheel.schedule(3, 50);
  std::vector<std::uint64_t> expired;
  wheel.advance(100, expired);
  ASSERT_EQ(expired.size(), 1u);
  expired.clear();
  wheel.advance(100, expired);  // same timestamp again: nothing to do
  wheel.advance(60, expired);   // time going backwards is ignored
  EXPECT_TRUE(expired.empty());
}

// -------------------------------------------------------- net helpers

TEST(Net, SomaxconnIsPositiveAndSane) {
  const int value = somaxconn();
  EXPECT_GT(value, 0);
  EXPECT_LE(value, 1 << 20);
}

TEST(Net, RaiseNofileLimitNeverLowers) {
  // Whatever the environment allows, the result must be at least the
  // current soft limit and never exceed the hard limit semantics-wise
  // (raise_nofile_limit only raises).
  const std::uint64_t before = raise_nofile_limit(0);
  const std::uint64_t after = raise_nofile_limit(before + 1024);
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace mcb
