// Fuzz/property harness for model deserialization (the attack surface
// behind the PR 6 hardening: k == 0, out-of-range labels, colliding
// kind tags, unbounded allocations).
//
// Properties checked on arbitrary bytes b:
//   P1  KnnClassifier/KnnRegressor/FlatForest/KnnIndex load(b) always
//       returns cleanly (true/false) — never crashes, reads out of
//       bounds, loops, or over-allocates (ASan/UBSan in CI make
//       violations fatal; libFuzzer's malloc limit catches the rest).
//   P2  kind tags are mutually exclusive: at most one loader accepts b
//       (the KnnRegressor/FlatForest tag collision regression).
//   P3  anything a loader accepts is consistent enough to run: a
//       defensively-sized query through predict/search must not fault —
//       this drives the historical UB sites (empty TopK, vote() OOB,
//       accumulate_proba feature OOB) on every accepted input.
//   P4  accept → save → load: a loaded model re-serializes to a stream
//       the same loader accepts again (loaders accept nothing they
//       cannot round-trip).
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/knn.hpp"
#include "ml/knn_index.hpp"
#include "ml/knn_regressor.hpp"
#include "ml/top_k.hpp"
#include "tests/fuzz_common.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_model_load: property violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

int mcb_fuzz_one(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  int accepted = 0;

  {
    std::istringstream in(bytes);
    mcb::KnnClassifier knn;
    if (knn.load(in)) {  // P1
      ++accepted;
      check(knn.is_fitted(), "P3 accepted classifier is fitted");
      check(knn.config().k >= 1, "P3 accepted classifier has k >= 1");
      check(knn.dim() >= 1, "P3 accepted classifier has dim >= 1");
      const std::vector<float> query(knn.dim(), 0.0F);
      const mcb::FeatureView view{query.data(), 1, knn.dim()};
      const auto pred = knn.predict(view);  // P3: TopK + vote() on file data
      check(pred.size() == 1 && pred[0] >= 0 &&
                static_cast<std::size_t>(pred[0]) < knn.n_classes(),
            "P3 classifier prediction is a valid class");
      check(knn.kneighbors(query).size() == std::min(knn.config().k, knn.train_size()),
            "P3 kneighbors returns min(k, n) slots");
      std::ostringstream out;
      check(knn.save(out), "P4 accepted classifier saves");
      std::istringstream again(out.str());
      mcb::KnnClassifier reloaded;
      check(reloaded.load(again), "P4 classifier save/load round trip");
    }
  }

  {
    std::istringstream in(bytes);
    mcb::KnnRegressor reg;
    if (reg.load(in)) {  // P1
      ++accepted;
      check(reg.is_fitted(), "P3 accepted regressor is fitted");
      check(reg.config().k >= 1, "P3 accepted regressor has k >= 1");
      const std::vector<float> query(reg.dim(), 0.0F);
      (void)reg.predict_one(query);  // P3: TopK + k-division on file data
      std::ostringstream out;
      check(reg.save(out), "P4 accepted regressor saves");
      std::istringstream again(out.str());
      mcb::KnnRegressor reloaded;
      check(reloaded.load(again), "P4 regressor save/load round trip");
    }
  }

  {
    std::istringstream in(bytes);
    mcb::FlatForest forest;
    if (forest.load(in)) {  // P1
      ++accepted;
      check(!forest.empty() && forest.n_classes() >= 1, "P3 accepted forest is usable");
      // min_row_width is load-bounded, so this allocation is too.
      const std::vector<float> row(std::max<std::size_t>(forest.min_row_width(), 1), 0.0F);
      std::vector<double> probs(forest.n_classes(), 0.0);
      forest.accumulate_proba(row, probs.data());  // P3: traversal on file data
      std::ostringstream out;
      forest.save(out);
      std::istringstream again(out.str());
      mcb::FlatForest reloaded;
      check(reloaded.load(again), "P4 forest save/load round trip");
    }
  }

  {
    std::istringstream in(bytes);
    mcb::KnnIndex index;
    if (index.load(in)) {  // P1
      ++accepted;
      check(index.ready(), "P3 accepted index is ready");
      const std::vector<float> query(index.dim(), 0.0F);
      std::vector<std::size_t> idx;
      std::vector<double> dist;
      check(index.search(query, 5, idx, dist), "P3 accepted index serves finite queries");
      for (const std::size_t row : idx) {
        check(row == mcb::kTopKNoRow || row < index.rows(),
              "P3 returned neighbor ids stay in range");
      }
      std::ostringstream out;
      check(index.save(out), "P4 accepted index saves");
      std::istringstream again(out.str());
      mcb::KnnIndex reloaded;
      check(reloaded.load(again), "P4 index save/load round trip");
    }
  }

  check(accepted <= 1, "P2 model kind tags are mutually exclusive");
  return 0;
}
