// Fuzz/property harness for the HTTP request parser (serve/http).
//
// Properties checked on arbitrary bytes:
//   P1  parse_http_request never crashes, hangs or trips a sanitizer.
//   P2  parsing is deterministic (same input -> same result).
//   P3  a successful parse yields a structurally valid request: non-empty
//       method, absolute path, body bounded by the input size.
//   P4  expected_request_length is consistent with the header block: it
//       returns 0 (incomplete), the framing sentinel, or a total length
//       of at least head+4 that never wraps around.
//   P5  round trip: serialize_http_response output always re-parses as a
//       complete message by expected_request_length.
#include <cstring>
#include <string_view>

#include "serve/http.hpp"
#include "tests/fuzz_common.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_http_parser: property violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

int mcb_fuzz_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view raw =
      size > 0 ? std::string_view(reinterpret_cast<const char*>(data), size)
               : std::string_view{};

  const auto first = mcb::parse_http_request(raw);   // P1
  const auto second = mcb::parse_http_request(raw);
  check(first.has_value() == second.has_value(), "P2 determinism (has_value)");

  if (first.has_value()) {
    check(!first->method.empty(), "P3 method non-empty");
    check(!first->path.empty() && first->path[0] == '/', "P3 absolute path");
    check(first->body.size() <= raw.size(), "P3 body bounded by input");
    check(first->method == second->method && first->path == second->path &&
              first->query == second->query && first->body == second->body,
          "P2 determinism (fields)");
  }

  const std::size_t expected = mcb::expected_request_length(raw);   // P4
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (expected == 0) {
    check(head_end == std::string_view::npos, "P4 zero only while head incomplete");
  } else if (expected != mcb::kInvalidRequestFraming) {
    check(head_end != std::string_view::npos, "P4 length implies complete head");
    check(expected >= head_end + 4, "P4 total covers the head");
    check(expected >= 4, "P4 no size_t wraparound");
    // A parseable request must fit the framing the reader announced.
    if (first.has_value()) {
      check(head_end + 4 + first->body.size() <= expected,
            "P4 parsed body fits announced framing");
    }
  }

  // P5: responses we serialize are always complete, well-framed messages.
  mcb::HttpResponse response;
  response.status = 200;
  response.body.assign(raw.substr(0, raw.size() < 512 ? raw.size() : 512));
  const std::string wire = mcb::serialize_http_response(response);
  check(mcb::expected_request_length(wire) == wire.size(),
        "P5 serialized response is exactly one complete message");
  return 0;
}
