// Tests for the core MCBound framework: feature encoding + cache, the
// classification-model wrapper, theta sub-sampling, the training and
// inference workflows, the online evaluator, the model registry, the
// JSON config and the Framework facade.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/config.hpp"
#include "core/mcbound.hpp"
#include "core/online_evaluator.hpp"
#include "core/workflows.hpp"
#include "workload/generator.hpp"

namespace mcb {
namespace {

namespace fs = std::filesystem;

JobRecord submission(std::uint64_t id, const std::string& user, const std::string& name,
                     std::uint32_t nodes = 2, FrequencyMode freq = FrequencyMode::kNormal) {
  JobRecord job;
  job.job_id = id;
  job.user_name = user;
  job.job_name = name;
  job.environment = "lang/tcsds-1.2.38";
  job.nodes_requested = nodes;
  job.cores_requested = nodes * 48;
  job.frequency = freq;
  job.nodes_allocated = nodes;
  return job;
}

/// Executed job with counters that make it memory- or compute-bound.
JobRecord executed(std::uint64_t id, const std::string& name, bool compute_bound,
                   TimePoint end_time) {
  JobRecord job = submission(id, "u00001", name);
  job.submit_time = end_time - 1000;
  job.start_time = end_time - 900;
  job.end_time = end_time;
  if (compute_bound) {
    job.perf2 = 1e15;
    job.perf4 = job.perf5 = 1e6;
  } else {
    job.perf2 = 1e6;
    job.perf4 = job.perf5 = 1e12;
  }
  return job;
}

// -------------------------------------------------------- label mapping

TEST(Labels, RoundTrip) {
  EXPECT_EQ(to_label(Boundedness::kMemoryBound), kLabelMemoryBound);
  EXPECT_EQ(to_label(Boundedness::kComputeBound), kLabelComputeBound);
  EXPECT_EQ(to_boundedness(kLabelMemoryBound), Boundedness::kMemoryBound);
  EXPECT_EQ(to_boundedness(kLabelComputeBound), Boundedness::kComputeBound);
  EXPECT_EQ(boundedness_class_names().size(), kNumBoundednessClasses);
}

// ------------------------------------------------------ feature encoder

TEST(FeatureEncoder, DefaultFeatureSetMatchesPaper) {
  const auto features = default_feature_set();
  // user name, job name, #cores, #nodes, environment + frequency (§V-A).
  ASSERT_EQ(features.size(), 6U);
  EXPECT_EQ(features[0], JobFeature::kUserName);
  EXPECT_EQ(features[5], JobFeature::kFrequency);
}

TEST(FeatureEncoder, FeatureStringIsCommaJoined) {
  const FeatureEncoder encoder;
  const JobRecord job = submission(1, "u00077", "wrf_sim_a", 4, FrequencyMode::kBoost);
  EXPECT_EQ(encoder.feature_string(job), "u00077,wrf_sim_a,192,4,lang/tcsds-1.2.38,2200");
}

TEST(FeatureEncoder, CustomFeatureSubset) {
  const FeatureEncoder encoder({JobFeature::kJobName, JobFeature::kNodesRequested});
  const JobRecord job = submission(1, "u1", "gemm", 8);
  EXPECT_EQ(encoder.feature_string(job), "gemm,8");
}

TEST(FeatureEncoder, EncodeBatchShape) {
  const FeatureEncoder encoder;
  std::vector<JobRecord> jobs{submission(1, "a", "x"), submission(2, "b", "y")};
  const FeatureMatrix m = encoder.encode_batch(jobs);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), encoder.dim());
}

TEST(FeatureEncoder, FrequencyChangesEncoding) {
  const FeatureEncoder encoder;
  JobRecord a = submission(1, "u", "job");
  JobRecord b = a;
  b.frequency = FrequencyMode::kBoost;
  EXPECT_NE(encoder.encode(a), encoder.encode(b));
}

TEST(EncodingCache, HitsAndMisses) {
  const FeatureEncoder encoder;
  EncodingCache cache(encoder.dim());
  std::vector<JobRecord> jobs{submission(1, "a", "x"), submission(2, "b", "y")};
  const FeatureMatrix first = encoder.encode_batch(jobs, &cache);
  EXPECT_EQ(cache.misses(), 2U);
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(cache.size(), 2U);

  const FeatureMatrix second = encoder.encode_batch(jobs, &cache);
  EXPECT_EQ(cache.hits(), 2U);
  EXPECT_EQ(second.storage(), first.storage());
}

TEST(EncodingCache, CachedRowsMatchFreshEncoding) {
  const FeatureEncoder encoder;
  EncodingCache cache(encoder.dim());
  std::vector<JobRecord> jobs{submission(7, "u9", "qcd_run_z")};
  encoder.encode_batch(jobs, &cache);
  const float* row = cache.lookup(7);
  ASSERT_NE(row, nullptr);
  const auto fresh = encoder.encode(jobs[0]);
  for (std::size_t i = 0; i < encoder.dim(); ++i) EXPECT_EQ(row[i], fresh[i]);
}

TEST(EncodingCache, AnonymousJobsAreNeverCached) {
  // Regression: two ad-hoc jobs with job_id == 0 must not share an
  // embedding through the cache.
  const FeatureEncoder encoder;
  EncodingCache cache(encoder.dim());
  std::vector<JobRecord> first{submission(0, "u1", "stream_app")};
  std::vector<JobRecord> second{submission(0, "u2", "dgemm_app")};
  const FeatureMatrix a = encoder.encode_batch(first, &cache);
  const FeatureMatrix b = encoder.encode_batch(second, &cache);
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_NE(a.storage(), b.storage());
}

TEST(EncodingCache, ClearResets) {
  EncodingCache cache(4);
  const std::vector<float> row{1, 2, 3, 4};
  cache.store(1, row);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.lookup(1), nullptr);
}

TEST(EncodingCache, RejectsWrongDimension) {
  EncodingCache cache(4);
  const std::vector<float> row{1, 2};
  cache.store(1, row);
  EXPECT_EQ(cache.size(), 0U);
}

// ------------------------------------------------- classification model

TEST(ClassificationModel, KindParsing) {
  EXPECT_EQ(*parse_model_kind("knn"), ModelKind::kKnn);
  EXPECT_EQ(*parse_model_kind("rf"), ModelKind::kRandomForest);
  EXPECT_EQ(*parse_model_kind("random_forest"), ModelKind::kRandomForest);
  EXPECT_FALSE(parse_model_kind("svm").has_value());
  EXPECT_STREQ(model_kind_name(ModelKind::kKnn), "knn");
}

TEST(ClassificationModel, TrainingAndInference) {
  KnnConfig knn;
  knn.k = 1;  // 4 training points; the default k = 5 would always tie
  ClassificationModel model(ModelKind::kKnn, knn);
  EXPECT_FALSE(model.is_trained());
  FeatureMatrix x(4, 2);
  for (int i = 0; i < 4; ++i) x.row(i)[0] = static_cast<float>(i < 2 ? 0 : 10);
  const std::vector<Label> y{0, 0, 1, 1};
  model.training(x.view(), y);
  EXPECT_TRUE(model.is_trained());
  const auto pred = model.inference(x.view());
  EXPECT_EQ(pred, y);
}

// ------------------------------------------------------ theta sampling

TEST(ApplyTheta, AllModeKeepsEverything) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(executed(i, "j", false, 1000 + i));
  EXPECT_EQ(apply_theta(jobs, ThetaConfig{}).size(), 10U);
}

TEST(ApplyTheta, LatestKeepsMostRecent) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(executed(i, "j", false, 1000 + i));
  ThetaConfig theta;
  theta.mode = ThetaConfig::Sampling::kLatest;
  theta.theta = 3;
  const auto kept = apply_theta(jobs, theta);
  ASSERT_EQ(kept.size(), 3U);
  EXPECT_EQ(kept[0].job_id, 7U);
  EXPECT_EQ(kept[2].job_id, 9U);
}

TEST(ApplyTheta, RandomIsDeterministicInSeedAndOrdered) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back(executed(i, "j", false, 1000 + i));
  ThetaConfig theta;
  theta.mode = ThetaConfig::Sampling::kRandom;
  theta.theta = 10;
  theta.seed = 520;
  const auto a = apply_theta(jobs, theta);
  const auto b = apply_theta(jobs, theta);
  ASSERT_EQ(a.size(), 10U);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].job_id, b[i].job_id);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1].end_time, a[i].end_time);

  theta.seed = 90;
  const auto c = apply_theta(jobs, theta);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) differs = differs || c[i].job_id != a[i].job_id;
  EXPECT_TRUE(differs);
}

TEST(ApplyTheta, ThetaLargerThanWindowIsNoop) {
  std::vector<JobRecord> jobs{executed(1, "j", false, 1000)};
  ThetaConfig theta;
  theta.mode = ThetaConfig::Sampling::kRandom;
  theta.theta = 100;
  EXPECT_EQ(apply_theta(jobs, theta).size(), 1U);
}

// ------------------------------------------------------------ workflows

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 40 memory-bound "stream_app" + 40 compute-bound "dgemm_app" jobs
    // executed across 4 days.
    for (std::uint64_t i = 1; i <= 80; ++i) {
      const bool compute = i % 2 == 1;
      JobRecord job = executed(i, compute ? "dgemm_app" : "stream_app", compute,
                               base_ + static_cast<TimePoint>(i) * 3600);
      job.user_name = compute ? "u00002" : "u00001";
      store_.insert(std::move(job));
    }
  }

  TimePoint base_ = timepoint_from_ymd(2024, 1, 1) + 1000;
  JobStore store_;
  Characterizer characterizer_{fugaku_node_spec()};
  FeatureEncoder encoder_;
};

TEST_F(WorkflowTest, TrainingWorkflowProducesWorkingModel) {
  StoreDataFetcher fetcher(store_);
  EncodingCache cache(encoder_.dim());
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, &cache);

  ClassificationModel model(ModelKind::kKnn);
  const auto report = training.run(model, 0, timepoint_from_ymd(2024, 2, 1));
  EXPECT_EQ(report.jobs_fetched, 80U);
  EXPECT_EQ(report.jobs_used, 80U);
  EXPECT_EQ(report.uncharacterizable, 0U);
  EXPECT_TRUE(model.is_trained());
  EXPECT_EQ(report.cache_misses, 80U);

  // Inference on fresh submissions of the two app families.
  const InferenceWorkflow inference(fetcher, encoder_, &cache);
  std::vector<JobRecord> unseen{submission(100, "u00001", "stream_app"),
                                submission(101, "u00002", "dgemm_app")};
  const auto result = inference.run_jobs(model, unseen);
  ASSERT_EQ(result.predictions.size(), 2U);
  EXPECT_EQ(result.predictions[0], kLabelMemoryBound);
  EXPECT_EQ(result.predictions[1], kLabelComputeBound);
  EXPECT_EQ(result.job_ids[0], 100U);
}

TEST_F(WorkflowTest, EmptyWindowLeavesModelUntrained) {
  StoreDataFetcher fetcher(store_);
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, nullptr);
  ClassificationModel model(ModelKind::kKnn);
  const auto report = training.run(model, 0, 10);  // before any job
  EXPECT_EQ(report.jobs_used, 0U);
  EXPECT_FALSE(model.is_trained());
}

TEST_F(WorkflowTest, TrainingReportTimesArePopulated) {
  StoreDataFetcher fetcher(store_);
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, nullptr);
  ClassificationModel model(ModelKind::kRandomForest, {},
                            [] {
                              RandomForestConfig c;
                              c.n_trees = 5;
                              return c;
                            }());
  const auto report = training.run(model, 0, timepoint_from_ymd(2024, 2, 1));
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_GT(report.encode_seconds, 0.0);
  EXPECT_GE(report.characterize_seconds, 0.0);
}

TEST_F(WorkflowTest, InferenceWorkflowFetchesBySubmitTime) {
  StoreDataFetcher fetcher(store_);
  EncodingCache cache(encoder_.dim());
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, &cache);
  ClassificationModel model(ModelKind::kKnn);
  training.run(model, 0, timepoint_from_ymd(2024, 2, 1));

  const InferenceWorkflow inference(fetcher, encoder_, &cache);
  // All 80 jobs were submitted within the period.
  const auto result = inference.run(model, 0, timepoint_from_ymd(2024, 2, 1));
  EXPECT_EQ(result.size(), 80U);
  EXPECT_GE(result.seconds_per_job(), 0.0);
}

TEST_F(WorkflowTest, BaselineWorkflowLearnsLookup) {
  StoreDataFetcher fetcher(store_);
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, nullptr);
  LookupBaseline baseline;
  const auto report =
      training.run_baseline(baseline, 0, timepoint_from_ymd(2024, 2, 1));
  EXPECT_EQ(report.jobs_used, 80U);
  EXPECT_TRUE(baseline.is_fitted());

  const InferenceWorkflow inference(fetcher, encoder_, nullptr);
  std::vector<JobRecord> unseen{submission(200, "u00001", "stream_app"),
                                submission(201, "u00002", "dgemm_app")};
  const auto result = inference.run_jobs_baseline(baseline, unseen);
  EXPECT_EQ(result.predictions[0], kLabelMemoryBound);
  EXPECT_EQ(result.predictions[1], kLabelComputeBound);
}

TEST_F(WorkflowTest, ThetaRestrictsTrainingSize) {
  StoreDataFetcher fetcher(store_);
  const TrainingWorkflow training(fetcher, characterizer_, encoder_, nullptr);
  ClassificationModel model(ModelKind::kKnn);
  ThetaConfig theta;
  theta.mode = ThetaConfig::Sampling::kLatest;
  theta.theta = 10;
  const auto report = training.run(model, 0, timepoint_from_ymd(2024, 2, 1), theta);
  EXPECT_EQ(report.jobs_fetched, 80U);
  EXPECT_EQ(report.jobs_used, 10U);
}

// ------------------------------------------------------ online evaluator

TEST(OnlineEvaluator, PerfectlySeparableWorkloadScoresHigh) {
  JobStore store;
  const TimePoint start = timepoint_from_ymd(2023, 12, 1);
  const TimePoint test_start = timepoint_from_ymd(2023, 12, 20);
  const TimePoint test_end = timepoint_from_ymd(2023, 12, 27);
  std::uint64_t id = 0;
  for (TimePoint t = start; t < test_end; t += 3600) {
    const bool compute = (id % 2) == 1;
    JobRecord job = executed(id, compute ? "dgemm_app" : "stream_app", compute, t + 2000);
    job.user_name = compute ? "u2" : "u1";
    job.submit_time = t;
    job.start_time = t + 100;
    store.insert(std::move(job));
    ++id;
  }
  const Characterizer ch(fugaku_node_spec());
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, ch, encoder);

  OnlineEvalConfig config;
  config.alpha_days = 10;
  config.beta_days = 1;
  config.data_start = start;
  config.test_start = test_start;
  config.test_end = test_end;

  const auto result =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);
  EXPECT_EQ(result.retrains, 7U);
  EXPECT_GT(result.predictions, 100U);
  EXPECT_GT(result.f1_macro(), 0.99);
  EXPECT_GT(result.train_set_size.mean(), 0.0);
  EXPECT_GE(result.inference_seconds_per_job.mean(), 0.0);

  const auto baseline_result = evaluator.evaluate_baseline(config);
  EXPECT_GT(baseline_result.f1_macro(), 0.99);
}

TEST(OnlineEvaluator, SkipsWindowsWithoutData) {
  JobStore store;  // empty
  const Characterizer ch(fugaku_node_spec());
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, ch, encoder);
  OnlineEvalConfig config;
  config.data_start = 0;
  config.test_start = kSecondsPerDay * 10;
  config.test_end = kSecondsPerDay * 13;
  const auto result =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);
  EXPECT_EQ(result.retrains, 0U);
  EXPECT_EQ(result.skipped_windows, 3U);
  EXPECT_EQ(result.predictions, 0U);
}

TEST(OnlineEvaluator, GrowingWindowUsesAllHistory) {
  JobStore store;
  const TimePoint start = timepoint_from_ymd(2023, 12, 1);
  std::uint64_t id = 0;
  for (TimePoint t = start; t < start + 20 * kSecondsPerDay; t += 7200) {
    JobRecord job = executed(id, "stream_app", false, t + 2000);
    job.submit_time = t;
    job.start_time = t + 100;
    store.insert(std::move(job));
    ++id;
  }
  const Characterizer ch(fugaku_node_spec());
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, ch, encoder);

  OnlineEvalConfig config;
  config.alpha_days = 2;
  config.beta_days = 5;
  config.data_start = start;
  config.test_start = start + 15 * kSecondsPerDay;
  config.test_end = start + 20 * kSecondsPerDay;

  const auto sliding =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);
  config.growing_window = true;
  const auto growing =
      evaluator.evaluate([] { return ClassificationModel(ModelKind::kKnn); }, config);
  EXPECT_GT(growing.train_set_size.mean(), sliding.train_set_size.mean() * 3);
}

// --------------------------------------------------------- model registry

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "mcb_registry_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ClassificationModel trained_knn() {
    ClassificationModel model(ModelKind::kKnn);
    FeatureMatrix x(4, 2);
    for (int i = 0; i < 4; ++i) x.row(i)[0] = static_cast<float>(i);
    const std::vector<Label> y{0, 0, 1, 1};
    model.training(x.view(), y);
    return model;
  }

  std::string dir_;
};

TEST_F(RegistryTest, SaveAssignsIncreasingVersions) {
  ModelRegistry registry(dir_);
  const auto model = trained_knn();
  EXPECT_EQ(registry.save(model, "knn"), 1U);
  EXPECT_EQ(registry.save(model, "knn"), 2U);
  EXPECT_EQ(registry.save(model, "other"), 1U);
  EXPECT_EQ(registry.latest_version("knn"), 2U);
  EXPECT_EQ(registry.versions("knn").size(), 2U);
}

TEST_F(RegistryTest, LoadLatestAndSpecificVersion) {
  ModelRegistry registry(dir_);
  registry.save(trained_knn(), "knn");
  registry.save(trained_knn(), "knn");
  const auto latest = registry.load(ModelKind::kKnn, "knn");
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->is_trained());
  const auto v1 = registry.load(ModelKind::kKnn, "knn", 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_FALSE(registry.load(ModelKind::kKnn, "knn", 99).has_value());
  EXPECT_FALSE(registry.load(ModelKind::kKnn, "missing").has_value());
}

TEST_F(RegistryTest, PruneKeepsNewest) {
  ModelRegistry registry(dir_);
  for (int i = 0; i < 5; ++i) registry.save(trained_knn(), "knn");
  EXPECT_EQ(registry.prune("knn", 2), 3U);
  const auto versions = registry.versions("knn");
  ASSERT_EQ(versions.size(), 2U);
  EXPECT_EQ(versions[0], 4U);
  EXPECT_EQ(versions[1], 5U);
}

TEST_F(RegistryTest, CorruptFileIsRejectedNotCrashing) {
  ModelRegistry registry(dir_);
  registry.save(trained_knn(), "knn");
  // Overwrite the stored version with garbage.
  {
    std::ofstream out(registry.path_for("knn", 1), std::ios::binary | std::ios::trunc);
    out << "this is not a model file";
  }
  EXPECT_FALSE(registry.load(ModelKind::kKnn, "knn").has_value());
  // A subsequent save still picks the next version number.
  EXPECT_EQ(registry.save(trained_knn(), "knn"), 2U);
  EXPECT_TRUE(registry.load(ModelKind::kKnn, "knn", 2).has_value());
}

TEST_F(RegistryTest, ForeignFilesInRegistryDirAreIgnored) {
  ModelRegistry registry(dir_);
  {
    std::ofstream out(dir_ + "/README.txt");
    out << "not a model";
  }
  {
    std::ofstream out(dir_ + "/knn-vX.mcbm");  // malformed version
    out << "junk";
  }
  EXPECT_TRUE(registry.versions("knn").empty());
  EXPECT_FALSE(registry.latest_version("knn").has_value());
}

TEST_F(RegistryTest, LoadRejectsWrongKind) {
  ModelRegistry registry(dir_);
  registry.save(trained_knn(), "knn");
  EXPECT_FALSE(registry.load(ModelKind::kRandomForest, "knn").has_value());
}

// ----------------------------------------------------------------- config

TEST(Config, DefaultsRoundTripThroughJson) {
  const FrameworkConfig original;
  std::string error;
  const auto parsed = FrameworkConfig::from_json(original.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->alpha_days, original.alpha_days);
  EXPECT_EQ(parsed->beta_days, original.beta_days);
  EXPECT_EQ(parsed->model, original.model);
  EXPECT_EQ(parsed->features, original.features);
  EXPECT_EQ(parsed->encoder.dim, original.encoder.dim);
  EXPECT_DOUBLE_EQ(parsed->machine.peak_gflops, original.machine.peak_gflops);
}

TEST(Config, RejectsUnknownKeys) {
  std::string error;
  const auto json = Json::parse(R"({"alpha_dayz": 15})");
  EXPECT_FALSE(FrameworkConfig::from_json(*json, &error).has_value());
  EXPECT_NE(error.find("alpha_dayz"), std::string::npos);
}

TEST(Config, RejectsInvalidValues) {
  std::string error;
  EXPECT_FALSE(
      FrameworkConfig::from_json(*Json::parse(R"({"alpha_days": 0})"), &error).has_value());
  EXPECT_FALSE(
      FrameworkConfig::from_json(*Json::parse(R"({"model": {"kind": "svm"}})"), &error)
          .has_value());
  EXPECT_FALSE(
      FrameworkConfig::from_json(*Json::parse(R"({"features": ["bogus"]})"), &error)
          .has_value());
  EXPECT_FALSE(FrameworkConfig::from_json(
                   *Json::parse(R"({"machine": {"peak_gflops": -1}})"), &error)
                   .has_value());
}

TEST(Config, ParsesPartialOverrides) {
  const auto json = Json::parse(
      R"({"model": {"kind": "knn", "knn_k": 7}, "alpha_days": 30, "theta": {"mode": "random", "theta": 100}})");
  const auto config = FrameworkConfig::from_json(*json);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->model, ModelKind::kKnn);
  EXPECT_EQ(config->knn.k, 7U);
  EXPECT_EQ(config->alpha_days, 30);
  EXPECT_EQ(config->theta.mode, ThetaConfig::Sampling::kRandom);
  EXPECT_EQ(config->theta.theta, 100U);
}

TEST(Config, KnnIndexKnobsRoundTripAndValidate) {
  const auto json = Json::parse(
      R"({"model": {"kind": "knn", "knn_index_mode": "ivf", "knn_index_min_rows": 64,
                    "knn_index_leaf_size": 32, "knn_index_ivf_clusters": 16,
                    "knn_index_ivf_nprobe": 4}})");
  std::string error;
  const auto config = FrameworkConfig::from_json(*json, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->knn.index.mode, KnnIndexMode::kIvfFlat);
  EXPECT_EQ(config->knn.index.min_rows, 64U);
  EXPECT_EQ(config->knn.index.leaf_size, 32U);
  EXPECT_EQ(config->knn.index.ivf_clusters, 16U);
  EXPECT_EQ(config->knn.index.ivf_nprobe, 4U);

  // to_json carries the knobs back out.
  const auto reparsed = FrameworkConfig::from_json(config->to_json(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->knn.index.mode, KnnIndexMode::kIvfFlat);
  EXPECT_EQ(reparsed->knn.index.ivf_clusters, 16U);

  EXPECT_FALSE(FrameworkConfig::from_json(
                   *Json::parse(R"({"model": {"knn_index_mode": "quadtree"}})"), &error)
                   .has_value());
  EXPECT_NE(error.find("knn_index_mode"), std::string::npos);
  EXPECT_FALSE(FrameworkConfig::from_json(
                   *Json::parse(R"({"model": {"knn_index_leaf_size": 0}})"), &error)
                   .has_value());
}

TEST(Config, FileRoundTrip) {
  const std::string path = (fs::temp_directory_path() / "mcb_config_test.json").string();
  FrameworkConfig config;
  config.alpha_days = 30;
  config.model = ModelKind::kKnn;
  ASSERT_TRUE(config.save_file(path));
  std::string error;
  const auto loaded = FrameworkConfig::load_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->alpha_days, 30);
  EXPECT_EQ(loaded->model, ModelKind::kKnn);
  fs::remove(path);
}

TEST(Config, ParseJobFeatureNames) {
  EXPECT_EQ(*parse_job_feature("user_name"), JobFeature::kUserName);
  EXPECT_EQ(*parse_job_feature("frequency"), JobFeature::kFrequency);
  EXPECT_FALSE(parse_job_feature("gpu_count").has_value());
}

// -------------------------------------------------------------- framework

TEST(Framework, TrainPredictAndRegistryLifecycle) {
  const std::string registry_dir =
      (fs::temp_directory_path() / "mcb_framework_test").string();
  fs::remove_all(registry_dir);

  JobStore store;
  const TimePoint base = timepoint_from_ymd(2024, 1, 10);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const bool compute = i % 2 == 1;
    JobRecord job = executed(i, compute ? "dgemm_app" : "stream_app", compute,
                             base + static_cast<TimePoint>(i) * 3600);
    job.user_name = compute ? "u2" : "u1";
    store.insert(std::move(job));
  }

  FrameworkConfig config;
  config.registry_dir = registry_dir;
  config.model = ModelKind::kKnn;
  config.alpha_days = 30;
  Framework framework(config, store);
  EXPECT_FALSE(framework.has_model());
  EXPECT_FALSE(framework.predict_job(submission(1, "u1", "stream_app")).has_value());

  const auto report = framework.train_now(base + 100 * 3600);
  EXPECT_GT(report.jobs_used, 0U);
  EXPECT_TRUE(framework.has_model());
  EXPECT_EQ(framework.model_version(), 1U);

  const auto label = framework.predict_job(submission(1000, "u1", "stream_app"));
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, Boundedness::kMemoryBound);
  const auto label2 = framework.predict_job(submission(1001, "u2", "dgemm_app"));
  ASSERT_TRUE(label2.has_value());
  EXPECT_EQ(*label2, Boundedness::kComputeBound);

  // A fresh framework can warm-start from the registry.
  Framework warm(config, store);
  EXPECT_FALSE(warm.has_model());
  EXPECT_TRUE(warm.load_latest_model());
  EXPECT_TRUE(warm.has_model());
  const auto warm_label = warm.predict_job(submission(2000, "u2", "dgemm_app"));
  ASSERT_TRUE(warm_label.has_value());
  EXPECT_EQ(*warm_label, Boundedness::kComputeBound);

  // Characterization is available without a model.
  EXPECT_EQ(*framework.characterize_job(executed(5000, "x", true, base + 1'000'000)),
            Boundedness::kComputeBound);

  fs::remove_all(registry_dir);
}

TEST(Framework, PredictRangeUsesSubmitTimes) {
  const std::string registry_dir =
      (fs::temp_directory_path() / "mcb_framework_range").string();
  fs::remove_all(registry_dir);

  JobStore store;
  const TimePoint base = timepoint_from_ymd(2024, 1, 10);
  for (std::uint64_t i = 0; i < 40; ++i) {
    JobRecord job = executed(i, "stream_app", false, base + static_cast<TimePoint>(i) * 3600);
    store.insert(std::move(job));
  }
  FrameworkConfig config;
  config.registry_dir = registry_dir;
  config.model = ModelKind::kKnn;
  Framework framework(config, store);
  framework.train_now(base + 40 * 3600);
  const auto report = framework.predict_range(base - 2000, base + 40 * 3600);
  EXPECT_EQ(report.size(), 40U);
  fs::remove_all(registry_dir);
}

}  // namespace
}  // namespace mcb
