// Tests for the dispatching simulator (src/sched): event-engine
// invariants, the frequency-advisor physics and the co-scheduling
// policy, plus make_dispatch_jobs normalization.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/dispatch.hpp"
#include "util/rng.hpp"

namespace mcb {
namespace {

DispatchJob simple_job(std::uint64_t id, TimePoint submit, std::uint32_t nodes,
                       double duration, Boundedness truth,
                       Boundedness predicted, FrequencyMode freq = FrequencyMode::kNormal,
                       double power = 1000.0) {
  DispatchJob job;
  job.job_id = id;
  job.submit_time = submit;
  job.nodes = nodes;
  job.base_duration_s = duration;
  job.base_power_w = power;
  job.truth = truth;
  job.predicted = predicted;
  job.user_frequency = freq;
  return job;
}

DispatchConfig exclusive_config(std::uint32_t nodes) {
  DispatchConfig config;
  config.total_nodes = nodes;
  return config;
}

// ------------------------------------------------------------- engine

TEST(Dispatch, EmptyInput) {
  const auto result = simulate_dispatch({}, exclusive_config(10));
  EXPECT_EQ(result.jobs_completed, 0U);
  EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
}

TEST(Dispatch, SingleJobRunsImmediately) {
  const std::vector<DispatchJob> jobs{
      simple_job(1, 100, 4, 600.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, exclusive_config(10));
  EXPECT_EQ(result.jobs_completed, 1U);
  EXPECT_DOUBLE_EQ(result.mean_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 600.0);
  EXPECT_NEAR(result.total_energy_gj, 1000.0 * 600.0 / 1e9, 1e-12);
  EXPECT_NEAR(result.node_seconds_busy, 4 * 600.0, 1e-6);
}

TEST(Dispatch, FcfsQueueingWhenFull) {
  // Two 8-node jobs on a 10-node cluster: second waits for the first.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 0, 8, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, exclusive_config(10));
  EXPECT_EQ(result.jobs_completed, 2U);
  EXPECT_DOUBLE_EQ(result.makespan_s, 200.0);
  EXPECT_DOUBLE_EQ(result.mean_wait_s, 50.0);  // 0 and 100
}

TEST(Dispatch, ParallelWhenCapacityAllows) {
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 4, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 0, 4, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, exclusive_config(10));
  EXPECT_DOUBLE_EQ(result.makespan_s, 100.0);
  EXPECT_DOUBLE_EQ(result.mean_wait_s, 0.0);
}

TEST(Dispatch, OversizedJobTruncatedToCluster) {
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 100, 50.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, exclusive_config(10));
  EXPECT_EQ(result.jobs_completed, 1U);
  EXPECT_DOUBLE_EQ(result.makespan_s, 50.0);
}

TEST(Dispatch, NoFrequencyOverridesWithoutAdvisor) {
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 1, 100.0, Boundedness::kComputeBound, Boundedness::kComputeBound,
                 FrequencyMode::kNormal)};
  const auto result = simulate_dispatch(jobs, exclusive_config(4));
  EXPECT_EQ(result.frequency_overrides, 0U);
  EXPECT_DOUBLE_EQ(result.makespan_s, 100.0);  // user freq honored: no speedup
}

// ------------------------------------------------------------ advisor

TEST(Dispatch, AdvisorBoostsTrueComputeBound) {
  DispatchConfig config = exclusive_config(4);
  config.frequency_advisor = true;
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 1, 100.0, Boundedness::kComputeBound, Boundedness::kComputeBound,
                 FrequencyMode::kNormal)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.frequency_overrides, 1U);
  EXPECT_NEAR(result.makespan_s, 90.0, 1e-9);  // 10% faster at boost
}

TEST(Dispatch, AdvisorMovesMemoryBoundToNormalSavingPower) {
  DispatchConfig config = exclusive_config(4);
  config.frequency_advisor = true;
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 1, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound,
                 FrequencyMode::kBoost, 1000.0)};
  const auto no_advisor = simulate_dispatch(jobs, exclusive_config(4));
  const auto with_advisor = simulate_dispatch(jobs, config);
  // Same duration (memory-bound gains nothing from clock), less energy.
  EXPECT_DOUBLE_EQ(with_advisor.makespan_s, no_advisor.makespan_s);
  EXPECT_LT(with_advisor.total_energy_gj, no_advisor.total_energy_gj);
  EXPECT_EQ(with_advisor.frequency_overrides, 1U);
}

TEST(Dispatch, MispredictedMemoryJobBurnsBoostPowerForNothing) {
  DispatchConfig config = exclusive_config(4);
  config.frequency_advisor = true;
  // Truly memory-bound, predicted compute-bound -> advisor picks boost.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 1, 100.0, Boundedness::kMemoryBound, Boundedness::kComputeBound,
                 FrequencyMode::kNormal, 1000.0)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_NEAR(result.makespan_s, 100.0, 1e-9);  // no speedup
  EXPECT_GT(result.total_energy_gj, 1000.0 * 100.0 / 1e9);  // boost power paid
}

// -------------------------------------------------------- co-schedule

TEST(Dispatch, CoSchedulesComplementaryPairWhenBlocked) {
  DispatchConfig config = exclusive_config(8);
  config.co_schedule = true;
  // Job 1 fills the cluster; job 2 (complementary) co-locates instead of
  // waiting for it.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 1000.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 10, 4, 500.0, Boundedness::kComputeBound, Boundedness::kComputeBound)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.co_scheduled_jobs, 1U);
  EXPECT_EQ(result.conflict_pairs, 0U);
  // Partner starts at its arrival, inflated by the compute-share factor.
  EXPECT_NEAR(result.makespan_s, 1000.0, 1e-6);
  const auto exclusive = simulate_dispatch(jobs, exclusive_config(8));
  EXPECT_LT(result.mean_wait_s, exclusive.mean_wait_s);
}

TEST(Dispatch, NoCoScheduleOfSamePredictedType) {
  DispatchConfig config = exclusive_config(8);
  config.co_schedule = true;
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 1000.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 10, 4, 500.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.co_scheduled_jobs, 0U);
  EXPECT_NEAR(result.makespan_s, 1500.0, 1e-6);  // strictly sequential
}

TEST(Dispatch, MispredictionCreatesConflictPairWithHeavySlowdown) {
  DispatchConfig config = exclusive_config(8);
  config.co_schedule = true;
  // Partner predicted compute (so it co-schedules) but truly memory:
  // same-type pair -> conflict slowdown applies.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 1000.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 10, 4, 500.0, Boundedness::kMemoryBound, Boundedness::kComputeBound)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.co_scheduled_jobs, 1U);
  EXPECT_EQ(result.conflict_pairs, 1U);
}

TEST(Dispatch, FitInTimeGuardRejectsLongPartners) {
  DispatchConfig config = exclusive_config(8);
  config.co_schedule = true;
  // Partner would outlive the host by far -> must queue instead.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 10, 4, 5000.0, Boundedness::kComputeBound,
                 Boundedness::kComputeBound)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.co_scheduled_jobs, 0U);
}

TEST(Dispatch, NodesReleasedAfterBothPartnersFinish) {
  DispatchConfig config = exclusive_config(8);
  config.co_schedule = true;
  // Host (8 nodes, 1000 s), partner co-located (ends ~585 s), and a third
  // exclusive job that must wait for the full allocation to clear.
  const std::vector<DispatchJob> jobs{
      simple_job(1, 0, 8, 1000.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound),
      simple_job(2, 10, 4, 500.0, Boundedness::kComputeBound, Boundedness::kComputeBound),
      simple_job(3, 20, 8, 100.0, Boundedness::kMemoryBound, Boundedness::kMemoryBound)};
  const auto result = simulate_dispatch(jobs, config);
  EXPECT_EQ(result.jobs_completed, 3U);
  EXPECT_NEAR(result.makespan_s, 1100.0, 1e-6);  // job 3 starts at 1000
}

// -------------------------------------------------- make_dispatch_jobs

TEST(MakeDispatchJobs, NormalizesBoostDurationsAndPower) {
  const Characterizer ch(fugaku_node_spec());
  JobRecord compute_boost;
  compute_boost.job_id = 1;
  compute_boost.job_name = "x";
  compute_boost.nodes_allocated = 2;
  compute_boost.frequency = FrequencyMode::kBoost;
  compute_boost.submit_time = 100;
  compute_boost.start_time = 200;
  compute_boost.end_time = 200 + 900;  // 900 s at boost
  compute_boost.perf2 = 1e16;          // clearly compute-bound
  compute_boost.perf4 = compute_boost.perf5 = 1e6;
  compute_boost.avg_power_watts = 2353.0;

  const std::vector<JobRecord> records{compute_boost};
  const std::vector<Boundedness> predicted{Boundedness::kComputeBound};
  const auto jobs = make_dispatch_jobs(records, predicted, ch);
  ASSERT_EQ(jobs.size(), 1U);
  // 900 s at boost -> 1000 s at normal.
  EXPECT_NEAR(jobs[0].base_duration_s, 1000.0, 1e-6);
  // Power normalized back to normal mode (divided by 1.1765).
  EXPECT_NEAR(jobs[0].base_power_w, 2353.0 / (1.0 + 0.1765), 1e-6);
  EXPECT_EQ(jobs[0].truth, Boundedness::kComputeBound);
}

TEST(MakeDispatchJobs, SkipsUncharacterizableAndSortsBySubmit) {
  const Characterizer ch(fugaku_node_spec());
  JobRecord bad;
  bad.job_id = 1;
  bad.start_time = bad.end_time = 5;  // zero duration
  JobRecord late, early;
  late.job_id = 2;
  late.submit_time = 1000;
  late.start_time = 1100;
  late.end_time = 1400;
  late.perf2 = 1e6;
  late.perf4 = late.perf5 = 1e12;
  late.nodes_allocated = 1;
  early = late;
  early.job_id = 3;
  early.submit_time = 500;

  const std::vector<JobRecord> records{bad, late, early};
  const std::vector<Boundedness> predicted(3, Boundedness::kMemoryBound);
  const auto jobs = make_dispatch_jobs(records, predicted, ch);
  ASSERT_EQ(jobs.size(), 2U);
  EXPECT_EQ(jobs[0].job_id, 3U);
  EXPECT_EQ(jobs[1].job_id, 2U);
}

// ------------------------------------------------ conservation property

class DispatchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispatchProperty, AllJobsCompleteUnderEveryPolicy) {
  Rng rng(GetParam());
  std::vector<DispatchJob> jobs;
  TimePoint t = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    t += static_cast<TimePoint>(rng.exponential(1.0 / 120.0));
    const bool mem_truth = rng.bernoulli(0.75);
    const bool correct = rng.bernoulli(0.9);
    jobs.push_back(simple_job(
        i + 1, t, static_cast<std::uint32_t>(1 + rng.bounded(12)),
        60.0 + rng.exponential(1.0 / 1800.0),
        mem_truth ? Boundedness::kMemoryBound : Boundedness::kComputeBound,
        (mem_truth == correct) ? Boundedness::kMemoryBound : Boundedness::kComputeBound,
        rng.bernoulli(0.4) ? FrequencyMode::kBoost : FrequencyMode::kNormal,
        500.0 + rng.uniform() * 2000.0));
  }
  for (const bool advisor : {false, true}) {
    for (const bool coschedule : {false, true}) {
      DispatchConfig config = exclusive_config(16);
      config.frequency_advisor = advisor;
      config.co_schedule = coschedule;
      const auto result = simulate_dispatch(jobs, config);
      EXPECT_EQ(result.jobs_completed, jobs.size());
      EXPECT_GT(result.makespan_s, 0.0);
      EXPECT_GE(result.mean_wait_s, 0.0);
      EXPECT_GT(result.total_energy_gj, 0.0);
      EXPECT_GE(result.p95_wait_s, result.mean_wait_s * 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchProperty, ::testing::Values(1, 22, 520));

}  // namespace
}  // namespace mcb
