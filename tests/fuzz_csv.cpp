// Fuzz/property harness for the CSV layer and the JobStore reader.
//
// Properties checked on arbitrary bytes:
//   P1  csv_parse_line never crashes on any single line.
//   P2  quote/parse round trip: re-serializing a parsed row with
//       csv_row() and parsing it again yields the identical fields.
//   P3  JobStore::load_csv on hostile input never crashes, hangs or
//       aborts — it either loads or reports a diagnostic through the
//       error out-parameter.
//   P4  on successful load every record is findable by id (ids unique)
//       and a save/reload round trip preserves the record count.
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "data/job_record.hpp"
#include "data/job_store.hpp"
#include "util/csv.hpp"
#include "tests/fuzz_common.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_csv: property violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

int mcb_fuzz_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view raw =
      size > 0 ? std::string_view(reinterpret_cast<const char*>(data), size)
               : std::string_view{};

  // P1/P2 per input line.
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string_view::npos) end = raw.size();
    const std::string_view line = raw.substr(start, end - start);

    const std::vector<std::string> fields = mcb::csv_parse_line(line);   // P1
    check(!fields.empty(), "P1 a line always yields at least one field");

    std::string rewritten = mcb::csv_row(fields);                        // P2
    check(!rewritten.empty() && rewritten.back() == '\n', "P2 csv_row appends newline");
    rewritten.pop_back();
    check(mcb::csv_parse_line(rewritten) == fields, "P2 quote/parse round trip");

    if (end == raw.size()) break;
    start = end + 1;
  }

  // P3: the JobStore reader on the raw bytes.
  std::istringstream in{std::string(raw)};
  mcb::JobStore store;
  std::string error;
  const bool loaded = store.load_csv(in, &error);
  check(loaded || !error.empty(), "P3 failure always carries a diagnostic");

  if (loaded && !store.empty()) {                                        // P4
    for (const auto& job : store.all()) {
      const mcb::JobRecord* found = store.find(job.job_id);
      check(found != nullptr && found->job_id == job.job_id, "P4 id lookup");
    }
    std::ostringstream out;
    mcb::CsvWriter writer(out);
    writer.write_row(mcb::job_csv_header());
    for (const auto& job : store.all()) writer.write_row(mcb::job_to_csv(job));
    std::istringstream again{out.str()};
    mcb::JobStore reloaded;
    check(reloaded.load_csv(again, &error), "P4 saved store always reloads");
    check(reloaded.size() == store.size(), "P4 round trip preserves count");
  }
  return 0;
}
