// Tests for the annotated synchronization wrappers (util/sync.hpp).
//
// The wrappers exist so Clang's thread-safety analysis can see every
// lock acquisition at compile time; these tests pin down the *runtime*
// semantics the annotations promise: mutual exclusion, shared/exclusive
// compatibility, scoped release (including early unlock/relock), and
// the CondVar timeout contract.
//
// Try-lock results are always branched on through a named local (never
// fed straight into EXPECT_*): the thread-safety analysis tracks the
// capability through the branch, but not through gtest's macro plumbing.

#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace mcb {
namespace {

// try_lock + immediate release; reports whether the lock was available.
bool probe_exclusive(Mutex& mu) {
  if (mu.try_lock()) {
    mu.unlock();
    return true;
  }
  return false;
}

bool probe_exclusive(SharedMutex& mu) {
  if (mu.try_lock()) {
    mu.unlock();
    return true;
  }
  return false;
}

bool probe_shared(SharedMutex& mu) {
  if (mu.try_lock_shared()) {
    mu.unlock_shared();
    return true;
  }
  return false;
}

TEST(Mutex, TryLockFailsWhileHeld) {
  Mutex mu;
  mu.lock();
  std::atomic<bool> other_got_it{false};
  std::thread other([&] { other_got_it.store(probe_exclusive(mu)); });
  other.join();
  EXPECT_FALSE(other_got_it.load());
  mu.unlock();
  EXPECT_TRUE(probe_exclusive(mu));  // and succeeds once released
}

TEST(Mutex, ScopedLockExcludesConcurrentIncrements) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexLock, EarlyUnlockAndRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  // The mutex really is free after the early release.
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    MutexLock inner(mu);
    acquired.store(true);
  });
  other.join();
  EXPECT_TRUE(acquired.load());
  lock.lock();  // reacquire; destructor releases
}

TEST(SharedMutex, ManyReadersOneWriter) {
  SharedMutex mu;
  mu.lock_shared();
  // A second shared holder coexists with the first...
  EXPECT_TRUE(probe_shared(mu));
  // ...and a writer is excluded until the share is released.
  EXPECT_FALSE(probe_exclusive(mu));
  mu.unlock_shared();
  EXPECT_TRUE(probe_exclusive(mu));
  // A held writer excludes readers.
  mu.lock();
  EXPECT_FALSE(probe_shared(mu));
  mu.unlock();
}

TEST(SharedMutex, ScopedGuardsCompose) {
  SharedMutex mu;
  int value = 0;
  {
    ExclusiveLock writer(mu);
    value = 42;
  }
  {
    SharedLock r1(mu);
    SharedLock r2(mu);  // second shared holder is fine
    EXPECT_EQ(value, 42);
    EXPECT_FALSE(probe_exclusive(mu));  // writer excluded while readers hold
  }
  EXPECT_TRUE(probe_exclusive(mu));
}

TEST(SharedLock, EarlyUnlockReleasesShare) {
  SharedMutex mu;
  SharedLock lock(mu);
  EXPECT_FALSE(probe_exclusive(mu));
  lock.unlock();
  EXPECT_TRUE(probe_exclusive(mu));
}

TEST(CondVar, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();  // deadlocks here if the wait never wakes
}

TEST(CondVar, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody notifies: the deadline variants must return false and leave
  // the mutex held (guarded state stays reachable afterwards).
  EXPECT_FALSE(cv.wait_for(mu, std::chrono::milliseconds(10)));
  EXPECT_FALSE(cv.wait_until(
      mu, std::chrono::steady_clock::now() + std::chrono::milliseconds(10)));
}

TEST(CondVar, WaitUntilSeesNotification) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool ok = true;
    while (!ready && ok) ok = cv.wait_until(mu, deadline);
    EXPECT_TRUE(ready) << "waiter timed out despite a notification";
  }
  notifier.join();
}

}  // namespace
}  // namespace mcb
