# Empty dependencies file for bench_table2_jobtypes.
# This may be replaced when dependencies are built.
