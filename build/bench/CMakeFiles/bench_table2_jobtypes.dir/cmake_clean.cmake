file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_jobtypes.dir/bench_table2_jobtypes.cpp.o"
  "CMakeFiles/bench_table2_jobtypes.dir/bench_table2_jobtypes.cpp.o.d"
  "bench_table2_jobtypes"
  "bench_table2_jobtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_jobtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
