file(REMOVE_RECURSE
  "CMakeFiles/bench_future_predictions.dir/bench_future_predictions.cpp.o"
  "CMakeFiles/bench_future_predictions.dir/bench_future_predictions.cpp.o.d"
  "bench_future_predictions"
  "bench_future_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
