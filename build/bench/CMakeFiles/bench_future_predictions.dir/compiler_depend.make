# Empty compiler generated dependencies file for bench_future_predictions.
# This may be replaced when dependencies are built.
