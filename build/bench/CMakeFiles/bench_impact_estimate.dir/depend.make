# Empty dependencies file for bench_impact_estimate.
# This may be replaced when dependencies are built.
