file(REMOVE_RECURSE
  "CMakeFiles/bench_impact_estimate.dir/bench_impact_estimate.cpp.o"
  "CMakeFiles/bench_impact_estimate.dir/bench_impact_estimate.cpp.o.d"
  "bench_impact_estimate"
  "bench_impact_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impact_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
