# Empty dependencies file for bench_fig4_types_over_time.
# This may be replaced when dependencies are built.
