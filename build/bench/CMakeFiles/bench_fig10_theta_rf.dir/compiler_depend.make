# Empty compiler generated dependencies file for bench_fig10_theta_rf.
# This may be replaced when dependencies are built.
