file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_theta_rf.dir/bench_fig10_theta_rf.cpp.o"
  "CMakeFiles/bench_fig10_theta_rf.dir/bench_fig10_theta_rf.cpp.o.d"
  "bench_fig10_theta_rf"
  "bench_fig10_theta_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_theta_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
