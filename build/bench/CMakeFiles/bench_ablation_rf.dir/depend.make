# Empty dependencies file for bench_ablation_rf.
# This may be replaced when dependencies are built.
