# Empty dependencies file for bench_alpha_plus.
# This may be replaced when dependencies are built.
