file(REMOVE_RECURSE
  "CMakeFiles/bench_alpha_plus.dir/bench_alpha_plus.cpp.o"
  "CMakeFiles/bench_alpha_plus.dir/bench_alpha_plus.cpp.o.d"
  "bench_alpha_plus"
  "bench_alpha_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alpha_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
