# Empty dependencies file for bench_fig5_roofline_freq.
# This may be replaced when dependencies are built.
