file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_roofline.dir/bench_fig3_roofline.cpp.o"
  "CMakeFiles/bench_fig3_roofline.dir/bench_fig3_roofline.cpp.o.d"
  "bench_fig3_roofline"
  "bench_fig3_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
