# Empty dependencies file for bench_fig2_submissions.
# This may be replaced when dependencies are built.
