file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_submissions.dir/bench_fig2_submissions.cpp.o"
  "CMakeFiles/bench_fig2_submissions.dir/bench_fig2_submissions.cpp.o.d"
  "bench_fig2_submissions"
  "bench_fig2_submissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_submissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
