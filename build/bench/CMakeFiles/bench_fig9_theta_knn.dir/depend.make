# Empty dependencies file for bench_fig9_theta_knn.
# This may be replaced when dependencies are built.
