file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_sets.dir/bench_feature_sets.cpp.o"
  "CMakeFiles/bench_feature_sets.dir/bench_feature_sets.cpp.o.d"
  "bench_feature_sets"
  "bench_feature_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
