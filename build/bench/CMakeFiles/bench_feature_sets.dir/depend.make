# Empty dependencies file for bench_feature_sets.
# This may be replaced when dependencies are built.
