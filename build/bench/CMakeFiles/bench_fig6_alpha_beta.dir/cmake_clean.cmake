file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_alpha_beta.dir/bench_fig6_alpha_beta.cpp.o"
  "CMakeFiles/bench_fig6_alpha_beta.dir/bench_fig6_alpha_beta.cpp.o.d"
  "bench_fig6_alpha_beta"
  "bench_fig6_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
