file(REMOVE_RECURSE
  "CMakeFiles/mcbound_cli.dir/mcbound_cli.cpp.o"
  "CMakeFiles/mcbound_cli.dir/mcbound_cli.cpp.o.d"
  "mcbound"
  "mcbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcbound_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
