# Empty compiler generated dependencies file for mcbound_cli.
# This may be replaced when dependencies are built.
