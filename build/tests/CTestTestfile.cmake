# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/tests/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_roofline "/root/repo/build/tests/test_roofline")
set_tests_properties(test_roofline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_text "/root/repo/build/tests/test_text")
set_tests_properties(test_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ml "/root/repo/build/tests/test_ml")
set_tests_properties(test_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_serve "/root/repo/build/tests/test_serve")
set_tests_properties(test_serve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;mcb_add_test;/root/repo/tests/CMakeLists.txt;0;")
