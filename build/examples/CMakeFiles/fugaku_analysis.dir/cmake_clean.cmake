file(REMOVE_RECURSE
  "CMakeFiles/fugaku_analysis.dir/fugaku_analysis.cpp.o"
  "CMakeFiles/fugaku_analysis.dir/fugaku_analysis.cpp.o.d"
  "fugaku_analysis"
  "fugaku_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fugaku_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
