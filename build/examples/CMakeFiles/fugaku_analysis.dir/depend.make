# Empty dependencies file for fugaku_analysis.
# This may be replaced when dependencies are built.
