# Empty compiler generated dependencies file for online_deployment.
# This may be replaced when dependencies are built.
