file(REMOVE_RECURSE
  "CMakeFiles/online_deployment.dir/online_deployment.cpp.o"
  "CMakeFiles/online_deployment.dir/online_deployment.cpp.o.d"
  "online_deployment"
  "online_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
