# Empty compiler generated dependencies file for mcbound.
# This may be replaced when dependencies are built.
