
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classification_model.cpp" "src/core/CMakeFiles/mcbound.dir/classification_model.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/classification_model.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/mcbound.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/config.cpp.o.d"
  "/root/repo/src/core/feature_encoder.cpp" "src/core/CMakeFiles/mcbound.dir/feature_encoder.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/feature_encoder.cpp.o.d"
  "/root/repo/src/core/mcbound.cpp" "src/core/CMakeFiles/mcbound.dir/mcbound.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/mcbound.cpp.o.d"
  "/root/repo/src/core/model_registry.cpp" "src/core/CMakeFiles/mcbound.dir/model_registry.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/model_registry.cpp.o.d"
  "/root/repo/src/core/online_evaluator.cpp" "src/core/CMakeFiles/mcbound.dir/online_evaluator.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/online_evaluator.cpp.o.d"
  "/root/repo/src/core/workflows.cpp" "src/core/CMakeFiles/mcbound.dir/workflows.cpp.o" "gcc" "src/core/CMakeFiles/mcbound.dir/workflows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/mcb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/mcb_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mcb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mcb_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
