file(REMOVE_RECURSE
  "libmcbound.a"
)
