file(REMOVE_RECURSE
  "CMakeFiles/mcbound.dir/classification_model.cpp.o"
  "CMakeFiles/mcbound.dir/classification_model.cpp.o.d"
  "CMakeFiles/mcbound.dir/config.cpp.o"
  "CMakeFiles/mcbound.dir/config.cpp.o.d"
  "CMakeFiles/mcbound.dir/feature_encoder.cpp.o"
  "CMakeFiles/mcbound.dir/feature_encoder.cpp.o.d"
  "CMakeFiles/mcbound.dir/mcbound.cpp.o"
  "CMakeFiles/mcbound.dir/mcbound.cpp.o.d"
  "CMakeFiles/mcbound.dir/model_registry.cpp.o"
  "CMakeFiles/mcbound.dir/model_registry.cpp.o.d"
  "CMakeFiles/mcbound.dir/online_evaluator.cpp.o"
  "CMakeFiles/mcbound.dir/online_evaluator.cpp.o.d"
  "CMakeFiles/mcbound.dir/workflows.cpp.o"
  "CMakeFiles/mcbound.dir/workflows.cpp.o.d"
  "libmcbound.a"
  "libmcbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
