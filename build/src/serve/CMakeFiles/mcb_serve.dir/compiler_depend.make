# Empty compiler generated dependencies file for mcb_serve.
# This may be replaced when dependencies are built.
