file(REMOVE_RECURSE
  "CMakeFiles/mcb_serve.dir/api.cpp.o"
  "CMakeFiles/mcb_serve.dir/api.cpp.o.d"
  "CMakeFiles/mcb_serve.dir/http.cpp.o"
  "CMakeFiles/mcb_serve.dir/http.cpp.o.d"
  "CMakeFiles/mcb_serve.dir/server.cpp.o"
  "CMakeFiles/mcb_serve.dir/server.cpp.o.d"
  "libmcb_serve.a"
  "libmcb_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
