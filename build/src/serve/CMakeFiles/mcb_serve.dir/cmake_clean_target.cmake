file(REMOVE_RECURSE
  "libmcb_serve.a"
)
