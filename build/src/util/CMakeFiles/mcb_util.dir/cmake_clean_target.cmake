file(REMOVE_RECURSE
  "libmcb_util.a"
)
