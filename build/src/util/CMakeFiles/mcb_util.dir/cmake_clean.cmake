file(REMOVE_RECURSE
  "CMakeFiles/mcb_util.dir/cli.cpp.o"
  "CMakeFiles/mcb_util.dir/cli.cpp.o.d"
  "CMakeFiles/mcb_util.dir/csv.cpp.o"
  "CMakeFiles/mcb_util.dir/csv.cpp.o.d"
  "CMakeFiles/mcb_util.dir/histogram.cpp.o"
  "CMakeFiles/mcb_util.dir/histogram.cpp.o.d"
  "CMakeFiles/mcb_util.dir/json.cpp.o"
  "CMakeFiles/mcb_util.dir/json.cpp.o.d"
  "CMakeFiles/mcb_util.dir/rng.cpp.o"
  "CMakeFiles/mcb_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcb_util.dir/stats.cpp.o"
  "CMakeFiles/mcb_util.dir/stats.cpp.o.d"
  "CMakeFiles/mcb_util.dir/strings.cpp.o"
  "CMakeFiles/mcb_util.dir/strings.cpp.o.d"
  "CMakeFiles/mcb_util.dir/table.cpp.o"
  "CMakeFiles/mcb_util.dir/table.cpp.o.d"
  "CMakeFiles/mcb_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mcb_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mcb_util.dir/time.cpp.o"
  "CMakeFiles/mcb_util.dir/time.cpp.o.d"
  "libmcb_util.a"
  "libmcb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
