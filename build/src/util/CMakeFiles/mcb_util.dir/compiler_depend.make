# Empty compiler generated dependencies file for mcb_util.
# This may be replaced when dependencies are built.
