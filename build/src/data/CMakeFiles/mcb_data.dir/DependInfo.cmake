
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/data_fetcher.cpp" "src/data/CMakeFiles/mcb_data.dir/data_fetcher.cpp.o" "gcc" "src/data/CMakeFiles/mcb_data.dir/data_fetcher.cpp.o.d"
  "/root/repo/src/data/job_record.cpp" "src/data/CMakeFiles/mcb_data.dir/job_record.cpp.o" "gcc" "src/data/CMakeFiles/mcb_data.dir/job_record.cpp.o.d"
  "/root/repo/src/data/job_store.cpp" "src/data/CMakeFiles/mcb_data.dir/job_store.cpp.o" "gcc" "src/data/CMakeFiles/mcb_data.dir/job_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
