file(REMOVE_RECURSE
  "libmcb_data.a"
)
