file(REMOVE_RECURSE
  "CMakeFiles/mcb_data.dir/data_fetcher.cpp.o"
  "CMakeFiles/mcb_data.dir/data_fetcher.cpp.o.d"
  "CMakeFiles/mcb_data.dir/job_record.cpp.o"
  "CMakeFiles/mcb_data.dir/job_record.cpp.o.d"
  "CMakeFiles/mcb_data.dir/job_store.cpp.o"
  "CMakeFiles/mcb_data.dir/job_store.cpp.o.d"
  "libmcb_data.a"
  "libmcb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
