# Empty dependencies file for mcb_data.
# This may be replaced when dependencies are built.
