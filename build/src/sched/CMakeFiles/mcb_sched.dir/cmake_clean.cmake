file(REMOVE_RECURSE
  "CMakeFiles/mcb_sched.dir/dispatch.cpp.o"
  "CMakeFiles/mcb_sched.dir/dispatch.cpp.o.d"
  "libmcb_sched.a"
  "libmcb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
