file(REMOVE_RECURSE
  "libmcb_sched.a"
)
