# Empty compiler generated dependencies file for mcb_sched.
# This may be replaced when dependencies are built.
