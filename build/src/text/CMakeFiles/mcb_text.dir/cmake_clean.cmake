file(REMOVE_RECURSE
  "CMakeFiles/mcb_text.dir/sentence_encoder.cpp.o"
  "CMakeFiles/mcb_text.dir/sentence_encoder.cpp.o.d"
  "CMakeFiles/mcb_text.dir/tokenizer.cpp.o"
  "CMakeFiles/mcb_text.dir/tokenizer.cpp.o.d"
  "libmcb_text.a"
  "libmcb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
