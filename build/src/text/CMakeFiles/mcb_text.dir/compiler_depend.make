# Empty compiler generated dependencies file for mcb_text.
# This may be replaced when dependencies are built.
