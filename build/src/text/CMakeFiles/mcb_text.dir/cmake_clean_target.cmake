file(REMOVE_RECURSE
  "libmcb_text.a"
)
