# Empty dependencies file for mcb_ml.
# This may be replaced when dependencies are built.
