file(REMOVE_RECURSE
  "libmcb_ml.a"
)
