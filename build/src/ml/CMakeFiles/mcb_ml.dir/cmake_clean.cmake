file(REMOVE_RECURSE
  "CMakeFiles/mcb_ml.dir/baseline.cpp.o"
  "CMakeFiles/mcb_ml.dir/baseline.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/dataset.cpp.o"
  "CMakeFiles/mcb_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/mcb_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/knn.cpp.o"
  "CMakeFiles/mcb_ml.dir/knn.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/knn_regressor.cpp.o"
  "CMakeFiles/mcb_ml.dir/knn_regressor.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/metrics.cpp.o"
  "CMakeFiles/mcb_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/random_forest.cpp.o"
  "CMakeFiles/mcb_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/mcb_ml.dir/serialize.cpp.o"
  "CMakeFiles/mcb_ml.dir/serialize.cpp.o.d"
  "libmcb_ml.a"
  "libmcb_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
