
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/baseline.cpp" "src/ml/CMakeFiles/mcb_ml.dir/baseline.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/baseline.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/mcb_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/mcb_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/mcb_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/knn_regressor.cpp" "src/ml/CMakeFiles/mcb_ml.dir/knn_regressor.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/knn_regressor.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/mcb_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/mcb_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/mcb_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/mcb_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
