file(REMOVE_RECURSE
  "libmcb_roofline.a"
)
