# Empty dependencies file for mcb_roofline.
# This may be replaced when dependencies are built.
