file(REMOVE_RECURSE
  "CMakeFiles/mcb_roofline.dir/analysis.cpp.o"
  "CMakeFiles/mcb_roofline.dir/analysis.cpp.o.d"
  "CMakeFiles/mcb_roofline.dir/characterizer.cpp.o"
  "CMakeFiles/mcb_roofline.dir/characterizer.cpp.o.d"
  "CMakeFiles/mcb_roofline.dir/extended.cpp.o"
  "CMakeFiles/mcb_roofline.dir/extended.cpp.o.d"
  "libmcb_roofline.a"
  "libmcb_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
