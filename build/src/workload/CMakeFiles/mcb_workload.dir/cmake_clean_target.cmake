file(REMOVE_RECURSE
  "libmcb_workload.a"
)
