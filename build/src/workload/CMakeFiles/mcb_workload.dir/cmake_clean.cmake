file(REMOVE_RECURSE
  "CMakeFiles/mcb_workload.dir/generator.cpp.o"
  "CMakeFiles/mcb_workload.dir/generator.cpp.o.d"
  "libmcb_workload.a"
  "libmcb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
