# Empty compiler generated dependencies file for mcb_workload.
# This may be replaced when dependencies are built.
