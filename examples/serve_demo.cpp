// Example: the HTTP deployment (paper §III-E, the flask backend).
//
// Starts the MCBound REST API over a synthetic jobs database, then acts
// as its own client: health check, training trigger, per-submission
// prediction, and stand-alone characterization — the exact call sequence
// a workload manager integration would issue. With --port P --serve true
// it stays up for manual curl exploration instead.
//
// Usage: ./examples/serve_demo [--port P] [--serve true]
//                              [--http-threads N] [--http-queue N]
#include <cstdio>

#include "core/mcbound.hpp"
#include "serve/api.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv,
      {"port", "serve", "jobs-per-day", "seed", "http-threads", "http-queue"},
      "usage: serve_demo [--port P] [--serve true] [--jobs-per-day N]\n"
      "                  [--http-threads N] [--http-queue N]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;

  // Jobs database: six weeks of history.
  WorkloadConfig trace = scaled_workload_config(flags->get_double("jobs-per-day", 120.0),
                                                static_cast<std::uint64_t>(flags->get_int("seed", 15)));
  trace.end_time = trace.start_time + 42 * kSecondsPerDay;
  WorkloadGenerator generator(trace);
  JobStore store;
  store.insert_all(generator.generate());

  FrameworkConfig config;
  config.model = ModelKind::kKnn;
  config.alpha_days = 30;
  config.registry_dir = "serve-demo-models";
  ServerConfig server;
  server.worker_threads = static_cast<std::size_t>(
      flags->get_int("http-threads", static_cast<std::int64_t>(server.worker_threads)));
  server.max_pending = static_cast<std::size_t>(
      flags->get_int("http-queue", static_cast<std::int64_t>(server.max_pending)));

  Framework framework(config, store);
  ApiServer api(framework, server);

  const int requested_port = static_cast<int>(flags->get_int("port", 0));
  if (!api.start(requested_port)) {
    std::fprintf(stderr, "failed to bind port %d\n", requested_port);
    return 1;
  }
  std::printf("MCBound API listening on http://127.0.0.1:%d\n\n", api.port());

  if (flags->get_bool("serve", false)) {
    std::printf("endpoints: GET /health, GET /model/info, GET /metrics,\n"
                "           POST /train, POST /predict, POST /characterize\n");
    std::printf("example:   curl -X POST http://127.0.0.1:%d/train -d '{}'\n", api.port());
    std::printf("press Ctrl-C to stop.\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  const auto call = [&api](const char* method, const char* path, const std::string& body) {
    int status = 0;
    std::string response;
    http_request(api.port(), method, path, body, status, response);
    std::printf(">> %s %s %s\n<< [%d] %s\n\n", method, path, body.c_str(), status,
                response.c_str());
    return response;
  };

  call("GET", "/health", "");
  call("GET", "/model/info", "");
  call("POST", "/train", "{}");  // trains on the trailing alpha window

  // Classify two fresh submissions (only submission-time fields known).
  const auto history = store.all();
  for (const std::size_t pick : {std::size_t{100}, history.size() - 5}) {
    JobRecord submission = history[pick];
    submission.job_id = 0;
    submission.start_time = submission.end_time = 0;
    submission.perf2 = submission.perf3 = submission.perf4 = submission.perf5 = 0;
    call("POST", "/predict", job_to_json(submission).dump());
  }

  // Stand-alone characterization of a completed job (counters known).
  call("POST", "/characterize", job_to_json(history[200]).dump());

  // Server-side view of everything this demo just did: request counters
  // and per-route latency summaries from the connection executor.
  call("GET", "/metrics", "");

  api.stop();
  std::printf("server stopped.\n");
  return 0;
}
