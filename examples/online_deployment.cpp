// Example: a full simulated MCBound deployment (paper §III-E + Fig. 1).
//
// Replays the trace day by day through both CI/CD workflows:
//   * every `beta` days a cron-style trigger retrains the Classification
//     Model on the trailing `alpha` days and stores a new version in the
//     model registry;
//   * every submitted job is classified by the Inference Workflow before
//     it executes; predictions are scored against the Roofline ground
//     truth once the jobs complete.
// Prints a per-week progress report and the final F1 / overhead summary —
// the same bookkeeping as the paper's evaluate script.
//
// Usage: ./examples/online_deployment [--model knn|rf] [--alpha A]
//          [--beta B] [--jobs-per-day N] [--seed S]
#include <cstdio>

#include "core/mcbound.hpp"
#include "ml/metrics.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, {"model", "alpha", "beta", "jobs-per-day", "seed"},
      "usage: online_deployment [--model knn|rf] [--alpha A] [--beta B] "
      "[--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;

  const std::string model_name = flags->get("model", "rf");
  const auto kind = parse_model_kind(model_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 2;
  }

  FrameworkConfig config;
  config.model = *kind;
  config.alpha_days = static_cast<int>(
      flags->get_int("alpha", *kind == ModelKind::kKnn ? 30 : 15));
  config.beta_days = static_cast<int>(flags->get_int("beta", 1));
  config.forest.tree.max_features = 48;
  config.registry_dir = "deployment-models";

  WorkloadConfig trace = scaled_workload_config(
      flags->get_double("jobs-per-day", 150.0),
      static_cast<std::uint64_t>(flags->get_int("seed", 15)));
  WorkloadGenerator generator(trace);
  JobStore store;
  store.insert_all(generator.generate());

  Framework mcbound(config, store);
  const Characterizer& characterizer = mcbound.characterizer();

  const TimePoint go_live = timepoint_from_ymd(2024, 2, 1);
  const TimePoint shutdown = timepoint_from_ymd(2024, 3, 1);
  std::printf("deployment: %s, alpha=%d, beta=%d | history %zu jobs | live %s .. %s\n\n",
              model_kind_name(config.model), config.alpha_days, config.beta_days,
              store.size(), format_date(go_live).c_str(), format_date(shutdown - 1).c_str());

  ConfusionMatrix confusion(kNumBoundednessClasses);
  OnlineStats train_seconds, inference_per_job;
  std::size_t week_predictions = 0;
  ConfusionMatrix week_confusion(kNumBoundednessClasses);

  const std::int64_t beta_secs = config.beta_days * kSecondsPerDay;
  for (TimePoint now = go_live; now < shutdown; now += beta_secs) {
    // --- cron trigger: Training Workflow -> new model version ----------
    const TrainingReport report = mcbound.train_now(now);
    if (report.jobs_used == 0) continue;
    train_seconds.add(report.train_seconds);

    // --- Inference Workflow over the jobs submitted until next retrain -
    const TimePoint until = std::min(shutdown, now + beta_secs);
    const InferenceReport predictions = mcbound.predict_range(now, until);
    inference_per_job.add(predictions.seconds_per_job());

    for (std::size_t i = 0; i < predictions.size(); ++i) {
      const JobRecord* job = store.find(predictions.job_ids[i]);
      if (job == nullptr) continue;
      const auto truth = characterizer.characterize(*job);
      if (!truth.has_value()) continue;
      confusion.add(to_label(*truth), predictions.predictions[i]);
      week_confusion.add(to_label(*truth), predictions.predictions[i]);
      ++week_predictions;
    }

    const std::int64_t day = day_index(now, go_live);
    if ((day + config.beta_days) % 7 < config.beta_days || until == shutdown) {
      std::printf("%s  model v%-3u  week predictions %6zu  running F1 %.4f\n",
                  format_date(now).c_str(), *mcbound.model_version(), week_predictions,
                  week_confusion.f1_macro());
      week_predictions = 0;
      week_confusion = ConfusionMatrix(kNumBoundednessClasses);
    }
  }

  std::printf("\n=== final report (paper §V-C) ===\n");
  std::printf("%s\n", confusion.render(boundedness_class_names()).c_str());
  std::printf("avg training time per retrain : %.3f s\n", train_seconds.mean());
  std::printf("avg inference time per job    : %.2e s (scheduling wait is ~180 s)\n",
              inference_per_job.mean());
  std::printf("model versions in registry    : %zu (see %s/)\n",
              mcbound.registry().versions(mcbound.model_name()).size(),
              config.registry_dir.c_str());
  std::printf("\npaper reference: F1 >= 0.89 with RF(15,1) / KNN(30,1) at full scale.\n");
  return 0;
}
