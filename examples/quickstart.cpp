// Quickstart: the smallest end-to-end MCBound program.
//
//  1. Build a jobs data storage (here: a synthetic mini-trace; in a real
//     deployment this is your scheduler's accounting database behind a
//     DataFetcher).
//  2. Construct the Framework from a FrameworkConfig.
//  3. Run the Training Workflow once (train_now).
//  4. Classify new, not-yet-executed jobs at submission time.
//  5. Use the Job Characterizer standalone on an executed job.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/mcbound.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace mcb;

  // --- 1. jobs data storage -------------------------------------------
  // Two weeks of synthetic Fugaku-like history, ~150 jobs/day.
  WorkloadConfig trace_config = scaled_workload_config(150.0, /*seed=*/7);
  trace_config.end_time = trace_config.start_time + 14 * kSecondsPerDay;
  WorkloadGenerator generator(trace_config);
  JobStore store;
  store.insert_all(generator.generate());
  std::printf("jobs data storage: %zu executed jobs loaded\n", store.size());

  // --- 2. framework ----------------------------------------------------
  FrameworkConfig config;          // Fugaku machine spec + paper defaults
  config.model = ModelKind::kRandomForest;
  config.alpha_days = 14;          // trailing training window
  config.registry_dir = "quickstart-models";
  Framework mcbound(config, store);
  std::printf("ridge point: %.2f Flops/Byte on %s\n",
              mcbound.characterizer().ridge_point(),
              mcbound.config().machine.name.c_str());

  // --- 3. Training Workflow --------------------------------------------
  const TimePoint now = store.max_end_time() + 1;
  const TrainingReport report = mcbound.train_now(now);
  std::printf("trained %s v%u on %zu jobs (fit %.2fs, encode %.2fs)\n",
              mcbound.model_name().c_str(), *mcbound.model_version(), report.jobs_used,
              report.train_seconds, report.encode_seconds);

  // --- 4. classify new submissions BEFORE they run ----------------------
  // Take three job shapes from the trace and re-submit them as new jobs.
  const auto history = store.all();
  for (const std::size_t pick : {std::size_t{10}, history.size() / 2, history.size() - 3}) {
    JobRecord submission = history[pick];
    submission.job_id = 0;              // not yet in the database
    submission.start_time = submission.end_time = 0;  // not yet executed
    const auto label = mcbound.predict_job(submission);
    std::printf("submit '%s' by %s on %u nodes @%d MHz  ->  predicted %s\n",
                submission.job_name.c_str(), submission.user_name.c_str(),
                submission.nodes_requested, frequency_mhz(submission.frequency),
                label.has_value() ? boundedness_name(*label) : "(no model)");
  }

  // --- 5. standalone characterization of an executed job ----------------
  const JobRecord& executed = history[42];
  const auto metrics = mcbound.job_metrics(executed);
  const auto truth = mcbound.characterize_job(executed);
  std::printf("\nexecuted '%s': %.1f GFlop/s/node at %.3f Flops/Byte -> %s (ground truth)\n",
              executed.job_name.c_str(), metrics->performance_gflops,
              metrics->operational_intensity, boundedness_name(*truth));
  return 0;
}
