// Example: MCBound as a stand-alone workload-analysis tool (paper §IV).
//
// Generates (or loads) a Fugaku-like job trace, characterizes every job
// with the Roofline model, and prints the §IV-C analysis: job-type
// breakdown, frequency-choice quality, roofline proximity, and the top
// misconfigured applications — the insights a site operator would act on.
//
// Usage: ./examples/fugaku_analysis [--jobs-per-day N] [--seed S]
//                                   [--load trace.csv] [--save trace.csv]
#include <algorithm>
#include <cstdio>
#include <map>

#include "data/job_store.hpp"
#include "roofline/analysis.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, {"jobs-per-day", "seed", "load", "save"},
      "usage: fugaku_analysis [--jobs-per-day N] [--seed S] [--load csv] [--save csv]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;

  WorkloadConfig config = scaled_workload_config(
      flags->get_double("jobs-per-day", 500.0),
      static_cast<std::uint64_t>(flags->get_int("seed", 15)));

  JobStore store;
  if (flags->has("load")) {
    std::string error;
    if (!store.load_csv(flags->get("load", ""), &error)) {
      std::fprintf(stderr, "failed to load trace: %s\n", error.c_str());
      return 1;
    }
    std::printf("loaded %zu jobs from %s\n", store.size(), flags->get("load", "").c_str());
  } else {
    WorkloadGenerator generator(config);
    store.insert_all(generator.generate());
    std::printf("generated %zu synthetic jobs (%s .. %s)\n", store.size(),
                format_date(config.start_time).c_str(),
                format_date(config.end_time - 1).c_str());
  }
  if (flags->has("save")) {
    if (store.save_csv(flags->get("save", ""))) {
      std::printf("trace exported to %s\n", flags->get("save", "").c_str());
    }
  }

  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());
  const auto& b = analysis.breakdown;

  std::printf("\n== job-type breakdown (Roofline, ridge %.2f F/B) ==\n\n",
              characterizer.ridge_point());
  TextTable breakdown({"", "memory-bound", "compute-bound"});
  breakdown.add_row({"2.0 GHz (normal)",
                     with_thousands(static_cast<std::int64_t>(b.at(FrequencyMode::kNormal, Boundedness::kMemoryBound))),
                     with_thousands(static_cast<std::int64_t>(b.at(FrequencyMode::kNormal, Boundedness::kComputeBound)))});
  breakdown.add_row({"2.2 GHz (boost)",
                     with_thousands(static_cast<std::int64_t>(b.at(FrequencyMode::kBoost, Boundedness::kMemoryBound))),
                     with_thousands(static_cast<std::int64_t>(b.at(FrequencyMode::kBoost, Boundedness::kComputeBound)))});
  std::fputs(breakdown.render().c_str(), stdout);
  std::printf("ratio %.2f:1 | %.0f%% of memory-bound in normal mode | %.0f%% of compute-bound in boost mode\n",
              b.memory_to_compute_ratio(), 100 * b.memory_bound_normal_fraction(),
              100 * b.compute_bound_boost_fraction());

  std::printf("\n== roofline utilization ==\n");
  std::printf("jobs reaching >=50%% of attainable: %.1f%%\n",
              100 * analysis.fraction_near_roofline(characterizer, 0.5));
  std::printf("jobs reaching >=90%% of attainable: %.1f%%\n",
              100 * analysis.fraction_near_roofline(characterizer, 0.9));

  // Operator-facing insight: applications wasting the most node-seconds
  // at the wrong frequency.
  struct AppWaste {
    double mem_boost_node_seconds = 0;   // should run normal
    double comp_normal_node_seconds = 0; // should run boost
    std::size_t jobs = 0;
  };
  std::map<std::string, AppWaste> by_app;
  for (const auto& cj : analysis.jobs) {
    const JobRecord& job = *cj.job;
    auto& waste = by_app[job.user_name + "/" + job.job_name];
    waste.jobs += 1;
    const double node_seconds =
        static_cast<double>(job.duration()) * job.nodes_allocated;
    if (cj.label == Boundedness::kMemoryBound && job.frequency == FrequencyMode::kBoost) {
      waste.mem_boost_node_seconds += node_seconds;
    }
    if (cj.label == Boundedness::kComputeBound && job.frequency == FrequencyMode::kNormal) {
      waste.comp_normal_node_seconds += node_seconds;
    }
  }
  std::vector<std::pair<std::string, AppWaste>> ranked(by_app.begin(), by_app.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.mem_boost_node_seconds + a.second.comp_normal_node_seconds >
           b.second.mem_boost_node_seconds + b.second.comp_normal_node_seconds;
  });

  std::printf("\n== top 10 frequency-misconfigured applications (node-hours at wrong mode) ==\n\n");
  TextTable top({"user/application", "jobs", "mem@boost node-h", "comp@normal node-h"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
    const auto& [name, waste] = ranked[i];
    top.add_row({name, std::to_string(waste.jobs),
                 format_double(waste.mem_boost_node_seconds / 3600.0, 1),
                 format_double(waste.comp_normal_node_seconds / 3600.0, 1)});
  }
  std::fputs(top.render().c_str(), stdout);
  std::printf("\nThese are the users a site would contact (or the jobs a dispatcher\n"
              "would re-pin) based on MCBound's pre-execution classification.\n");
  return 0;
}
