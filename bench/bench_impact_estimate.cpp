// §V-C(d) reproduction: the system-level impact estimate of MCBound-
// guided semi-automatic frequency selection, following the paper's
// methodology (based on Kodama et al. 2020):
//   * memory-bound jobs moved boost -> normal save ~15% power at equal
//     runtime (their bottleneck is bandwidth, not clock);
//   * compute-bound jobs moved normal -> boost run ~10% faster.
// The paper multiplies these by the misconfigured-job counts from
// Table II and the classifier's ~90% accuracy; we do the same over the
// synthetic trace with per-job durations and modeled powers.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags({"accuracy"}),
      "usage: bench_impact_estimate [--jobs-per-day N] [--seed S] [--accuracy F]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const double accuracy = flags->get_double("accuracy", 0.90);  // paper: ~90% correct

  bench::print_banner("impact estimate: MCBound-guided frequency selection",
                      "§V-C(d) discussion", jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);
  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());

  // Paper's per-job constants (Fugaku measurements from Kodama et al.).
  constexpr double kMemPowerSavingFraction = 0.15;   // normal vs boost power
  constexpr double kCompDurationSavingFraction = 0.10;  // boost vs normal time
  constexpr double kAvgJobPowerWatts = 5000.0;       // paper's average

  double mem_boost_jobs = 0, mem_boost_node_seconds = 0;
  double comp_normal_jobs = 0, comp_normal_saved_seconds = 0, comp_normal_node_hours = 0;
  for (const auto& cj : analysis.jobs) {
    const JobRecord& job = *cj.job;
    const double duration = static_cast<double>(job.duration());
    if (cj.label == Boundedness::kMemoryBound && job.frequency == FrequencyMode::kBoost) {
      mem_boost_jobs += 1;
      mem_boost_node_seconds += duration;
    } else if (cj.label == Boundedness::kComputeBound &&
               job.frequency == FrequencyMode::kNormal) {
      comp_normal_jobs += 1;
      comp_normal_saved_seconds += duration * kCompDurationSavingFraction;
      comp_normal_node_hours +=
          duration * kCompDurationSavingFraction * job.nodes_allocated / 3600.0;
    }
  }

  const double corrected = accuracy;  // fraction of jobs MCBound reroutes correctly
  const double avg_power_saving_w = kAvgJobPowerWatts * kMemPowerSavingFraction;
  const double total_power_saving_mw =
      mem_boost_jobs * corrected * avg_power_saving_w / 1e6;
  const double total_energy_gj =
      mem_boost_node_seconds * corrected * avg_power_saving_w / 1e9;
  const double total_compute_hours_saved =
      comp_normal_saved_seconds * corrected / 3600.0;

  std::printf("\nMisconfigured jobs in this trace:\n");
  std::printf("  memory-bound run in boost mode : %s (avg duration %.0f s)\n",
              with_thousands(static_cast<std::int64_t>(mem_boost_jobs)).c_str(),
              mem_boost_jobs > 0 ? mem_boost_node_seconds / mem_boost_jobs : 0.0);
  std::printf("  compute-bound run in normal mode: %s\n",
              with_thousands(static_cast<std::int64_t>(comp_normal_jobs)).c_str());

  std::printf("\nWith %.0f%% classification accuracy, semi-automatic frequency selection\n",
              100.0 * accuracy);
  std::printf("over this trace would have saved:\n");
  std::printf("  cumulative power reduction   : %.2f MW-jobs (paper: ~450 MW over 750k jobs)\n",
              total_power_saving_mw);
  std::printf("  energy                       : %.2f GJ      (paper states 14 GJ; its per-job\n                                            figures imply ~3 TJ — see EXPERIMENTS.md)\n",
              total_energy_gj);
  std::printf("  compute time                 : %.0f h wall  (paper: >1,700 h system compute)\n",
              total_compute_hours_saved);
  std::printf("  node-hours                   : %.0f node-h\n",
              comp_normal_node_hours * corrected);
  std::printf("\n(absolute values scale linearly with --jobs-per-day; the paper's trace\n");
  std::printf("is ~%.0fx this volume)\n", 25'000.0 / jobs_per_day);
  return 0;
}
