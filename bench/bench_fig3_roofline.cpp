// Figure 3 reproduction: the collective Roofline model of all jobs —
// a log-log density plot of operational intensity vs per-node
// performance, with the ridge point marked. The paper observes (a) the
// intensity distribution heavily skewed below the ridge, and (b) most
// jobs far below the roofline with only a few near-roof clusters.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/analysis.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig3_roofline [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Figure 3: collective Roofline model of the job data",
                      "Fig. 3 (§IV-C)", jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);
  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());

  std::printf("\nDensity plot: x = operational intensity (Flops/Byte, log),"
              " y = per-node GFlop/s (log)\n\n");
  const LogGrid2D grid = roofline_grid(analysis, 100, 22);
  std::fputs(grid.render(characterizer.ridge_point()).c_str(), stdout);

  // Quantify the two shape claims.
  Histogram intensity_deciles(-3.0, 3.0, 12);  // log10(op)
  std::size_t below_ridge = 0;
  for (const auto& cj : analysis.jobs) {
    if (!std::isfinite(cj.metrics.operational_intensity)) continue;
    intensity_deciles.add(std::log10(cj.metrics.operational_intensity));
    below_ridge += cj.label == Boundedness::kMemoryBound;
  }
  std::printf("\nlog10(operational intensity) histogram:\n%s\n",
              intensity_deciles.render(40).c_str());

  const double mem_frac =
      static_cast<double>(below_ridge) / static_cast<double>(analysis.jobs.size());
  const double near50 = analysis.fraction_near_roofline(characterizer, 0.5);
  const double near90 = analysis.fraction_near_roofline(characterizer, 0.9);
  std::printf("jobs characterized        : %zu (skipped %zu)\n", analysis.jobs.size(),
              analysis.skipped);
  std::printf("ridge point op_r          : %.3f Flops/Byte\n", characterizer.ridge_point());
  std::printf("fraction below ridge      : %.3f   (paper: ~0.775, 'significantly skewed')\n",
              mem_frac);
  std::printf("fraction >=50%% of roofline: %.3f   (paper: minority — few near-roof clusters)\n",
              near50);
  std::printf("fraction >=90%% of roofline: %.3f\n", near90);
  std::printf("\nShape check: skew below ridge AND most jobs far from the roof -> %s\n",
              (mem_frac > 0.6 && near50 < 0.4) ? "OK" : "MISMATCH");
  return 0;
}
