// Figure 9 reproduction: KNN F1 vs theta — retraining on a theta-sized
// subset of the alpha-window, sampled either "latest-first" or uniformly
// at random (averaged over the paper's 5 seeds {520, 90, 1905, 7, 22}).
//
// Paper shape: more data is better (best at "all"); random sampling
// beats latest-first consistently, with a large gap at small theta that
// shrinks as theta grows — because Fugaku jobs arrive in batches of
// identical jobs, "latest" picks redundant duplicates.
//
// Since PR 6 the KNN path serves these sweeps through the pruned
// spatial index (DESIGN.md §11) whenever a theta window reaches the
// index threshold; predictions — and therefore every F1 in this figure
// — are bit-identical to the brute-force scan by the shared-TopK
// contract, only faster (the duplicate batches above collapse into
// single index points). bench_fig8_inference_time gates the speedup.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig9_theta_knn [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Figure 9: KNN F1 with different theta values", "Fig. 9 (§V-C c)",
                      jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  bench::run_theta_sweep(ModelKind::kKnn, 30, 100, evaluator);
  return 0;
}
