// Figure 7 reproduction: average daily model training time vs alpha at
// beta = 1. Paper shape: KNN training is near-free (it only stores the
// data; max 0.32 s at alpha=60 on their 64-core EPYC), while RF training
// grows with the window size (26 s at alpha=15 up to ~3 min at 60).
// Absolute numbers scale with jobs/day and machine; the *growth* and the
// KNN<<RF ordering are the reproduced shape.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(argc, argv, bench::standard_flags(),
                                     "usage: bench_fig7_training_time [--jobs-per-day N] "
                                     "[--seed S] [--rf-trees T] [--json PATH]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));
  const std::string json_path = flags->get("json", "");

  bench::print_banner("Figure 7: average model training time vs alpha (beta=1)",
                      "Fig. 7 (§V-C a)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  std::printf("\n");
  TextTable table({"alpha (days)", "train jobs (avg)", "KNN train s (avg)",
                   "RF train s (avg)"});
  double knn_first = 0, rf_first = 0, rf_last = 0;
  for (const int alpha : {15, 30, 45, 60}) {
    OnlineEvalConfig config;
    config.alpha_days = alpha;
    config.beta_days = 1;
    const auto knn = evaluator.evaluate(bench::model_factory(ModelKind::kKnn), config);
    const auto rf =
        evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), config);
    table.add_row({std::to_string(alpha),
                   format_double(rf.train_set_size.mean(), 0),
                   format_double(knn.train_seconds.mean(), 4),
                   format_double(rf.train_seconds.mean(), 4)});
    if (alpha == 15) { knn_first = knn.train_seconds.mean(); rf_first = rf.train_seconds.mean(); }
    if (alpha == 60) rf_last = rf.train_seconds.mean();
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Paper reference (64-core EPYC, ~25K jobs/day):\n");
  std::printf("  KNN: <= 0.32 s at every alpha; RF: 26 s (alpha=15) ... ~180 s (alpha=60)\n");
  std::printf("\nShape checks:\n");
  std::printf("  RF training grows with alpha (x%.1f from 15 to 60)     -> %s\n",
              rf_last / std::max(rf_first, 1e-9), rf_last > rf_first * 1.5 ? "OK" : "MISMATCH");
  std::printf("  KNN training cheap vs RF (RF/KNN = x%.0f at alpha=15)  -> %s\n",
              rf_first / std::max(knn_first, 1e-9), rf_first > knn_first * 5 ? "OK" : "MISMATCH");

  if (!json_path.empty()) {
    bench::JsonReport report("fig7_training_time");
    report.set("knn_train_s_alpha15", knn_first);
    report.set("rf_train_s_alpha15", rf_first);
    report.set("rf_train_s_alpha60", rf_last);
    report.set("rf_vs_knn_train_ratio_alpha15", rf_first / std::max(knn_first, 1e-9));
    if (!report.write(json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
