// §V-A reproduction: the feature-set selection experiment. The paper
// starts from the best set found for Fugaku power prediction
// (user name, job name, #cores, #nodes, environment — Antici et al.
// SC-W'23) and finds that adding *frequency requested* improves
// memory/compute-bound prediction; smaller subsets do worse.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_feature_sets [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("feature-set selection for the Feature Encoder", "§V-A",
                      jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);

  struct Variant {
    const char* name;
    std::vector<JobFeature> features;
  };
  const std::vector<Variant> variants = {
      {"job name only", {JobFeature::kJobName}},
      {"user + job name", {JobFeature::kUserName, JobFeature::kJobName}},
      {"resources only (#cores,#nodes,freq)",
       {JobFeature::kCoresRequested, JobFeature::kNodesRequested, JobFeature::kFrequency}},
      {"SC-W'23 power set (user,job,#cores,#nodes,env)",
       {JobFeature::kUserName, JobFeature::kJobName, JobFeature::kCoresRequested,
        JobFeature::kNodesRequested, JobFeature::kEnvironment}},
      {"paper's augmented set (+frequency)", default_feature_set()},
  };

  std::printf("\n(KNN alpha=30 beta=1; RF alpha=15 beta=1, %zu trees)\n\n", rf_trees);
  TextTable table({"feature set", "KNN F1", "RF F1"});
  double base_knn = 0.0, full_knn = 0.0;
  for (const auto& variant : variants) {
    const FeatureEncoder encoder(variant.features);
    const OnlineEvaluator evaluator(store, characterizer, encoder);

    OnlineEvalConfig knn_config;
    knn_config.alpha_days = 30;
    knn_config.beta_days = 1;
    const double knn_f1 =
        evaluator.evaluate(bench::model_factory(ModelKind::kKnn), knn_config).f1_macro();

    OnlineEvalConfig rf_config;
    rf_config.alpha_days = 15;
    rf_config.beta_days = 1;
    const double rf_f1 =
        evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), rf_config)
            .f1_macro();

    if (std::string(variant.name).find("SC-W'23") != std::string::npos) base_knn = knn_f1;
    if (std::string(variant.name).find("augmented") != std::string::npos) full_knn = knn_f1;
    table.add_row({variant.name, format_double(knn_f1, 4), format_double(rf_f1, 4)});
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Paper claim (§V-A): the SC-W'23 power-prediction set is strong, and\n");
  std::printf("adding 'frequency requested' improves it further.\n");
  std::printf("Measured: +frequency delta on KNN = %+.4f -> %s\n", full_knn - base_knn,
              full_knn >= base_knn - 0.005 ? "OK" : "MISMATCH");
  return 0;
}
