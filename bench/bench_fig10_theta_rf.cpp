// Figure 10 reproduction: RF F1 vs theta (latest vs random sampling of
// the alpha = 15 window, random averaged over the paper's 5 seeds).
// Same shape as Fig. 9: random > latest, gap shrinking with theta, best
// with all available data.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig10_theta_rf [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("Figure 10: RF F1 with different theta values", "Fig. 10 (§V-C c)",
                      jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  bench::run_theta_sweep(ModelKind::kRandomForest, 15, rf_trees, evaluator);
  return 0;
}
