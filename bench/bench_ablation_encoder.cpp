// Ablation A1 (DESIGN.md): Feature-Encoder design choices vs prediction
// quality — the experiments behind the SBERT-substitution defaults:
//   * embedding dimension (paper fixes 384 to match all-MiniLM),
//   * hashes per feature (Bloom-style multi-hashing; 3 is the default —
//     single-position hashing loses tree accuracy to collisions),
//   * char n-grams on/off (generalization across job-name variants),
//   * whole-field tokens and the dense JL rotation (both off by default;
//     measured here to justify that choice).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_ablation_encoder [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("ablation: sentence-encoder configuration",
                      "DESIGN.md A1 (SBERT substitution)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);

  struct Variant {
    const char* name;
    EncoderConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"default (384d, 3 hashes, ngrams)", EncoderConfig{}});
  {
    EncoderConfig c;
    c.hashes_per_feature = 1;
    variants.push_back({"1 hash per feature", c});
  }
  {
    EncoderConfig c;
    c.ngram_sizes = {};
    variants.push_back({"no char n-grams (words only)", c});
  }
  {
    EncoderConfig c;
    c.dim = 128;
    variants.push_back({"128 dimensions", c});
  }
  {
    EncoderConfig c;
    c.dim = 768;
    variants.push_back({"768 dimensions", c});
  }
  {
    EncoderConfig c;
    c.use_field_tokens = true;
    variants.push_back({"+ whole-field tokens", c});
  }
  {
    EncoderConfig c;
    c.densify = true;
    variants.push_back({"+ dense JL rotation", c});
  }

  std::printf("\n(KNN alpha=30 beta=1; RF alpha=15 beta=1, %zu trees)\n\n", rf_trees);
  TextTable table({"encoder variant", "KNN F1", "RF F1"});
  for (const auto& variant : variants) {
    const FeatureEncoder encoder(default_feature_set(), variant.config);
    const OnlineEvaluator evaluator(store, characterizer, encoder);

    OnlineEvalConfig knn_config;
    knn_config.alpha_days = 30;
    knn_config.beta_days = 1;
    const double knn_f1 =
        evaluator.evaluate(bench::model_factory(ModelKind::kKnn), knn_config).f1_macro();

    OnlineEvalConfig rf_config;
    rf_config.alpha_days = 15;
    rf_config.beta_days = 1;
    const double rf_f1 =
        evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), rf_config)
            .f1_macro();

    table.add_row({variant.name, format_double(knn_f1, 4), format_double(rf_f1, 4)});
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Reading: KNN is robust across variants (exact duplicates dominate);\n");
  std::printf("RF depends on collision-resilient sparse features — multi-hashing helps,\n");
  std::printf("the dense rotation hurts. These measurements fixed the library defaults.\n");
  return 0;
}
