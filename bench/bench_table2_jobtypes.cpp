// Table II reproduction: distribution of job types by frequency mode.
// Paper values: memory:compute ratio ~3.44 : 1; ~54% of memory-bound
// jobs run at 2.0 GHz (normal) and only ~31% of compute-bound jobs at
// 2.2 GHz (boost) — i.e. users frequently pick the wrong mode.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_table2_jobtypes [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Table II: distribution of job types", "Table II (§IV-C)",
                      jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);
  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());
  const JobTypeBreakdown& b = analysis.breakdown;

  std::printf("\nTABLE II — DISTRIBUTION OF JOB TYPES (this run)\n\n");
  TextTable table({"Frequency", "memory-bound", "compute-bound", "Total"});
  const auto row = [&b](FrequencyMode f) {
    return std::vector<std::string>{
        std::string(frequency_mhz(f) == 2000 ? "2.0 GHz (normal mode)"
                                             : "2.2 GHz (boost mode)"),
        with_thousands(static_cast<std::int64_t>(b.at(f, Boundedness::kMemoryBound))),
        with_thousands(static_cast<std::int64_t>(b.at(f, Boundedness::kComputeBound))),
        with_thousands(static_cast<std::int64_t>(b.by_frequency(f)))};
  };
  table.add_row(row(FrequencyMode::kNormal));
  table.add_row(row(FrequencyMode::kBoost));
  table.add_row({"Total",
                 with_thousands(static_cast<std::int64_t>(b.by_label(Boundedness::kMemoryBound))),
                 with_thousands(static_cast<std::int64_t>(b.by_label(Boundedness::kComputeBound))),
                 with_thousands(static_cast<std::int64_t>(b.total()))});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPaper (2.2M Fugaku jobs, Dec 2023 - Mar 2024):\n");
  std::printf("  2.0 GHz: 891,056 mem | 330,878 comp    2.2 GHz: 752,421 mem | 147,097 comp\n");
  std::printf("  totals : 1,643,477 mem | 477,975 comp | 2,121,452\n");

  std::printf("\nShape comparison (measured vs paper):\n");
  std::printf("  memory : compute ratio        %.2f : 1   (paper 3.44 : 1)\n",
              b.memory_to_compute_ratio());
  std::printf("  memory-bound at normal mode   %.1f%%      (paper 54.2%%)\n",
              100.0 * b.memory_bound_normal_fraction());
  std::printf("  compute-bound at boost mode   %.1f%%      (paper 30.8%%)\n",
              100.0 * b.compute_bound_boost_fraction());
  const bool ok = b.memory_to_compute_ratio() > 2.0 && b.memory_to_compute_ratio() < 5.5 &&
                  b.memory_bound_normal_fraction() > 0.45 &&
                  b.compute_bound_boost_fraction() < 0.45;
  std::printf("\nShape check: majority memory-bound + suboptimal frequency choices -> %s\n",
              ok ? "OK" : "MISMATCH");
  return 0;
}
