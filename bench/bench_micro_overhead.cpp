// §V-B overhead micro-benchmarks (google-benchmark): per-job cost of
// characterization, encoding, KNN/RF inference and model (de)serialization.
// Paper reference numbers (64-core EPYC 7302, Python):
//   characterization ~1e-6 s/job, SBERT encoding ~2e-3 s/job,
//   RF inference ~2e-6 s/job (model only).
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/feature_encoder.hpp"
#include "data/job_store.hpp"
#include "core/classification_model.hpp"
#include "roofline/characterizer.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mcb;

const std::vector<JobRecord>& sample_jobs() {
  static const std::vector<JobRecord> jobs = [] {
    WorkloadGenerator generator(scaled_workload_config(50.0, 15));
    return generator.generate();
  }();
  return jobs;
}

void BM_Characterize(benchmark::State& state) {
  const Characterizer characterizer(fugaku_node_spec());
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterizer.characterize(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper: ~1e-6 s/job");
}
BENCHMARK(BM_Characterize);

void BM_FeatureString(benchmark::State& state) {
  const FeatureEncoder encoder;
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.feature_string(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FeatureString);

void BM_Encode(benchmark::State& state) {
  const FeatureEncoder encoder;
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper (SBERT): ~2e-3 s/job");
}
BENCHMARK(BM_Encode);

/// Train-once fixtures for inference benchmarks.
struct TrainedModels {
  FeatureMatrix train_x{0, 0};
  std::vector<Label> train_y;
  FeatureMatrix query{0, 0};
  ClassificationModel knn{ModelKind::kKnn};
  ClassificationModel rf{ModelKind::kRandomForest};

  TrainedModels() {
    const FeatureEncoder encoder;
    const Characterizer characterizer(fugaku_node_spec());
    const auto& jobs = sample_jobs();
    const std::size_t n = std::min<std::size_t>(jobs.size(), 4000);
    std::vector<JobRecord> subset(jobs.begin(), jobs.begin() + static_cast<std::ptrdiff_t>(n));
    train_x = encoder.encode_batch(subset);
    for (const auto& job : subset) {
      train_y.push_back(to_label(*characterizer.characterize(job)));
    }
    knn.training(train_x.view(), train_y);
    RandomForestConfig rf_config;
    rf_config.n_trees = 100;
    rf_config.tree.max_features = 48;
    rf = ClassificationModel(ModelKind::kRandomForest, {}, rf_config);
    rf.training(train_x.view(), train_y);
    query = FeatureMatrix(1, encoder.dim());
    const auto source = train_x.view().row(7);
    std::copy(source.begin(), source.end(), query.row(0));
  }
};

TrainedModels& models() {
  static TrainedModels m;
  return m;
}

void BM_KnnInference(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.knn.inference(m.query.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("scan over 4000x384 train matrix");
}
BENCHMARK(BM_KnnInference);

void BM_RfInference(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rf.inference(m.query.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper: ~2e-6 s/job (model only)");
}
BENCHMARK(BM_RfInference);

void BM_KnnTraining(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    ClassificationModel fresh(ModelKind::kKnn);
    fresh.training(m.train_x.view(), m.train_y);
    benchmark::DoNotOptimize(fresh);
  }
  state.SetLabel("paper: 'just building a model instance'");
}
BENCHMARK(BM_KnnTraining);

void BM_ModelSerializeRf(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    std::ostringstream out;
    m.rf.save(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_ModelSerializeRf);

void BM_StoreRangeQuery(benchmark::State& state) {
  static const JobStore store = [] {
    JobStore s;
    s.insert_all(sample_jobs());
    return s;
  }();
  JobQuery q;
  q.start_time = timepoint_from_ymd(2024, 1, 1);
  q.end_time = timepoint_from_ymd(2024, 1, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("15-day window fetch (Training Workflow)");
}
BENCHMARK(BM_StoreRangeQuery);

}  // namespace

BENCHMARK_MAIN();
