// §V-B overhead micro-benchmarks (google-benchmark): per-job cost of
// characterization, encoding, KNN/RF inference and model (de)serialization.
// Paper reference numbers (64-core EPYC 7302, Python):
//   characterization ~1e-6 s/job, SBERT encoding ~2e-3 s/job,
//   RF inference ~2e-6 s/job (model only).
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/feature_encoder.hpp"
#include "data/job_store.hpp"
#include "core/classification_model.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "obs/trace.hpp"
#include "roofline/characterizer.hpp"
#include "text/embedding_cache.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mcb;

const std::vector<JobRecord>& sample_jobs() {
  static const std::vector<JobRecord> jobs = [] {
    WorkloadGenerator generator(scaled_workload_config(50.0, 15));
    return generator.generate();
  }();
  return jobs;
}

void BM_Characterize(benchmark::State& state) {
  const Characterizer characterizer(fugaku_node_spec());
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterizer.characterize(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper: ~1e-6 s/job");
}
BENCHMARK(BM_Characterize);

void BM_FeatureString(benchmark::State& state) {
  const FeatureEncoder encoder;
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.feature_string(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FeatureString);

void BM_Encode(benchmark::State& state) {
  const FeatureEncoder encoder;
  const auto& jobs = sample_jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(jobs[i++ % jobs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper (SBERT): ~2e-3 s/job");
}
BENCHMARK(BM_Encode);

/// Train-once fixtures for inference benchmarks.
struct TrainedModels {
  FeatureMatrix train_x{0, 0};
  std::vector<Label> train_y;
  FeatureMatrix query{0, 0};
  FeatureMatrix batch{0, 0};  ///< 512-row slice for the batched kernels
  ClassificationModel knn{ModelKind::kKnn};
  ClassificationModel rf{ModelKind::kRandomForest};
  RandomForestClassifier rf_raw;  ///< concrete handles expose the scalar
  KnnClassifier knn_raw;          ///< reference paths for comparison (index off)
  KnnClassifier knn_indexed;      ///< pruned spatial index (DESIGN.md §11)

  TrainedModels() {
    const FeatureEncoder encoder;
    const Characterizer characterizer(fugaku_node_spec());
    const auto& jobs = sample_jobs();
    const std::size_t n = std::min<std::size_t>(jobs.size(), 4000);
    std::vector<JobRecord> subset(jobs.begin(), jobs.begin() + static_cast<std::ptrdiff_t>(n));
    train_x = encoder.encode_batch(subset);
    for (const auto& job : subset) {
      train_y.push_back(to_label(*characterizer.characterize(job)));
    }
    knn.training(train_x.view(), train_y);
    RandomForestConfig rf_config;
    rf_config.n_trees = 100;
    rf_config.tree.max_features = 48;
    rf = ClassificationModel(ModelKind::kRandomForest, {}, rf_config);
    rf.training(train_x.view(), train_y);
    rf_raw = RandomForestClassifier(rf_config);
    rf_raw.fit(train_x.view(), train_y);
    // knn_raw must stay a pure scan so the BatchScalar/BatchTiled
    // benchmarks keep measuring the kernels, not the index.
    KnnConfig scan_config;
    scan_config.index.mode = KnnIndexMode::kNone;
    knn_raw = KnnClassifier(scan_config);
    knn_raw.fit(train_x.view(), train_y);
    knn_indexed.fit(train_x.view(), train_y);
    query = FeatureMatrix(1, encoder.dim());
    const auto source = train_x.view().row(7);
    std::copy(source.begin(), source.end(), query.row(0));
    const std::size_t batch_rows = std::min<std::size_t>(n, 512);
    batch = FeatureMatrix(batch_rows, encoder.dim());
    for (std::size_t i = 0; i < batch_rows; ++i) {
      const auto row = train_x.view().row(i);
      std::copy(row.begin(), row.end(), batch.row(i));
    }
  }
};

TrainedModels& models() {
  static TrainedModels m;
  return m;
}

void BM_KnnInference(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.knn.inference(m.query.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("scan over 4000x384 train matrix");
}
BENCHMARK(BM_KnnInference);

void BM_RfInference(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rf.inference(m.query.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("paper: ~2e-6 s/job (model only)");
}
BENCHMARK(BM_RfInference);

/// Batched kernels vs their scalar references (the bench_fig8 speedup,
/// in per-item form). items/s is the comparable figure of merit.
void BM_RfInferenceBatchScalar(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rf_raw.predict_scalar(m.batch.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * m.batch.view().rows));
  state.SetLabel("bin + per-row tree recursion");
}
BENCHMARK(BM_RfInferenceBatchScalar);

void BM_RfInferenceBatchFlat(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.rf_raw.predict(m.batch.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * m.batch.view().rows));
  state.SetLabel("flat forest, raw-float thresholds");
}
BENCHMARK(BM_RfInferenceBatchFlat);

void BM_KnnInferenceBatchScalar(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.knn_raw.predict_scalar(m.batch.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * m.batch.view().rows));
  state.SetLabel("serial-reduction dot scan");
}
BENCHMARK(BM_KnnInferenceBatchScalar);

void BM_KnnInferenceBatchTiled(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.knn_raw.predict(m.batch.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * m.batch.view().rows));
  state.SetLabel("tiled scan, 4-accumulator dot");
}
BENCHMARK(BM_KnnInferenceBatchTiled);

void BM_KnnInferenceBatchIndexed(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.knn_indexed.predict(m.batch.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * m.batch.view().rows));
  state.SetLabel("bounding-box tree + duplicate groups");
}
BENCHMARK(BM_KnnInferenceBatchIndexed);

void BM_EncodeBatchCached(benchmark::State& state) {
  static const FeatureEncoder encoder;
  const auto& jobs = sample_jobs();
  const std::size_t n = std::min<std::size_t>(jobs.size(), 512);
  const std::span<const JobRecord> batch(jobs.data(), n);
  static ShardedEmbeddingCache cache(encoder.dim());
  encoder.encode_batch_cached(batch, cache);  // warm: steady-state = all hits
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode_batch_cached(batch, cache));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  state.SetLabel("sharded LRU, warm");
}
BENCHMARK(BM_EncodeBatchCached);

/// The price every library call site pays when no request is in flight:
/// one thread-local load + branch. The bench-smoke CI leg gates this at
/// <= ~20 ns via the span_disabled_ns metric in bench_fig8's artifact.
void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span(obs::Stage::kEncode);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("no current trace: TLS load + branch");
}
BENCHMARK(BM_SpanDisabled);

/// Full cost with a live trace installed: two steady-clock reads plus a
/// histogram bucket update.
void BM_SpanEnabled(benchmark::State& state) {
  static obs::RequestTracer tracer;
  obs::TraceContext trace = tracer.make_trace();
  obs::TraceScope scope(&trace);
  for (auto _ : state) {
    obs::Span span(obs::Stage::kEncode);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("live trace: 2 clock reads + histogram add");
}
BENCHMARK(BM_SpanEnabled);

void BM_KnnTraining(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    ClassificationModel fresh(ModelKind::kKnn);
    fresh.training(m.train_x.view(), m.train_y);
    benchmark::DoNotOptimize(fresh);
  }
  state.SetLabel("paper: 'just building a model instance'");
}
BENCHMARK(BM_KnnTraining);

void BM_ModelSerializeRf(benchmark::State& state) {
  auto& m = models();
  for (auto _ : state) {
    std::ostringstream out;
    m.rf.save(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_ModelSerializeRf);

void BM_StoreRangeQuery(benchmark::State& state) {
  static const JobStore& store = *[] {
    static JobStore s;  // JobStore is immovable (owns a mutex); build in place
    s.insert_all(sample_jobs());
    return &s;
  }();
  JobQuery q;
  q.start_time = timepoint_from_ymd(2024, 1, 1);
  q.end_time = timepoint_from_ymd(2024, 1, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(q));
  }
  state.SetLabel("15-day window fetch (Training Workflow)");
}
BENCHMARK(BM_StoreRangeQuery);

}  // namespace

BENCHMARK_MAIN();
