// Ablation A2 (DESIGN.md): Random-Forest hyper-parameters vs F1 and
// training time — the measurements behind the histogram-CART design:
//   * tree count (sklearn default 100),
//   * features per split (sqrt(384)=20 vs the tuned 48),
//   * histogram bin count (the binned-CART speed/quality trade-off),
//   * max depth, bootstrap on/off.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_ablation_rf [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("ablation: random-forest hyper-parameters",
                      "DESIGN.md A2 (histogram-CART design)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  struct Variant {
    const char* name;
    RandomForestConfig config;
  };
  const auto base = bench::paper_rf_config(100);
  std::vector<Variant> variants;
  variants.push_back({"default (100 trees, mf=48, 256 bins)", base});
  {
    auto c = base;
    c.n_trees = 25;
    variants.push_back({"25 trees", c});
  }
  {
    auto c = base;
    c.n_trees = 200;
    variants.push_back({"200 trees", c});
  }
  {
    auto c = base;
    c.tree.max_features = 0;  // sqrt(384) ~ 20, the sklearn default
    variants.push_back({"mf=sqrt(d)=20 (sklearn default)", c});
  }
  {
    auto c = base;
    c.tree.max_features = 96;
    variants.push_back({"mf=96", c});
  }
  {
    auto c = base;
    c.max_bins = 32;
    variants.push_back({"32 histogram bins", c});
  }
  {
    auto c = base;
    c.max_bins = 64;
    variants.push_back({"64 histogram bins", c});
  }
  {
    auto c = base;
    c.tree.max_depth = 8;
    variants.push_back({"max depth 8", c});
  }
  {
    auto c = base;
    c.bootstrap = false;
    variants.push_back({"no bootstrap", c});
  }

  std::printf("\n(RF alpha=15, beta=1 over February; F1 and avg per-retrain fit time)\n\n");
  TextTable table({"forest variant", "F1", "train s (avg)"});
  for (const auto& variant : variants) {
    OnlineEvalConfig config;
    config.alpha_days = 15;
    config.beta_days = 1;
    const auto factory = [&variant] {
      return ClassificationModel(ModelKind::kRandomForest, {}, variant.config);
    };
    const auto result = evaluator.evaluate(factory, config);
    table.add_row({variant.name, format_double(result.f1_macro(), 4),
                   format_double(result.train_seconds.mean(), 4)});
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Reading: quality saturates around 100 trees / 48 features; coarse bins\n");
  std::printf("trade little accuracy for speed (histogram-CART justification); shallow\n");
  std::printf("depth caps hurt because app isolation needs deep paths.\n");
  return 0;
}
