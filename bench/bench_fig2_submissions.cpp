// Figure 2 reproduction: job submission distribution over time
// (December 2023 - March 2024). The paper observes a uniform submission
// rate except for a few days in early February when scheduled
// maintenance shut the system down.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig2_submissions [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Figure 2: job submission distribution over time",
                      "Fig. 2 (§IV-A)", jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);

  // Weekly totals as a bar chart plus the daily series around the
  // maintenance window.
  const std::int64_t total_days = day_index(config.end_time - 1, config.start_time) + 1;
  std::vector<std::uint64_t> daily(static_cast<std::size_t>(total_days), 0);
  for (const JobRecord& job : store.all()) {
    ++daily[static_cast<std::size_t>(day_index(job.submit_time, config.start_time))];
  }

  std::printf("\nDaily submissions (one row per week, '#' ~ relative volume):\n\n");
  std::uint64_t max_daily = 1;
  for (const auto count : daily) max_daily = std::max(max_daily, count);
  for (std::int64_t week_start = 0; week_start < total_days; week_start += 7) {
    std::uint64_t week_total = 0;
    for (std::int64_t d = week_start; d < std::min(total_days, week_start + 7); ++d) {
      week_total += daily[static_cast<std::size_t>(d)];
    }
    const TimePoint t = config.start_time + week_start * kSecondsPerDay;
    const int bar = static_cast<int>(
        60.0 * static_cast<double>(week_total) /
        (7.0 * static_cast<double>(max_daily)));
    std::printf("%s %8llu |", format_date(t).c_str(),
                static_cast<unsigned long long>(week_total));
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }

  std::printf("\nDaily detail around the maintenance shutdown (paper: early February):\n\n");
  for (std::int64_t d = day_index(config.maintenance_start, config.start_time) - 3;
       d <= day_index(config.maintenance_end, config.start_time) + 2; ++d) {
    if (d < 0 || d >= total_days) continue;
    const TimePoint t = config.start_time + d * kSecondsPerDay;
    const bool in_maintenance = t >= config.maintenance_start && t < config.maintenance_end;
    std::printf("%s %8llu %s\n", format_date(t).c_str(),
                static_cast<unsigned long long>(daily[static_cast<std::size_t>(d)]),
                in_maintenance ? "<- scheduled maintenance" : "");
  }

  OnlineStats active_days;
  for (std::int64_t d = 0; d < total_days; ++d) {
    const TimePoint t = config.start_time + d * kSecondsPerDay;
    if (t >= config.maintenance_start && t < config.maintenance_end) continue;
    active_days.add(static_cast<double>(daily[static_cast<std::size_t>(d)]));
  }
  std::printf("\nTotal jobs: %s | active-day mean %.0f, stddev %.0f (cv %.2f)\n",
              with_thousands(static_cast<std::int64_t>(store.size())).c_str(),
              active_days.mean(), active_days.stddev(),
              active_days.stddev() / active_days.mean());
  std::printf("Paper shape check: uniform rate outside the early-February dip -> %s\n",
              active_days.stddev() / active_days.mean() < 0.5 ? "OK" : "MISMATCH");
  return 0;
}
