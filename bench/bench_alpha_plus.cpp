// §V-C(b) reproduction: the alpha-plus (growing window) experiment.
// Starting from each model's best sliding-alpha setting, retrain instead
// on ALL data since December 1st, never forgetting.
//
// Paper shape: RF F1 unchanged (0.90 -> 0.90) but training time grows
// ~8x (26 s -> >200 s); KNN F1 *drops* (0.89 -> 0.86) and its inference
// cost rises — a sliding window is better on both axes, because the
// workload drifts and old jobs mislead the nearest-neighbour vote.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_alpha_plus [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("alpha-plus: growing training window vs sliding window",
                      "§V-C(b), discussed with Figs. 6-8", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  std::printf("\n");
  TextTable table({"model", "window", "F1", "train jobs (avg)", "train s (avg)",
                   "infer s/job (avg)"});

  struct Case {
    ModelKind kind;
    int alpha;
  };
  for (const Case c : {Case{ModelKind::kRandomForest, 15}, Case{ModelKind::kKnn, 30}}) {
    const char* name = c.kind == ModelKind::kKnn ? "KNN" : "RF";
    double sliding_f1 = 0.0;
    for (const bool growing : {false, true}) {
      OnlineEvalConfig config;
      config.alpha_days = c.alpha;
      config.beta_days = 1;
      config.growing_window = growing;
      const auto result = evaluator.evaluate(bench::model_factory(c.kind, rf_trees), config);
      if (!growing) sliding_f1 = result.f1_macro();
      char infer[32];
      std::snprintf(infer, sizeof(infer), "%.3e", result.inference_seconds_per_job.mean());
      table.add_row({name,
                     growing ? "alpha+ (growing)" : "alpha=" + std::to_string(c.alpha),
                     format_double(result.f1_macro(), 4),
                     format_double(result.train_set_size.mean(), 0),
                     format_double(result.train_seconds.mean(), 4), infer});
      std::fputs(".", stdout);
      std::fflush(stdout);
      if (growing) {
        std::printf("\n%s: alpha+ vs sliding F1 delta = %+.4f  (paper: RF +0.00, KNN -0.03)\n",
                    name, result.f1_macro() - sliding_f1);
      }
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("Paper conclusion: the sliding window wins on accuracy (KNN) and on\n");
  std::printf("training/inference cost (both); alpha+ never improves F1.\n");
  return 0;
}
