// §VI extension: predicting other job features with the same KNN
// machinery — "the KNN finds the most similar jobs regardless of the
// target feature". Trains KNN regressors on the encoded submission
// features to predict, before execution:
//   * duration (seconds),
//   * average power draw (watts),
// and the three-class extended label (memory / compute / interconnect)
// via the multi-roof ExtendedCharacterizer.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/knn_regressor.hpp"
#include "roofline/extended.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_future_predictions [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("future-work predictions: duration, power, 3-class labels",
                      "§VI", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const FeatureEncoder encoder;

  // Train on January, test on the first half of February.
  JobQuery train_q, test_q;
  train_q.start_time = timepoint_from_ymd(2024, 1, 1);
  train_q.end_time = timepoint_from_ymd(2024, 2, 1);
  test_q.field = JobQuery::TimeField::kSubmitTime;
  test_q.start_time = timepoint_from_ymd(2024, 2, 1);
  test_q.end_time = timepoint_from_ymd(2024, 2, 15);

  std::vector<JobRecord> train, test;
  for (const JobRecord* job : store.query(train_q)) train.push_back(*job);
  for (const JobRecord* job : store.query(test_q)) test.push_back(*job);
  std::printf("\ntrain: %zu jobs (January, by completion) | test: %zu jobs (Feb 1-14)\n\n",
              train.size(), test.size());

  const FeatureMatrix train_x = encoder.encode_batch(train);
  const FeatureMatrix test_x = encoder.encode_batch(test);

  // ---- duration & power regression -----------------------------------
  TextTable regression({"target", "MAE", "MAPE", "R^2"});
  for (const bool power_target : {false, true}) {
    std::vector<double> train_y, test_y;
    for (const auto& j : train) {
      train_y.push_back(power_target ? j.avg_power_watts
                                     : static_cast<double>(j.duration()));
    }
    for (const auto& j : test) {
      test_y.push_back(power_target ? j.avg_power_watts
                                    : static_cast<double>(j.duration()));
    }
    KnnRegressorConfig config;
    config.distance_weighted = true;
    KnnRegressor regressor(config);
    regressor.fit(train_x.view(), train_y);
    const auto predicted = regressor.predict(test_x.view());
    const RegressionMetrics metrics = evaluate_regression(test_y, predicted);
    regression.add_row({power_target ? "avg power (W)" : "duration (s)",
                        format_double(metrics.mae, 1),
                        format_double(100.0 * metrics.mape, 1) + "%",
                        format_double(metrics.r2, 3)});
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\nKNN regression (k=5, distance-weighted) on submission features:\n%s\n",
              regression.render().c_str());

  // ---- three-class extended characterization --------------------------
  const ExtendedCharacterizer extended(workload_config.machine);
  std::array<std::uint64_t, 3> truth_counts{};
  for (const auto& job : store.all()) {
    const auto label = extended.characterize(job);
    if (label.has_value()) ++truth_counts[static_cast<std::size_t>(*label)];
  }
  std::printf("extended 3-class census over the full trace (multi-roof argmax):\n");
  for (std::size_t c = 0; c < 3; ++c) {
    std::printf("  %-18s %s\n",
                extended_boundedness_name(static_cast<ExtendedBoundedness>(c)),
                with_thousands(static_cast<std::int64_t>(truth_counts[c])).c_str());
  }

  // Predict 3-class labels with KNN trained on extended ground truth.
  std::vector<Label> train_y3, test_y3;
  for (const auto& j : train) {
    train_y3.push_back(static_cast<Label>(*extended.characterize(j)));
  }
  for (const auto& j : test) {
    test_y3.push_back(static_cast<Label>(*extended.characterize(j)));
  }
  KnnClassifier knn3;
  knn3.fit(train_x.view(), train_y3);
  const auto predicted3 = knn3.predict(test_x.view());
  ConfusionMatrix confusion(3);
  confusion.add_all(test_y3, predicted3);
  std::printf("\n3-class KNN prediction on the test window:\n%s\n",
              confusion
                  .render({"memory-bound", "compute-bound", "interconnect-bound"})
                  .c_str());
  std::printf("Shape expectation: interconnect-bound is a small but learnable third\n");
  std::printf("class (communication-heavy multi-node apps), F1-macro above 0.6.\n");
  return 0;
}
