// Figure 8 reproduction: average per-job inference time (including
// feature encoding) vs alpha at beta = 1. Paper shape: both models are
// dominated by the ~2e-3 s/job SBERT encoding; RF inference is constant
// in alpha, KNN inference grows mildly with the training-set size; both
// stay negligible against the ~3-minute average scheduling wait.
// (Our hashed encoder is far cheaper than SBERT, so absolute values are
// lower; the orderings are the reproduced shape.)
//
// The second section measures the batched serving fast path
// (DESIGN.md §8): flat-forest RF, tiled KNN and the canonical-text
// embedding cache against their scalar reference implementations,
// single-threaded so the ratio reflects the kernels and not core count.
// With --json the headline metrics become the BENCH_inference.json
// artifact gated by tools/bench_check in the bench-smoke CI job.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/feature_encoder.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "obs/perf/counters.hpp"
#include "obs/trace.hpp"
#include "text/embedding_cache.hpp"

namespace {

using namespace mcb;

/// Deterministic stand-in for the rdpmc fast path, so span_counters_ns
/// is measurable (and gated) on runners whose perf_event_open fails.
/// The values advance every read like a real counter group would.
class BenchCounterSource final : public obs::perf::CounterSource {
 public:
  bool read_counters(obs::perf::CounterSample& out) noexcept override {
    tick_ += 7;
    for (std::size_t i = 0; i < obs::perf::kCounterCount; ++i) {
      out.value[i] = tick_ * (i + 1);
    }
    return true;
  }
  bool available() const noexcept override { return true; }
  int error() const noexcept override { return 0; }
  bool hot_path_capable() const noexcept override { return true; }

 private:
  std::uint64_t tick_ = 0;
};

/// Scalar-vs-batched kernel comparison on one train/query split.
void run_fast_path_section(const WorkloadConfig& workload_config,
                           const Characterizer& characterizer, const FeatureEncoder& encoder,
                           std::size_t rf_trees, bench::JsonReport& report) {
  WorkloadGenerator generator(workload_config);
  const std::vector<JobRecord> all_jobs = generator.generate();
  const std::size_t n_train = std::min<std::size_t>(all_jobs.size(), 4000);
  const std::vector<JobRecord> train_jobs(all_jobs.begin(),
                                          all_jobs.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::size_t n_query = std::min<std::size_t>(all_jobs.size(), 1000);
  const std::vector<JobRecord> query_jobs(all_jobs.begin(),
                                          all_jobs.begin() + static_cast<std::ptrdiff_t>(n_query));

  const FeatureMatrix train_x = encoder.encode_batch(train_jobs);
  std::vector<Label> train_y;
  train_y.reserve(train_jobs.size());
  for (const auto& job : train_jobs) {
    train_y.push_back(to_label(*characterizer.characterize(job)));
  }
  const FeatureMatrix query_x = encoder.encode_batch(query_jobs);

  RandomForestClassifier rf(bench::paper_rf_config(rf_trees));
  rf.fit(train_x.view(), train_y);
  // Brute-force reference: the tiled scan with the spatial index
  // disabled, so knn_batch_speedup keeps measuring the PR 3 kernel.
  KnnConfig scan_config;
  scan_config.index.mode = KnnIndexMode::kNone;
  KnnClassifier knn(scan_config);
  knn.fit(train_x.view(), train_y);
  // Index-backed path (default config: bounding-box tree over the
  // deduplicated training rows, DESIGN.md §11).
  KnnClassifier knn_indexed;
  knn_indexed.fit(train_x.view(), train_y);

  constexpr int kReps = 3;
  const auto qview = query_x.view();
  const double rf_scalar_s = bench::best_of(kReps, [&] { rf.predict_scalar(qview); });
  const double rf_batched_s = bench::best_of(kReps, [&] { rf.predict(qview); });
  const double knn_scalar_s = bench::best_of(kReps, [&] { knn.predict_scalar(qview); });
  const double knn_batched_s = bench::best_of(kReps, [&] { knn.predict(qview); });
  const double knn_index_s = bench::best_of(kReps, [&] { knn_indexed.predict(qview); });
  const bool rf_match = rf.predict(qview) == rf.predict_scalar(qview);
  const bool knn_match = knn.predict(qview) == knn.predict_scalar(qview);
  // The index contract is bit-identical labels against the scalar scan.
  const bool knn_index_match = knn_indexed.predict(qview) == knn.predict_scalar(qview);

  // Encoding: cold = hash every job; cached = recurring canonical
  // feature strings served from the sharded LRU (warmed by one pass).
  const double encode_cold_s = bench::best_of(kReps, [&] { encoder.encode_batch(query_jobs); });
  ShardedEmbeddingCache cache(encoder.dim());
  encoder.encode_batch_cached(query_jobs, cache);
  const double encode_cached_s =
      bench::best_of(kReps, [&] { encoder.encode_batch_cached(query_jobs, cache); });

  const double n = static_cast<double>(n_query);
  const double rf_speedup = rf_scalar_s / rf_batched_s;
  const double knn_speedup = knn_scalar_s / knn_batched_s;
  // Gated vs the *tiled* scan — the strongest brute-force baseline we
  // have, not the scalar strawman.
  const double knn_index_speedup = knn_batched_s / knn_index_s;
  const double encode_speedup = encode_cold_s / encode_cached_s;
  const auto& index_stats = knn_indexed.index().stats();

  std::printf("\nBatched fast path (single thread, %zu train rows, %zu queries, best of %d):\n\n",
              n_train, n_query, kReps);
  TextTable table({"path", "scalar s", "batched s", "speedup", "labels match"});
  char scalar_s[32], batched_s[32], speedup_s[32];
  std::snprintf(scalar_s, sizeof(scalar_s), "%.4f", rf_scalar_s);
  std::snprintf(batched_s, sizeof(batched_s), "%.4f", rf_batched_s);
  std::snprintf(speedup_s, sizeof(speedup_s), "x%.2f", rf_speedup);
  table.add_row({"RF (flat forest)", scalar_s, batched_s, speedup_s, rf_match ? "OK" : "MISMATCH"});
  std::snprintf(scalar_s, sizeof(scalar_s), "%.4f", knn_scalar_s);
  std::snprintf(batched_s, sizeof(batched_s), "%.4f", knn_batched_s);
  std::snprintf(speedup_s, sizeof(speedup_s), "x%.2f", knn_speedup);
  table.add_row({"KNN (tiled scan)", scalar_s, batched_s, speedup_s, knn_match ? "OK" : "MISMATCH"});
  std::snprintf(scalar_s, sizeof(scalar_s), "%.4f", knn_batched_s);
  std::snprintf(batched_s, sizeof(batched_s), "%.4f", knn_index_s);
  std::snprintf(speedup_s, sizeof(speedup_s), "x%.2f", knn_index_speedup);
  table.add_row({"KNN (spatial index vs scan)", scalar_s, batched_s, speedup_s,
                 knn_index_match ? "OK" : "MISMATCH"});
  std::snprintf(scalar_s, sizeof(scalar_s), "%.4f", encode_cold_s);
  std::snprintf(batched_s, sizeof(batched_s), "%.4f", encode_cached_s);
  std::snprintf(speedup_s, sizeof(speedup_s), "x%.2f", encode_speedup);
  table.add_row({"encode (LRU cache)", scalar_s, batched_s, speedup_s, "-"});
  std::printf("%s\n", table.render().c_str());
  std::printf("index: mode=%s rows=%zu unique=%zu nodes=%zu leaves=%zu\n\n",
              knn_index_mode_name(index_stats.mode), index_stats.rows,
              index_stats.unique_rows, index_stats.nodes, index_stats.leaves);

  report.set("rf_batch_speedup", rf_speedup);
  report.set("knn_batch_speedup", knn_speedup);
  report.set("knn_index_speedup", knn_index_speedup);
  report.set("encode_cache_speedup", encode_speedup);
  report.set("rf_scalar_jobs_per_s", n / rf_scalar_s);
  report.set("rf_batched_jobs_per_s", n / rf_batched_s);
  report.set("knn_scalar_jobs_per_s", n / knn_scalar_s);
  report.set("knn_batched_jobs_per_s", n / knn_batched_s);
  report.set("knn_index_jobs_per_s", n / knn_index_s);
  report.set("encode_cold_jobs_per_s", n / encode_cold_s);
  report.set("encode_cached_jobs_per_s", n / encode_cached_s);
  report.set("rf_labels_match", rf_match ? 1.0 : 0.0);
  report.set("knn_labels_match", knn_match ? 1.0 : 0.0);
  report.set("knn_index_labels_match", knn_index_match ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(argc, argv, bench::standard_flags(),
                                     "usage: bench_fig8_inference_time [--jobs-per-day N] "
                                     "[--seed S] [--rf-trees T] [--json PATH]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));
  const std::string json_path = flags->get("json", "");

  bench::print_banner("Figure 8: average per-job inference time vs alpha (beta=1)",
                      "Fig. 8 (§V-C a)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);
  bench::JsonReport report("fig8_inference_time");

  std::printf("\n");
  TextTable table({"alpha (days)", "KNN s/job", "RF s/job", "encode s/job"});
  double knn15 = 0, knn60 = 0, rf15 = 0, rf60 = 0;
  for (const int alpha : {15, 30, 45, 60}) {
    OnlineEvalConfig config;
    config.alpha_days = alpha;
    config.beta_days = 1;
    const auto knn = evaluator.evaluate(bench::model_factory(ModelKind::kKnn), config);
    const auto rf =
        evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), config);
    char knn_s[32], rf_s[32], enc_s[32];
    std::snprintf(knn_s, sizeof(knn_s), "%.3e", knn.inference_seconds_per_job.mean());
    std::snprintf(rf_s, sizeof(rf_s), "%.3e", rf.inference_seconds_per_job.mean());
    std::snprintf(enc_s, sizeof(enc_s), "%.3e", knn.encode_seconds_per_job.mean());
    table.add_row({std::to_string(alpha), knn_s, rf_s, enc_s});
    if (alpha == 15) { knn15 = knn.inference_seconds_per_job.mean(); rf15 = rf.inference_seconds_per_job.mean(); }
    if (alpha == 60) { knn60 = knn.inference_seconds_per_job.mean(); rf60 = rf.inference_seconds_per_job.mean(); }
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Paper reference: RF ~2.0e-3 s/job (constant), KNN ~2.3e-3 s/job (mildly\n");
  std::printf("growing), both dominated by ~2e-3 s/job SBERT encoding; scheduling wait ~180 s.\n");
  std::printf("\nShape checks:\n");
  std::printf("  KNN grows with alpha (x%.2f from 15 to 60)    -> %s\n", knn60 / knn15,
              knn60 > knn15 ? "OK" : "MISMATCH");
  std::printf("  RF roughly constant in alpha (x%.2f)          -> %s\n", rf60 / rf15,
              rf60 < rf15 * 2.0 ? "OK" : "MISMATCH");
  std::printf("  negligible vs 180 s scheduling wait           -> %s\n",
              knn60 < 1.0 ? "OK" : "MISMATCH");
  report.set("knn_s_per_job_alpha60", knn60);
  report.set("rf_s_per_job_alpha60", rf60);

  run_fast_path_section(workload_config, characterizer, encoder, rf_trees, report);

  // Span overhead, best of 3 like every other section (the floor gates
  // the span's true cost, not a scheduling hiccup mid-loop).
  //
  // Disabled: the tracing tax every library call site pays when no
  // request is in flight. Hard-gated by the baseline at 2x of 10 ns.
  constexpr std::size_t kSpanIters = 1'000'000;
  constexpr int kSpanReps = 3;
  const auto span_loop = [] {
    for (std::size_t i = 0; i < kSpanIters; ++i) {
      obs::Span span(obs::Stage::kEncode);
      // Optimizer barrier: keep the Span object (and its dtor) live.
      asm volatile("" : : "r"(&span) : "memory");  // NOLINT(hicpp-no-assembler)
    }
  };
  {
    const double span_s = bench::best_of(kSpanReps, span_loop);
    const double span_ns = span_s * 1e9 / static_cast<double>(kSpanIters);
    std::printf("\ndisabled span overhead: %.1f ns/span (%zu iterations, best of %d)\n",
                span_ns, kSpanIters, kSpanReps);
    report.set("span_disabled_ns", span_ns);
  }

  // Counted: the same RAII span on an armed trace with an attached
  // counter source — two clock reads, two grouped counter reads, the
  // per-stage delta accumulation and the histogram record (DESIGN.md
  // §14). Floor-gated at 75 ns/span.
  {
    obs::RequestTracer tracer;
    BenchCounterSource counters;
    tracer.set_counter_source(&counters, /*force=*/true);
    obs::TraceContext trace = tracer.make_trace();
    obs::TraceScope scope(&trace);
    const double span_s = bench::best_of(kSpanReps, span_loop);
    const double span_ns = span_s * 1e9 / static_cast<double>(kSpanIters);
    std::printf("counted span overhead:  %.1f ns/span (%zu iterations, best of %d)\n",
                span_ns, kSpanIters, kSpanReps);
    report.set("span_counters_ns", span_ns);
  }

  if (!json_path.empty()) {
    if (!report.write(json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
