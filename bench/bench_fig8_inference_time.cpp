// Figure 8 reproduction: average per-job inference time (including
// feature encoding) vs alpha at beta = 1. Paper shape: both models are
// dominated by the ~2e-3 s/job SBERT encoding; RF inference is constant
// in alpha, KNN inference grows mildly with the training-set size; both
// stay negligible against the ~3-minute average scheduling wait.
// (Our hashed encoder is far cheaper than SBERT, so absolute values are
// lower; the orderings are the reproduced shape.)
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig8_inference_time [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("Figure 8: average per-job inference time vs alpha (beta=1)",
                      "Fig. 8 (§V-C a)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  std::printf("\n");
  TextTable table({"alpha (days)", "KNN s/job", "RF s/job", "encode s/job"});
  double knn15 = 0, knn60 = 0, rf15 = 0, rf60 = 0;
  for (const int alpha : {15, 30, 45, 60}) {
    OnlineEvalConfig config;
    config.alpha_days = alpha;
    config.beta_days = 1;
    const auto knn = evaluator.evaluate(bench::model_factory(ModelKind::kKnn), config);
    const auto rf =
        evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), config);
    char knn_s[32], rf_s[32], enc_s[32];
    std::snprintf(knn_s, sizeof(knn_s), "%.3e", knn.inference_seconds_per_job.mean());
    std::snprintf(rf_s, sizeof(rf_s), "%.3e", rf.inference_seconds_per_job.mean());
    std::snprintf(enc_s, sizeof(enc_s), "%.3e", knn.encode_seconds_per_job.mean());
    table.add_row({std::to_string(alpha), knn_s, rf_s, enc_s});
    if (alpha == 15) { knn15 = knn.inference_seconds_per_job.mean(); rf15 = rf.inference_seconds_per_job.mean(); }
    if (alpha == 60) { knn60 = knn.inference_seconds_per_job.mean(); rf60 = rf.inference_seconds_per_job.mean(); }
    std::fputs(".", stdout);
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Paper reference: RF ~2.0e-3 s/job (constant), KNN ~2.3e-3 s/job (mildly\n");
  std::printf("growing), both dominated by ~2e-3 s/job SBERT encoding; scheduling wait ~180 s.\n");
  std::printf("\nShape checks:\n");
  std::printf("  KNN grows with alpha (x%.2f from 15 to 60)    -> %s\n", knn60 / knn15,
              knn60 > knn15 ? "OK" : "MISMATCH");
  std::printf("  RF roughly constant in alpha (x%.2f)          -> %s\n", rf60 / rf15,
              rf60 < rf15 * 2.0 ? "OK" : "MISMATCH");
  std::printf("  negligible vs 180 s scheduling wait           -> %s\n",
              knn60 < 1.0 ? "OK" : "MISMATCH");
  return 0;
}
