// Figure 6 reproduction: F1-macro of KNN and RF across the grid of
// retraining-window lengths alpha ∈ {15,30,45,60} days and retraining
// periods beta ∈ {1,2,5,10} days, over the February 2024 test month.
//
// Paper shape: F1 decreases as beta grows (staler models) for both
// models; RF is insensitive to alpha beyond 15 at beta = 1, KNN peaks
// around alpha = 30; best settings are (RF, alpha=15, beta=1) and
// (KNN, alpha=30, beta=1) with F1 0.90 / 0.89.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig6_alpha_beta [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("Figure 6: F1 over alpha x beta", "Fig. 6 (§V-C a)", jobs_per_day,
                      seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  const int alphas[] = {15, 30, 45, 60};
  const int betas[] = {1, 2, 5, 10};

  for (const ModelKind kind : {ModelKind::kKnn, ModelKind::kRandomForest}) {
    std::printf("\n%s — F1-macro (rows: alpha days, columns: beta days)\n\n",
                kind == ModelKind::kKnn ? "KNN" : "RF");
    TextTable table({"alpha \\ beta", "1", "2", "5", "10"});
    double best_f1 = 0.0;
    int best_alpha = 0, best_beta = 0;
    for (const int alpha : alphas) {
      std::vector<std::string> row{std::to_string(alpha)};
      for (const int beta : betas) {
        OnlineEvalConfig config;
        config.alpha_days = alpha;
        config.beta_days = beta;
        const auto result = evaluator.evaluate(bench::model_factory(kind, rf_trees), config);
        const double f1 = result.f1_macro();
        row.push_back(format_double(f1, 4));
        if (f1 > best_f1) {
          best_f1 = f1;
          best_alpha = alpha;
          best_beta = beta;
        }
      }
      table.add_row(std::move(row));
      std::fputs(".", stdout);
      std::fflush(stdout);
    }
    std::printf("\n\n%s\n", table.render().c_str());
    std::printf("best: alpha=%d beta=%d F1=%.4f  (paper best: %s)\n", best_alpha, best_beta,
                best_f1,
                kind == ModelKind::kKnn ? "alpha=30 beta=1, F1=0.89"
                                        : "alpha=15 beta=1, F1=0.90");
  }

  std::printf("\nPaper shape check: for each model and alpha, F1(beta=1) >= F1(beta=10).\n");
  return 0;
}
