// §VI extension: dispatching strategies driven by MCBound predictions.
// Replays the February test month through the event-driven cluster
// simulator under three policies, each with (a) oracle labels, and
// (b) labels from an actually-trained online RF model — showing that the
// ~90%-accurate classifier retains most of the oracle's benefit:
//
//   exclusive            today's behaviour (baseline)
//   + frequency advisor  predicted-compute -> boost, predicted-memory ->
//                        normal (paper §V-C d physics)
//   + co-scheduling      complementary-label node sharing (refs [8, 9])
#include <cstdio>

#include "bench_common.hpp"
#include "sched/dispatch.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags({"nodes"}),
      "usage: bench_dispatch [--jobs-per-day N] [--seed S] [--nodes NODES] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));
  const auto total_nodes = static_cast<std::uint32_t>(flags->get_int("nodes", 56));

  bench::print_banner("dispatching with MCBound predictions", "§VI (future work, refs 8/9/18)",
                      jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);

  // February's jobs, by submission.
  JobQuery q;
  q.field = JobQuery::TimeField::kSubmitTime;
  q.start_time = timepoint_from_ymd(2024, 2, 1);
  q.end_time = timepoint_from_ymd(2024, 3, 1);
  std::vector<JobRecord> february;
  for (const JobRecord* job : store.query(q)) february.push_back(*job);
  std::printf("\nFebruary trace: %zu jobs onto a %u-node partition (sized for ~90%% demand)\n", february.size(),
              total_nodes);

  // Oracle labels + model labels (online RF, alpha=15, beta=1).
  const std::vector<Boundedness> oracle = characterizer.generate_labels(february);

  const FeatureEncoder encoder;
  StoreDataFetcher fetcher(store);
  EncodingCache cache(encoder.dim());
  const TrainingWorkflow training(fetcher, characterizer, encoder, &cache);
  const InferenceWorkflow inference(fetcher, encoder, &cache);
  std::vector<Boundedness> model_labels(february.size(), Boundedness::kMemoryBound);
  {
    std::size_t cursor = 0;
    for (TimePoint day = q.start_time; day < q.end_time; day += kSecondsPerDay) {
      ClassificationModel model(ModelKind::kRandomForest, {}, bench::paper_rf_config(rf_trees));
      training.run(model, day - 15 * kSecondsPerDay, day);
      std::vector<JobRecord> batch;
      const std::size_t batch_start = cursor;
      while (cursor < february.size() &&
             february[cursor].submit_time < day + kSecondsPerDay) {
        batch.push_back(february[cursor++]);
      }
      if (batch.empty() || !model.is_trained()) continue;
      const InferenceReport report = inference.run_jobs(model, batch);
      for (std::size_t i = 0; i < report.predictions.size(); ++i) {
        model_labels[batch_start + i] = to_boundedness(report.predictions[i]);
      }
    }
  }
  std::size_t agree = 0;
  for (std::size_t i = 0; i < oracle.size(); ++i) agree += oracle[i] == model_labels[i];
  std::printf("model label accuracy vs oracle: %.1f%%\n\n",
              100.0 * static_cast<double>(agree) / static_cast<double>(oracle.size()));

  struct Policy {
    const char* name;
    bool advisor;
    bool coschedule;
  };
  const Policy policies[] = {
      {"exclusive (baseline)", false, false},
      {"+ frequency advisor", true, false},
      {"+ co-scheduling", true, true},
  };

  TextTable table({"policy", "labels", "makespan h", "mean wait s", "energy GJ",
                   "co-sched", "conflicts", "freq overrides"});
  double baseline_energy = 0.0, baseline_makespan = 0.0;
  for (const Policy& policy : policies) {
    for (const bool use_model : {false, true}) {
      if (!policy.advisor && use_model) continue;  // baseline ignores labels
      const auto jobs = make_dispatch_jobs(february, use_model ? model_labels : oracle,
                                           characterizer);
      DispatchConfig config;
      config.total_nodes = total_nodes;
      config.frequency_advisor = policy.advisor;
      config.co_schedule = policy.coschedule;
      const DispatchResult result = simulate_dispatch(jobs, config);
      if (!policy.advisor) {
        baseline_energy = result.total_energy_gj;
        baseline_makespan = result.makespan_s;
      }
      table.add_row({policy.name, use_model ? "RF model" : "oracle",
                     format_double(result.makespan_s / 3600.0, 1),
                     format_double(result.mean_wait_s, 0),
                     format_double(result.total_energy_gj, 2),
                     std::to_string(result.co_scheduled_jobs),
                     std::to_string(result.conflict_pairs),
                     std::to_string(result.frequency_overrides)});
      std::fputs(".", stdout);
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("baseline: %.1f h makespan, %.2f GJ. Expected shape: the advisor cuts\n",
              baseline_makespan / 3600.0, baseline_energy);
  std::printf("energy (memory-bound jobs leave boost) and trims compute-bound runtimes;\n");
  std::printf("co-scheduling raises throughput further; the RF model keeps most of the\n");
  std::printf("oracle benefit at ~90%% label accuracy.\n");
  return 0;
}
