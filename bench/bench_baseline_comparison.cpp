// §V-C(a) reproduction: the (job name, #cores requested) lookup baseline
// against KNN and RF at their best settings, all updated online with
// alpha = 30, beta = 1 (the paper uses the best KNN settings for the
// baseline). Paper: baseline F1 0.83 vs 0.90 — "simpler but less
// accurate, justifying the need for our approach".
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_baseline_comparison [--jobs-per-day N] [--seed S] [--rf-trees T]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));
  const auto rf_trees = static_cast<std::size_t>(flags->get_int("rf-trees", 100));

  bench::print_banner("baseline comparison: (job name, #cores) lookup vs KNN vs RF",
                      "§V-C(a)", jobs_per_day, seed);

  WorkloadConfig workload_config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &workload_config);
  const Characterizer characterizer(workload_config.machine);
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);

  OnlineEvalConfig config;
  config.alpha_days = 30;
  config.beta_days = 1;

  const auto baseline = evaluator.evaluate_baseline(config);
  const auto knn = evaluator.evaluate(bench::model_factory(ModelKind::kKnn), config);
  OnlineEvalConfig rf_config = config;
  rf_config.alpha_days = 15;
  const auto rf =
      evaluator.evaluate(bench::model_factory(ModelKind::kRandomForest, rf_trees), rf_config);

  std::printf("\n");
  TextTable table({"model", "F1-macro", "accuracy", "F1 mem", "F1 comp"});
  const auto add = [&table](const char* name, const OnlineEvalResult& r) {
    table.add_row({name, format_double(r.f1_macro(), 4),
                   format_double(r.confusion.accuracy(), 4),
                   format_double(r.confusion.f1(kLabelMemoryBound), 4),
                   format_double(r.confusion.f1(kLabelComputeBound), 4)});
  };
  add("lookup baseline", baseline);
  add("KNN (alpha=30)", knn);
  add("RF (alpha=15)", rf);
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nConfusion matrices:\n\nbaseline:\n%s\nKNN:\n%s\nRF:\n%s\n",
              baseline.confusion.render(boundedness_class_names()).c_str(),
              knn.confusion.render(boundedness_class_names()).c_str(),
              rf.confusion.render(boundedness_class_names()).c_str());

  std::printf("Paper: baseline 0.83 vs models 0.89-0.90.\n");
  std::printf("Shape check: baseline below both models -> %s\n",
              (baseline.f1_macro() < knn.f1_macro() &&
               baseline.f1_macro() < rf.f1_macro())
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
