// Figure 4 reproduction: distribution of job types over time. The paper
// observes that the memory:compute proportion is roughly constant across
// the whole period — the imbalance is a workload characteristic, not a
// transient.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig4_types_over_time [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Figure 4: distribution of job types over time", "Fig. 4 (§IV-C)",
                      jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);
  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());
  const auto daily = daily_type_counts(analysis, config.start_time, config.end_time);

  std::printf("\nWeekly stacked counts ('M' memory-bound, 'C' compute-bound):\n\n");
  OnlineStats weekly_mem_share;
  for (std::size_t week = 0; week * 7 < daily.memory_bound.size(); ++week) {
    std::uint64_t mem = 0, comp = 0;
    for (std::size_t d = week * 7;
         d < std::min(daily.memory_bound.size(), (week + 1) * 7); ++d) {
      mem += daily.memory_bound[d];
      comp += daily.compute_bound[d];
    }
    const TimePoint t = config.start_time + static_cast<std::int64_t>(week) * 7 * kSecondsPerDay;
    if (mem + comp == 0) {
      std::printf("%s        0 | (maintenance)\n", format_date(t).c_str());
      continue;
    }
    const double mem_share = static_cast<double>(mem) / static_cast<double>(mem + comp);
    weekly_mem_share.add(mem_share);
    const int width = 60;
    const int mem_bar = static_cast<int>(mem_share * width);
    std::printf("%s %8llu |", format_date(t).c_str(),
                static_cast<unsigned long long>(mem + comp));
    for (int i = 0; i < mem_bar; ++i) std::putchar('M');
    for (int i = mem_bar; i < width; ++i) std::putchar('C');
    std::printf("| %.1f%% mem\n", 100.0 * mem_share);
  }

  std::printf("\nmemory-bound share per week: mean %.3f, stddev %.3f, min %.3f, max %.3f\n",
              weekly_mem_share.mean(), weekly_mem_share.stddev(), weekly_mem_share.min(),
              weekly_mem_share.max());
  std::printf("Paper shape check: proportion constant in time (stddev < 0.08) -> %s\n",
              weekly_mem_share.stddev() < 0.08 ? "OK" : "MISMATCH");
  return 0;
}
