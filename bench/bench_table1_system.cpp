// Table I reproduction: the Fugaku system architecture table, printed
// from the machine specification the Job Characterizer is built on,
// together with the derived Roofline parameters used throughout.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/machine_spec.hpp"
#include "util/strings.hpp"

int main() {
  using namespace mcb;

  const FugakuSystemFacts facts;
  const MachineSpec node = fugaku_node_spec();

  std::printf("TABLE I — FUGAKU SYSTEM ARCHITECTURE\n\n");
  TextTable table({"System characteristic", "Description"});
  table.add_row({"Architecture", facts.architecture});
  table.add_row({"OS", facts.os});
  table.add_row({"#Nodes", with_thousands(facts.nodes)});
  table.add_row({"#Cores (per node)", std::to_string(facts.cores_per_node) + " + " +
                                          std::to_string(facts.assistant_cores_per_node) +
                                          " assistant cores"});
  table.add_row({"Memory (per node)", facts.memory});
  table.add_row({"Peak Performance",
                 "~" + format_double(facts.system_peak_pflops, 0) + " PFlops/s (FP64), ~" +
                     format_double(facts.node_peak_tflops, 1) + " TFlops/s per node"});
  table.add_row({"Internal Network", facts.network});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nDerived Roofline parameters (paper §IV-B):\n");
  std::printf("  node spec              : %s\n", node.name.c_str());
  std::printf("  peak performance       : %.0f GFlops/s (FP64, boost mode)\n",
              node.peak_gflops);
  std::printf("  peak memory bandwidth  : %.0f GByte/s (HBM2)\n", node.peak_bandwidth_gbs);
  std::printf("  ridge point op_r       : %.3f Flops/Byte (paper: ~3.3)\n",
              node.ridge_point());
  std::printf("\njobs with op > op_r are compute-bound; op <= op_r memory-bound.\n");
  return 0;
}
