// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Every bench accepts:
//   --jobs-per-day N   workload scale (default differs per bench; the
//                      paper's Fugaku trace averages ~25,000/day)
//   --seed S           workload seed (default 15, calibrated to Table II)
// plus bench-specific flags. Output is deterministic for fixed flags.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/classification_model.hpp"
#include "core/online_evaluator.hpp"
#include "data/job_store.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace mcb::bench {

/// Standard flag list shared by the evaluation benches. Every bench that
/// feeds the bench-smoke CI gate also takes `--json PATH` and writes its
/// headline metrics as an mcb-bench-v1 artifact (see JsonReport).
inline std::vector<std::string> standard_flags(std::vector<std::string> extra = {}) {
  std::vector<std::string> flags = {"jobs-per-day", "seed", "rf-trees", "json"};
  flags.insert(flags.end(), extra.begin(), extra.end());
  return flags;
}

/// Metric sink for the bench-smoke CI gate. Collects named scalar
/// metrics and writes the artifact consumed by tools/bench_check:
///   {"schema":"mcb-bench-v1","bench":"fig8","metrics":{"name":value}}
/// Metric names must match the per-metric entries in bench/baselines/.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void set(const std::string& name, double value) { metrics_.set(name, value); }

  bool write(const std::string& path) const {
    Json out = Json::object();
    out.set("schema", "mcb-bench-v1");
    out.set("bench", bench_);
    out.set("metrics", metrics_);
    std::ofstream file(path);
    if (!file) return false;
    file << out.pretty() << '\n';
    return file.good();
  }

 private:
  std::string bench_;
  Json metrics_ = Json::object();
};

/// Best-of-N wall time of fn() in seconds. Best-of (not mean) is the
/// standard noise-resistant estimator for short deterministic kernels.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

/// Build the synthetic Fugaku trace and load it into a store.
inline JobStore build_store(double jobs_per_day, std::uint64_t seed,
                            WorkloadConfig* config_out = nullptr) {
  WorkloadConfig config = scaled_workload_config(jobs_per_day, seed);
  WorkloadGenerator generator(config);
  JobStore store;
  store.insert_all(generator.generate());
  if (config_out != nullptr) *config_out = config;
  return store;
}

/// The RF configuration used for the paper-replication benches: 100
/// trees (sklearn default) with 48 features per split (tuned for the
/// hashed encoder; see bench_ablation_rf).
inline RandomForestConfig paper_rf_config(std::size_t n_trees = 100) {
  RandomForestConfig config;
  config.n_trees = n_trees;
  config.tree.max_features = 48;
  return config;
}

inline std::function<ClassificationModel()> model_factory(ModelKind kind,
                                                          std::size_t rf_trees = 100) {
  if (kind == ModelKind::kKnn) {
    return [] { return ClassificationModel(ModelKind::kKnn); };
  }
  return [rf_trees] {
    return ClassificationModel(ModelKind::kRandomForest, {}, paper_rf_config(rf_trees));
  };
}

/// Banner printed by every bench so the tee'd output is self-describing.
inline void print_banner(const std::string& experiment, const std::string& paper_ref,
                         double jobs_per_day, std::uint64_t seed) {
  std::printf("================================================================\n");
  std::printf("MCBound reproduction — %s\n", experiment.c_str());
  std::printf("paper element: %s\n", paper_ref.c_str());
  std::printf("workload: synthetic Fugaku trace, %.0f jobs/day, seed %llu\n", jobs_per_day,
              static_cast<unsigned long long>(seed));
  std::printf("(paper scale: ~25,000 jobs/day; shapes, not absolutes, are the target)\n");
  std::printf("================================================================\n");
}

/// Shared theta sweep used by the Fig. 9 (KNN) and Fig. 10 (RF) benches.
inline void run_theta_sweep(ModelKind kind, int alpha_days, std::size_t rf_trees,
                            const OnlineEvaluator& evaluator) {

  const std::uint64_t kPaperSeeds[] = {520, 90, 1905, 7, 22};

  std::printf("\n%s (alpha=%d, beta=1) — F1 vs theta\n\n",
              kind == ModelKind::kKnn ? "KNN" : "RF", alpha_days);
  TextTable table({"theta", "latest F1", "random F1 (5-seed avg)", "gap"});
  double small_gap = 0.0, large_gap = 0.0;
  for (const std::size_t theta : {100UL, 1000UL, 10000UL, 100000UL}) {
    OnlineEvalConfig config;
    config.alpha_days = alpha_days;
    config.beta_days = 1;
    config.theta.theta = theta;

    config.theta.mode = ThetaConfig::Sampling::kLatest;
    const double latest =
        evaluator.evaluate(model_factory(kind, rf_trees), config).f1_macro();

    config.theta.mode = ThetaConfig::Sampling::kRandom;
    double random_sum = 0.0;
    for (const std::uint64_t seed : kPaperSeeds) {
      config.theta.seed = seed;
      random_sum +=
          evaluator.evaluate(model_factory(kind, rf_trees), config).f1_macro();
    }
    const double random_mean = random_sum / 5.0;
    table.add_row({std::to_string(theta), format_double(latest, 4),
                   format_double(random_mean, 4), format_double(random_mean - latest, 4)});
    if (theta == 100) small_gap = random_mean - latest;
    if (theta == 100000) large_gap = random_mean - latest;
    std::fputs(".", stdout);
    std::fflush(stdout);
  }

  // "all available data" row for reference.
  OnlineEvalConfig all_config;
  all_config.alpha_days = alpha_days;
  all_config.beta_days = 1;
  const double all_f1 =
      evaluator.evaluate(model_factory(kind, rf_trees), all_config).f1_macro();
  table.add_row({"all", format_double(all_f1, 4), format_double(all_f1, 4), "0.0000"});

  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("Paper shape: random > latest at every theta; gap up to 0.26 at small theta,\n");
  std::printf("down to ~0.02 at theta=1e5; best result with all available data.\n");
  std::printf("Measured: gap %.4f at theta=100 vs %.4f at theta=1e5 -> %s\n", small_gap,
              large_gap, (small_gap > large_gap - 1e-9) ? "OK" : "MISMATCH");
}


}  // namespace mcb::bench
