// Figure 5 reproduction: the Roofline plane split by the user-selected
// frequency mode. The paper's observation: there is no correlation
// between the chosen frequency and the job's position in the plane —
// users do not pick frequencies that suit their job's boundedness.
#include <cstdio>

#include "bench_common.hpp"
#include "roofline/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mcb;
  const auto flags = CliFlags::parse(
      argc, argv, bench::standard_flags(),
      "usage: bench_fig5_roofline_freq [--jobs-per-day N] [--seed S]");
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;
  const double jobs_per_day = flags->get_double("jobs-per-day", 2000.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 15));

  bench::print_banner("Figure 5: Roofline model divided by frequency", "Fig. 5 (§IV-C)",
                      jobs_per_day, seed);

  WorkloadConfig config;
  const JobStore store = bench::build_store(jobs_per_day, seed, &config);
  const Characterizer characterizer(config.machine);
  const auto analysis = analyze_jobs(characterizer, store.all());

  for (const FrequencyMode mode : {FrequencyMode::kNormal, FrequencyMode::kBoost}) {
    std::printf("\n--- %d MHz (%s mode) ---\n", frequency_mhz(mode),
                frequency_mode_name(mode));
    const LogGrid2D grid = roofline_grid(analysis, 100, 16, &mode);
    std::fputs(grid.render(characterizer.ridge_point()).c_str(), stdout);

    std::uint64_t mem = analysis.breakdown.at(mode, Boundedness::kMemoryBound);
    std::uint64_t comp = analysis.breakdown.at(mode, Boundedness::kComputeBound);
    std::printf("jobs: %llu (%.1f%% memory-bound)\n",
                static_cast<unsigned long long>(mem + comp),
                100.0 * static_cast<double>(mem) / static_cast<double>(mem + comp));
  }

  const double corr = analysis.frequency_intensity_correlation();
  std::printf("\nPearson correlation (boost mode vs log10 intensity): %+.4f\n", corr);
  std::printf("Paper shape check: 'no observable correlation' (|r| < 0.2) -> %s\n",
              std::abs(corr) < 0.2 ? "OK" : "MISMATCH");
  std::printf("\nImplication (paper): memory-bound jobs gain nothing from boost mode,\n"
              "compute-bound jobs lose ~10%% runtime in normal mode -> MCBound can\n"
              "guide frequency selection (see bench_impact_estimate).\n");
  return 0;
}
