// Lexical front-end of mcbound_lint (DESIGN.md §12).
//
// The analyzer never parses C++ properly; every rule runs over one of
// three byte-aligned *views* of a translation unit:
//
//   raw       the file exactly as read
//   code      comments and string/char-literal contents blanked to
//             spaces (newlines kept), so token scans cannot be fooled
//             by quoted or commented text
//   comments  only comment text kept (including the // and /* */
//             delimiters), everything else blanked
//
// Byte i means the same source position in all three views, so a rule
// can find a construct in `code` and look for its justification comment
// in `comments` at the same lines (rule R8), and suppression comments
// are parsed from `comments` so a string literal can never suppress a
// finding.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mcb::lint {

struct SourceView {
  std::string raw;
  std::string code;
  std::string comments;
};

/// One pass over the token-level state machine (//, /* */, "...",
/// '...', R"tag(...)tag"); never fails — unterminated constructs simply
/// run to end of file in their current state.
SourceView scan_source(std::string_view src);

/// Precomputed newline offsets for O(log n) position→line queries and
/// per-line slicing. Lines are 1-based; the view outlives the index.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text);

  std::size_t line_of(std::size_t pos) const;
  std::size_t line_count() const { return starts_.size(); }

  /// The 1-based line's text without its trailing newline. Because all
  /// SourceView views share byte offsets, a LineIndex built over one
  /// view slices any of them.
  std::string_view line(std::string_view text, std::size_t line_no) const;

 private:
  std::vector<std::size_t> starts_;  ///< offset of each line start
  std::size_t size_ = 0;
};

bool is_ident_char(char c);

/// Next whole-word occurrence of `word` at/after `from`; neighbours
/// that continue an identifier reject the match (so `detach` does not
/// match `detached_`). npos when absent.
std::size_t find_word(std::string_view text, std::string_view word, std::size_t from);

/// Last non-whitespace character strictly before `pos` ('\0' if none).
char prev_nonspace(std::string_view text, std::size_t pos);

/// First non-whitespace position at/after `pos` (npos if none).
std::size_t next_nonspace(std::string_view text, std::size_t pos);

/// True when the word occurrence at `pos` is followed (over whitespace)
/// by an opening parenthesis — i.e. it looks like a call.
bool call_like(std::string_view text, std::size_t pos, std::size_t word_len);

/// Position of the balanced closing delimiter for the opener at `open`
/// (which must hold `open_ch`); npos when unbalanced to end of input.
std::size_t match_forward(std::string_view code, std::size_t open, char open_ch,
                          char close_ch);

/// The (possibly `Class::`-qualified) identifier ending just before the
/// '(' at `paren`, or "" when the text before it is not a name.
std::string name_before(std::string_view code, std::size_t paren);

/// After a parameter list's closing ')', walk over qualifiers (`const`,
/// `noexcept(...)`, trailing return types) and an optional ctor-init
/// list to the body '{'; npos when a ';' ends the declaration first.
std::size_t find_body_open(std::string_view code, std::size_t after_params);

}  // namespace mcb::lint
