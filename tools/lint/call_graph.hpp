// Cross-TU call graph of mcbound_lint (DESIGN.md §13).
//
// Links every call site in the function index to the definitions it may
// reach, then answers the reachability queries the whole-program rules
// are built on (R18 transitive hot-path discipline, R19 reactor
// blocking-reachability). Linking is name-based and deliberately
// over-approximate:
//
//  * a call links to every definition whose qualified name ends with
//    the components written at the call site (overload-insensitive;
//    virtual calls link to every same-named override);
//  * unqualified calls whose name collides with the std:: container /
//    atomic / stream vocabulary (`load`, `size`, `find`, ...) are NOT
//    linked — lexically `counter.load()` and `model.load()` are
//    indistinguishable, and linking them would drown the analysis in
//    false chains. Writing the call with an explicit `Class::`
//    qualification restores the edge. (R21 keeps its own, stricter
//    treatment of exactly these names.)
//
// Reachability walks breadth-first from a root set and refuses to enter
// any definition that carries the requested *cut* marker
// (MCB_HOT_PATH_BOUNDARY for R18, MCB_REACTOR_BOUNDARY for R19); the
// parent chain of every visited definition is kept so findings can
// report the full root→leaf call chain (rendered as SARIF codeFlows).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "lint/function_index.hpp"

namespace mcb::lint {

class CallGraph {
 public:
  struct Edge {
    std::size_t callee = 0;    ///< index into index().defs
    std::size_t call_pos = 0;  ///< byte offset of the call in the caller's file
  };

  /// Build the linked graph over a fully-populated index.
  explicit CallGraph(const FunctionIndex& index);

  const FunctionIndex& index() const { return *index_; }
  const std::vector<Edge>& edges_of(std::size_t def) const { return adj_[def]; }
  std::size_t edge_count() const;

  /// True when an unqualified call spelled `name` is never linked (std
  /// vocabulary collision — see file comment).
  static bool ambiguous_vocabulary(std::string_view name);

  /// Resolve one call site to definition indices (used by R21 as well,
  /// with `strict_vocabulary=false` to keep `load`-family names).
  std::vector<std::size_t> resolve(const CallSite& site,
                                   bool strict_vocabulary) const;

  // -------------------------------------------------------- reachability
  struct Reach {
    static constexpr int kUnreached = -2;
    static constexpr int kRoot = -1;
    /// parent[d]: defs index of the BFS parent, kRoot for roots,
    /// kUnreached for definitions the walk never entered.
    std::vector<int> parent;
    std::vector<std::size_t> via_pos;  ///< call-site offset in the parent
    std::vector<std::size_t> order;    ///< visited defs, BFS order
  };

  /// BFS from `roots` (defs indices, processed in sorted order so chain
  /// attribution is deterministic). `cut(def)` true = do not enter the
  /// definition at all: its body is not scanned and its callees are not
  /// followed. Roots are always entered, even if also marked cut.
  Reach reachable(std::vector<std::size_t> roots,
                  const std::function<bool(const FunctionDef&)>& cut) const;

  /// Root→def call chain from a Reach result, one step per definition.
  struct Step {
    std::size_t def = 0;
    std::size_t call_pos = 0;  ///< 0 for the root step
  };
  std::vector<Step> chain_to(const Reach& reach, std::size_t def) const;

  /// DOT render of the slice reachable from every MCB_HOT_PATH and
  /// reactor root — the part of the graph the whole-program rules
  /// reason about (docs/call_graph.dot, CI drift gate).
  std::string to_dot() const;

 private:
  const FunctionIndex* index_;
  std::vector<std::vector<Edge>> adj_;
};

}  // namespace mcb::lint
