// Signal-safety pass (DESIGN.md §12/§14, rule R22).
//
// The sampling profiler (src/obs/perf/profiler.cpp) is the one place in
// the tree that installs a signal handler, and its correctness story is
// lexicalized here in two halves:
//
//   confinement  signal-machinery syscalls (sigaction, timer_create,
//                backtrace, ...) may only appear in src/obs/perf
//                translation units. A sigaction() creeping into the
//                server or a model would silently fight the profiler
//                for SIGPROF disposition; keeping the machinery in one
//                module keeps every disposition change reviewable.
//
//   handler body a function definition prefixed with MCB_SIGNAL_HANDLER
//                (src/util/annotations.hpp) runs in async-signal
//                context. Its brace-matched body is scanned for
//                constructs POSIX does not allow there: allocation,
//                stdio, locks, throwing, and post-capture symbolization
//                (backtrace_symbols / dladdr / __cxa_demangle).
//                `backtrace()` itself is permitted — the profiler warms
//                its lazy libgcc initialization before arming the
//                timer, which is the documented contract the marker
//                asserts.
//
// Both halves are lexical, like R10–R12: the point is that a refactor
// cannot move a malloc into the handler, or the handler out of the
// audited module, without the analyzer noticing.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

/// Confinement half: report every signal-machinery call in a file that
/// is not allowed to own it. The driver applies this to src/ files
/// outside src/obs/perf/.
void check_signal_machinery_confinement(const FileContext& ctx,
                                        std::vector<Violation>& out);

/// Handler-body half: find every MCB_SIGNAL_HANDLER definition (R16 on
/// declarations, as for MCB_HOT_PATH) and report async-signal-unsafe
/// constructs in the body. Signature-level suppressions widen to the
/// whole body, mirroring check_hot_paths. Returns the handler count.
std::size_t check_signal_handlers(FileContext& ctx, std::vector<Violation>& out);

}  // namespace mcb::lint
