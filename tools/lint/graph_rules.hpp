// Whole-program rules of mcbound_lint (DESIGN.md §13, rules R18–R21).
//
// All four rules consume the cross-TU function index and call graph:
//
//  * R18 — transitive hot-path discipline: any R10/R11/R12 construct in
//    a function reachable from an MCB_HOT_PATH root, reported with the
//    full root→leaf call chain. Traversal stops at functions marked
//    MCB_HOT_PATH_BOUNDARY. Roots themselves are skipped here — their
//    direct bodies are already checked by the intraprocedural pass.
//  * R19 — reactor blocking-reachability: blocking primitives (mutex
//    waits, condvar waits, blocking syscalls, thread-pool parking)
//    reachable from the reactor roots `reactor_tick` / `handle_event`
//    without crossing MCB_REACTOR_BOUNDARY.
//  * R20 — static lock-order cycles: a lock-order graph built from
//    scoped-lock sites, MCB_REQUIRES/MCB_ACQUIRE annotations and call
//    edges, class-qualified capability names, cycles reported with one
//    witness chain per conflicting order. Baseline-only, like R13/R14.
//  * R21 — discarded status results: statement-position calls to repo
//    functions that (for every same-named definition) return bool,
//    with `(void)` casts and used results recognized as negatives.
#pragma once

#include <vector>

#include "lint/call_graph.hpp"
#include "lint/diagnostics.hpp"
#include "lint/function_index.hpp"

namespace mcb::lint {

/// The file-context table the function index was built over, indexed by
/// FunctionDef::file_ctx.
using ContextTable = std::vector<const FileContext*>;

void check_transitive_hot(const ContextTable& ctxs, const CallGraph& graph,
                          std::vector<Violation>& out);

void check_reactor_blocking(const ContextTable& ctxs, const CallGraph& graph,
                            std::vector<Violation>& out);

void check_lock_order(const ContextTable& ctxs, const CallGraph& graph,
                      std::vector<Violation>& out);

void check_discarded_status(const ContextTable& ctxs, const CallGraph& graph,
                            std::vector<Violation>& out);

}  // namespace mcb::lint
