#include "lint/report.hpp"

#include <cstdio>

namespace mcb::lint {

void print_text(std::ostream& out, const std::vector<Violation>& violations) {
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_sarif(std::ostream& out, const std::vector<Violation>& violations) {
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"mcbound_lint\",\n"
      << "          \"informationUri\": \"DESIGN.md\",\n"
      << "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << "            {\"id\": \"" << catalog[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}"
        << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << v.rule << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(v.message) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \"" << json_escape(v.file)
        << "\"},\n"
        << "                \"region\": {\"startLine\": " << (v.line == 0 ? 1 : v.line)
        << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace mcb::lint
