// Include-graph pass of mcbound_lint (DESIGN.md §12).
//
// Every quoted `#include "module/header.hpp"` under src/ is an edge in
// two graphs:
//
//  * the file graph (header/source → header), used to detect include
//    cycles (R14) — #pragma once hides a cycle from the compiler but
//    the first file in it still sees incomplete declarations;
//  * the module graph (first path component → first path component),
//    checked against the declared layering manifest tools/lint/layers.txt
//    (R13): a module may include only modules in strictly lower layers
//    (and itself). Peers within one layer are mutually independent by
//    declaration, so a back-edge or a peer edge both fail.
//
// `to_dot()` renders the module graph for docs/module_graph.dot; CI
// diffs the committed render against a fresh emission so the documented
// architecture cannot drift silently.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

struct IncludeSite {
  std::string file;    ///< including file, relative to root
  std::size_t line = 0;
  std::string target;  ///< included path as written, e.g. "ml/knn.hpp"
};

/// Quoted includes in the file's code view (commented-out includes are
/// invisible by construction).
std::vector<IncludeSite> scan_includes(const FileContext& ctx);

// ---------------------------------------------------------------------
struct LayerManifest {
  /// layers[i] = modules declared on manifest line i (layer 0 lowest).
  std::vector<std::vector<std::string>> layers;
  std::map<std::string, std::size_t> layer_of;

  bool contains(const std::string& module) const {
    return layer_of.find(module) != layer_of.end();
  }
};

/// Parse the manifest ("layer <module>..." lines, lowest first; '#'
/// comments). Returns false and sets `error` on a syntax error or a
/// module declared twice.
bool parse_layer_manifest(std::string_view text, LayerManifest& out, std::string& error);

// ---------------------------------------------------------------------
class ModuleGraph {
 public:
  /// Record one file-level include; `from_module`/`to_module` are the
  /// first path components. Self-edges are kept (harmless, not drawn).
  void add_edge(const std::string& from_module, const std::string& to_module,
                const IncludeSite& site);

  /// Deterministic DOT render of the cross-module edge set.
  std::string to_dot() const;

  const std::map<std::string, std::map<std::string, std::vector<IncludeSite>>>& edges()
      const {
    return edges_;
  }
  std::size_t module_count() const { return modules_.size(); }
  std::size_t cross_edge_count() const;

 private:
  std::map<std::string, std::map<std::string, std::vector<IncludeSite>>> edges_;
  std::set<std::string> modules_;
};

/// R13: every cross-module edge must point to a strictly lower layer;
/// modules absent from the manifest are reported once.
void check_layering(const ModuleGraph& graph, const LayerManifest& manifest,
                    std::vector<Violation>& out);

/// R14: DFS over the file graph; each back-edge is reported once with
/// the full include chain that closes the cycle.
void check_include_cycles(
    const std::map<std::string, std::vector<IncludeSite>>& file_graph,
    std::vector<Violation>& out);

}  // namespace mcb::lint
