// Diagnostics layer of mcbound_lint (DESIGN.md §12): the violation
// record every rule emits, the rule catalog (used by the SARIF
// reporter), inline suppressions, and the committed baseline of
// grandfathered findings.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_view.hpp"

namespace mcb::lint {

/// One step of a whole-program call chain (R18/R19 root→leaf paths,
/// R20 lock-order witnesses). Rendered as indented sub-lines in text
/// output and as SARIF codeFlows/threadFlows locations.
struct ChainStep {
  std::string file;  ///< path relative to the lint root
  std::size_t line = 0;
  std::string note;  ///< function name or step description
};

struct Violation {
  std::string file;  ///< path relative to the lint root, '/'-separated
  std::size_t line = 0;
  std::string rule;  ///< "R1".."R21"
  std::string message;
  std::vector<ChainStep> chain;  ///< empty for intraprocedural rules
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
  std::string_view level;      ///< SARIF defaultConfiguration.level
  std::string_view rationale;  ///< docs/lint_rules.md prose
  std::string_view example;    ///< an offending snippet
  std::string_view recipe;     ///< how to fix or legitimately suppress
};

/// Every rule the analyzer can emit, in id order. SARIF requires the
/// full catalog up front; `--rules=markdown` renders docs/lint_rules.md
/// from the same table so the docs cannot drift from the analyzer.
const std::vector<RuleInfo>& rule_catalog();

/// True when `rule` names a catalogued rule id.
bool known_rule(std::string_view rule);

// ---------------------------------------------------------------------
// Inline suppressions: a comment spelling the marker `mcb-lint`, a
// colon, then `suppress(R<n>: <reason>)` — written apart here so this
// very comment does not register as a suppression when the analyzer
// scans its own sources. Scope is the comment's own line and the line below it; a
// suppression written between an MCB_HOT_PATH annotation and the
// function's opening brace covers the whole function body (the hot-path
// pass widens it). The reason is mandatory — a suppression without one
// is itself reported (R15), as is one that suppresses nothing.
struct Suppression {
  std::size_t line = 0;   ///< line the comment sits on
  std::string rule;
  std::string reason;
  bool malformed = false;
  // Widened scope (inclusive line range) for hot-path body suppressions;
  // 0/0 means the default two-line scope.
  std::size_t scope_begin = 0;
  std::size_t scope_end = 0;
  bool used = false;
};

/// Parse every suppression comment in the file. Scans the comments view
/// only, so quoted suppression text in code cannot suppress anything.
std::vector<Suppression> parse_suppressions(const SourceView& view);

// ---------------------------------------------------------------------
// Baseline: a committed file of grandfathered findings, one per line:
//   <path>|<rule>|<message substring or *>
// '#' starts a comment. A violation matching an entry is dropped (an
// entry may absorb any number of matches — grandfathering a pattern,
// not a count). Entries that match nothing are reported (R15) so the
// baseline can only shrink.
struct BaselineEntry {
  std::size_t line = 0;  ///< line in the baseline file
  std::string file;
  std::string rule;
  std::string pattern;   ///< "*" or a message substring
  bool malformed = false;
  std::size_t hits = 0;
};

std::vector<BaselineEntry> parse_baseline(std::string_view text);

bool baseline_matches(const BaselineEntry& entry, const Violation& v);

// ---------------------------------------------------------------------
// Per-file analysis context shared by all passes.
struct FileContext {
  std::string rel_path;  ///< '/'-separated, relative to the lint root
  SourceView view;
  LineIndex lines;       ///< built over view.raw
  std::vector<Suppression> suppressions;

  FileContext(std::string rel, SourceView v)
      : rel_path(std::move(rel)), view(std::move(v)), lines(view.raw) {
    suppressions = parse_suppressions(view);
  }

  void add(std::size_t pos, std::string rule, std::string message,
           std::vector<Violation>& out) const {
    out.push_back({rel_path, lines.line_of(pos), std::move(rule), std::move(message), {}});
  }
};

}  // namespace mcb::lint
