#include "lint/signal_safety.hpp"

#include <string>
#include <string_view>

#include "lint/hot_path.hpp"

namespace mcb::lint {

namespace {

constexpr std::string_view kMarker = "MCB_SIGNAL_HANDLER";

// The machinery that changes process-wide signal state or walks stacks.
// `backtrace` is listed here (confinement half) even though handler
// bodies may call it: the *warm-up contract* lives in src/obs/perf, so
// a stray backtrace() elsewhere is still a confinement break.
constexpr std::string_view kMachinery[] = {
    "signal",          "sigaction",       "sigemptyset",
    "sigaddset",       "sigfillset",      "sigprocmask",
    "pthread_sigmask", "timer_create",    "timer_settime",
    "timer_delete",    "setitimer",       "getitimer",
    "backtrace",       "backtrace_symbols", "backtrace_symbols_fd"};

/// One construct banned inside an MCB_SIGNAL_HANDLER body. The shape
/// mirrors the hot-path TokenRule set but the policy is POSIX
/// async-signal-safety, not latency: abort()/_exit() are fine here (and
/// banned nowhere), while a perfectly fast snprintf is not.
struct HandlerRule {
  std::string_view word;
  const char* what;
  bool member_only;  ///< require a preceding '.' or '->'
  bool call_only;    ///< require a following '('
};

constexpr HandlerRule kHandlerRules[] = {
    // Allocation: the allocator's internal lock deadlocks against the
    // interrupted thread holding it.
    {"malloc", "malloc is not async-signal-safe", false, true},
    {"calloc", "calloc is not async-signal-safe", false, true},
    {"realloc", "realloc is not async-signal-safe", false, true},
    {"free", "free is not async-signal-safe", false, true},
    {"strdup", "strdup allocates", false, true},
    {"new", "operator new allocates", false, false},
    {"make_unique", "make_unique allocates", false, false},
    {"make_shared", "make_shared allocates", false, false},
    {"to_string", "to_string builds a heap string", false, true},
    {"push_back", "container growth allocates", true, true},
    {"emplace_back", "container growth allocates", true, true},
    {"insert", "container growth allocates", true, true},
    {"resize", "resize may allocate", true, true},
    {"reserve", "reserve allocates", true, true},
    {"append", "string growth allocates", true, true},
    // Stdio: buffered streams take libc-internal locks.
    {"printf", "stdio takes libc-internal locks", false, true},
    {"fprintf", "stdio takes libc-internal locks", false, true},
    {"snprintf", "snprintf may malloc for wide conversions", false, true},
    {"sprintf", "stdio takes libc-internal locks", false, true},
    {"puts", "stdio takes libc-internal locks", false, true},
    {"fputs", "stdio takes libc-internal locks", false, true},
    {"fwrite", "stdio takes libc-internal locks", false, true},
    {"fflush", "stdio takes libc-internal locks", false, true},
    {"perror", "stdio takes libc-internal locks", false, true},
    // Locks: the interrupted thread may already hold them.
    {"MutexLock", "acquiring a mutex can self-deadlock", false, false},
    {"ExclusiveLock", "acquiring a lock can self-deadlock", false, false},
    {"SharedLock", "acquiring a lock can self-deadlock", false, false},
    {"lock_guard", "acquiring a mutex can self-deadlock", false, false},
    {"unique_lock", "acquiring a mutex can self-deadlock", false, false},
    {"scoped_lock", "acquiring a mutex can self-deadlock", false, false},
    {"lock", "acquiring a lock can self-deadlock", true, true},
    // Unwinding and process teardown.
    {"throw", "throwing across a signal frame is undefined", false, false},
    {"exit", "exit runs atexit handlers that may lock", false, true},
    // Symbolization is post-capture work: dladdr walks the loader's
    // link map under its lock, demangling allocates.
    {"backtrace_symbols", "backtrace_symbols mallocs", false, true},
    {"backtrace_symbols_fd", "symbolization belongs after capture", false, true},
    {"dladdr", "dladdr takes the loader lock", false, true},
    {"__cxa_demangle", "demangling allocates", false, true},
};

}  // namespace

void check_signal_machinery_confinement(const FileContext& ctx,
                                        std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  for (const auto word : kMachinery) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (!call_like(code, pos, word.size())) continue;
      const char before = prev_nonspace(code, pos);
      if (before == '.' || before == '>') continue;  // member call, not the libc symbol
      ctx.add(pos, "R22",
              "signal machinery `" + std::string(word) +
                  "()` outside src/obs/perf — signal dispositions, profiling "
                  "timers and stack walking live in the profiler module so "
                  "nothing else can fight it for SIGPROF",
              out);
    }
  }
}

std::size_t check_signal_handlers(FileContext& ctx, std::vector<Violation>& out) {
  std::vector<HotRegion> regions = find_marked_regions(ctx, kMarker, out);
  if (regions.empty()) return 0;
  const std::string_view code = ctx.view.code;

  for (const HotRegion& region : regions) {
    // Same suppression widening as the hot-path pass: a suppression on
    // the annotated signature covers the whole body.
    const std::size_t anno_line = ctx.lines.line_of(region.anno_pos);
    const std::size_t open_line = ctx.lines.line_of(region.body_begin);
    const std::size_t close_line = ctx.lines.line_of(region.body_end);
    for (Suppression& s : ctx.suppressions) {
      if (s.malformed) continue;
      if (s.line >= anno_line && s.line <= open_line) {
        s.scope_begin = anno_line;
        s.scope_end = close_line;
      }
    }

    const std::string_view body =
        code.substr(region.body_begin, region.body_end - region.body_begin + 1);
    for (const HandlerRule& rule : kHandlerRules) {
      for (std::size_t pos = find_word(body, rule.word, 0);
           pos != std::string_view::npos;
           pos = find_word(body, rule.word, pos + 1)) {
        if (rule.call_only && !call_like(body, pos, rule.word.size())) continue;
        if (rule.member_only) {
          const char before = prev_nonspace(body, pos);
          if (before != '.' && before != '>') continue;
        }
        ctx.add(region.body_begin + pos, "R22",
                std::string(rule.what) + " inside MCB_SIGNAL_HANDLER `" +
                    region.function +
                    "` — async-signal context allows only atomics, "
                    "pre-warmed backtrace() and writes to fixed storage",
                out);
      }
    }
  }
  return regions.size();
}

}  // namespace mcb::lint
