// Orchestration of the mcbound_lint passes (DESIGN.md §12): walk the
// tree, run per-file rules, build the include graph, enforce the layer
// manifest, then resolve inline suppressions and the committed baseline
// into the final violation list. Exposed as a library (mcb_lint_core)
// so tests/test_lint.cpp drives the same code paths CI does.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/include_graph.hpp"

namespace mcb::lint {

struct LintOptions {
  std::string root;       ///< repo root (contains src/)
  std::string compiler;   ///< empty = skip the R4 header compile check
  std::string std_flag = "c++20";
  /// Relative to root when not absolute; empty string disables the
  /// corresponding pass (no layering check / no baseline).
  std::string layers_file = "tools/lint/layers.txt";
  std::string baseline_file = "tools/lint/baseline.txt";
  bool verbose = false;
};

struct LintStats {
  std::size_t files_scanned = 0;
  std::size_t headers_compiled = 0;
  std::size_t hot_regions = 0;
  std::size_t suppressions_used = 0;
  std::size_t baselined = 0;
  std::size_t modules = 0;
  std::size_t module_edges = 0;
};

struct LintResult {
  bool config_error = false;     ///< bad root / unparseable manifest
  std::string config_message;
  std::vector<Violation> violations;  ///< post-suppression, post-baseline
  ModuleGraph graph;
  LintStats stats;
};

LintResult run_lint(const LintOptions& options);

}  // namespace mcb::lint
