// Orchestration of the mcbound_lint passes (DESIGN.md §12–§13): load
// and tokenize every file ONCE into a shared context cache, run the
// per-file rules, build the include graph and enforce the layer
// manifest, build the cross-TU function index and call graph and run
// the whole-program rules (R18–R21), then resolve inline suppressions
// and the committed baseline into the final violation list. Each pass
// is timed; `--verbose` prints the breakdown. Exposed as a library
// (mcb_lint_core) so tests/test_lint.cpp drives the same code paths CI
// does.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/include_graph.hpp"

namespace mcb::lint {

struct LintOptions {
  std::string root;       ///< repo root (contains src/)
  std::string compiler;   ///< empty = skip the R4 header compile check
  std::string std_flag = "c++20";
  /// Relative to root when not absolute; empty string disables the
  /// corresponding pass (no layering check / no baseline).
  std::string layers_file = "tools/lint/layers.txt";
  std::string baseline_file = "tools/lint/baseline.txt";
  bool verbose = false;
};

/// Wall time of one analysis pass, in the order the passes ran.
struct PassTiming {
  std::string name;
  double ms = 0.0;
};

struct LintStats {
  std::size_t files_scanned = 0;
  std::size_t headers_compiled = 0;
  std::size_t hot_regions = 0;
  std::size_t signal_handlers = 0;
  std::size_t suppressions_used = 0;
  std::size_t baselined = 0;
  std::size_t modules = 0;
  std::size_t module_edges = 0;
  std::size_t functions_indexed = 0;
  std::size_t call_edges = 0;
  std::vector<PassTiming> passes;
};

struct LintResult {
  bool config_error = false;     ///< bad root / unparseable manifest
  std::string config_message;
  std::vector<Violation> violations;  ///< post-suppression, post-baseline
  ModuleGraph graph;
  /// Call-graph slice reachable from the hot-path / reactor roots
  /// (`--graph=dot --graph-kind=calls`, docs/call_graph.dot).
  std::string call_graph_dot;
  LintStats stats;
};

LintResult run_lint(const LintOptions& options);

}  // namespace mcb::lint
