// Token-level repo invariants R1–R9 (DESIGN.md §7/§12), ported from the
// original single-file mcbound_lint onto the SourceView front-end. All
// scans run on the code view, so quoted or commented text can no longer
// trip a rule; R8 reads its justification from the comments view — the
// fix for the latent weakness where a string literal containing
// `relaxed:` satisfied the check.
#pragma once

#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

void check_no_wallclock_or_libc_rand(const FileContext& ctx, std::vector<Violation>& out);
void check_no_naked_new_delete(const FileContext& ctx, std::vector<Violation>& out);
void check_no_swallowing_catch_all(const FileContext& ctx, std::vector<Violation>& out);
void check_no_raw_std_sync(const FileContext& ctx, std::vector<Violation>& out);
void check_no_thread_detach(const FileContext& ctx, std::vector<Violation>& out);
void check_relaxed_order_justified(const FileContext& ctx, std::vector<Violation>& out);
void check_no_direct_stream_writes(const FileContext& ctx, std::vector<Violation>& out);
void check_pragma_once(const FileContext& ctx, std::vector<Violation>& out);
void check_reactor_syscall_confinement(const FileContext& ctx, std::vector<Violation>& out);

}  // namespace mcb::lint
