#include "lint/source_view.hpp"

#include <algorithm>
#include <cctype>

namespace mcb::lint {

namespace {

enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };

}  // namespace

SourceView scan_source(std::string_view src) {
  SourceView view;
  view.raw.assign(src);
  view.code.assign(src);
  // Comments view starts blank (newlines kept) and gets comment bytes
  // copied back in as the machine visits them.
  view.comments.assign(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') view.comments[i] = '\n';
  }

  State state = State::kCode;
  std::string raw_terminator;  // ")tag\"" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          view.code[i] = ' ';
          view.comments[i] = c;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          view.code[i] = ' ';
          view.comments[i] = c;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(src[i - 1]))) {
          const std::size_t paren = src.find('(', i + 2);
          if (paren != std::string_view::npos) {
            raw_terminator = ")";
            raw_terminator += src.substr(i + 2, paren - (i + 2));
            raw_terminator += '"';
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          view.code[i] = ' ';
          view.comments[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          view.code[i] = ' ';
          view.code[i + 1] = ' ';
          view.comments[i] = '*';
          view.comments[i + 1] = '/';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
          view.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
    }
  }
  return view;
}

LineIndex::LineIndex(std::string_view text) : size_(text.size()) {
  starts_.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n' && i + 1 <= text.size()) starts_.push_back(i + 1);
  }
}

std::size_t LineIndex::line_of(std::size_t pos) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  return static_cast<std::size_t>(it - starts_.begin());
}

std::string_view LineIndex::line(std::string_view text, std::size_t line_no) const {
  if (line_no == 0 || line_no > starts_.size()) return {};
  const std::size_t begin = starts_[line_no - 1];
  const std::size_t end =
      line_no < starts_.size() ? starts_[line_no] - 1 : std::min(size_, text.size());
  if (begin > text.size()) return {};
  return text.substr(begin, std::min(end, text.size()) - begin);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(std::string_view text, std::string_view word, std::size_t from) {
  while (true) {
    const std::size_t pos = text.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

char prev_nonspace(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return text[pos];
  }
  return '\0';
}

std::size_t next_nonspace(std::string_view text, std::size_t pos) {
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

bool call_like(std::string_view text, std::size_t pos, std::size_t word_len) {
  const std::size_t after = next_nonspace(text, pos + word_len);
  return after != std::string_view::npos && text[after] == '(';
}

std::size_t match_forward(std::string_view code, std::size_t open, char open_ch,
                          char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::string name_before(std::string_view code, std::size_t paren) {
  std::size_t end = paren;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t begin = end;
  while (begin > 0 && (is_ident_char(code[begin - 1]) || code[begin - 1] == ':' ||
                       code[begin - 1] == '~')) {
    --begin;
  }
  return std::string(code.substr(begin, end - begin));
}

// Inside an init list, a '{' whose previous non-space character
// continues an identifier is a brace-initializer (`member_{value}`) and
// is skipped; the body brace follows ')' or '}' or the init-list comma
// structure instead.
std::size_t find_body_open(std::string_view code, std::size_t after_params) {
  bool in_init_list = false;
  for (std::size_t i = after_params; i < code.size(); ++i) {
    const char c = code[i];
    if (c == ';') return std::string_view::npos;
    // A closer here means the "parameter list" was actually a call
    // nested in a larger expression (`if (x.has_value()) {` must not
    // index a definition named has_value whose body is the if-block).
    if (c == ')' || c == '}' || c == ']') return std::string_view::npos;
    if (c == '=' && !in_init_list) return std::string_view::npos;
    if (c == '(') {  // noexcept(...) / init-list member(args)
      const std::size_t close = match_forward(code, i, '(', ')');
      if (close == std::string_view::npos) return std::string_view::npos;
      i = close;
      continue;
    }
    if (c == ':') {
      if (i + 1 < code.size() && code[i + 1] == ':') { ++i; continue; }
      if (i > 0 && code[i - 1] == ':') continue;
      in_init_list = true;
      continue;
    }
    if (c == '{') {
      if (in_init_list && is_ident_char(prev_nonspace(code, i))) {
        const std::size_t close = match_forward(code, i, '{', '}');
        if (close == std::string_view::npos) return std::string_view::npos;
        i = close;
        continue;
      }
      return i;
    }
  }
  return std::string_view::npos;
}

}  // namespace mcb::lint
