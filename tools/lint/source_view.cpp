#include "lint/source_view.hpp"

#include <algorithm>
#include <cctype>

namespace mcb::lint {

namespace {

enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };

}  // namespace

SourceView scan_source(std::string_view src) {
  SourceView view;
  view.raw.assign(src);
  view.code.assign(src);
  // Comments view starts blank (newlines kept) and gets comment bytes
  // copied back in as the machine visits them.
  view.comments.assign(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') view.comments[i] = '\n';
  }

  State state = State::kCode;
  std::string raw_terminator;  // ")tag\"" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          view.code[i] = ' ';
          view.comments[i] = c;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          view.code[i] = ' ';
          view.comments[i] = c;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(src[i - 1]))) {
          const std::size_t paren = src.find('(', i + 2);
          if (paren != std::string_view::npos) {
            raw_terminator = ")";
            raw_terminator += src.substr(i + 2, paren - (i + 2));
            raw_terminator += '"';
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          view.code[i] = ' ';
          view.comments[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          view.code[i] = ' ';
          view.code[i + 1] = ' ';
          view.comments[i] = '*';
          view.comments[i + 1] = '/';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
          view.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          view.code[i] = ' ';
        }
        break;
    }
  }
  return view;
}

LineIndex::LineIndex(std::string_view text) : size_(text.size()) {
  starts_.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n' && i + 1 <= text.size()) starts_.push_back(i + 1);
  }
}

std::size_t LineIndex::line_of(std::size_t pos) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  return static_cast<std::size_t>(it - starts_.begin());
}

std::string_view LineIndex::line(std::string_view text, std::size_t line_no) const {
  if (line_no == 0 || line_no > starts_.size()) return {};
  const std::size_t begin = starts_[line_no - 1];
  const std::size_t end =
      line_no < starts_.size() ? starts_[line_no] - 1 : std::min(size_, text.size());
  if (begin > text.size()) return {};
  return text.substr(begin, std::min(end, text.size()) - begin);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(std::string_view text, std::string_view word, std::size_t from) {
  while (true) {
    const std::size_t pos = text.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

char prev_nonspace(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return text[pos];
  }
  return '\0';
}

std::size_t next_nonspace(std::string_view text, std::size_t pos) {
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

bool call_like(std::string_view text, std::size_t pos, std::size_t word_len) {
  const std::size_t after = next_nonspace(text, pos + word_len);
  return after != std::string_view::npos && text[after] == '(';
}

}  // namespace mcb::lint
