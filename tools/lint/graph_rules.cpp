#include "lint/graph_rules.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "lint/hot_path.hpp"
#include "lint/source_view.hpp"

namespace mcb::lint {

namespace {

std::size_t line_of(const ContextTable& ctxs, const FunctionDef& def,
                    std::size_t pos) {
  return ctxs[def.file_ctx]->lines.line_of(pos);
}

std::string_view body_of(const ContextTable& ctxs, const FunctionDef& def) {
  const std::string_view code = ctxs[def.file_ctx]->view.code;
  return code.substr(def.body_begin, def.body_end - def.body_begin + 1);
}

/// Root→def call chain rendered two ways: structured steps (each call
/// anchored at the call site in its caller) for SARIF codeFlows, and a
/// compact `a -> b -> c` text for the one-line message.
struct RenderedChain {
  std::vector<ChainStep> steps;
  std::string text;
  std::string root;  ///< qualified name of the chain's root
};

RenderedChain render_chain(const ContextTable& ctxs, const CallGraph& graph,
                           const CallGraph::Reach& reach, std::size_t leaf) {
  RenderedChain out;
  const std::vector<CallGraph::Step> steps = graph.chain_to(reach, leaf);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const FunctionDef& def = graph.index().defs[steps[i].def];
    if (i == 0) {
      out.root = def.qualified_name;
      out.steps.push_back({def.file, line_of(ctxs, def, def.name_pos),
                           def.qualified_name + " (root)"});
    } else {
      const FunctionDef& caller = graph.index().defs[steps[i - 1].def];
      out.steps.push_back({caller.file, line_of(ctxs, caller, steps[i].call_pos),
                           "calls " + def.qualified_name});
    }
    if (!out.text.empty()) out.text += " -> ";
    out.text += def.last_name();
  }
  return out;
}

// ------------------------------------------------------------------ R18

void transitive_hot_hits(const ContextTable& ctxs, const CallGraph& graph,
                         const CallGraph::Reach& reach, std::size_t d,
                         std::vector<Violation>& out) {
  const FunctionDef& def = graph.index().defs[d];
  const std::string_view body = body_of(ctxs, def);
  const std::vector<TokenHit> hits = scan_hot_tokens(body);
  if (hits.empty()) return;
  const RenderedChain chain = render_chain(ctxs, graph, reach, d);
  for (const TokenHit& hit : hits) {
    const std::size_t pos = def.body_begin + hit.pos;
    Violation v;
    v.file = def.file;
    v.line = line_of(ctxs, def, pos);
    v.rule = "R18";
    v.message = std::string(hit.rule->what) + " in `" + def.qualified_name +
                "`, reachable from MCB_HOT_PATH root `" + chain.root +
                "` (" + chain.text +
                ") — transitively hot code must honor R10/R11/R12; fix the "
                "callee or cut the chain with MCB_HOT_PATH_BOUNDARY";
    v.chain = chain.steps;
    v.chain.push_back({def.file, v.line,
                       std::string(hit.rule->what) + " (" + hit.rule->rule + ")"});
    out.push_back(std::move(v));
  }
}

// ------------------------------------------------------------------ R19

/// Constructs that can park the reactor thread. Socket syscalls count
/// even though the reactor's fds are non-blocking — a leaf suppression
/// stating exactly that is the intended resolution, so the claim is
/// written down where the call is made. epoll_wait itself is excluded:
/// it is the reactor's own bounded wait mechanism.
struct BlockRule {
  std::string_view word;
  const char* what;
  bool member_only;
  bool call_only;
};

constexpr BlockRule kBlockingRules[] = {
    {"MutexLock", "scoped mutex acquisition may wait", false, false},
    {"ExclusiveLock", "scoped writer-lock acquisition may wait", false, false},
    {"SharedLock", "scoped reader-lock acquisition may wait", false, false},
    {"lock_guard", "scoped mutex acquisition may wait", false, false},
    {"unique_lock", "scoped mutex acquisition may wait", false, false},
    {"scoped_lock", "scoped mutex acquisition may wait", false, false},
    {"shared_lock", "scoped reader-lock acquisition may wait", false, false},
    {"lock", "explicit lock() may wait", true, true},
    {"lock_shared", "explicit lock_shared() may wait", true, true},
    {"wait", "condition-variable wait parks the thread", false, true},
    {"wait_for", "condition-variable wait parks the thread", false, true},
    {"wait_until", "condition-variable wait parks the thread", false, true},
    {"sleep_for", "sleeping parks the thread", false, true},
    {"sleep_until", "sleeping parks the thread", false, true},
    {"usleep", "sleeping parks the thread", false, true},
    {"nanosleep", "sleeping parks the thread", false, true},
    {"join", "joining a thread blocks until it exits", true, true},
    {"accept", "accept can block on a blocking listener", false, true},
    {"accept4", "accept4 can block on a blocking listener", false, true},
    {"recv", "recv can block on a blocking socket", false, true},
    {"recvfrom", "recvfrom can block on a blocking socket", false, true},
    {"recvmsg", "recvmsg can block on a blocking socket", false, true},
    {"send", "send can block on a full socket buffer", false, true},
    {"sendto", "sendto can block on a full socket buffer", false, true},
    {"sendmsg", "sendmsg can block on a full socket buffer", false, true},
    {"connect", "connect can block during handshake", false, true},
    {"poll", "poll blocks up to its timeout", false, true},
    {"select", "select blocks up to its timeout", false, true},
    {"getline", "blocking stream read", false, true},
    {"submit", "ThreadPool::submit parks when the queue is full", true, true},
};

void reactor_blocking_hits(const ContextTable& ctxs, const CallGraph& graph,
                           const CallGraph::Reach& reach, std::size_t d,
                           std::vector<Violation>& out) {
  const FunctionDef& def = graph.index().defs[d];
  const std::string_view body = body_of(ctxs, def);
  RenderedChain chain;
  bool have_chain = false;
  for (const BlockRule& rule : kBlockingRules) {
    for (std::size_t pos = find_word(body, rule.word, 0);
         pos != std::string_view::npos;
         pos = find_word(body, rule.word, pos + 1)) {
      if (rule.call_only && !call_like(body, pos, rule.word.size())) continue;
      if (rule.member_only) {
        const char before = prev_nonspace(body, pos);
        if (before != '.' && before != '>') continue;
      }
      if (!have_chain) {
        chain = render_chain(ctxs, graph, reach, d);
        have_chain = true;
      }
      const std::size_t file_pos = def.body_begin + pos;
      Violation v;
      v.file = def.file;
      v.line = line_of(ctxs, def, file_pos);
      v.rule = "R19";
      v.message = std::string(rule.what) + " in `" + def.qualified_name +
                  "`, reachable from reactor root `" + chain.root + "` (" +
                  chain.text +
                  ") — the reactor thread must never block; fix it or mark "
                  "the handoff function MCB_REACTOR_BOUNDARY";
      v.chain = chain.steps;
      v.chain.push_back({def.file, v.line, std::string(rule.what)});
      out.push_back(std::move(v));
    }
  }
}

// ------------------------------------------------------------------ R20

/// `mu_` acquired inside `mcb::HttpServer::drain_completions` names the
/// capability `mcb::HttpServer::mu_` — class-qualifying through the
/// acquiring definition keeps same-named mutexes of unrelated classes
/// from aliasing into false cycles.
std::string qualify_capability(const FunctionDef& def, const std::string& cap) {
  if (cap.find("::") != std::string::npos) return cap;
  const std::size_t sep = def.qualified_name.rfind("::");
  if (sep == std::string::npos) return cap;
  return def.qualified_name.substr(0, sep) + "::" + cap;
}

struct LockEdge {
  ChainStep first;   ///< where the earlier capability is held
  ChainStep second;  ///< where the later capability is acquired
  std::string text;  ///< one-line witness for the message
};

struct Held {
  std::string cap;
  std::size_t pos = 0;
  int depth = 0;
};

}  // namespace

void check_transitive_hot(const ContextTable& ctxs, const CallGraph& graph,
                          std::vector<Violation>& out) {
  const FunctionIndex& index = graph.index();
  std::vector<std::size_t> roots;
  for (std::size_t d = 0; d < index.defs.size(); ++d) {
    if (index.defs[d].hot_path) roots.push_back(d);
  }
  const CallGraph::Reach reach = graph.reachable(
      roots, [](const FunctionDef& def) { return def.hot_boundary; });
  for (const std::size_t d : reach.order) {
    // Roots' direct bodies are owned by the intraprocedural R10–R12
    // pass; re-reporting them here would double every finding.
    if (index.defs[d].hot_path) continue;
    transitive_hot_hits(ctxs, graph, reach, d, out);
  }
}

void check_reactor_blocking(const ContextTable& ctxs, const CallGraph& graph,
                            std::vector<Violation>& out) {
  const FunctionIndex& index = graph.index();
  std::vector<std::size_t> roots;
  for (std::size_t d = 0; d < index.defs.size(); ++d) {
    const std::string_view last = index.defs[d].last_name();
    if (last == "reactor_tick" || last == "handle_event") roots.push_back(d);
  }
  const CallGraph::Reach reach = graph.reachable(
      roots, [](const FunctionDef& def) { return def.reactor_boundary; });
  for (const std::size_t d : reach.order) {
    reactor_blocking_hits(ctxs, graph, reach, d, out);
  }
}

void check_lock_order(const ContextTable& ctxs, const CallGraph& graph,
                      std::vector<Violation>& out) {
  const FunctionIndex& index = graph.index();
  const std::size_t n = index.defs.size();

  // What each definition may acquire, directly or through any callee
  // (no boundary cuts — a deadlock does not care about thread handoff
  // markers; the over-approximation is the safe direction).
  std::vector<std::set<std::string>> acq(n);
  for (std::size_t d = 0; d < n; ++d) {
    const FunctionDef& def = index.defs[d];
    for (const LockSite& lock : def.locks) {
      acq[d].insert(qualify_capability(def, lock.capability));
    }
    for (const std::string& cap : def.acquire_caps) {
      acq[d].insert(qualify_capability(def, cap));
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      for (const CallGraph::Edge& edge : graph.edges_of(d)) {
        for (const std::string& cap : acq[edge.callee]) {
          if (acq[d].insert(cap).second) changed = true;
        }
      }
    }
  }

  // Lock-order edges with witnesses: walk each body tracking the held
  // set (entry capabilities for the whole body; scoped guards until
  // their enclosing block closes — an early unlock() is not modeled).
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            LockEdge witness) {
    edges.emplace(std::make_pair(from, to), std::move(witness));
  };
  for (std::size_t d = 0; d < n; ++d) {
    const FunctionDef& def = index.defs[d];
    if (def.locks.empty() && def.entry_caps.empty()) continue;
    const std::string_view code = ctxs[def.file_ctx]->view.code;

    struct Event {
      std::size_t pos = 0;
      const LockSite* lock = nullptr;     // set for acquisitions
      std::size_t callee = 0;             // set for calls (lock == nullptr)
    };
    std::vector<Event> events;
    for (const LockSite& lock : def.locks) events.push_back({lock.pos, &lock, 0});
    for (const CallGraph::Edge& edge : graph.edges_of(d)) {
      if (!acq[edge.callee].empty()) {
        events.push_back({edge.call_pos, nullptr, edge.callee});
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.pos < b.pos; });

    std::vector<Held> held;
    for (const std::string& cap : def.entry_caps) {
      held.push_back({qualify_capability(def, cap), def.name_pos, 0});
    }
    std::size_t ev = 0;
    int depth = 0;
    for (std::size_t i = def.body_begin; i <= def.body_end; ++i) {
      while (ev < events.size() && events[ev].pos == i) {
        const Event& event = events[ev++];
        if (event.lock != nullptr) {
          const std::string cap = qualify_capability(def, event.lock->capability);
          const std::size_t line = line_of(ctxs, def, event.lock->pos);
          for (const Held& h : held) {
            if (h.cap == cap) continue;
            add_edge(h.cap, cap,
                     {{def.file, line_of(ctxs, def, h.pos),
                       "`" + def.qualified_name + "` holds `" + h.cap + "`"},
                      {def.file, line, "then acquires `" + cap + "`"},
                      "`" + h.cap + "` before `" + cap + "` in `" +
                          def.qualified_name + "`"});
          }
          held.push_back({cap, event.lock->pos, depth});
        } else {
          const FunctionDef& callee = index.defs[event.callee];
          const std::size_t line = line_of(ctxs, def, event.pos);
          for (const Held& h : held) {
            for (const std::string& cap : acq[event.callee]) {
              if (h.cap == cap) continue;
              add_edge(h.cap, cap,
                       {{def.file, line_of(ctxs, def, h.pos),
                         "`" + def.qualified_name + "` holds `" + h.cap + "`"},
                        {def.file, line,
                         "then calls `" + callee.qualified_name +
                             "`, which acquires `" + cap + "`"},
                        "`" + h.cap + "` before `" + cap + "` via `" +
                            def.qualified_name + "` -> `" +
                            callee.qualified_name + "`"});
            }
          }
        }
      }
      if (code[i] == '{') {
        ++depth;
      } else if (code[i] == '}') {
        --depth;
        // Guards constructed inside the block that just closed die here.
        std::erase_if(held, [&](const Held& h) { return h.depth > depth; });
      }
    }
  }

  // Cycle detection over the capability graph; every distinct cycle is
  // reported once, anchored at its first witness, carrying one witness
  // chain per edge of the cycle.
  std::map<std::string, std::vector<std::string>> capadj;
  for (const auto& [key, edge] : edges) capadj[key.first].push_back(key.second);

  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white / 1 on stack / 2 done
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> dfs = [&](const std::string& at) {
    color[at] = 1;
    stack.push_back(at);
    const auto it = capadj.find(at);
    if (it != capadj.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 0) {
          dfs(next);
        } else if (color[next] == 1) {
          // Cycle: next .. at (top of stack).
          const auto begin = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(begin, stack.end());
          const auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string key;
          for (const std::string& cap : cycle) key += cap + ">";
          if (!reported.insert(key).second) continue;

          Violation v;
          v.rule = "R20";
          std::string order;
          for (const std::string& cap : cycle) order += "`" + cap + "` -> ";
          order += "`" + cycle.front() + "`";
          v.message = "lock-order cycle " + order + " — two threads taking "
                      "these in different orders can deadlock; witnesses: ";
          for (std::size_t i = 0; i < cycle.size(); ++i) {
            const LockEdge& edge =
                edges.at({cycle[i], cycle[(i + 1) % cycle.size()]});
            if (i > 0) v.message += "; ";
            v.message += edge.text;
            v.chain.push_back(edge.first);
            v.chain.push_back(edge.second);
          }
          const LockEdge& anchor = edges.at({cycle[0], cycle[1 % cycle.size()]});
          v.file = anchor.second.file;
          v.line = anchor.second.line;
          out.push_back(std::move(v));
        }
      }
    }
    stack.pop_back();
    color[at] = 2;
  };
  for (const auto& [cap, _] : capadj) {
    if (color[cap] == 0) dfs(cap);
  }
}

void check_discarded_status(const ContextTable& ctxs, const CallGraph& graph,
                            std::vector<Violation>& out) {
  const FunctionIndex& index = graph.index();
  for (const FunctionDef& def : index.defs) {
    const std::string_view code = ctxs[def.file_ctx]->view.code;
    for (const CallSite& site : def.calls) {
      // A status call is one where EVERY same-named repo definition
      // returns bool — mixed-name families (e.g. `load` on a std type
      // vs a repo type) stay silent rather than guessing.
      const std::vector<std::size_t> targets =
          graph.resolve(site, /*strict_vocabulary=*/false);
      if (targets.empty()) continue;
      bool all_bool = true;
      for (const std::size_t t : targets) {
        if (!index.defs[t].returns_bool) all_bool = false;
      }
      if (!all_bool) continue;

      // Statement position: `<stmt-start> [recv.]name(args);` with the
      // statement preceded by ';', '{' or '}'. Anything else — `(void)`
      // cast, `if (!...)`, assignment, return — uses the result.
      const std::size_t after_name = site.pos + site.name.size();
      const std::size_t paren = next_nonspace(code, after_name);
      if (paren == std::string_view::npos || code[paren] != '(') continue;
      const std::size_t close = match_forward(code, paren, '(', ')');
      if (close == std::string_view::npos) continue;
      const std::size_t after = next_nonspace(code, close + 1);
      if (after == std::string_view::npos || code[after] != ';') continue;

      std::size_t begin = site.pos;
      while (begin > 0) {
        const char c = code[begin - 1];
        if (is_ident_char(c) || c == '.' || c == ':') {
          --begin;
        } else if (c == '>' && begin >= 2 && code[begin - 2] == '-') {
          begin -= 2;
        } else {
          break;
        }
      }
      const char before = prev_nonspace(code, begin);
      if (before != ';' && before != '{' && before != '}' && before != '\0') {
        continue;
      }

      Violation v;
      v.file = def.file;
      v.line = ctxs[def.file_ctx]->lines.line_of(site.pos);
      v.rule = "R21";
      v.message = "result of `" + site.name + "` is discarded — every repo "
                  "definition of it returns a bool status; check it or make "
                  "the intent explicit with a `(void)` cast";
      out.push_back(std::move(v));
    }
  }
}

}  // namespace mcb::lint
