#include "lint/hot_path.hpp"

#include <string_view>

namespace mcb::lint {

namespace {

constexpr std::string_view kMarker = "MCB_HOT_PATH";

bool on_preprocessor_line(std::string_view code, std::size_t pos) {
  std::size_t bol = pos;
  while (bol > 0 && code[bol - 1] != '\n') --bol;
  const std::size_t first = next_nonspace(code.substr(bol, pos - bol), 0);
  return first != std::string_view::npos && code[bol + first] == '#';
}

constexpr TokenRule kHotTokenRules[] = {
    // R10 — heap allocation.
    {"new", "R10", "operator new allocates", false, false},
    {"make_unique", "R10", "make_unique allocates", false, false},
    {"make_shared", "R10", "make_shared allocates", false, false},
    {"malloc", "R10", "malloc allocates", false, true},
    {"calloc", "R10", "calloc allocates", false, true},
    {"realloc", "R10", "realloc allocates", false, true},
    {"strdup", "R10", "strdup allocates", false, true},
    {"to_string", "R10", "to_string builds a heap string", false, true},
    {"to_lower", "R10", "to_lower copies into a heap string", false, true},
    {"push_back", "R10", "container growth may reallocate", true, true},
    {"emplace_back", "R10", "container growth may reallocate", true, true},
    {"push_front", "R10", "container growth may reallocate", true, true},
    {"emplace_front", "R10", "container growth may reallocate", true, true},
    {"insert", "R10", "container growth may reallocate", true, true},
    {"emplace", "R10", "container growth may reallocate", true, true},
    {"emplace_hint", "R10", "container growth may reallocate", true, true},
    {"resize", "R10", "resize may reallocate", true, true},
    {"reserve", "R10", "reserve allocates", true, true},
    {"append", "R10", "string growth may reallocate", true, true},
    {"assign", "R10", "assign may reallocate", true, true},
    // R11 — throwing / blocking.
    {"throw", "R11", "throwing unwinds the fast path", false, false},
    {"sleep_for", "R11", "sleeping blocks the fast path", false, true},
    {"sleep_until", "R11", "sleeping blocks the fast path", false, true},
    {"usleep", "R11", "sleeping blocks the fast path", false, true},
    {"nanosleep", "R11", "sleeping blocks the fast path", false, true},
    {"wait", "R11", "unbounded wait blocks the fast path", false, true},
    {"accept", "R11", "blocking socket call", false, true},
    {"accept4", "R11", "blocking socket call", false, true},
    {"recv", "R11", "blocking socket call", false, true},
    {"recvfrom", "R11", "blocking socket call", false, true},
    {"send", "R11", "blocking socket call", false, true},
    {"sendto", "R11", "blocking socket call", false, true},
    {"connect", "R11", "blocking socket call", false, true},
    {"poll", "R11", "blocking socket call", false, true},
    {"select", "R11", "blocking socket call", false, true},
    {"epoll_wait", "R11", "blocking socket call", false, true},
    {"getline", "R11", "blocking stream read", false, true},
    // R12 — lock acquisition.
    {"MutexLock", "R12", "acquires a mutex", false, false},
    {"ExclusiveLock", "R12", "acquires a writer lock", false, false},
    {"SharedLock", "R12", "acquires a reader lock", false, false},
    {"lock_guard", "R12", "acquires a mutex", false, false},
    {"unique_lock", "R12", "acquires a mutex", false, false},
    {"scoped_lock", "R12", "acquires a mutex", false, false},
    {"shared_lock", "R12", "acquires a reader lock", false, false},
    {"lock", "R12", "acquires a lock", true, true},
    {"lock_shared", "R12", "acquires a reader lock", true, true},
    {"try_lock", "R12", "lock acquisition attempt", true, true},
};

}  // namespace

std::vector<TokenHit> scan_hot_tokens(std::string_view body) {
  std::vector<TokenHit> hits;
  for (const TokenRule& rule : kHotTokenRules) {
    for (std::size_t pos = find_word(body, rule.word, 0);
         pos != std::string_view::npos;
         pos = find_word(body, rule.word, pos + 1)) {
      if (rule.call_only && !call_like(body, pos, rule.word.size())) continue;
      if (rule.member_only) {
        const char before = prev_nonspace(body, pos);
        if (before != '.' && before != '>') continue;
      }
      // `= delete` style declarations cannot appear in a body; no
      // extra filtering needed beyond the word match.
      hits.push_back({&rule, pos});
    }
  }
  return hits;
}

std::vector<HotRegion> find_marked_regions(const FileContext& ctx,
                                           std::string_view marker,
                                           std::vector<Violation>& out) {
  std::vector<HotRegion> regions;
  const std::string_view code = ctx.view.code;
  const std::string name(marker);
  for (std::size_t pos = find_word(code, marker, 0); pos != std::string_view::npos;
       pos = find_word(code, marker, pos + 1)) {
    if (on_preprocessor_line(code, pos)) continue;  // the #define itself
    const std::size_t params_open = code.find('(', pos + marker.size());
    if (params_open == std::string_view::npos) {
      ctx.add(pos, "R16", name + " is not followed by a function definition", out);
      continue;
    }
    const std::size_t params_close = match_forward(code, params_open, '(', ')');
    if (params_close == std::string_view::npos) {
      ctx.add(pos, "R16", name + ": unterminated parameter list", out);
      continue;
    }
    const std::string function = name_before(code, params_open);
    const std::size_t body_open = find_body_open(code, params_close + 1);
    if (body_open == std::string_view::npos) {
      ctx.add(pos, "R16",
              name + " on a declaration of `" + function +
                  "` guards nothing — annotate the definition instead",
              out);
      continue;
    }
    const std::size_t body_close = match_forward(code, body_open, '{', '}');
    if (body_close == std::string_view::npos) {
      ctx.add(pos, "R16", name + ": unbalanced braces in `" + function + "`", out);
      continue;
    }
    regions.push_back({function, pos, body_open, body_close});
  }
  return regions;
}

std::vector<HotRegion> find_hot_regions(const FileContext& ctx,
                                        std::vector<Violation>& out) {
  return find_marked_regions(ctx, kMarker, out);
}

std::size_t check_hot_paths(FileContext& ctx, std::vector<Violation>& out) {
  std::vector<HotRegion> regions = find_hot_regions(ctx, out);
  if (regions.empty()) return 0;
  const std::string_view code = ctx.view.code;

  for (const HotRegion& region : regions) {
    // Widen signature-level suppressions to the whole body: a reader
    // sees the policy exception next to the annotation it excuses.
    const std::size_t anno_line = ctx.lines.line_of(region.anno_pos);
    const std::size_t open_line = ctx.lines.line_of(region.body_begin);
    const std::size_t close_line = ctx.lines.line_of(region.body_end);
    for (Suppression& s : ctx.suppressions) {
      if (s.malformed) continue;
      if (s.line >= anno_line && s.line <= open_line) {
        s.scope_begin = anno_line;
        s.scope_end = close_line;
      }
    }

    const std::string_view body = code.substr(region.body_begin,
                                              region.body_end - region.body_begin + 1);
    for (const TokenHit& hit : scan_hot_tokens(body)) {
      const TokenRule& rule = *hit.rule;
      ctx.add(region.body_begin + hit.pos, rule.rule,
              std::string(rule.what) + " inside MCB_HOT_PATH function `" +
                  region.function + "` — hot paths must stay " +
                  (rule.rule == std::string_view("R10")
                       ? "allocation-free (reuse warm buffers)"
                   : rule.rule == std::string_view("R11")
                       ? "non-blocking and non-throwing"
                       : "lock-free (shift synchronization to the caller or shard it)"),
              out);
    }
  }
  return regions.size();
}

}  // namespace mcb::lint
