#include "lint/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "lint/call_graph.hpp"
#include "lint/function_index.hpp"
#include "lint/graph_rules.hpp"
#include "lint/hot_path.hpp"
#include "lint/signal_safety.hpp"
#include "lint/text_rules.hpp"

namespace fs = std::filesystem;

namespace mcb::lint {

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool has_extension(const fs::path& p, std::string_view a, std::string_view b = "") {
  const std::string ext = p.extension().string();
  return ext == a || (!b.empty() && ext == b);
}

// Lint fixtures are deliberately-broken inputs for tests/test_lint.cpp;
// the repo scan must never treat them as product code. Judged on the
// root-relative path so a run rooted *inside* a fixture tree (what the
// tests themselves do) still scans the fixture's files.
bool in_fixture_dir(const std::string& rel_path) {
  for (const auto& part : fs::path(rel_path)) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

bool is_sync_wrapper_file(const fs::path& p) {
  const std::string name = p.filename().string();
  return p.parent_path().filename() == "util" &&
         (name == "sync.hpp" || name == "sync.cpp");
}

// src/obs/ implements the logger (it must reach the real stderr) and
// util/cli.cpp prints usage text; everything else logs via mcb::log.
bool may_write_streams_directly(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "obs") return true;
  }
  return p.filename() == "cli.cpp" && p.parent_path().filename() == "util";
}

// R17 applies to every src/serve file except the designated reactor /
// syscall-wrapper file, which is the one place socket I/O may live.
bool must_confine_socket_syscalls(const fs::path& p) {
  return p.parent_path().filename() == "serve" && p.filename() != "server.cpp";
}

// R22's confinement half: only the profiler module (src/obs/perf/) may
// install signal dispositions, arm profiling timers or walk stacks.
bool may_own_signal_machinery(const fs::path& p) {
  return p.parent_path().filename() == "perf" &&
         p.parent_path().parent_path().filename() == "obs";
}

std::string rel_to(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

fs::path resolve(const fs::path& root, const std::string& maybe_relative) {
  const fs::path p(maybe_relative);
  return p.is_absolute() ? p : root / p;
}

bool inline_suppressible(std::string_view rule) {
  // Architecture rules (R13/R14) and the lock-order rule (R20, whose
  // anchor line is one witness of a multi-site cycle) may only be
  // grandfathered through the baseline — an inline comment at one site
  // must not be able to excuse a cross-file property. R15 findings are
  // terminal.
  return rule.size() >= 2 && rule[0] == 'R' &&
         !(rule == "R13" || rule == "R14" || rule == "R15" || rule == "R20");
}

}  // namespace

LintResult run_lint(const LintOptions& options) {
  LintResult result;
  const fs::path root(options.root);
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    result.config_error = true;
    result.config_message = (root / "src").string() + " is not a directory";
    return result;
  }

  // Every pass below consumes this cache: each file is read and
  // tokenized exactly once, here, and only referenced afterwards.
  std::vector<FileContext> contexts;
  std::vector<fs::path> abs_paths;           // aligned with contexts
  std::vector<std::size_t> src_context_ids;  // indices into contexts
  std::vector<std::size_t> aux_context_ids;  // tools/tests/bench/examples
  std::vector<Violation> raw;                // pre-suppression findings

  const auto timed = [&](const char* name, auto&& pass) {
    const auto t0 = std::chrono::steady_clock::now();
    pass();
    const auto t1 = std::chrono::steady_clock::now();
    result.stats.passes.push_back(
        {name, std::chrono::duration<double, std::milli>(t1 - t0).count()});
  };

  // ------------------------------------------------- load + tokenize
  timed("load+tokenize", [&] {
    std::vector<fs::path> src_files;
    for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
      if (!entry.is_regular_file()) continue;
      if (!has_extension(entry.path(), ".cpp", ".hpp")) continue;
      if (in_fixture_dir(rel_to(root, entry.path()))) continue;
      src_files.push_back(entry.path());
    }
    std::sort(src_files.begin(), src_files.end());
    for (const fs::path& path : src_files) {
      contexts.emplace_back(rel_to(root, path), scan_source(read_file(path)));
      abs_paths.push_back(path);
      src_context_ids.push_back(contexts.size() - 1);
    }
    for (const char* dir : {"tools", "tests", "bench", "examples"}) {
      const fs::path base = root / dir;
      if (!fs::is_directory(base, ec)) continue;
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        if (!has_extension(entry.path(), ".cpp", ".hpp")) continue;
        if (in_fixture_dir(rel_to(root, entry.path()))) continue;
        files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& path : files) {
        contexts.emplace_back(rel_to(root, path), scan_source(read_file(path)));
        abs_paths.push_back(path);
        aux_context_ids.push_back(contexts.size() - 1);
      }
    }
    result.stats.files_scanned = contexts.size();
  });

  // --------------------------------------------------- per-file rules
  timed("per-file rules", [&] {
    for (const std::size_t id : src_context_ids) {
      FileContext& ctx = contexts[id];
      const fs::path& path = abs_paths[id];
      check_no_wallclock_or_libc_rand(ctx, raw);
      check_no_naked_new_delete(ctx, raw);
      check_no_swallowing_catch_all(ctx, raw);
      if (!is_sync_wrapper_file(path)) check_no_raw_std_sync(ctx, raw);
      check_no_thread_detach(ctx, raw);
      check_relaxed_order_justified(ctx, raw);
      if (!may_write_streams_directly(path)) check_no_direct_stream_writes(ctx, raw);
      if (must_confine_socket_syscalls(path)) check_reactor_syscall_confinement(ctx, raw);
      if (!may_own_signal_machinery(path)) check_signal_machinery_confinement(ctx, raw);
      result.stats.hot_regions += check_hot_paths(ctx, raw);
      result.stats.signal_handlers += check_signal_handlers(ctx, raw);
      if (has_extension(path, ".hpp")) check_pragma_once(ctx, raw);
    }
    // Reduced rule set for tools/tests/bench/examples: a CLI may read
    // the clock and print, but leaks, swallowed errors and detached
    // threads are still bugs there.
    for (const std::size_t id : aux_context_ids) {
      FileContext& ctx = contexts[id];
      check_no_naked_new_delete(ctx, raw);
      check_no_swallowing_catch_all(ctx, raw);
      check_no_thread_detach(ctx, raw);
    }
  });

  // ------------------------------------- header self-containment (R4)
  timed("header self-containment (R4)", [&] {
    if (options.compiler.empty()) return;
    for (const std::size_t id : src_context_ids) {
      const fs::path& path = abs_paths[id];
      if (!has_extension(path, ".hpp")) continue;
      const std::string cmd = options.compiler + " -std=" + options.std_flag +
                              " -fsyntax-only -x c++ -I " + (root / "src").string() +
                              " " + path.string() + " 2>/dev/null";
      const int rc = std::system(cmd.c_str());  // NOLINT(cert-env33-c) — drives the compiler
      if (rc != 0) {
        raw.push_back({contexts[id].rel_path, 1, "R4",
                       "header is not self-contained: `" + options.compiler +
                           " -fsyntax-only " + path.filename().string() + "` failed", {}});
      }
      ++result.stats.headers_compiled;
    }
  });

  // ------------------------------------------------------ include graph
  timed("include graph + layering", [&] {
    std::map<std::string, std::vector<IncludeSite>> file_graph;
    for (const std::size_t id : src_context_ids) {
      const FileContext& ctx = contexts[id];
      // "src/ml/knn.cpp" → module "ml".
      const fs::path rel(ctx.rel_path);
      auto it = rel.begin();
      ++it;  // skip "src"
      if (it == rel.end() || std::next(it) == rel.end()) continue;  // file at src/ top level
      const std::string from_module = it->string();
      for (const IncludeSite& site : scan_includes(ctx)) {
        const std::size_t slash = site.target.find('/');
        if (slash == std::string::npos) continue;  // not a module-qualified include
        if (!fs::exists(root / "src" / site.target, ec)) continue;  // outside src/
        const std::string to_module = site.target.substr(0, slash);
        result.graph.add_edge(from_module, to_module, site);
        IncludeSite resolved = site;
        resolved.target = "src/" + site.target;
        file_graph[ctx.rel_path].push_back(std::move(resolved));
      }
    }
    result.stats.modules = result.graph.module_count();
    result.stats.module_edges = result.graph.cross_edge_count();

    if (!options.layers_file.empty()) {
      const fs::path layers_path = resolve(root, options.layers_file);
      if (!fs::exists(layers_path, ec)) {
        result.config_error = true;
        result.config_message = "layer manifest not found: " + layers_path.string();
        return;
      }
      LayerManifest manifest;
      std::string error;
      if (!parse_layer_manifest(read_file(layers_path), manifest, error)) {
        result.config_error = true;
        result.config_message = error;
        return;
      }
      check_layering(result.graph, manifest, raw);
    }
    check_include_cycles(file_graph, raw);
  });
  if (result.config_error) return result;

  // --------------------------------------- whole-program passes (§13)
  FunctionIndex index;
  timed("function index", [&] {
    for (const std::size_t id : src_context_ids) {
      index.add_file(contexts[id], id, raw);
    }
    result.stats.functions_indexed = index.defs.size();
  });

  std::optional<CallGraph> graph;
  timed("call graph + R18-R21", [&] {
    graph.emplace(index);
    result.stats.call_edges = graph->edge_count();
    ContextTable table;
    table.reserve(contexts.size());
    for (const FileContext& ctx : contexts) table.push_back(&ctx);
    check_transitive_hot(table, *graph, raw);
    check_reactor_blocking(table, *graph, raw);
    check_lock_order(table, *graph, raw);
    check_discarded_status(table, *graph, raw);
    result.call_graph_dot = graph->to_dot();
  });

  // ------------------------------------------------- suppression pass
  std::vector<Violation> active;
  timed("suppressions", [&] {
    std::map<std::string, std::size_t> context_of;
    for (std::size_t i = 0; i < contexts.size(); ++i) context_of[contexts[i].rel_path] = i;

    for (Violation& v : raw) {
      bool suppressed = false;
      const auto ctx_it = context_of.find(v.file);
      if (ctx_it != context_of.end() && inline_suppressible(v.rule)) {
        for (Suppression& s : contexts[ctx_it->second].suppressions) {
          if (s.malformed || s.rule != v.rule) continue;
          const bool in_scope =
              s.scope_end != 0 ? (v.line >= s.scope_begin && v.line <= s.scope_end)
                               : (v.line == s.line || v.line == s.line + 1);
          if (!in_scope) continue;
          s.used = true;
          suppressed = true;
          ++result.stats.suppressions_used;
          break;
        }
      }
      if (!suppressed) active.push_back(std::move(v));
    }

    for (const FileContext& ctx : contexts) {
      for (const Suppression& s : ctx.suppressions) {
        if (s.malformed) {
          active.push_back({ctx.rel_path, s.line, "R15",
                            "malformed suppression — use `mcb-lint: suppress(R<n>: reason)` "
                            "with a known rule and a non-empty reason", {}});
        } else if (!s.used) {
          active.push_back({ctx.rel_path, s.line, "R15",
                            "unused suppression for " + s.rule +
                                " — the finding it excused is gone; delete the comment", {}});
        }
      }
    }
  });

  // --------------------------------------------------- baseline pass
  timed("baseline", [&] {
    if (options.baseline_file.empty()) return;
    const fs::path baseline_path = resolve(root, options.baseline_file);
    const std::string baseline_rel = rel_to(root, baseline_path);
    if (!fs::exists(baseline_path, ec)) return;
    std::vector<BaselineEntry> entries = parse_baseline(read_file(baseline_path));
    std::vector<Violation> kept;
    for (Violation& v : active) {
      bool grandfathered = false;
      if (v.rule != "R15") {
        for (BaselineEntry& entry : entries) {
          if (baseline_matches(entry, v)) {
            ++entry.hits;
            ++result.stats.baselined;
            grandfathered = true;
            break;
          }
        }
      }
      if (!grandfathered) kept.push_back(std::move(v));
    }
    active = std::move(kept);
    for (const BaselineEntry& entry : entries) {
      if (entry.malformed) {
        active.push_back({baseline_rel, entry.line, "R15",
                          "malformed baseline entry — use `<path>|<rule>|<message "
                          "substring or *>`", {}});
      } else if (entry.hits == 0) {
        active.push_back({baseline_rel, entry.line, "R15",
                          "stale baseline entry for " + entry.rule + " in " + entry.file +
                              " — the grandfathered finding is gone; delete the line", {}});
      }
    }
  });

  std::sort(active.begin(), active.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  result.violations = std::move(active);
  return result;
}

}  // namespace mcb::lint
