#include "lint/call_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace mcb::lint {

namespace {

// std:: container / atomic / stream vocabulary: an unqualified or
// member call with one of these names is overwhelmingly a call on a
// standard type (`counter.load()`, `buf.size()`), not on a repo
// definition that happens to share the name. Linking them would wire
// e.g. every atomic load into `ClassificationModel::load` and flood
// R18 with false chains, so reachability linking skips them; spell the
// call `Class::name` to force the edge. R21 resolves these names with
// `strict_vocabulary=false` plus its own all-defs-return-bool filter.
constexpr std::string_view kAmbiguousVocabulary[] = {
    "append",       "assign",    "at",        "back",         "begin",
    "c_str",        "clear",     "close",     "compare",      "contains",
    "count",        "data",      "emplace",   "emplace_back", "empty",
    "end",          "erase",     "exchange",  "extract",      "find",
    "first",        "flush",     "front",     "get",          "insert",
    "length",       "load",      "lock",      "max",          "merge",
    "min",          "open",      "pop",       "pop_back",     "pop_front",
    "push",         "push_back", "push_front","read",         "release",
    "reserve",      "reset",     "resize",    "second",       "size",
    "store",        "str",       "substr",    "swap",         "test",
    "top",          "try_lock",  "unlock",    "value",        "wait",
    "write",
};

std::vector<std::string_view> split_components(std::string_view name) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t sep = name.find("::", begin);
    if (sep == std::string_view::npos) {
      parts.push_back(name.substr(begin));
      return parts;
    }
    parts.push_back(name.substr(begin, sep - begin));
    begin = sep + 2;
  }
}

/// True when the call components are a suffix of the definition's
/// qualified-name components (`HttpServer::stop` matches
/// `mcb::HttpServer::stop`).
bool suffix_matches(const std::vector<std::string_view>& def_parts,
                    const std::vector<std::string_view>& call_parts) {
  if (call_parts.size() > def_parts.size()) return false;
  return std::equal(call_parts.rbegin(), call_parts.rend(), def_parts.rbegin());
}

}  // namespace

bool CallGraph::ambiguous_vocabulary(std::string_view name) {
  for (const std::string_view word : kAmbiguousVocabulary) {
    if (name == word) return true;
  }
  return false;
}

std::vector<std::size_t> CallGraph::resolve(const CallSite& site,
                                            bool strict_vocabulary) const {
  const std::vector<std::string_view> call_parts = split_components(site.name);
  const std::string_view last = call_parts.back();
  if (strict_vocabulary && call_parts.size() == 1 && ambiguous_vocabulary(last)) {
    return {};
  }
  const auto it = index_->by_last_name.find(last);
  if (it == index_->by_last_name.end()) return {};
  if (call_parts.size() == 1) return it->second;
  std::vector<std::size_t> out;
  for (const std::size_t def : it->second) {
    if (suffix_matches(split_components(index_->defs[def].qualified_name),
                       call_parts)) {
      out.push_back(def);
    }
  }
  return out;
}

CallGraph::CallGraph(const FunctionIndex& index) : index_(&index) {
  adj_.resize(index.defs.size());
  for (std::size_t caller = 0; caller < index.defs.size(); ++caller) {
    for (const CallSite& site : index.defs[caller].calls) {
      for (const std::size_t callee : resolve(site, /*strict_vocabulary=*/true)) {
        adj_[caller].push_back({callee, site.pos});
      }
    }
  }
}

std::size_t CallGraph::edge_count() const {
  std::size_t n = 0;
  for (const std::vector<Edge>& edges : adj_) n += edges.size();
  return n;
}

CallGraph::Reach CallGraph::reachable(
    std::vector<std::size_t> roots,
    const std::function<bool(const FunctionDef&)>& cut) const {
  Reach reach;
  reach.parent.assign(index_->defs.size(), Reach::kUnreached);
  reach.via_pos.assign(index_->defs.size(), 0);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  std::deque<std::size_t> queue;
  for (const std::size_t root : roots) {
    if (reach.parent[root] != Reach::kUnreached) continue;
    reach.parent[root] = Reach::kRoot;
    reach.order.push_back(root);
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (const Edge& edge : adj_[at]) {
      if (reach.parent[edge.callee] != Reach::kUnreached) continue;
      if (cut && cut(index_->defs[edge.callee])) continue;
      reach.parent[edge.callee] = static_cast<int>(at);
      reach.via_pos[edge.callee] = edge.call_pos;
      reach.order.push_back(edge.callee);
      queue.push_back(edge.callee);
    }
  }
  return reach;
}

std::vector<CallGraph::Step> CallGraph::chain_to(const Reach& reach,
                                                 std::size_t def) const {
  std::vector<Step> chain;
  int at = static_cast<int>(def);
  while (at != Reach::kRoot) {
    const std::size_t d = static_cast<std::size_t>(at);
    const int parent = reach.parent[d];
    if (parent == Reach::kUnreached) return {};  // not reached: no chain
    // call_pos: where the parent calls `d`; 0 for the root step.
    chain.push_back({d, parent == Reach::kRoot ? 0 : reach.via_pos[d]});
    at = parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::string CallGraph::to_dot() const {
  // Slice: everything reachable from the hot-path and reactor roots.
  // Boundary-marked definitions are rendered (dashed) but not expanded,
  // mirroring exactly what R18/R19 traverse.
  std::vector<std::size_t> roots;
  for (std::size_t d = 0; d < index_->defs.size(); ++d) {
    const FunctionDef& def = index_->defs[d];
    if (def.hot_path || def.last_name() == "reactor_tick" ||
        def.last_name() == "handle_event") {
      roots.push_back(d);
    }
  }
  const Reach reach = reachable(roots, [](const FunctionDef& def) {
    return def.hot_boundary || def.reactor_boundary;
  });
  // Re-walk one level past the cut so boundary nodes appear as leaves.
  std::set<std::string> root_names;
  std::set<std::string> boundary_names;
  std::set<std::string> plain_names;
  std::set<std::pair<std::string, std::string>> edges;
  for (const std::size_t d : reach.order) {
    const FunctionDef& def = index_->defs[d];
    (def.hot_path ? root_names : plain_names).insert(def.qualified_name);
    for (const Edge& edge : adj_[d]) {
      const FunctionDef& callee = index_->defs[edge.callee];
      if (callee.hot_boundary || callee.reactor_boundary) {
        boundary_names.insert(callee.qualified_name);
      }
      edges.insert({def.qualified_name, callee.qualified_name});
    }
  }
  std::string dot;
  dot += "// Generated by: mcbound_lint --graph=dot --graph-kind=calls\n";
  dot += "// Call-graph slice reachable from MCB_HOT_PATH / reactor roots.\n";
  dot += "// Dashed nodes carry a boundary marker and are not expanded.\n";
  dot += "digraph mcbound_calls {\n";
  dot += "  rankdir=LR;\n";
  dot += "  node [shape=box, fontname=\"monospace\"];\n";
  for (const std::string& name : root_names) {
    dot += "  \"" + name + "\" [style=bold, color=firebrick];\n";
  }
  for (const std::string& name : boundary_names) {
    if (root_names.count(name)) continue;
    dot += "  \"" + name + "\" [style=dashed, color=steelblue];\n";
  }
  for (const auto& [from, to] : edges) {
    dot += "  \"" + from + "\" -> \"" + to + "\";\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace mcb::lint
