#include "lint/include_graph.hpp"

#include <algorithm>
#include <sstream>

namespace mcb::lint {

std::vector<IncludeSite> scan_includes(const FileContext& ctx) {
  std::vector<IncludeSite> out;
  const std::string_view code = ctx.view.code;
  for (std::size_t pos = code.find("#include", 0); pos != std::string_view::npos;
       pos = code.find("#include", pos + 8)) {
    // Must be the first token on its line (preprocessor directive).
    std::size_t bol = pos;
    while (bol > 0 && code[bol - 1] != '\n') --bol;
    if (next_nonspace(code.substr(bol, pos - bol), 0) != std::string_view::npos) continue;
    const std::size_t open = next_nonspace(code, pos + 8);
    if (open == std::string_view::npos || code[open] != '"') continue;
    const std::size_t close = code.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    // The code view blanks string-literal contents; the views are
    // byte-aligned, so slice the include target out of the raw text.
    out.push_back({ctx.rel_path, ctx.lines.line_of(pos),
                   std::string(ctx.view.raw.substr(open + 1, close - open - 1))});
  }
  return out;
}

bool parse_layer_manifest(std::string_view text, LayerManifest& out, std::string& error) {
  out = LayerManifest{};
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (nl == std::string_view::npos && line.empty()) break;
    start = end + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::istringstream tokens{std::string(line)};
    std::string word;
    if (!(tokens >> word)) continue;  // blank / comment-only line
    if (word != "layer") {
      error = "layers.txt:" + std::to_string(line_no) +
              ": expected `layer <module>...`, got `" + word + "`";
      return false;
    }
    std::vector<std::string> modules;
    while (tokens >> word) {
      if (out.contains(word)) {
        error = "layers.txt:" + std::to_string(line_no) + ": module `" + word +
                "` declared twice";
        return false;
      }
      out.layer_of[word] = out.layers.size();
      modules.push_back(word);
    }
    if (modules.empty()) {
      error = "layers.txt:" + std::to_string(line_no) + ": empty layer";
      return false;
    }
    out.layers.push_back(std::move(modules));
  }
  if (out.layers.empty()) {
    error = "layers.txt declares no layers";
    return false;
  }
  return true;
}

void ModuleGraph::add_edge(const std::string& from_module, const std::string& to_module,
                           const IncludeSite& site) {
  modules_.insert(from_module);
  modules_.insert(to_module);
  edges_[from_module][to_module].push_back(site);
}

std::size_t ModuleGraph::cross_edge_count() const {
  std::size_t n = 0;
  for (const auto& [from, targets] : edges_) {
    for (const auto& [to, sites] : targets) {
      if (from != to) ++n;
    }
  }
  return n;
}

std::string ModuleGraph::to_dot() const {
  // std::map keeps both levels sorted, so the render is deterministic
  // and diff-able (the CI drift gate depends on that).
  std::string dot;
  dot += "// Module dependency graph under src/ — emitted by\n";
  dot += "//   mcbound_lint --root . --graph=dot\n";
  dot += "// and checked against tools/lint/layers.txt (DESIGN.md §12).\n";
  dot += "digraph mcbound_modules {\n";
  dot += "  rankdir=BT;\n";
  for (const auto& [from, targets] : edges_) {
    for (const auto& [to, sites] : targets) {
      if (from == to) continue;
      dot += "  \"" + from + "\" -> \"" + to + "\";\n";
    }
  }
  dot += "}\n";
  return dot;
}

void check_layering(const ModuleGraph& graph, const LayerManifest& manifest,
                    std::vector<Violation>& out) {
  std::set<std::string> reported_unknown;
  for (const auto& [from, targets] : graph.edges()) {
    for (const auto& [to, sites] : targets) {
      if (from == to) continue;
      if (sites.empty()) continue;
      const IncludeSite& first = sites.front();
      if (!manifest.contains(from) || !manifest.contains(to)) {
        const std::string& missing = !manifest.contains(from) ? from : to;
        if (reported_unknown.insert(missing).second) {
          out.push_back({first.file, first.line, "R13",
                         "module `" + missing +
                             "` is not declared in layers.txt — add it to the "
                             "layer manifest before depending on it"});
        }
        continue;
      }
      const std::size_t from_layer = manifest.layer_of.at(from);
      const std::size_t to_layer = manifest.layer_of.at(to);
      if (to_layer < from_layer) continue;  // strictly lower: allowed
      const char* kind = to_layer == from_layer ? "peer-layer" : "back-edge";
      for (const IncludeSite& site : sites) {
        out.push_back(
            {site.file, site.line, "R13",
             std::string(kind) + " include: `" + from + "` (layer " +
                 std::to_string(from_layer) + ") -> `" + to + "` (layer " +
                 std::to_string(to_layer) + ") via `#include \"" + site.target +
                 "\"` — layers.txt permits only strictly lower layers"});
      }
    }
  }
}

namespace {

// Iterative three-colour DFS; a grey→grey edge closes a cycle and the
// explicit stack holds the offending include chain.
struct DfsFrame {
  std::string node;
  std::size_t next_edge = 0;
};

}  // namespace

void check_include_cycles(
    const std::map<std::string, std::vector<IncludeSite>>& file_graph,
    std::vector<Violation>& out) {
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<std::string, Colour> colour;
  for (const auto& [node, edges] : file_graph) colour[node] = Colour::kWhite;

  for (const auto& [root, root_edges] : file_graph) {
    if (colour[root] != Colour::kWhite) continue;
    std::vector<DfsFrame> stack;
    stack.push_back({root, 0});
    colour[root] = Colour::kGrey;
    while (!stack.empty()) {
      DfsFrame& frame = stack.back();
      static const std::vector<IncludeSite> kNoEdges;
      const auto it = file_graph.find(frame.node);
      const std::vector<IncludeSite>& edges = it != file_graph.end() ? it->second : kNoEdges;
      if (frame.next_edge >= edges.size()) {
        colour[frame.node] = Colour::kBlack;
        stack.pop_back();
        continue;
      }
      const IncludeSite& site = edges[frame.next_edge++];
      const std::string& to = site.target;
      const auto colour_it = colour.find(to);
      if (colour_it == colour.end()) continue;  // include outside src/
      if (colour_it->second == Colour::kGrey) {
        // Render the chain from the first occurrence of `to` on the
        // stack down to the closing edge.
        std::string chain;
        bool in_cycle = false;
        for (const DfsFrame& f : stack) {
          if (f.node == to) in_cycle = true;
          if (in_cycle) chain += f.node + " -> ";
        }
        chain += to;
        out.push_back({site.file, site.line, "R14",
                       "include cycle: " + chain +
                           " — break the cycle with a forward declaration or an "
                           "interface header"});
        continue;
      }
      if (colour_it->second == Colour::kBlack) continue;
      colour[to] = Colour::kGrey;
      stack.push_back({to, 0});
    }
  }
}

}  // namespace mcb::lint
