// Function-index pass of mcbound_lint (DESIGN.md §13).
//
// Extracts every function/method *definition* and its call sites from
// the string/comment-aware code views, so the call-graph pass can link
// them across translation units. The extraction is lexical, not a C++
// parse; its model (and its known precision limits, documented in
// DESIGN.md §13) is:
//
//  * a definition is an identifier (possibly `Class::`-qualified, or an
//    operator name) followed by a balanced parameter list and a
//    brace-matched body — keyword heads (`if`, `while`, ...) and
//    ALL_CAPS macro names are rejected;
//  * definitions are qualified with their enclosing `namespace` /
//    `class` / `struct` scopes, so an in-class body and an out-of-line
//    `Class::method` body both index as `ns::Class::method`;
//  * the index is overload-insensitive by design: two overloads share
//    one qualified name and a call site links to all of them;
//  * lambda bodies are attributed to the enclosing function (a lambda
//    is not a definition, so its calls and lock sites belong to the
//    function that textually contains it) — which is exactly what the
//    reachability rules want, since a lambda handed to the handler pool
//    is written inside the dispatching function;
//  * a local struct's methods are definitions of their own; their
//    ranges are excluded from the enclosing function's call scan.
//
// Per definition the index also records the facts the rules consume:
// the MCB_HOT_PATH / MCB_HOT_PATH_BOUNDARY / MCB_REACTOR_BOUNDARY
// markers (a boundary marker not attached to a definition is R16, same
// contract as the hot-path marker), a `bool` return type (rule R21),
// MCB_REQUIRES / MCB_ACQUIRE capabilities, and the ordered scoped-lock
// acquisition sites in the body (rule R20).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

struct CallSite {
  std::string name;    ///< as written, '::'-joined (receiver dropped)
  std::size_t pos = 0; ///< byte offset of the name in the file
  bool member = false; ///< preceded by '.' or '->'
};

struct LockSite {
  std::string capability;  ///< normalized as written; R20 class-qualifies it
  std::size_t pos = 0;
  std::string guard;       ///< the scoped-lock type spelled at the site
};

struct FunctionDef {
  std::string name;            ///< as written at the definition
  std::string qualified_name;  ///< enclosing scopes + written name
  std::string file;            ///< path relative to the lint root
  std::size_t file_ctx = 0;    ///< index into the driver's context table
  std::size_t name_pos = 0;    ///< byte offset of the name
  std::size_t params_open = 0; ///< offset of the parameter list '('
  std::size_t body_begin = 0;  ///< offset of the body '{'
  std::size_t body_end = 0;    ///< offset of the matching '}'
  bool hot_path = false;
  bool hot_boundary = false;      ///< MCB_HOT_PATH_BOUNDARY
  bool reactor_boundary = false;  ///< MCB_REACTOR_BOUNDARY
  bool returns_bool = false;
  std::vector<std::string> entry_caps;  ///< MCB_REQUIRES[_SHARED] args
  std::vector<std::string> acquire_caps;  ///< MCB_ACQUIRE[_SHARED] args
  std::vector<CallSite> calls;  ///< in body order, nested defs excluded
  std::vector<LockSite> locks;  ///< scoped-lock constructions, in order

  /// Last '::' component of qualified_name.
  std::string_view last_name() const;
};

struct FunctionIndex {
  std::vector<FunctionDef> defs;
  /// last name component -> indices into defs (cross-file).
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_last_name;

  void add_file(const FileContext& ctx, std::size_t file_ctx_id,
                std::vector<Violation>& out);
};

/// Extract every definition in one file. Boundary markers that do not
/// attach to a definition are reported as R16 into `out` (the hot-path
/// pass owns the same check for MCB_HOT_PATH itself).
std::vector<FunctionDef> index_functions(const FileContext& ctx,
                                         std::vector<Violation>& out);

}  // namespace mcb::lint
