// Output back-ends of mcbound_lint (DESIGN.md §12).
//
//   text      one `<file>:<line>: [R<n>] <message>` per line, the
//             format editors and CI logs have consumed since PR 2;
//             findings that carry a call chain (R18/R19/R20) print it
//             as indented numbered sub-lines below the finding;
//   sarif     SARIF 2.1.0 with the full rule catalog (helpUri into
//             docs/lint_rules.md and defaultConfiguration.level per
//             rule), consumed by GitHub code scanning; chained findings
//             emit codeFlows so the viewer can step the chain;
//   markdown  the rule reference rendered from the same catalog
//             (`--rules=markdown` → docs/lint_rules.md, drift-gated in
//             CI so the docs cannot fall behind the analyzer).
#pragma once

#include <ostream>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

void print_text(std::ostream& out, const std::vector<Violation>& violations);

void print_sarif(std::ostream& out, const std::vector<Violation>& violations);

/// Render the rule catalog as the docs/lint_rules.md reference.
void print_rules_markdown(std::ostream& out);

/// Anchor of a rule's section in docs/lint_rules.md ("#r18").
std::string rule_anchor(std::string_view rule_id);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view text);

}  // namespace mcb::lint
