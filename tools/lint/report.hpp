// Output back-ends of mcbound_lint (DESIGN.md §12).
//
//   text   one `<file>:<line>: [R<n>] <message>` per line, the format
//          editors and CI logs have consumed since PR 2;
//   sarif  SARIF 2.1.0 with the full rule catalog, consumed by GitHub
//          code scanning (the lint-sarif CI job uploads it so findings
//          annotate the offending PR lines).
#pragma once

#include <ostream>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

void print_text(std::ostream& out, const std::vector<Violation>& violations);

void print_sarif(std::ostream& out, const std::vector<Violation>& violations);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view text);

}  // namespace mcb::lint
