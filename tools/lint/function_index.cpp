#include "lint/function_index.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace mcb::lint {

namespace {

// Heads that look like `word (...)` but never open a function body.
constexpr std::string_view kNonDefKeywords[] = {
    "if",       "for",      "while",    "switch",   "catch",     "return",
    "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",  "throw",
    "new",      "delete",   "co_await", "co_return","co_yield",  "typeid",
    "static_assert", "assert",  "defined", "case",   "default",   "else",
    "do",       "goto",     "using",    "typedef",  "void",      "int",
    "char",     "bool",     "float",    "double",   "auto",      "unsigned",
    "signed",   "long",     "short",    "const",    "constexpr", "consteval",
    "constinit","static",   "inline",   "extern",   "virtual",   "explicit",
    "operator", "template", "typename", "requires", "try",       "public",
    "private",  "protected"};

bool is_keyword_head(std::string_view name) {
  // Qualified names keep only their last component for the check.
  const std::size_t colon = name.rfind("::");
  const std::string_view last =
      colon == std::string_view::npos ? name : name.substr(colon + 2);
  return std::any_of(std::begin(kNonDefKeywords), std::end(kNonDefKeywords),
                     [&](std::string_view kw) { return kw == last; });
}

// ALL_CAPS names are attribute/marker macros (MCB_CAPABILITY, MCB_HOT_PATH,
// ...), not functions; indexing them as definitions would attach class
// bodies to macro names.
bool is_macro_name(std::string_view name) {
  bool has_alpha = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

// `operator==`, `operator()`, `operator[]`, `operator bool`... — the
// plain identifier walk stops at the symbol characters, so recognize the
// form explicitly and fold it into one name.
std::string operator_name_before(std::string_view code, std::size_t paren) {
  std::size_t end = paren;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t begin = end;
  static constexpr std::string_view kOpChars = "+-*/%^&|~!=<>,";
  while (begin > 0 && kOpChars.find(code[begin - 1]) != std::string_view::npos) {
    --begin;
  }
  // operator() / operator[] spell their symbol as a bracket pair.
  if (begin == end && begin >= 2 &&
      ((code[begin - 2] == '(' && code[begin - 1] == ')') ||
       (code[begin - 2] == '[' && code[begin - 1] == ']'))) {
    begin -= 2;
  }
  if (begin == end) return {};
  std::size_t word_end = begin;
  while (word_end > 0 && code[word_end - 1] == ' ') --word_end;
  std::size_t word_begin = word_end;
  while (word_begin > 0 && is_ident_char(code[word_begin - 1])) --word_begin;
  if (code.substr(word_begin, word_end - word_begin) != "operator") return {};
  // Re-attach any `Class::` qualification in front of `operator`.
  std::size_t qual_begin = word_begin;
  while (qual_begin > 0 && (is_ident_char(code[qual_begin - 1]) ||
                            code[qual_begin - 1] == ':')) {
    --qual_begin;
  }
  std::string name(code.substr(qual_begin, word_end - qual_begin));
  name += std::string(code.substr(begin, end - begin));
  return name;
}

struct ScopeRegion {
  std::string name;        ///< "" for anonymous namespaces
  std::size_t body_begin;  ///< '{'
  std::size_t body_end;    ///< matching '}'
};

// namespace/class/struct regions, for qualifying definitions. `enum
// class` regions are recorded too — harmless, nothing indexes inside.
std::vector<ScopeRegion> scan_scopes(std::string_view code) {
  std::vector<ScopeRegion> regions;
  for (const std::string_view kw : {std::string_view("namespace"),
                                    std::string_view("class"),
                                    std::string_view("struct")}) {
    for (std::size_t pos = find_word(code, kw, 0); pos != std::string_view::npos;
         pos = find_word(code, kw, pos + 1)) {
      std::size_t i = pos + kw.size();
      std::string name;
      // Walk the head: pick up the first real identifier (skipping
      // attribute macros and their arguments), stop at '{' (region),
      // ';' (forward declaration), or anything that rules a scope out
      // ('=' alias, ')' cast, '>' template parameter, ',').
      while (i < code.size()) {
        const std::size_t tok = next_nonspace(code, i);
        if (tok == std::string_view::npos) break;
        const char c = code[tok];
        if (c == '{') {
          const std::size_t close = match_forward(code, tok, '{', '}');
          if (close != std::string_view::npos) {
            regions.push_back({name, tok, close});
          }
          break;
        }
        if (c == ';' || c == '=' || c == ')' || c == '>' || c == ',' || c == '(') break;
        if (c == ':' && tok + 1 < code.size() && code[tok + 1] != ':') {
          // Base-clause: the name is fixed, keep walking to the '{'.
          i = tok + 1;
          continue;
        }
        if (is_ident_char(c)) {
          std::size_t end = tok;
          while (end < code.size() && is_ident_char(code[end])) ++end;
          const std::string_view word = code.substr(tok, end - tok);
          if (word == "final" || word == "alignas") {
            i = end;
            continue;
          }
          if (is_macro_name(word)) {
            // Attribute macro; skip a parenthesized argument if present.
            std::size_t after = next_nonspace(code, end);
            if (after != std::string_view::npos && code[after] == '(') {
              const std::size_t close = match_forward(code, after, '(', ')');
              if (close == std::string_view::npos) break;
              i = close + 1;
            } else {
              i = end;
            }
            continue;
          }
          if (name.empty()) {
            name.assign(word);
            // Nested-namespace shorthand `namespace a::b {`.
            while (end + 1 < code.size() && code[end] == ':' && code[end + 1] == ':') {
              std::size_t comp_end = end + 2;
              while (comp_end < code.size() && is_ident_char(code[comp_end])) ++comp_end;
              name += std::string(code.substr(end, comp_end - end));
              end = comp_end;
            }
            i = end;
            continue;
          }
          // Second identifier without a '{': `struct stat st` — not a scope.
          break;
        }
        i = tok + 1;
      }
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const ScopeRegion& a, const ScopeRegion& b) {
              return a.body_begin < b.body_begin;
            });
  return regions;
}

std::string qualify(const std::vector<ScopeRegion>& scopes, std::size_t pos,
                    const std::string& written) {
  std::string qualified;
  for (const ScopeRegion& scope : scopes) {
    if (pos > scope.body_begin && pos < scope.body_end && !scope.name.empty()) {
      qualified += scope.name;
      qualified += "::";
    }
  }
  std::string_view name = written;
  while (name.size() >= 2 && name.substr(0, 2) == "::") name.remove_prefix(2);
  qualified += std::string(name);
  return qualified;
}

// The scoped-lock vocabulary whose construction sites feed the R20
// lock-order graph (both the annotated wrappers and the std guards, so
// fixtures and pre-migration code index the same way).
constexpr std::string_view kScopedLocks[] = {
    "MutexLock", "ExclusiveLock", "SharedLock",  "lock_guard",
    "unique_lock", "scoped_lock", "shared_lock"};

std::string normalize_capability(std::string_view arg) {
  std::string out;
  for (const char c : arg) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    out += c;
  }
  while (!out.empty() && (out.front() == '&' || out.front() == '*')) {
    out.erase(out.begin());
  }
  if (out.rfind("this->", 0) == 0) out.erase(0, 6);
  return out;
}

void scan_lock_sites(std::string_view code, std::size_t begin, std::size_t end,
                     FunctionDef& def) {
  const std::string_view body = code.substr(0, end);
  for (const std::string_view guard : kScopedLocks) {
    for (std::size_t pos = find_word(body, guard, begin);
         pos != std::string_view::npos; pos = find_word(body, guard, pos + 1)) {
      std::size_t i = pos + guard.size();
      std::size_t tok = next_nonspace(body, i);
      if (tok == std::string_view::npos) continue;
      if (body[tok] == '<') {  // lock_guard<std::mutex>
        const std::size_t close = match_forward(body, tok, '<', '>');
        if (close == std::string_view::npos) continue;
        tok = next_nonspace(body, close + 1);
        if (tok == std::string_view::npos) continue;
      }
      // Variable name of the guard object.
      if (!is_ident_char(body[tok])) continue;
      std::size_t name_end = tok;
      while (name_end < body.size() && is_ident_char(body[name_end])) ++name_end;
      const std::size_t paren = next_nonspace(body, name_end);
      if (paren == std::string_view::npos || body[paren] != '(') continue;
      const std::size_t close = match_forward(body, paren, '(', ')');
      if (close == std::string_view::npos) continue;
      // scoped_lock may take several capabilities at once.
      std::string_view args = body.substr(paren + 1, close - paren - 1);
      std::vector<std::string> caps;
      bool tagged = false;
      std::size_t start = 0;
      while (start <= args.size()) {
        std::size_t comma = args.find(',', start);
        if (comma == std::string_view::npos) comma = args.size();
        std::string cap = normalize_capability(args.substr(start, comma - start));
        // A guard constructed with a std lock tag either acquires nothing
        // (adopt_lock wraps an already-held mutex, defer_lock postpones)
        // or cannot wait (try_to_lock fails instead of blocking) — none
        // of these sites can participate in a lock-order deadlock.
        for (const std::string_view tag :
             {std::string_view("adopt_lock"), std::string_view("defer_lock"),
              std::string_view("try_to_lock")}) {
          if (cap.size() >= tag.size() &&
              cap.compare(cap.size() - tag.size(), tag.size(), tag) == 0) {
            tagged = true;
          }
        }
        if (!cap.empty()) caps.push_back(std::move(cap));
        if (comma == args.size()) break;
        start = comma + 1;
      }
      if (!tagged) {
        for (std::string& cap : caps) {
          def.locks.push_back({std::move(cap), pos, std::string(guard)});
        }
      }
    }
  }
  std::sort(def.locks.begin(), def.locks.end(),
            [](const LockSite& a, const LockSite& b) { return a.pos < b.pos; });
}

void scan_signature_caps(std::string_view code, std::size_t params_close,
                         std::size_t body_open, FunctionDef& def) {
  const std::string_view sig = code.substr(params_close, body_open - params_close);
  struct CapMacro {
    std::string_view word;
    bool entry;  ///< true: held on entry (REQUIRES); false: acquired
  };
  static constexpr CapMacro kMacros[] = {{"MCB_REQUIRES", true},
                                         {"MCB_REQUIRES_SHARED", true},
                                         {"MCB_ACQUIRE", false},
                                         {"MCB_ACQUIRE_SHARED", false}};
  for (const CapMacro& macro : kMacros) {
    for (std::size_t pos = find_word(sig, macro.word, 0);
         pos != std::string_view::npos; pos = find_word(sig, macro.word, pos + 1)) {
      const std::size_t open = next_nonspace(sig, pos + macro.word.size());
      if (open == std::string_view::npos || sig[open] != '(') continue;
      const std::size_t close = match_forward(sig, open, '(', ')');
      if (close == std::string_view::npos) continue;
      std::string_view args = sig.substr(open + 1, close - open - 1);
      std::size_t start = 0;
      while (start <= args.size()) {
        std::size_t comma = args.find(',', start);
        if (comma == std::string_view::npos) comma = args.size();
        const std::string cap = normalize_capability(args.substr(start, comma - start));
        if (!cap.empty()) {
          (macro.entry ? def.entry_caps : def.acquire_caps).push_back(cap);
        }
        if (comma == args.size()) break;
        start = comma + 1;
      }
    }
  }
}

bool word_before_is(std::string_view code, std::size_t pos, std::string_view word) {
  std::size_t end = pos;
  while (end > 0 && std::isspace(static_cast<unsigned char>(code[end - 1])) != 0) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(code[begin - 1])) --begin;
  return code.substr(begin, end - begin) == word;
}

void scan_call_sites(std::string_view code, const FunctionDef& def,
                     const std::vector<std::pair<std::size_t, std::size_t>>& nested,
                     std::vector<CallSite>& out) {
  for (std::size_t i = def.body_begin + 1; i < def.body_end; ++i) {
    if (code[i] != '(') continue;
    const bool in_nested =
        std::any_of(nested.begin(), nested.end(), [&](const auto& range) {
          return i > range.first && i < range.second;
        });
    if (in_nested) continue;
    // Walk back over the (possibly qualified) callee name.
    std::size_t end = i;
    while (end > def.body_begin && code[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > def.body_begin &&
           (is_ident_char(code[begin - 1]) || code[begin - 1] == ':')) {
      --begin;
    }
    if (begin == end) continue;
    std::string name(code.substr(begin, end - begin));
    while (name.size() >= 2 && name.substr(0, 2) == "::") name.erase(0, 2);
    if (name.empty() || name.back() == ':') continue;
    if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) continue;
    if (is_keyword_head(name) || is_macro_name(name)) continue;
    CallSite site;
    site.name = std::move(name);
    site.pos = begin;
    const char before = begin > 0 ? code[begin - 1] : '\0';
    site.member = before == '.' || (before == '>' && begin >= 2 && code[begin - 2] == '-');
    out.push_back(std::move(site));
  }
}

}  // namespace

std::string_view FunctionDef::last_name() const {
  const std::size_t colon = qualified_name.rfind("::");
  return colon == std::string::npos
             ? std::string_view(qualified_name)
             : std::string_view(qualified_name).substr(colon + 2);
}

std::vector<FunctionDef> index_functions(const FileContext& ctx,
                                         std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  std::vector<FunctionDef> defs;

  // ---------------------------------------------------- definition scan
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '(') continue;
    // Walk back over the candidate name ourselves so we keep its exact
    // span (name_before loses the start position).
    std::size_t end = i;
    while (end > 0 && code[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > 0 && (is_ident_char(code[begin - 1]) || code[begin - 1] == ':' ||
                         code[begin - 1] == '~')) {
      --begin;
    }
    std::string name(code.substr(begin, end - begin));
    if (name.empty() || name.back() == ':') {
      std::string op = operator_name_before(code, i);
      if (op.empty()) continue;
      name = std::move(op);
      // Recompute the span start for the operator form: symbols, then
      // the `operator` word, then any qualification.
      begin = end;
      static constexpr std::string_view kOpChars = "+-*/%^&|~!=<>,()[]";
      while (begin > 0 && kOpChars.find(code[begin - 1]) != std::string_view::npos) {
        --begin;
      }
      while (begin > 0 && code[begin - 1] == ' ') --begin;
      while (begin > 0 && (is_ident_char(code[begin - 1]) || code[begin - 1] == ':')) {
        --begin;
      }
    }
    while (name.size() >= 2 && name.substr(0, 2) == "::") {
      name.erase(0, 2);
      begin += 2;
    }
    if (name.empty()) continue;
    if (is_keyword_head(name) || is_macro_name(name)) continue;
    // `std::move(x)` and friends can never head a repo definition.
    if (name.rfind("std::", 0) == 0) continue;
    // A ctor init-list member (`: clock_(&steady_now_ns) {`) looks like a
    // definition whose body is the ctor body. Members are introduced by
    // ',' or a single ':'; a ':' is only definition context when it ends
    // an access specifier (`public:` before an inline method).
    {
      std::size_t prev = begin;
      while (prev > 0 && std::isspace(static_cast<unsigned char>(code[prev - 1])) != 0) {
        --prev;
      }
      if (prev > 0 && code[prev - 1] == ',') continue;
      if (prev > 0 && code[prev - 1] == ':' && (prev < 2 || code[prev - 2] != ':')) {
        std::size_t label_end = prev - 1;
        std::size_t label_begin = label_end;
        while (label_begin > 0 && is_ident_char(code[label_begin - 1])) --label_begin;
        const std::string_view label = code.substr(label_begin, label_end - label_begin);
        if (label != "public" && label != "protected" && label != "private") continue;
      }
    }
    const std::size_t params_close = match_forward(code, i, '(', ')');
    if (params_close == std::string_view::npos) continue;
    const std::size_t body_open = find_body_open(code, params_close + 1);
    if (body_open == std::string_view::npos) continue;
    const std::size_t body_close = match_forward(code, body_open, '{', '}');
    if (body_close == std::string_view::npos) continue;
    FunctionDef def;
    def.name = name;
    def.file = ctx.rel_path;
    def.name_pos = begin;
    def.params_open = i;
    def.body_begin = body_open;
    def.body_end = body_close;
    def.returns_bool = word_before_is(code, def.name_pos, "bool");
    scan_signature_caps(code, params_close, body_open, def);
    defs.push_back(std::move(def));
  }

  // Qualify with enclosing namespace/class scopes.
  const std::vector<ScopeRegion> scopes = scan_scopes(code);
  for (FunctionDef& def : defs) {
    def.qualified_name = qualify(scopes, def.name_pos, def.name);
  }

  // ------------------------------------------------------- marker scan
  std::map<std::size_t, std::size_t> def_by_params;  // params_open -> index
  for (std::size_t d = 0; d < defs.size(); ++d) def_by_params[defs[d].params_open] = d;
  struct Marker {
    std::string_view word;
    bool FunctionDef::* flag;
    bool report_detached;  ///< hot_path pass owns R16 for MCB_HOT_PATH
  };
  static const Marker kMarkers[] = {
      {"MCB_HOT_PATH", &FunctionDef::hot_path, false},
      {"MCB_HOT_PATH_BOUNDARY", &FunctionDef::hot_boundary, true},
      {"MCB_REACTOR_BOUNDARY", &FunctionDef::reactor_boundary, true},
  };
  for (const Marker& marker : kMarkers) {
    for (std::size_t pos = find_word(code, marker.word, 0);
         pos != std::string_view::npos;
         pos = find_word(code, marker.word, pos + 1)) {
      // Skip the #define itself.
      std::size_t bol = pos;
      while (bol > 0 && code[bol - 1] != '\n') --bol;
      const std::size_t first = next_nonspace(code.substr(bol, pos - bol), 0);
      if (first != std::string_view::npos && code[bol + first] == '#') continue;
      const std::size_t paren = code.find('(', pos + marker.word.size());
      const auto it = paren == std::string_view::npos
                          ? def_by_params.end()
                          : def_by_params.find(paren);
      if (it != def_by_params.end()) {
        defs[it->second].*marker.flag = true;
      } else if (marker.report_detached) {
        ctx.add(pos, "R16",
                std::string(marker.word) +
                    " is not attached to a function definition — a boundary "
                    "marker on a declaration cuts nothing; annotate the "
                    "definition instead",
                out);
      }
    }
  }

  // ------------------------------------------- call sites & lock sites
  for (std::size_t d = 0; d < defs.size(); ++d) {
    std::vector<std::pair<std::size_t, std::size_t>> nested;
    for (std::size_t o = 0; o < defs.size(); ++o) {
      if (o == d) continue;
      if (defs[o].body_begin > defs[d].body_begin &&
          defs[o].body_end < defs[d].body_end) {
        nested.emplace_back(defs[o].body_begin, defs[o].body_end);
      }
    }
    scan_call_sites(code, defs[d], nested, defs[d].calls);
    scan_lock_sites(code, defs[d].body_begin + 1, defs[d].body_end, defs[d]);
  }
  return defs;
}

void FunctionIndex::add_file(const FileContext& ctx, std::size_t file_ctx_id,
                             std::vector<Violation>& out) {
  std::vector<FunctionDef> file_defs = index_functions(ctx, out);
  for (FunctionDef& def : file_defs) {
    def.file_ctx = file_ctx_id;
    by_last_name[std::string(def.last_name())].push_back(defs.size());
    defs.push_back(std::move(def));
  }
}

}  // namespace mcb::lint
