#include "lint/diagnostics.hpp"

#include <algorithm>

namespace mcb::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"R1", "no wall-clock or libc randomness in library code"},
      {"R2", "no naked new/delete"},
      {"R3", "no catch-all that swallows the exception"},
      {"R4", "every public header is self-contained"},
      {"R5", "every header uses #pragma once"},
      {"R6", "no raw std synchronization primitives outside util/sync"},
      {"R7", "no std::thread::detach()"},
      {"R8", "memory_order_relaxed carries an adjacent justification comment"},
      {"R9", "no direct stdout/stderr writes outside src/obs and util/cli"},
      {"R10", "no heap allocation inside MCB_HOT_PATH bodies"},
      {"R11", "no throw or blocking call inside MCB_HOT_PATH bodies"},
      {"R12", "no lock acquisition inside MCB_HOT_PATH bodies"},
      {"R13", "module includes respect the layering manifest (layers.txt)"},
      {"R14", "no include cycles under src/"},
      {"R15", "suppressions and baseline entries must be well-formed and used"},
      {"R16", "MCB_HOT_PATH annotates definitions, not declarations"},
      {"R17", "socket syscalls in src/serve stay confined to the reactor file"},
  };
  return kCatalog;
}

bool known_rule(std::string_view rule) {
  const auto& catalog = rule_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const RuleInfo& info) { return info.id == rule; });
}

std::vector<Suppression> parse_suppressions(const SourceView& view) {
  static constexpr std::string_view kMarker = "mcb-lint:";
  static constexpr std::string_view kVerb = "suppress";
  std::vector<Suppression> out;
  const std::string_view comments = view.comments;
  LineIndex lines(view.raw);
  for (std::size_t pos = comments.find(kMarker); pos != std::string_view::npos;
       pos = comments.find(kMarker, pos + kMarker.size())) {
    Suppression s;
    s.line = lines.line_of(pos);
    std::size_t i = next_nonspace(comments, pos + kMarker.size());
    const auto malformed = [&]() {
      s.malformed = true;
      out.push_back(s);
    };
    if (i == std::string_view::npos ||
        comments.compare(i, kVerb.size(), kVerb) != 0) {
      malformed();
      continue;
    }
    i = next_nonspace(comments, i + kVerb.size());
    if (i == std::string_view::npos || comments[i] != '(') {
      malformed();
      continue;
    }
    const std::size_t eol = comments.find('\n', pos);
    const std::size_t colon = comments.find(':', i);
    const std::size_t close = comments.find(')', i);
    // The reason must be present and the whole form must close on the
    // comment's own line; a bare `suppress(R10)` is malformed.
    if (colon == std::string_view::npos || close == std::string_view::npos ||
        colon > close || close > eol) {
      malformed();
      continue;
    }
    std::string rule(comments.substr(i + 1, colon - i - 1));
    std::erase_if(rule, [](char c) { return c == ' ' || c == '\t'; });
    std::string reason(comments.substr(colon + 1, close - colon - 1));
    while (!reason.empty() && (reason.front() == ' ' || reason.front() == '\t')) {
      reason.erase(reason.begin());
    }
    while (!reason.empty() && (reason.back() == ' ' || reason.back() == '\t')) {
      reason.pop_back();
    }
    if (!known_rule(rule) || reason.empty()) {
      malformed();
      continue;
    }
    s.rule = std::move(rule);
    s.reason = std::move(reason);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (nl == std::string_view::npos && line.empty()) break;
    start = end + 1;
    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    BaselineEntry entry;
    entry.line = line_no;
    const std::size_t bar1 = line.find('|');
    const std::size_t bar2 =
        bar1 == std::string_view::npos ? std::string_view::npos : line.find('|', bar1 + 1);
    if (bar2 == std::string_view::npos) {
      entry.malformed = true;
      out.push_back(std::move(entry));
      continue;
    }
    entry.file.assign(line.substr(0, bar1));
    entry.rule.assign(line.substr(bar1 + 1, bar2 - bar1 - 1));
    entry.pattern.assign(line.substr(bar2 + 1));
    if (entry.file.empty() || !known_rule(entry.rule) || entry.pattern.empty()) {
      entry.malformed = true;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

bool baseline_matches(const BaselineEntry& entry, const Violation& v) {
  if (entry.malformed) return false;
  if (entry.file != v.file || entry.rule != v.rule) return false;
  return entry.pattern == "*" || v.message.find(entry.pattern) != std::string::npos;
}

}  // namespace mcb::lint
