#include "lint/diagnostics.hpp"

#include <algorithm>

namespace mcb::lint {

const std::vector<RuleInfo>& rule_catalog() {
  // The suppression-comment marker is spelled in two halves below so the
  // analyzer's own scan of this file never registers a live suppression.
  static const std::vector<RuleInfo> kCatalog = {
      {"R1", "no wall-clock or libc randomness in library code",
       "error",
       "Library code that reads the wall clock or libc randomness is "
       "unreproducible: the same trace classified twice gives two answers. "
       "Clocks and seeds are injected at the edges (CLI, server startup) "
       "and passed down.",
       "double jitter = rand() / double(RAND_MAX);  // in src/ml",
       "Thread a seed or clock through the call site. For genuinely "
       "edge-level code, add an inline suppression naming why the "
       "nondeterminism cannot escape into results."},
      {"R2", "no naked new/delete",
       "error",
       "Raw new/delete leaks on every early return and exception path. "
       "All ownership in this codebase flows through containers and "
       "unique_ptr.",
       "auto* conn = new Connection(fd);",
       "Use std::make_unique / a container. Placement-new in an arena "
       "implementation may be suppressed with a reason naming the arena."},
      {"R3", "no catch-all that swallows the exception",
       "error",
       "A `catch (...)` with an empty body hides the first report of "
       "every bug behind it. Catch-alls must rethrow, log, or convert to "
       "a status the caller can see.",
       "try { step(); } catch (...) {}",
       "Narrow the catch or surface the failure. A deliberate "
       "crash-shield at a thread boundary may be suppressed with a "
       "reason naming where the error is reported instead."},
      {"R4", "every public header is self-contained",
       "error",
       "A header that only compiles when included after its siblings "
       "breaks the next refactor. The analyzer compiles each public "
       "header in isolation with the configured compiler.",
       "// foo.hpp uses std::string but never includes <string>",
       "Add the missing includes to the header itself. There is no "
       "suppression: a header either stands alone or it does not."},
      {"R5", "every header uses #pragma once",
       "error",
       "Mixed guard styles invite copy-paste guard collisions; the "
       "toolchains this repo targets all honor #pragma once.",
       "#ifndef MCB_FOO_HPP_ ... #endif  // classic guard",
       "Replace the guard with #pragma once on the first line."},
      {"R6", "no raw std synchronization primitives outside util/sync",
       "error",
       "std::mutex carries no Clang thread-safety capability; the "
       "mcb::Mutex wrappers (src/util/sync.hpp) do, which is what lets "
       "the tsa CI leg and rule R20 reason about lock order.",
       "std::mutex mu_;  // in src/serve",
       "Use mcb::Mutex / mcb::MutexLock. Only util/sync itself may "
       "touch the std primitives it wraps."},
      {"R7", "no std::thread::detach()",
       "error",
       "A detached thread outlives every sanitizer's idea of the "
       "program and turns shutdown into a race. All threads in this "
       "codebase are joined by an owner.",
       "std::thread(worker).detach();",
       "Keep the handle and join it at shutdown (see ThreadPool). No "
       "suppression is accepted."},
      {"R8", "memory_order_relaxed carries an adjacent justification comment",
       "error",
       "Relaxed atomics are correct only under an argument about which "
       "orderings do not matter; that argument must sit next to the "
       "code, or the next editor strengthens or weakens it blindly.",
       "counter_.fetch_add(1, std::memory_order_relaxed);",
       "Write the one-line argument in a comment on the same or the "
       "previous line (the word `relaxed` plus why reordering is safe)."},
      {"R9", "no direct stdout/stderr writes outside src/obs and util/cli",
       "error",
       "Classifier output is machine-read (JSON, CSV, SARIF); a stray "
       "printf corrupts the stream. All human-facing text goes through "
       "the obs sinks or the CLI layer.",
       "std::cerr << \"debug\\n\";  // in src/ml",
       "Route through mcb::obs logging. Tools under tools/ may write "
       "directly; library code may not."},
      {"R10", "no heap allocation inside MCB_HOT_PATH bodies",
       "error",
       "The serving and inference fast paths are budgeted in "
       "nanoseconds; an allocation is an unbounded detour through the "
       "allocator plus a future cache miss. Hot bodies reuse warm "
       "buffers owned by the caller.",
       "MCB_HOT_PATH void tick() { scratch.push_back(x); }",
       "Hoist the allocation to setup code and reuse the buffer. A "
       "bounded, amortized growth may be excused with "
       "`// mcb-lint: ` + `suppress(R10: <why bounded>)` on the line "
       "above, or on the signature to cover the whole body."},
      {"R11", "no throw or blocking call inside MCB_HOT_PATH bodies",
       "error",
       "A throw unwinds the fast path; a blocking syscall parks the "
       "reactor thread behind kernel scheduling. Hot code reports "
       "failure through return values and never waits.",
       "MCB_HOT_PATH void tick() { if (bad) throw Error{}; }",
       "Return a status instead of throwing; make the syscall "
       "non-blocking and handle EAGAIN. Suppress only for calls proven "
       "non-blocking on this platform, with the proof in the reason."},
      {"R12", "no lock acquisition inside MCB_HOT_PATH bodies",
       "error",
       "A contended mutex turns one slow reader into a convoy of "
       "stalled hot iterations. Synchronization moves to the caller, to "
       "sharding, or to lock-free handoff.",
       "MCB_HOT_PATH void tick() { MutexLock l(mu_); }",
       "Shift the lock to the enqueue/drain edges (see the completion "
       "queue). Suppress only with a measured argument that the lock is "
       "uncontended and bounded."},
      {"R13", "module includes respect the layering manifest (layers.txt)",
       "error",
       "The layer order (util < data/text/ml/obs < roofline < "
       "core/workload/sched < serve) is what keeps the classifier "
       "embeddable without the server. An upward include is an "
       "architectural regression even when it compiles.",
       "#include \"serve/server.hpp\"  // from src/ml",
       "Invert the dependency (callback, interface in a lower layer) or "
       "move the code. Transitional violations go in "
       "tools/lint/baseline.txt, which must only shrink."},
      {"R14", "no include cycles under src/",
       "error",
       "An include cycle means neither file can be understood, tested, "
       "or replaced alone; builds get order-dependent.",
       "a.hpp includes b.hpp includes a.hpp",
       "Break the cycle with a forward declaration or by extracting the "
       "shared piece downward. Baseline-only, as for R13."},
      {"R15", "suppressions and baseline entries must be well-formed and used",
       "error",
       "A suppression that no longer matches anything is a stale "
       "license to regress; a malformed one silently suppresses "
       "nothing. Hygiene violations keep the exception ledger honest.",
       "// mcb-lint comment with suppress(R10) and no reason",
       "Delete stale suppressions and baseline lines; give every "
       "remaining one a reason. There is no suppression for R15."},
      {"R16", "annotation markers attach to definitions, not declarations",
       "error",
       "MCB_HOT_PATH and the boundary markers assert facts about a "
       "*body*; on a declaration they guard nothing while looking like "
       "they do, which is worse than their absence.",
       "MCB_HOT_PATH void tick();  // header declaration",
       "Move the marker to the definition in the .cpp file."},
      {"R17", "socket syscalls in src/serve stay confined to the reactor file",
       "error",
       "Exactly one file owns the fd lifecycle and epoll registration; "
       "a socket call elsewhere bypasses connection accounting and the "
       "graceful-drain logic.",
       "::send(fd, buf, n, 0);  // in http.cpp",
       "Route through the server's connection helpers. New transport "
       "code belongs in the reactor file."},
      {"R18", "no hot-path discipline violation reachable from an MCB_HOT_PATH root",
       "error",
       "R10–R12 freeze the *direct* body of a hot function, but an "
       "allocation two calls down stalls the fast path just as surely. "
       "R18 walks the cross-TU call graph from every MCB_HOT_PATH root "
       "and reports banned constructs in any function reachable from "
       "one, with the full root-to-leaf call chain.",
       "MCB_HOT_PATH void tick() { helper(); }\n"
       "void helper() { buf.push_back(x); }  // R18: tick -> helper",
       "Fix the callee, or — where the call provably leaves the fast "
       "path (handoff, cold error branch) — annotate the callee "
       "MCB_HOT_PATH_BOUNDARY with an adjacent comment saying why "
       "traversal may stop there. Leaf-site suppressions use "
       "`// mcb-lint: ` + `suppress(R18: <reason>)`."},
      {"R19", "no blocking primitive reachable from the reactor roots",
       "error",
       "The epoll reactor thread serves every connection; one blocking "
       "call anywhere under reactor_tick/handle_event stalls them all. "
       "R19 walks the call graph from the reactor roots and reports "
       "mutex waits, condvar waits, blocking syscalls and thread-pool "
       "parking, with the full call chain.",
       "void handle_event(..) { drain(); }\n"
       "void drain() { MutexLock l(mu_); }  // R19: handle_event -> drain",
       "Make the callee non-blocking, or annotate the function where "
       "work provably leaves the reactor thread (e.g. the pool side of "
       "a completion queue) MCB_REACTOR_BOUNDARY with a comment naming "
       "the handoff. Leaf-site suppressions use "
       "`// mcb-lint: ` + `suppress(R19: <reason>)` — e.g. for a mutex "
       "that is only ever touched by the reactor thread itself."},
      {"R20", "the static lock-order graph is cycle-free",
       "error",
       "Two threads acquiring the same two mutexes in opposite orders "
       "is a deadlock waiting for load. R20 builds a lock-order graph "
       "from scoped-lock sites, MCB_ACQUIRE/MCB_REQUIRES annotations "
       "and call edges, and reports every cycle with two witness "
       "chains — one per conflicting order.",
       "void a() { MutexLock l(mu1_); MutexLock m(mu2_); }\n"
       "void b() { MutexLock l(mu2_); MutexLock m(mu1_); }",
       "Pick one global order and restructure the second site (release "
       "before acquiring, or merge the critical sections). False "
       "cycles from same-named mutexes in unrelated classes do not "
       "occur — capabilities are class-qualified; a genuinely "
       "impossible interleaving goes in tools/lint/baseline.txt."},
      {"R21", "bool/status results of repo functions must not be discarded",
       "error",
       "`model.load(path);` that quietly fails leaves the server "
       "classifying with a stale model. Every repo function returning "
       "bool is a status; a statement-position call that drops it "
       "discards a failure.",
       "index.load(path);  // R21: result discarded",
       "Check the result, or make the intent explicit with "
       "`(void) index.load(path);` plus a comment. Inline suppression: "
       "`// mcb-lint: ` + `suppress(R21: <why failure is impossible>)`."},
      {"R22", "signal machinery and handler bodies stay async-signal-safe",
       "error",
       "The sampling profiler (src/obs/perf) is the only code allowed to "
       "install signal dispositions, arm profiling timers or walk stacks "
       "— a sigaction() elsewhere silently fights it for SIGPROF. And a "
       "function marked MCB_SIGNAL_HANDLER runs in async-signal context, "
       "where POSIX permits almost nothing: allocation deadlocks against "
       "the allocator lock the interrupted thread may hold, stdio takes "
       "libc-internal locks, dladdr takes the loader lock, throwing "
       "across a signal frame is undefined. Handler bodies may touch "
       "atomics, fixed storage, and backtrace() — which the profiler "
       "warms before arming the timer, making its lazy initialization "
       "safe by construction.",
       "MCB_SIGNAL_HANDLER void on_prof(int) {\n"
       "  names = backtrace_symbols(frames, n);  // mallocs in a handler\n"
       "}",
       "Move signal machinery into src/obs/perf; move allocation, stdio, "
       "locks and symbolization out of the handler into the post-capture "
       "aggregation path. A construct proven safe on this platform may "
       "be excused with `// mcb-lint: ` + `suppress(R22: <proof>)` on "
       "the annotated signature to cover the body."},
  };
  return kCatalog;
}

bool known_rule(std::string_view rule) {
  const auto& catalog = rule_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const RuleInfo& info) { return info.id == rule; });
}

std::vector<Suppression> parse_suppressions(const SourceView& view) {
  static constexpr std::string_view kMarker = "mcb-lint:";
  static constexpr std::string_view kVerb = "suppress";
  std::vector<Suppression> out;
  const std::string_view comments = view.comments;
  LineIndex lines(view.raw);
  for (std::size_t pos = comments.find(kMarker); pos != std::string_view::npos;
       pos = comments.find(kMarker, pos + kMarker.size())) {
    Suppression s;
    s.line = lines.line_of(pos);
    std::size_t i = next_nonspace(comments, pos + kMarker.size());
    const auto malformed = [&]() {
      s.malformed = true;
      out.push_back(s);
    };
    if (i == std::string_view::npos ||
        comments.compare(i, kVerb.size(), kVerb) != 0) {
      malformed();
      continue;
    }
    i = next_nonspace(comments, i + kVerb.size());
    if (i == std::string_view::npos || comments[i] != '(') {
      malformed();
      continue;
    }
    const std::size_t eol = comments.find('\n', pos);
    const std::size_t colon = comments.find(':', i);
    const std::size_t close = comments.find(')', i);
    // The reason must be present and the whole form must close on the
    // comment's own line; a bare `suppress(R10)` is malformed.
    if (colon == std::string_view::npos || close == std::string_view::npos ||
        colon > close || close > eol) {
      malformed();
      continue;
    }
    std::string rule(comments.substr(i + 1, colon - i - 1));
    std::erase_if(rule, [](char c) { return c == ' ' || c == '\t'; });
    std::string reason(comments.substr(colon + 1, close - colon - 1));
    while (!reason.empty() && (reason.front() == ' ' || reason.front() == '\t')) {
      reason.erase(reason.begin());
    }
    while (!reason.empty() && (reason.back() == ' ' || reason.back() == '\t')) {
      reason.pop_back();
    }
    if (!known_rule(rule) || reason.empty()) {
      malformed();
      continue;
    }
    s.rule = std::move(rule);
    s.reason = std::move(reason);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    if (nl == std::string_view::npos && line.empty()) break;
    start = end + 1;
    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    BaselineEntry entry;
    entry.line = line_no;
    const std::size_t bar1 = line.find('|');
    const std::size_t bar2 =
        bar1 == std::string_view::npos ? std::string_view::npos : line.find('|', bar1 + 1);
    if (bar2 == std::string_view::npos) {
      entry.malformed = true;
      out.push_back(std::move(entry));
      continue;
    }
    entry.file.assign(line.substr(0, bar1));
    entry.rule.assign(line.substr(bar1 + 1, bar2 - bar1 - 1));
    entry.pattern.assign(line.substr(bar2 + 1));
    if (entry.file.empty() || !known_rule(entry.rule) || entry.pattern.empty()) {
      entry.malformed = true;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

bool baseline_matches(const BaselineEntry& entry, const Violation& v) {
  if (entry.malformed) return false;
  if (entry.file != v.file || entry.rule != v.rule) return false;
  return entry.pattern == "*" || v.message.find(entry.pattern) != std::string::npos;
}

}  // namespace mcb::lint
