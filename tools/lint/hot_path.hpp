// Hot-path discipline pass (DESIGN.md §12, rules R10–R12).
//
// A function definition prefixed with the MCB_HOT_PATH marker
// (src/util/annotations.hpp) declares that its body is on the serving
// or inference fast path and must stay allocation-free (R10),
// non-throwing and non-blocking (R11), and lock-free (R12). The pass
// finds each marker in the code view, brace-matches the function body
// (parameter list → optional qualifiers / ctor-init list → `{`), and
// runs token scans over the extracted region. The checks are lexical
// and intraprocedural: a callee that allocates is not seen here — the
// point is to freeze the *direct* shape of the hot loops so a refactor
// cannot slip a malloc or a mutex into them unnoticed.
//
// A marker followed by `;` before any `{` annotates a declaration the
// pass cannot check; that is reported as R16 so an annotation can never
// silently stop guarding anything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace mcb::lint {

struct HotRegion {
  std::string function;     ///< best-effort display name
  std::size_t anno_pos = 0; ///< byte offset of the MCB_HOT_PATH token
  std::size_t body_begin = 0;  ///< offset of the opening '{'
  std::size_t body_end = 0;    ///< offset of the matching '}'
};

/// One construct the hot-path discipline bans inside an annotated body.
struct TokenRule {
  std::string_view word;
  const char* rule;  ///< "R10" | "R11" | "R12"
  const char* what;
  bool member_only;  ///< require a preceding '.' or '->'
  bool call_only;    ///< require a following '('
};

struct TokenHit {
  const TokenRule* rule = nullptr;
  std::size_t pos = 0;  ///< offset within the scanned body
};

/// Scan one brace-delimited body (code view) for every R10/R11/R12
/// token. Shared between the intraprocedural pass here and the
/// transitive pass (R18), so both see the exact same construct set.
std::vector<TokenHit> scan_hot_tokens(std::string_view body);

/// Locate every function *definition* annotated with `marker`; markers
/// on declarations or with unparseable bodies emit R16. Markers on
/// preprocessor lines (the #define itself) are ignored. Shared by the
/// hot-path pass (MCB_HOT_PATH) and the signal-safety pass
/// (MCB_SIGNAL_HANDLER), so both markers attach with identical grammar.
std::vector<HotRegion> find_marked_regions(const FileContext& ctx,
                                           std::string_view marker,
                                           std::vector<Violation>& out);

/// find_marked_regions for the MCB_HOT_PATH marker.
std::vector<HotRegion> find_hot_regions(const FileContext& ctx,
                                        std::vector<Violation>& out);

/// Run R10/R11/R12 over every hot region and widen any suppression
/// written on the annotated signature (between the marker and the
/// opening brace) to cover the whole body. Returns the region count.
std::size_t check_hot_paths(FileContext& ctx, std::vector<Violation>& out);

}  // namespace mcb::lint
