#include "lint/text_rules.hpp"

#include <string>
#include <string_view>

namespace mcb::lint {

// ------------------------------------------------------------------- R1
void check_no_wallclock_or_libc_rand(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  static constexpr std::string_view kBanned[] = {"rand", "srand", "rand_r",
                                                 "random_shuffle", "clock"};
  for (const auto word : kBanned) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (!call_like(code, pos, word.size())) continue;
      ctx.add(pos, "R1",
              "libc `" + std::string(word) +
                  "()` in library code — thread an explicit mcb::Rng / seed instead",
              out);
    }
  }
  // `time(...)` — match bare or std:: qualified, not member calls.
  for (std::size_t pos = find_word(code, "time", 0); pos != std::string_view::npos;
       pos = find_word(code, "time", pos + 1)) {
    if (pos + 4 >= code.size() || code[pos + 4] != '(') continue;
    const char before = pos > 0 ? code[pos - 1] : '\0';
    if (before == '.' || before == '>') continue;
    ctx.add(pos, "R1",
            "wall-clock `time()` in library code — accept a TimePoint parameter instead",
            out);
  }
}

// ------------------------------------------------------------------- R2
void check_no_naked_new_delete(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  for (std::size_t pos = find_word(code, "new", 0); pos != std::string_view::npos;
       pos = find_word(code, "new", pos + 1)) {
    ctx.add(pos, "R2", "naked `new` — use containers, std::make_unique or std::make_shared",
            out);
  }
  for (std::size_t pos = find_word(code, "delete", 0); pos != std::string_view::npos;
       pos = find_word(code, "delete", pos + 1)) {
    if (prev_nonspace(code, pos) == '=') continue;  // `= delete;` declaration
    ctx.add(pos, "R2", "naked `delete` — ownership must be RAII-managed", out);
  }
}

// ------------------------------------------------------------------- R3
void check_no_swallowing_catch_all(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  for (std::size_t pos = code.find("catch", 0); pos != std::string_view::npos;
       pos = code.find("catch", pos + 5)) {
    if (pos > 0 && is_ident_char(code[pos - 1])) continue;
    const std::size_t open = next_nonspace(code, pos + 5);
    if (open == std::string_view::npos || code[open] != '(') continue;
    const std::size_t close = code.find(')', open);
    if (close == std::string_view::npos) continue;
    std::string inside(code.substr(open + 1, close - open - 1));
    std::erase_if(inside, [](char c) { return c == ' ' || c == '\t' || c == '\n'; });
    if (inside != "...") continue;  // named handler: fine
    const std::size_t brace = code.find('{', close);
    if (brace == std::string_view::npos) continue;
    int depth = 0;
    std::size_t end = brace;
    for (; end < code.size(); ++end) {
      if (code[end] == '{') ++depth;
      if (code[end] == '}' && --depth == 0) break;
    }
    const std::string_view body = code.substr(brace, end - brace);
    static constexpr std::string_view kEvidence[] = {
        "throw",  "rethrow",  "current_exception", "log",
        "cerr",   "fprintf",  "perror",            "abort",
        "assert", "terminate"};
    bool handled = false;
    for (const auto token : kEvidence) {
      if (find_word(body, token, 0) != std::string_view::npos) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      ctx.add(pos, "R3", "`catch (...)` swallows the exception — rethrow, capture or log it",
              out);
    }
  }
}

// ------------------------------------------------------------------- R6
void check_no_raw_std_sync(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  static constexpr std::string_view kBanned[] = {
      "mutex",       "shared_mutex",          "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "lock_guard",
      "unique_lock", "scoped_lock",           "shared_lock",
      "condition_variable", "condition_variable_any"};
  for (const auto word : kBanned) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (pos < 5 || code.substr(pos - 5, 5) != "std::") continue;
      ctx.add(pos, "R6",
              "raw `std::" + std::string(word) +
                  "` — lock through the annotated wrappers in util/sync.hpp "
                  "so the thread-safety analysis sees it",
              out);
    }
  }
}

// ------------------------------------------------------------------- R7
void check_no_thread_detach(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  for (std::size_t pos = find_word(code, "detach", 0); pos != std::string_view::npos;
       pos = find_word(code, "detach", pos + 1)) {
    const char before = prev_nonspace(code, pos);
    if (before != '.' && before != '>') continue;  // member call only
    if (!call_like(code, pos, 6)) continue;
    ctx.add(pos, "R7", "`detach()` orphans the thread past shutdown — join it instead", out);
  }
}

// ------------------------------------------------------------------- R8
// The construct is matched in the code view (a string literal spelling
// `memory_order_relaxed` is not an atomic operation) and the
// justification in the comments view (a string literal containing
// `relaxed:` is not a justification).
void check_relaxed_order_justified(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  const std::string_view comments = ctx.view.comments;
  for (std::size_t pos = find_word(code, "memory_order_relaxed", 0);
       pos != std::string_view::npos;
       pos = find_word(code, "memory_order_relaxed", pos + 1)) {
    const std::size_t line = ctx.lines.line_of(pos);
    bool justified = false;
    for (std::size_t back = 0; back <= 2 && back < line; ++back) {
      const std::string_view comment_line = ctx.lines.line(comments, line - back);
      if (comment_line.find("relaxed:") != std::string_view::npos) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      ctx.add(pos, "R8",
              "memory_order_relaxed without an adjacent `// relaxed: <why>` justification",
              out);
    }
  }
}

// ------------------------------------------------------------------- R9
void check_no_direct_stream_writes(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  static constexpr std::string_view kStreams[] = {"cout", "cerr", "clog"};
  for (const auto word : kStreams) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (pos < 5 || code.substr(pos - 5, 5) != "std::") continue;
      ctx.add(pos, "R9",
              "direct `std::" + std::string(word) +
                  "` write in library code — log through mcb::log instead",
              out);
    }
  }
  static constexpr std::string_view kBannedCalls[] = {
      "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "fputc",
      "putchar", "perror"};
  for (const auto word : kBannedCalls) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (!call_like(code, pos, word.size())) continue;
      ctx.add(pos, "R9",
              "`" + std::string(word) +
                  "()` writes to a process stream from library code — log "
                  "through mcb::log instead",
              out);
    }
  }
}

// ------------------------------------------------------------------- R5
void check_pragma_once(const FileContext& ctx, std::vector<Violation>& out) {
  if (ctx.view.code.find("#pragma once") == std::string::npos) {
    out.push_back({ctx.rel_path, 1, "R5", "header missing `#pragma once`"});
  }
}

// ------------------------------------------------------------------ R17
// The serving module's concurrency story depends on every socket syscall
// living in the reactor file (src/serve/server.cpp), where non-blocking
// setup, partial-I/O resumption and timer-wheel deadlines are enforced
// in one place. A recv()/send() creeping into a handler or the HTTP
// layer reintroduces blocking I/O the reactor cannot see. The driver
// applies this only to src/serve files other than the designated
// reactor file.
void check_reactor_syscall_confinement(const FileContext& ctx, std::vector<Violation>& out) {
  const std::string_view code = ctx.view.code;
  static constexpr std::string_view kSyscalls[] = {
      "accept", "accept4", "recv",   "recvfrom", "recvmsg",
      "send",   "sendto",  "sendmsg", "connect",  "listen",
      "bind",   "poll",    "select",  "epoll_wait", "epoll_ctl",
      "socket", "shutdown"};
  for (const auto word : kSyscalls) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (!call_like(code, pos, word.size())) continue;
      const char before = prev_nonspace(code, pos);
      if (before == '.' || before == '>') continue;  // member call, not a syscall
      ctx.add(pos, "R17",
              "socket syscall `" + std::string(word) +
                  "()` outside the reactor — all socket I/O in src/serve lives in "
                  "server.cpp so blocking behavior stays impossible by construction",
              out);
    }
  }
}

}  // namespace mcb::lint
