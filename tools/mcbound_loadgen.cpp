// mcbound_loadgen — self-contained wrk-style HTTP load generator for the
// epoll serving core (DESIGN.md §6). One epoll loop drives a target
// number of concurrent non-blocking connections against a local
// mcbound serve instance, with keep-alive reuse and optional HTTP/1.1
// pipelining, and reports throughput, latency quantiles (p50/p90/p99)
// and an exact accounting of every request outcome (2xx, 503 shed, 408
// timeout, other status, dropped-by-transport) so the CI gate can prove
// the server sheds explicitly instead of silently dropping work.
//
//   mcbound_loadgen --port P [--connections N] [--duration-s S]
//                   [--pipeline D] [--keepalive true|false]
//                   [--path /healthz] [--think-ms MS]
//                   [--json BENCH_serve.json] [--metric-prefix pipe_]
//                   [--scrape-url http://127.0.0.1:P/metrics?format=prometheus]
//
// --think-ms paces each connection (wait after a full round of
// responses before sending the next) so N idle-ish keep-alive
// connections can be held open without saturating a small runner.
// --json writes/merges an mcb-bench-v1 artifact for tools/bench_check;
// --metric-prefix lets a second leg (e.g. pipelined) merge its metrics
// into the same artifact under distinct names.
// --scrape-url pulls the server's Prometheus exposition before and
// after the run and merges hardware-counter deltas (per-stage cycles,
// LLC miss bytes, perf availability — DESIGN.md §14) into the same
// artifact, so BENCH_serve.json carries hardware telemetry on runners
// whose perf_event paranoia level permits it and an explicit
// perf_available=0 marker on runners whose level does not.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using mcb::CliFlags;
using mcb::Histogram;
using mcb::Json;

std::uint64_t now_us(Clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch)
          .count());
}

/// One load connection. States: connecting (EPOLLOUT pending), active
/// (requests in flight), thinking (parked until next_send_us). A
/// transport error or server close mid-flight counts every outstanding
/// request as dropped — the metric the CI gate pins to zero.
struct LoadConn {
  int fd = -1;
  bool connecting = false;
  bool want_write = false;
  std::string inbuf;
  std::string outbuf;   ///< unsent request bytes
  std::size_t out_off = 0;
  std::deque<std::uint64_t> sent_at_us;  ///< per in-flight request (FIFO)
  std::uint64_t next_send_us = 0;        ///< think-time pacing deadline
  bool parked = false;                   ///< waiting on next_send_us
};

struct Totals {
  std::uint64_t sent = 0;
  std::uint64_t ok_2xx = 0;
  std::uint64_t shed_503 = 0;
  std::uint64_t timeout_408 = 0;
  std::uint64_t other_status = 0;
  std::uint64_t dropped = 0;       ///< in-flight when the transport died
  std::uint64_t conn_errors = 0;   ///< failed connect() attempts
  std::uint64_t reconnects = 0;
};

struct Options {
  int port = 0;
  std::size_t connections = 100;
  double duration_s = 10.0;
  std::size_t pipeline = 1;
  bool keepalive = true;
  std::string path = "/healthz";
  std::uint64_t think_ms = 0;
};

class LoadGen {
 public:
  explicit LoadGen(const Options& options)
      : options_(options), epoch_(Clock::now()), latency_log10_us_(0.0, 8.0, 64) {}

  bool run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      std::perror("epoll_create1");
      return false;
    }
    conns_.resize(options_.connections);

    const std::uint64_t deadline_us =
        static_cast<std::uint64_t>(options_.duration_s * 1e6);
    std::vector<epoll_event> events(512);

    std::size_t next_to_open = 0;
    while (now_us(epoch_) < deadline_us) {
      // Ramp connects in bounded batches so 10k SYNs do not land on the
      // listener in one burst; refill as earlier connects resolve.
      while (next_to_open < conns_.size() && pending_connects_ < kConnectBatch) {
        open_connection(conns_[next_to_open]);
        ++next_to_open;
      }
      unpark_due();
      const int timeout_ms = next_timeout_ms(deadline_us);
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::perror("epoll_wait");
        break;
      }
      for (int i = 0; i < n; ++i) {
        auto* conn = static_cast<LoadConn*>(events[i].data.ptr);
        if (conn->fd < 0) continue;  // closed earlier in this batch
        handle_event(*conn, events[i].events);
      }
    }
    finished_us_ = now_us(epoch_);
    for (LoadConn& conn : conns_) {
      if (conn.fd >= 0) {
        // Graceful end of test: in-flight requests at shutdown are not
        // drops — the server never got a chance to answer them.
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    ::close(epoll_fd_);
    return true;
  }

  const Totals& totals() const { return totals_; }
  std::size_t peak_connections() const { return peak_established_; }
  double duration_s() const { return static_cast<double>(finished_us_) / 1e6; }

  std::uint64_t responses() const {
    return totals_.ok_2xx + totals_.shed_503 + totals_.timeout_408 +
           totals_.other_status;
  }

  double quantile_ms(double q) const {
    return std::pow(10.0, latency_log10_us_.quantile(q)) / 1000.0;
  }

  /// Fraction of finished requests with an explicit, expected outcome
  /// (2xx, 503 shed, 408 deadline). Anything else — unexplained status
  /// or a request that died with its transport — is unaccounted.
  double accounted_fraction() const {
    const std::uint64_t finished = responses() + totals_.dropped;
    if (finished == 0) return 1.0;
    const std::uint64_t accounted =
        totals_.ok_2xx + totals_.shed_503 + totals_.timeout_408;
    return static_cast<double>(accounted) / static_cast<double>(finished);
  }

  double ok_fraction() const {
    const std::uint64_t finished = responses() + totals_.dropped;
    if (finished == 0) return 1.0;
    return static_cast<double>(totals_.ok_2xx) / static_cast<double>(finished);
  }

 private:
  static constexpr std::size_t kConnectBatch = 512;

  void open_connection(LoadConn& conn) {
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) {
      ++totals_.conn_errors;
      return;
    }
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    const int rc = ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ++totals_.conn_errors;
      ::close(conn.fd);
      conn.fd = -1;
      return;
    }
    conn.connecting = rc != 0;
    conn.want_write = true;  // EPOLLOUT signals connect completion
    conn.inbuf.clear();
    conn.outbuf.clear();
    conn.out_off = 0;
    conn.sent_at_us.clear();
    conn.parked = false;
    if (conn.connecting) ++pending_connects_;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP;
    ev.data.ptr = &conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev);
    if (!conn.connecting) on_connected(conn);
  }

  void on_connected(LoadConn& conn) {
    ++established_;
    peak_established_ = std::max(peak_established_, established_);
    queue_requests(conn);
  }

  /// Build a full pipeline round of requests into the output buffer.
  void queue_requests(LoadConn& conn) {
    const std::uint64_t now = now_us(epoch_);
    for (std::size_t i = 0; i < options_.pipeline; ++i) {
      conn.outbuf += "GET ";
      conn.outbuf += options_.path;
      conn.outbuf += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
      conn.outbuf += options_.keepalive ? "Connection: keep-alive\r\n\r\n"
                                        : "Connection: close\r\n\r\n";
      conn.sent_at_us.push_back(now);
      ++totals_.sent;
      if (!options_.keepalive) break;  // one request per connection
    }
    flush(conn);
  }

  void handle_event(LoadConn& conn, std::uint32_t events) {
    if (conn.connecting) {
      --pending_connects_;
      conn.connecting = false;
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if ((events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
        ++totals_.conn_errors;
        reset_connection(conn, /*established=*/false);
        return;
      }
      on_connected(conn);
      if (conn.fd < 0) return;
    }
    if ((events & EPOLLERR) != 0) {
      drop_in_flight(conn);
      reset_connection(conn, /*established=*/true);
      return;
    }
    if ((events & EPOLLOUT) != 0) flush(conn);
    if (conn.fd < 0) return;
    if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) read_responses(conn);
  }

  void flush(LoadConn& conn) {
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          set_want_write(conn, true);
          return;
        }
        drop_in_flight(conn);
        reset_connection(conn, /*established=*/true);
        return;
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    set_want_write(conn, false);
  }

  void read_responses(LoadConn& conn) {
    char buffer[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop_in_flight(conn);
        reset_connection(conn, /*established=*/true);
        return;
      }
      if (n == 0) {  // server closed (Connection: close, shed, or drain)
        conn.inbuf.append(buffer, 0);
        consume_responses(conn);
        drop_in_flight(conn);
        reset_connection(conn, /*established=*/true);
        return;
      }
      conn.inbuf.append(buffer, static_cast<std::size_t>(n));
    }
    consume_responses(conn);
    if (conn.fd >= 0 && conn.sent_at_us.empty() && conn.outbuf.empty()) {
      schedule_next_round(conn);
    }
  }

  /// Pop every complete response off the buffer, classify its status,
  /// and record first-byte-to-full-response latency for its request.
  void consume_responses(LoadConn& conn) {
    for (;;) {
      const std::size_t head_end = conn.inbuf.find("\r\n\r\n");
      if (head_end == std::string::npos) return;
      const std::string_view head = std::string_view(conn.inbuf).substr(0, head_end);
      std::size_t body_len = 0;
      const std::size_t cl = mcb::ifind(head, "content-length:");
      if (cl != std::string_view::npos) {
        std::size_t value_end = head.find("\r\n", cl);
        if (value_end == std::string_view::npos) value_end = head.size();
        std::uint64_t parsed = 0;
        if (mcb::parse_u64(mcb::trim(head.substr(cl + 15, value_end - cl - 15)), parsed)) {
          body_len = static_cast<std::size_t>(parsed);
        }
      }
      const std::size_t total = head_end + 4 + body_len;
      if (conn.inbuf.size() < total) return;

      int status = 0;
      const std::size_t sp = head.find(' ');
      if (sp != std::string_view::npos) {
        std::int64_t parsed = 0;
        std::string_view code = head.substr(sp + 1);
        const std::size_t code_end = code.find(' ');
        if (code_end != std::string_view::npos) code = code.substr(0, code_end);
        if (mcb::parse_i64(code, parsed)) status = static_cast<int>(parsed);
      }
      record_status(status);
      if (!conn.sent_at_us.empty()) {
        const std::uint64_t elapsed = now_us(epoch_) - conn.sent_at_us.front();
        conn.sent_at_us.pop_front();
        latency_log10_us_.add(std::log10(std::max<double>(elapsed, 1.0)));
      }
      conn.inbuf.erase(0, total);
    }
  }

  void record_status(int status) {
    if (status >= 200 && status < 300) {
      ++totals_.ok_2xx;
    } else if (status == 503) {
      ++totals_.shed_503;
    } else if (status == 408) {
      ++totals_.timeout_408;
    } else {
      ++totals_.other_status;
    }
  }

  void schedule_next_round(LoadConn& conn) {
    if (!options_.keepalive) return;  // server closes; reconnect path refills
    if (options_.think_ms == 0) {
      queue_requests(conn);
      return;
    }
    conn.parked = true;
    conn.next_send_us = now_us(epoch_) + options_.think_ms * 1000;
    parked_.push_back(&conn);  // constant think time => FIFO order holds
  }

  void unpark_due() {
    const std::uint64_t now = now_us(epoch_);
    while (!parked_.empty() && parked_.front()->next_send_us <= now) {
      LoadConn* conn = parked_.front();
      parked_.pop_front();
      if (!conn->parked || conn->fd < 0) continue;  // reset while parked
      conn->parked = false;
      queue_requests(*conn);
    }
  }

  int next_timeout_ms(std::uint64_t deadline_us) const {
    const std::uint64_t now = now_us(epoch_);
    std::uint64_t next = deadline_us;
    if (!parked_.empty()) next = std::min(next, parked_.front()->next_send_us);
    if (next <= now) return 0;
    return static_cast<int>(std::min<std::uint64_t>((next - now) / 1000 + 1, 100));
  }

  void drop_in_flight(LoadConn& conn) {
    totals_.dropped += conn.sent_at_us.size();
    conn.sent_at_us.clear();
  }

  void reset_connection(LoadConn& conn, bool established) {
    if (conn.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      ::close(conn.fd);
      conn.fd = -1;
    }
    if (established && established_ > 0) --established_;
    conn.parked = false;
    // Keep the target concurrency: reopen immediately (the non-keepalive
    // mode lives off this path — every response closes the connection).
    ++totals_.reconnects;
    open_connection(conn);
  }

  void set_want_write(LoadConn& conn, bool want) {
    if (conn.want_write == want) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | (want ? EPOLLOUT : 0U);
    ev.data.ptr = &conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  Options options_;
  Clock::time_point epoch_;
  int epoll_fd_ = -1;
  std::vector<LoadConn> conns_;
  std::deque<LoadConn*> parked_;
  std::size_t pending_connects_ = 0;
  std::size_t established_ = 0;
  std::size_t peak_established_ = 0;
  std::uint64_t finished_us_ = 0;
  Totals totals_;
  Histogram latency_log10_us_;
};

// ---------------------------------------------------------- --scrape-url
//
// A deliberately small blocking HTTP client, separate from the epoll
// load loop: scrapes happen before and after the run, never during it,
// so one synchronous GET per scrape is the simplest correct tool.

struct ScrapeTarget {
  std::string host;  ///< dotted-quad only (localhost is rewritten)
  int port = 0;
  std::string path;
};

/// Accepts http://HOST:PORT/PATH with a numeric IPv4 host (or the
/// literal "localhost"). No DNS: the scrape target is the server this
/// tool is already load-testing over loopback.
bool parse_scrape_url(const std::string& url, ScrapeTarget& out) {
  constexpr std::string_view kScheme = "http://";
  std::string_view rest(url);
  if (rest.substr(0, kScheme.size()) != kScheme) return false;
  rest.remove_prefix(kScheme.size());
  const std::size_t slash = rest.find('/');
  const std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  out.path = slash == std::string_view::npos
                 ? std::string("/")
                 : std::string(rest.substr(slash));
  const std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) return false;  // require explicit port
  std::int64_t port = 0;
  if (!mcb::parse_i64(authority.substr(colon + 1), port) || port <= 0 ||
      port > 65535) {
    return false;
  }
  out.port = static_cast<int>(port);
  out.host = std::string(authority.substr(0, colon));
  if (out.host == "localhost") out.host = "127.0.0.1";
  in_addr probe{};
  return !out.host.empty() && ::inet_pton(AF_INET, out.host.c_str(), &probe) == 1;
}

/// One blocking GET; fills `body` with everything after the header
/// block on a 200. 5 s socket timeouts bound a wedged server.
bool http_get(const ScrapeTarget& target, std::string& body, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = "socket() failed";
    return false;
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(target.port));
  ::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = "connect to " + target.host + " failed: " + std::strerror(errno);
    return false;
  }
  std::string request = "GET " + target.path +
                        " HTTP/1.1\r\nHost: " + target.host +
                        "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      error = "send failed";
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = "recv failed";
      return false;
    }
    if (n == 0) break;  // Connection: close — EOF delimits the body
    response.append(buffer, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    error = "malformed HTTP response (no header terminator)";
    return false;
  }
  const std::string_view head = std::string_view(response).substr(0, head_end);
  if (head.find(" 200 ") == std::string_view::npos) {
    error = "non-200 scrape response: " +
            std::string(head.substr(0, head.find("\r\n")));
    return false;
  }
  body = response.substr(head_end + 4);
  return true;
}

/// Parse a Prometheus text exposition into series -> value. The key is
/// the full series string (`name{labels}` or bare `name`); the value
/// follows the last space, which is unambiguous because our label
/// values never contain spaces.
std::map<std::string, double> parse_prom_series(const std::string& body) {
  std::map<std::string, double> series;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line = std::string_view(body).substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) continue;
    char* end = nullptr;
    const std::string value_text(line.substr(space + 1));
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    series[std::string(line.substr(0, space))] = value;
  }
  return series;
}

/// Pull the stage="..." label value out of a series key.
std::string stage_label(const std::string& series_key) {
  constexpr std::string_view kLabel = "stage=\"";
  const std::size_t start = series_key.find(kLabel);
  if (start == std::string::npos) return "";
  const std::size_t value_start = start + kLabel.size();
  const std::size_t value_end = series_key.find('"', value_start);
  if (value_end == std::string::npos) return "";
  return series_key.substr(value_start, value_end - value_start);
}

/// Compute per-stage counter deltas between two scrapes and append them
/// as artifact metrics. Counters only ever grow within one server
/// lifetime, but a clamp keeps a mid-run restart from producing a
/// negative "delta".
void merge_counter_deltas(const std::map<std::string, double>& before,
                          const std::map<std::string, double>& after,
                          std::vector<std::pair<std::string, double>>& metrics) {
  const auto available = after.find("mcb_perf_available");
  metrics.emplace_back("perf_available",
                       available != after.end() ? available->second : 0.0);
  const struct {
    std::string_view family;
    const char* metric_prefix;
  } kFamilies[] = {
      {"mcb_stage_cycles_total", "perf_cycles_"},
      {"mcb_stage_llc_miss_bytes_total", "perf_llc_miss_bytes_"},
  };
  for (const auto& family : kFamilies) {
    for (const auto& [key, end_value] : after) {
      if (key.compare(0, family.family.size(), family.family) != 0 ||
          key.size() <= family.family.size() ||
          key[family.family.size()] != '{') {
        continue;
      }
      const std::string stage = stage_label(key);
      if (stage.empty()) continue;
      const auto start = before.find(key);
      const double start_value = start != before.end() ? start->second : 0.0;
      const double delta = end_value >= start_value ? end_value - start_value : 0.0;
      metrics.emplace_back(family.metric_prefix + stage, delta);
    }
  }
}

/// Write (or merge into) an mcb-bench-v1 artifact. Merging lets two
/// loadgen legs — keep-alive fan-out and pipelined burst — share one
/// BENCH_serve.json checked by a single bench_check invocation.
bool write_artifact(const std::string& path, const std::string& prefix,
                    const std::vector<std::pair<std::string, double>>& metrics) {
  Json existing_metrics = Json::object();
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const auto parsed = Json::parse(buffer.str());
      if (parsed.has_value() && (*parsed)["schema"].as_string() == "mcb-bench-v1") {
        existing_metrics = (*parsed)["metrics"];
      }
    }
  }
  for (const auto& [name, value] : metrics) {
    existing_metrics.set(prefix + name, value);
  }
  Json out = Json::object();
  out.set("schema", "mcb-bench-v1");
  out.set("bench", "serve_loadgen");
  out.set("metrics", existing_metrics);
  std::ofstream file(path);
  if (!file) return false;
  file << out.pretty() << '\n';
  return file.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: mcbound_loadgen --port P [--connections N] [--duration-s S]\n"
      "                       [--pipeline D] [--keepalive true|false]\n"
      "                       [--path /healthz] [--think-ms MS]\n"
      "                       [--json FILE] [--metric-prefix PFX]\n"
      "                       [--scrape-url http://HOST:PORT/metrics?format=prometheus]\n";
  const auto flags = CliFlags::parse(
      argc, argv,
      {"port", "connections", "duration-s", "pipeline", "keepalive", "path",
       "think-ms", "json", "metric-prefix", "scrape-url"},
      usage);
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;

  Options options;
  options.port = static_cast<int>(flags->get_int("port", 0));
  options.connections = static_cast<std::size_t>(flags->get_int("connections", 100));
  options.duration_s = flags->get_double("duration-s", 10.0);
  options.pipeline = static_cast<std::size_t>(flags->get_int("pipeline", 1));
  options.keepalive = flags->get_bool("keepalive", true);
  options.path = flags->get("path", "/healthz");
  options.think_ms = static_cast<std::uint64_t>(flags->get_int("think-ms", 0));
  if (options.port <= 0) {
    std::fprintf(stderr, "--port is required\n%s", usage.c_str());
    return 2;
  }
  if (options.pipeline == 0) options.pipeline = 1;

  // Each connection is one fd, plus epoll/std streams; raise the soft
  // limit or a 10k-connection run dies at the default 1024.
  const std::uint64_t nofile = mcb::raise_nofile_limit(options.connections + 64);
  if (nofile < options.connections + 8) {
    std::fprintf(stderr,
                 "warning: fd soft limit %llu < connections %zu + slack; "
                 "expect connect errors\n",
                 static_cast<unsigned long long>(nofile), options.connections);
  }

  const std::string scrape_url = flags->get("scrape-url", "");
  ScrapeTarget scrape_target;
  if (!scrape_url.empty() && !parse_scrape_url(scrape_url, scrape_target)) {
    std::fprintf(stderr,
                 "--scrape-url must look like http://127.0.0.1:PORT/path "
                 "(got '%s')\n",
                 scrape_url.c_str());
    return 2;
  }

  std::printf("mcbound_loadgen: %zu connections -> 127.0.0.1:%d%s, %.1fs, "
              "pipeline %zu, keepalive %s, think %llums\n",
              options.connections, options.port, options.path.c_str(),
              options.duration_s, options.pipeline,
              options.keepalive ? "on" : "off",
              static_cast<unsigned long long>(options.think_ms));

  std::map<std::string, double> scrape_before;
  if (!scrape_url.empty()) {
    std::string body, error;
    if (!http_get(scrape_target, body, error)) {
      std::fprintf(stderr, "pre-run scrape of %s failed: %s\n",
                   scrape_url.c_str(), error.c_str());
      return 1;
    }
    scrape_before = parse_prom_series(body);
  }

  LoadGen gen(options);
  if (!gen.run()) return 1;

  std::vector<std::pair<std::string, double>> counter_metrics;
  if (!scrape_url.empty()) {
    std::string body, error;
    if (!http_get(scrape_target, body, error)) {
      std::fprintf(stderr, "post-run scrape of %s failed: %s\n",
                   scrape_url.c_str(), error.c_str());
      return 1;
    }
    merge_counter_deltas(scrape_before, parse_prom_series(body), counter_metrics);
  }

  const Totals& totals = gen.totals();
  const double duration = std::max(gen.duration_s(), 1e-9);
  const double rps = static_cast<double>(gen.responses()) / duration;
  const double p50 = gen.quantile_ms(0.50);
  const double p90 = gen.quantile_ms(0.90);
  const double p99 = gen.quantile_ms(0.99);

  std::printf("\nresults over %.2fs:\n", duration);
  std::printf("  peak connections   %zu\n", gen.peak_connections());
  std::printf("  requests sent      %llu\n", static_cast<unsigned long long>(totals.sent));
  std::printf("  responses          %llu (%.0f rps)\n",
              static_cast<unsigned long long>(gen.responses()), rps);
  std::printf("  latency ms         p50 %.3f  p90 %.3f  p99 %.3f\n", p50, p90, p99);
  std::printf("  2xx                %llu\n", static_cast<unsigned long long>(totals.ok_2xx));
  std::printf("  503 shed           %llu\n", static_cast<unsigned long long>(totals.shed_503));
  std::printf("  408 timeout        %llu\n",
              static_cast<unsigned long long>(totals.timeout_408));
  std::printf("  other status       %llu\n",
              static_cast<unsigned long long>(totals.other_status));
  std::printf("  dropped in flight  %llu\n", static_cast<unsigned long long>(totals.dropped));
  std::printf("  connect errors     %llu (reconnects %llu)\n",
              static_cast<unsigned long long>(totals.conn_errors),
              static_cast<unsigned long long>(totals.reconnects));
  std::printf("  accounted fraction %.6f\n", gen.accounted_fraction());
  std::printf("  ok fraction        %.6f\n", gen.ok_fraction());
  if (!scrape_url.empty()) {
    std::printf("\nhardware telemetry (per-stage counter deltas over the run):\n");
    for (const auto& [name, value] : counter_metrics) {
      std::printf("  %-28s %.0f\n", name.c_str(), value);
    }
  }

  const std::string json_path = flags->get("json", "");
  if (!json_path.empty()) {
    const std::string prefix = flags->get("metric-prefix", "");
    std::vector<std::pair<std::string, double>> metrics = {
        {"throughput_rps", rps},
        {"p50_ms", p50},
        {"p90_ms", p90},
        {"p99_ms", p99},
        {"peak_connections", static_cast<double>(gen.peak_connections())},
        {"accounted_fraction", gen.accounted_fraction()},
        {"ok_fraction", gen.ok_fraction()},
    };
    metrics.insert(metrics.end(), counter_metrics.begin(), counter_metrics.end());
    if (!write_artifact(json_path, prefix, metrics)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s (prefix '%s')\n", json_path.c_str(), prefix.c_str());
  }

  // Exit non-zero on unaccounted outcomes so even a gate-less run fails
  // loudly when the server silently drops requests.
  return gen.accounted_fraction() >= 0.999999 ? 0 : 1;
}
