// mcbound_lint — repo-specific static checks the generic tools can't do.
//
// Enforced invariants (see DESIGN.md §7):
//   R1  no wall-clock or libc randomness in library code (src/): results
//       must be reproducible from an explicit seed / injected TimePoint.
//   R2  no naked `new` / `delete` in src/ or tools/ — ownership goes
//       through containers and smart pointers (`= delete` declarations
//       and comments are fine).
//   R3  no `catch (...)` that swallows: every catch-all must rethrow,
//       capture via std::current_exception, or log before returning.
//   R4  every public header under src/ is self-contained: `#include`ing
//       it alone must compile (checked with `$CXX -fsyntax-only`).
//   R5  every header uses `#pragma once`.
//   R6  no raw std synchronization primitives (std::mutex, lock_guard,
//       condition_variable, ...) in src/ outside util/sync.{hpp,cpp}:
//       all locking goes through the annotated wrappers so Clang's
//       thread-safety analysis sees every acquisition.
//   R7  no std::thread::detach() anywhere: detached threads outlive
//       shutdown and race teardown — join them.
//   R8  every memory_order_relaxed carries a `// relaxed: <why>` comment
//       on the same line or one of the two lines above it (checked on
//       the raw text, since the justification is itself a comment).
//   R9  no direct stdout/stderr writes (std::cout/cerr/clog, printf,
//       fprintf, puts, fputs, fputc, perror, ...) in src/ outside
//       src/obs/ and src/util/cli.cpp: library code logs through
//       mcb::log so every line is structured, leveled and rate-limited.
//
// Exit status: 0 = clean, 1 = violations printed one per line as
//   <file>:<line>: [R<n>] <message>
// so editors and CI can jump straight to the offence.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Options {
  fs::path root;            // repo root (contains src/, tools/)
  std::string compiler;     // empty = skip the header compile check (R4)
  std::string std_flag = "c++20";
  bool verbose = false;
};

struct Violation {
  fs::path file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void report(const fs::path& file, std::size_t line, std::string rule,
            std::string message) {
  g_violations.push_back({file, line, std::move(rule), std::move(message)});
}

// Replace comments and string/char literals with spaces (newlines kept so
// line numbers survive). Handles //, /* */, "...", '...', and R"tag(...)tag".
std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_terminator;  // )tag" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(src[i - 1])) == 0 &&
                               src[i - 1] != '_'))) {
          // R"tag( ... )tag"
          std::size_t paren = src.find('(', i + 2);
          if (paren != std::string_view::npos) {
            raw_terminator = ")";
            raw_terminator += src.substr(i + 2, paren - (i + 2));
            raw_terminator += '"';
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(std::string_view text, std::size_t pos) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Find the next whole-word occurrence of `word` at/after `from`. A match
// is rejected when the preceding or following char continues an
// identifier; `allow_scoped` keeps matches like `std::word`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  while (true) {
    const std::size_t pos = text.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

char prev_nonspace(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return text[pos];
  }
  return '\0';
}

// ------------------------------------------------------------------- R1
// Wall-clock / libc randomness in library code.
void check_no_wallclock_or_libc_rand(const fs::path& file, std::string_view code) {
  static constexpr std::string_view kBanned[] = {"rand", "srand", "rand_r",
                                                 "random_shuffle", "clock"};
  for (const auto word : kBanned) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      // Must look like a call, not a declaration of our own symbol.
      std::size_t after = pos + word.size();
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0) {
        ++after;
      }
      if (after >= code.size() || code[after] != '(') continue;
      report(file, line_of(code, pos), "R1",
             "libc `" + std::string(word) +
                 "()` in library code — thread an explicit mcb::Rng / seed instead");
    }
  }
  // `time(...)` — match bare or std:: qualified, not foo_time(...).
  for (std::size_t pos = find_word(code, "time", 0); pos != std::string_view::npos;
       pos = find_word(code, "time", pos + 1)) {
    std::size_t after = pos + 4;
    if (after >= code.size() || code[after] != '(') continue;
    const char before = pos > 0 ? code[pos - 1] : '\0';
    if (before == '.' || before == '>') continue;  // member call like t.time(...)
    report(file, line_of(code, pos), "R1",
           "wall-clock `time()` in library code — accept a TimePoint parameter instead");
  }
}

// ------------------------------------------------------------------- R2
void check_no_naked_new_delete(const fs::path& file, std::string_view code) {
  for (std::size_t pos = find_word(code, "new", 0); pos != std::string_view::npos;
       pos = find_word(code, "new", pos + 1)) {
    report(file, line_of(code, pos), "R2",
           "naked `new` — use containers, std::make_unique or std::make_shared");
  }
  for (std::size_t pos = find_word(code, "delete", 0); pos != std::string_view::npos;
       pos = find_word(code, "delete", pos + 1)) {
    if (prev_nonspace(code, pos) == '=') continue;  // `= delete;` declaration
    report(file, line_of(code, pos), "R2",
           "naked `delete` — ownership must be RAII-managed");
  }
}

// ------------------------------------------------------------------- R3
void check_no_swallowing_catch_all(const fs::path& file, std::string_view code) {
  for (std::size_t pos = code.find("catch", 0); pos != std::string_view::npos;
       pos = code.find("catch", pos + 5)) {
    if (pos > 0 && is_ident_char(code[pos - 1])) continue;
    // Require `catch (...)` — any other handler names the exception.
    std::size_t i = pos + 5;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
    if (i >= code.size() || code[i] != '(') continue;
    const std::size_t close = code.find(')', i);
    if (close == std::string_view::npos) continue;
    std::string inside(code.substr(i + 1, close - i - 1));
    std::erase_if(inside, [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
    if (inside != "...") continue;
    // Extract the handler block.
    std::size_t brace = code.find('{', close);
    if (brace == std::string_view::npos) continue;
    int depth = 0;
    std::size_t end = brace;
    for (; end < code.size(); ++end) {
      if (code[end] == '{') ++depth;
      if (code[end] == '}' && --depth == 0) break;
    }
    const std::string_view body = code.substr(brace, end - brace);
    static constexpr std::string_view kEvidence[] = {
        "throw",  "rethrow",  "current_exception", "log",
        "cerr",   "fprintf",  "perror",            "abort",
        "assert", "terminate"};
    bool handled = false;
    for (const auto token : kEvidence) {
      if (find_word(body, token, 0) != std::string_view::npos) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      report(file, line_of(code, pos), "R3",
             "`catch (...)` swallows the exception — rethrow, capture or log it");
    }
  }
}

// ------------------------------------------------------------------- R6
// util/sync.{hpp,cpp} are the only files allowed to name the std
// primitives they wrap; everything else locks through mcb::Mutex et al.
bool is_sync_wrapper_file(const fs::path& p) {
  const std::string name = p.filename().string();
  return p.parent_path().filename() == "util" &&
         (name == "sync.hpp" || name == "sync.cpp");
}

void check_no_raw_std_sync(const fs::path& file, std::string_view code) {
  static constexpr std::string_view kBanned[] = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "lock_guard",
      "unique_lock", "scoped_lock",        "shared_lock",
      "condition_variable", "condition_variable_any"};
  for (const auto word : kBanned) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (pos < 5 || code.substr(pos - 5, 5) != "std::") continue;
      report(file, line_of(code, pos), "R6",
             "raw `std::" + std::string(word) +
                 "` — lock through the annotated wrappers in util/sync.hpp "
                 "so the thread-safety analysis sees it");
    }
  }
}

// ------------------------------------------------------------------- R7
void check_no_thread_detach(const fs::path& file, std::string_view code) {
  for (std::size_t pos = find_word(code, "detach", 0); pos != std::string_view::npos;
       pos = find_word(code, "detach", pos + 1)) {
    const char before = prev_nonspace(code, pos);
    if (before != '.' && before != '>') continue;  // member call only
    std::size_t after = pos + 6;
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0) {
      ++after;
    }
    if (after >= code.size() || code[after] != '(') continue;
    report(file, line_of(code, pos), "R7",
           "`detach()` orphans the thread past shutdown — join it instead");
  }
}

// ------------------------------------------------------------------- R8
// Runs on the RAW file text (before comment stripping): the required
// justification is a comment.
void check_relaxed_order_justified(const fs::path& file, std::string_view raw) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t nl = raw.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? raw.size() : nl;
    lines.push_back(raw.substr(start, end - start));
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("memory_order_relaxed") == std::string_view::npos) continue;
    bool justified = false;
    for (std::size_t back = 0; back <= 2 && back <= i; ++back) {
      if (lines[i - back].find("relaxed:") != std::string_view::npos) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      report(file, i + 1, "R8",
             "memory_order_relaxed without an adjacent `// relaxed: <why>` "
             "justification");
    }
  }
}

// ------------------------------------------------------------------- R9
// src/obs/ implements the logger (it must reach the real stderr) and
// util/cli.cpp is the flag-parsing helper that prints usage text; all
// other library code routes output through mcb::log.
bool may_write_streams_directly(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "obs") return true;
  }
  return p.filename() == "cli.cpp" && p.parent_path().filename() == "util";
}

void check_no_direct_stream_writes(const fs::path& file, std::string_view code) {
  // std::cout / std::cerr / std::clog by name.
  static constexpr std::string_view kStreams[] = {"cout", "cerr", "clog"};
  for (const auto word : kStreams) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      if (pos < 5 || code.substr(pos - 5, 5) != "std::") continue;
      report(file, line_of(code, pos), "R9",
             "direct `std::" + std::string(word) +
                 "` write in library code — log through mcb::log instead");
    }
  }
  // printf-family calls that hit stdout/stderr. snprintf/sscanf style
  // buffer formatting is fine; only stream emitters are banned.
  static constexpr std::string_view kBannedCalls[] = {
      "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "fputc",
      "putchar", "perror"};
  for (const auto word : kBannedCalls) {
    for (std::size_t pos = find_word(code, word, 0); pos != std::string_view::npos;
         pos = find_word(code, word, pos + 1)) {
      std::size_t after = pos + word.size();
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0) {
        ++after;
      }
      if (after >= code.size() || code[after] != '(') continue;
      report(file, line_of(code, pos), "R9",
             "`" + std::string(word) +
                 "()` writes to a process stream from library code — log "
                 "through mcb::log instead");
    }
  }
}

// ------------------------------------------------------------------- R5
void check_pragma_once(const fs::path& file, std::string_view code) {
  if (code.find("#pragma once") == std::string_view::npos) {
    report(file, 1, "R5", "header missing `#pragma once`");
  }
}

// ------------------------------------------------------------------- R4
void check_header_self_contained(const Options& opts, const fs::path& header) {
  // -P strips the output; we only care about the exit status.
  std::string cmd = opts.compiler + " -std=" + opts.std_flag +
                    " -fsyntax-only -x c++ -I " + (opts.root / "src").string() +
                    " " + header.string() + " 2>/dev/null";
  const int rc = std::system(cmd.c_str());  // NOLINT(cert-env33-c) — lint tool drives the compiler
  if (rc != 0) {
    report(header, 1, "R4",
           "header is not self-contained: `" + opts.compiler +
               " -fsyntax-only " + header.filename().string() + "` failed");
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool has_extension(const fs::path& p, std::string_view a, std::string_view b = "") {
  const std::string ext = p.extension().string();
  return ext == a || (!b.empty() && ext == b);
}

void usage() {
  std::cerr << "usage: mcbound_lint --root <repo-root> [--compiler <cxx>] "
               "[--std <std>] [--verbose]\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opts.root = v;
    } else if (arg == "--compiler") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opts.compiler = v;
    } else if (arg == "--std") {
      const char* v = next();
      if (v == nullptr) { usage(); return 2; }
      opts.std_flag = v;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      usage();
      return 2;
    }
  }
  if (opts.root.empty()) {
    usage();
    return 2;
  }
  std::error_code ec;
  if (!fs::is_directory(opts.root / "src", ec)) {
    std::cerr << "mcbound_lint: " << (opts.root / "src").string()
              << " is not a directory\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  std::size_t headers_compiled = 0;

  // Library sources: all rules.
  for (const auto& entry : fs::recursive_directory_iterator(opts.root / "src")) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (!has_extension(path, ".cpp", ".hpp")) continue;
    const std::string raw = read_file(path);
    const std::string code = strip_comments_and_strings(raw);
    ++files_scanned;
    check_no_wallclock_or_libc_rand(path, code);
    check_no_naked_new_delete(path, code);
    check_no_swallowing_catch_all(path, code);
    if (!is_sync_wrapper_file(path)) check_no_raw_std_sync(path, code);
    check_no_thread_detach(path, code);
    check_relaxed_order_justified(path, raw);
    if (!may_write_streams_directly(path)) check_no_direct_stream_writes(path, code);
    if (has_extension(path, ".hpp")) {
      check_pragma_once(path, code);
      if (!opts.compiler.empty()) {
        check_header_self_contained(opts, path);
        ++headers_compiled;
      }
    }
  }

  // Tools and tests: R2/R3 only (a CLI may read the clock; harnesses may
  // use whatever randomness they like, but leaks and swallowed errors are
  // still bugs there).
  for (const char* dir : {"tools", "tests", "bench", "examples"}) {
    const fs::path base = opts.root / dir;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      if (!has_extension(path, ".cpp", ".hpp")) continue;
      const std::string code = strip_comments_and_strings(read_file(path));
      ++files_scanned;
      check_no_naked_new_delete(path, code);
      check_no_swallowing_catch_all(path, code);
      check_no_thread_detach(path, code);
    }
  }

  for (const auto& v : g_violations) {
    std::cout << v.file.string() << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (opts.verbose || !g_violations.empty()) {
    std::cerr << "mcbound_lint: scanned " << files_scanned << " files, compiled "
              << headers_compiled << " headers, " << g_violations.size()
              << " violation(s)\n";
  }
  return g_violations.empty() ? 0 : 1;
}
