// mcbound_lint — the repo's own static analyzer (DESIGN.md §7, §12, §13).
//
// PR 2 grew a bag of per-file token scans (rules R1–R9); this driver
// now fronts a multi-pass, whole-program analyzer (tools/lint/):
//
//   * a lexical front-end producing aligned code/comment views of every
//     translation unit (tools/lint/source_view);
//   * token rules R1–R9 over those views (tools/lint/text_rules);
//   * an include-graph pass that builds the module dependency DAG under
//     src/ and enforces the declared layer manifest
//     tools/lint/layers.txt — back-edges and peer edges are R13, include
//     cycles are R14 (tools/lint/include_graph);
//   * hot-path discipline R10–R12 over MCB_HOT_PATH-annotated function
//     bodies: no allocation, no throw/blocking call, no lock
//     (tools/lint/hot_path);
//   * a diagnostics layer with inline suppressions (the `mcb-lint`
//     suppression comments of DESIGN.md §12), a committed baseline of
//     grandfathered findings (tools/lint/baseline.txt), and hygiene rule
//     R15 that fails unused suppressions and stale baseline entries;
//   * a cross-TU function index and call graph
//     (tools/lint/function_index, tools/lint/call_graph) feeding the
//     whole-program rules R18–R21: transitive hot-path discipline,
//     reactor blocking-reachability, static lock-order deadlock
//     detection, and discarded bool/status results
//     (tools/lint/graph_rules);
//   * text, SARIF and markdown reporters — CI uploads the SARIF run to
//     GitHub code scanning, and docs/lint_rules.md is rendered from the
//     rule catalog via --rules=markdown (tools/lint/report).
//
// Exit status: 0 = clean, 1 = violations printed, 2 = usage/config
// error. Text findings print one per line as
//   <file>:<line>: [R<n>] <message>
// so editors and CI can jump straight to the offence.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "lint/diagnostics.hpp"
#include "lint/driver.hpp"
#include "lint/report.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: mcbound_lint --root <repo-root> [--compiler <cxx>] [--std <std>]\n"
      << "                    [--format text|sarif] [--graph dot] [--graph-kind modules|calls]\n"
      << "                    [--rules markdown] [--output <file>]\n"
      << "                    [--layers <file>] [--baseline <file>] [--verbose]\n"
      << "\n"
      << "  --format sarif        emit SARIF 2.1.0 (for GitHub code scanning)\n"
      << "  --graph dot           print a dependency graph and exit\n"
      << "  --graph-kind calls    with --graph: the hot/reactor call-graph slice\n"
      << "                        instead of the src/ module DAG (the default)\n"
      << "  --rules markdown      print the rule reference (docs/lint_rules.md) and exit\n"
      << "  --layers ''           disable the layer-manifest check (fixtures/tests)\n"
      << "  --baseline ''         ignore the committed baseline\n"
      << "\nrules:\n";
  for (const auto& rule : mcb::lint::rule_catalog()) {
    std::cerr << "  " << rule.id << (rule.id.size() < 3 ? "   " : "  ") << rule.summary
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  mcb::lint::LintOptions options;
  std::string format = "text";
  std::string graph;
  std::string graph_kind = "modules";
  std::string rules;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view value;
    bool has_inline_value = false;
    // Accept both `--flag value` and `--flag=value`.
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto next = [&]() -> const char* {
      if (has_inline_value) return value.data();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--root") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      options.root = v;
    } else if (arg == "--compiler") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      options.compiler = v;
    } else if (arg == "--std") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      options.std_flag = v;
    } else if (arg == "--format") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      format = v;
    } else if (arg == "--graph") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      graph = v;
    } else if (arg == "--graph-kind") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      graph_kind = v;
    } else if (arg == "--rules") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      rules = v;
    } else if (arg == "--output") {
      if ((v = next()) == nullptr) { usage(); return 2; }
      output = v;
    } else if (arg == "--layers") {
      options.layers_file = has_inline_value ? std::string(value)
                                             : ((v = next()) != nullptr ? v : "");
    } else if (arg == "--baseline") {
      options.baseline_file = has_inline_value ? std::string(value)
                                               : ((v = next()) != nullptr ? v : "");
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      usage();
      return 2;
    }
  }
  if (!rules.empty()) {
    // Pure emission mode: no scan, just the catalog.
    if (rules != "markdown") {
      std::cerr << "mcbound_lint: unknown --rules `" << rules << "` (markdown)\n";
      return 2;
    }
    mcb::lint::print_rules_markdown(std::cout);
    return 0;
  }
  if (options.root.empty()) {
    usage();
    return 2;
  }
  if (format != "text" && format != "sarif") {
    std::cerr << "mcbound_lint: unknown --format `" << format << "` (text|sarif)\n";
    return 2;
  }
  if (!graph.empty() && graph != "dot") {
    std::cerr << "mcbound_lint: unknown --graph `" << graph << "` (dot)\n";
    return 2;
  }
  if (graph_kind != "modules" && graph_kind != "calls") {
    std::cerr << "mcbound_lint: unknown --graph-kind `" << graph_kind
              << "` (modules|calls)\n";
    return 2;
  }

  const mcb::lint::LintResult result = mcb::lint::run_lint(options);
  if (result.config_error) {
    std::cerr << "mcbound_lint: " << result.config_message << "\n";
    return 2;
  }

  std::ofstream file_out;
  if (!output.empty()) {
    file_out.open(output, std::ios::binary);
    if (!file_out) {
      std::cerr << "mcbound_lint: cannot write " << output << "\n";
      return 2;
    }
  }
  std::ostream& out = output.empty() ? std::cout : file_out;

  if (graph == "dot") {
    // Pure emission mode for the CI drift gates and DESIGN.md: print the
    // requested graph and report nothing else (rule findings still gate
    // the regular invocation).
    out << (graph_kind == "calls" ? result.call_graph_dot : result.graph.to_dot());
    return 0;
  }

  if (format == "sarif") {
    mcb::lint::print_sarif(out, result.violations);
  } else {
    mcb::lint::print_text(out, result.violations);
  }
  if (options.verbose || !result.violations.empty()) {
    std::cerr << "mcbound_lint: scanned " << result.stats.files_scanned
              << " files, compiled " << result.stats.headers_compiled << " headers, "
              << result.stats.modules << " modules / " << result.stats.module_edges
              << " edges, " << result.stats.hot_regions << " hot regions, "
              << result.stats.signal_handlers << " signal handler(s), "
              << result.stats.functions_indexed << " functions / "
              << result.stats.call_edges << " call edges, "
              << result.stats.suppressions_used << " suppression(s), "
              << result.stats.baselined << " baselined, " << result.violations.size()
              << " violation(s)\n";
  }
  if (options.verbose) {
    double total = 0.0;
    for (const mcb::lint::PassTiming& pass : result.stats.passes) {
      std::fprintf(stderr, "mcbound_lint:   %-32s %8.2f ms\n", pass.name.c_str(),
                   pass.ms);
      total += pass.ms;
    }
    std::fprintf(stderr, "mcbound_lint:   %-32s %8.2f ms\n", "total", total);
  }
  return result.violations.empty() ? 0 : 1;
}
