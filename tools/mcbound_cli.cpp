// mcbound — the operator command-line tool (the paper's deploy/workflow
// scripts, §III-E, rolled into one binary).
//
//   mcbound generate      synthesize a Fugaku-like trace to CSV
//   mcbound characterize  Roofline analysis of a trace (2- or 3-class)
//   mcbound evaluate      run the online prediction algorithm evaluation
//   mcbound serve         start the HTTP API over a trace
//
// Examples:
//   mcbound generate --out trace.csv --jobs-per-day 500
//   mcbound characterize --trace trace.csv --extended true
//   mcbound evaluate --trace trace.csv --model rf --alpha 15 --beta 1
//   mcbound serve --trace trace.csv --port 8080
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/mcbound.hpp"
#include "core/online_evaluator.hpp"
#include "obs/log.hpp"
#include "roofline/analysis.hpp"
#include "roofline/extended.hpp"
#include "serve/api.hpp"
#include "util/cli.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mcb;

constexpr const char* kUsage =
    "usage: mcbound <generate|characterize|evaluate|serve> [flags]\n"
    "  generate     --out FILE [--jobs-per-day N] [--seed S]\n"
    "  characterize --trace FILE [--extended true]\n"
    "  evaluate     --trace FILE [--model knn|rf] [--alpha A] [--beta B]\n"
    "               [--theta N --sampling latest|random]\n"
    "  serve        --trace FILE [--port P] [--alpha A] [--model knn|rf]\n"
    "               [--http-threads N] [--http-queue N] [--timeout-ms MS]\n"
    "               [--drain-ms MS] [--http-backlog N] [--max-conns N]\n"
    "               [--perf auto|off|force] [--profile-hz HZ]\n"
    "               [--log-level debug|info|warn|error|off]\n"
    "               [--log-json true|false]\n";

bool load_trace(const CliFlags& flags, JobStore& store) {
  const std::string path = flags.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "--trace FILE is required\n");
    return false;
  }
  std::string error;
  if (!store.load_csv(path, &error)) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  std::fprintf(stderr, "loaded %zu jobs from %s\n", store.size(), path.c_str());
  return true;
}

int cmd_generate(const CliFlags& flags) {
  const std::string out = flags.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out FILE is required\n");
    return 2;
  }
  WorkloadConfig config = scaled_workload_config(
      flags.get_double("jobs-per-day", 500.0),
      static_cast<std::uint64_t>(flags.get_int("seed", 15)));
  WorkloadGenerator generator(config);
  JobStore store;
  store.insert_all(generator.generate());
  if (!store.save_csv(out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu jobs (%s .. %s) to %s\n", store.size(),
              format_date(config.start_time).c_str(),
              format_date(config.end_time - 1).c_str(), out.c_str());
  return 0;
}

int cmd_characterize(const CliFlags& flags) {
  JobStore store;
  if (!load_trace(flags, store)) return 1;
  const MachineSpec spec = fugaku_node_spec();

  if (flags.get_bool("extended", false)) {
    const ExtendedCharacterizer extended(spec);
    std::array<std::uint64_t, 3> counts{};
    std::size_t skipped = 0;
    const auto labels = extended.generate_labels(store.all(), &skipped);
    for (const auto label : labels) ++counts[static_cast<std::size_t>(label)];
    std::printf("3-class Roofline census (ridge %.2f F/B, Tofu %.1f GB/s):\n",
                spec.ridge_point(), spec.peak_network_gbs);
    for (std::size_t c = 0; c < 3; ++c) {
      std::printf("  %-20s %s\n",
                  extended_boundedness_name(static_cast<ExtendedBoundedness>(c)),
                  with_thousands(static_cast<std::int64_t>(counts[c])).c_str());
    }
    std::printf("  uncharacterizable    %zu\n", skipped);
    return 0;
  }

  const Characterizer characterizer(spec);
  const auto analysis = analyze_jobs(characterizer, store.all());
  const auto& b = analysis.breakdown;
  TextTable table({"", "memory-bound", "compute-bound"});
  table.add_row({"2.0 GHz", with_thousands(static_cast<std::int64_t>(
                                b.at(FrequencyMode::kNormal, Boundedness::kMemoryBound))),
                 with_thousands(static_cast<std::int64_t>(
                     b.at(FrequencyMode::kNormal, Boundedness::kComputeBound)))});
  table.add_row({"2.2 GHz", with_thousands(static_cast<std::int64_t>(
                                b.at(FrequencyMode::kBoost, Boundedness::kMemoryBound))),
                 with_thousands(static_cast<std::int64_t>(
                     b.at(FrequencyMode::kBoost, Boundedness::kComputeBound)))});
  std::fputs(table.render().c_str(), stdout);
  std::printf("ratio %.2f:1 | near-roofline(>=50%%) %.1f%% | freq-intensity corr %+.3f\n",
              b.memory_to_compute_ratio(),
              100.0 * analysis.fraction_near_roofline(characterizer, 0.5),
              analysis.frequency_intensity_correlation());
  return 0;
}

int cmd_evaluate(const CliFlags& flags) {
  JobStore store;
  if (!load_trace(flags, store)) return 1;

  const auto kind = parse_model_kind(flags.get("model", "rf"));
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown --model (use knn or rf)\n");
    return 2;
  }

  OnlineEvalConfig config;
  config.alpha_days =
      static_cast<int>(flags.get_int("alpha", *kind == ModelKind::kKnn ? 30 : 15));
  config.beta_days = static_cast<int>(flags.get_int("beta", 1));
  // Derive the test window from the trace: last 4 full weeks.
  config.test_end = store.max_end_time();
  config.test_start = config.test_end - 28 * kSecondsPerDay;
  config.data_start = store.min_end_time();
  if (flags.has("theta")) {
    config.theta.theta = static_cast<std::size_t>(flags.get_int("theta", 0));
    config.theta.mode = flags.get("sampling", "random") == "latest"
                            ? ThetaConfig::Sampling::kLatest
                            : ThetaConfig::Sampling::kRandom;
  }

  const Characterizer characterizer(fugaku_node_spec());
  const FeatureEncoder encoder;
  const OnlineEvaluator evaluator(store, characterizer, encoder);
  RandomForestConfig forest;
  forest.tree.max_features = 48;
  const auto result = evaluator.evaluate(
      [&] { return ClassificationModel(*kind, {}, forest); }, config);

  std::printf("\nonline evaluation: %s alpha=%d beta=%d over %s .. %s\n",
              model_kind_name(*kind), config.alpha_days, config.beta_days,
              format_date(config.test_start).c_str(),
              format_date(config.test_end - 1).c_str());
  std::printf("%s\n", result.confusion.render(boundedness_class_names()).c_str());
  std::printf("retrains %zu | avg train %.3f s | avg inference %.2e s/job\n",
              result.retrains, result.train_seconds.mean(),
              result.inference_seconds_per_job.mean());
  return 0;
}

int cmd_serve(const CliFlags& flags) {
  // Structured logging: the server/library code logs through
  // mcb::log::global(); these flags configure it before serving starts.
  const std::string level_text = flags.get("log-level", "info");
  const auto level = log::parse_level(level_text);
  if (!level.has_value()) {
    std::fprintf(stderr, "unknown --log-level '%s' (use debug|info|warn|error|off)\n",
                 level_text.c_str());
    return 2;
  }
  log::global().set_level(*level);
  log::global().set_json(flags.get_bool("log-json", true));

  static JobStore store;  // outlives the framework/server below
  if (!load_trace(flags, store)) return 1;

  FrameworkConfig config;
  const auto kind = parse_model_kind(flags.get("model", "knn"));
  if (kind.has_value()) config.model = *kind;
  config.alpha_days = static_cast<int>(flags.get_int("alpha", 30));
  config.forest.tree.max_features = 48;
  config.registry_dir = flags.get("registry", "mcbound-models");

  ServerConfig server;
  server.worker_threads = static_cast<std::size_t>(
      flags.get_int("http-threads", static_cast<std::int64_t>(server.worker_threads)));
  server.max_pending = static_cast<std::size_t>(
      flags.get_int("http-queue", static_cast<std::int64_t>(server.max_pending)));
  const int timeout_ms =
      static_cast<int>(flags.get_int("timeout-ms", server.request_deadline_ms));
  server.request_deadline_ms = timeout_ms;
  server.recv_timeout_ms = std::min(server.recv_timeout_ms, timeout_ms);
  server.send_timeout_ms = std::min(server.send_timeout_ms, timeout_ms);
  server.drain_timeout_ms = static_cast<int>(flags.get_int("drain-ms", server.drain_timeout_ms));
  server.listen_backlog =
      static_cast<int>(flags.get_int("http-backlog", server.listen_backlog));
  server.max_connections = static_cast<std::size_t>(flags.get_int(
      "max-conns", static_cast<std::int64_t>(server.max_connections)));
  // Self-characterization (DESIGN.md §14): per-span hardware counters
  // and the /debug/profile sampling rate.
  const std::string perf_mode = flags.get("perf", "auto");
  if (perf_mode == "off") {
    server.perf_mode = ServerConfig::PerfMode::kOff;
  } else if (perf_mode == "force") {
    server.perf_mode = ServerConfig::PerfMode::kForce;
  } else if (perf_mode == "auto") {
    server.perf_mode = ServerConfig::PerfMode::kAuto;
  } else {
    std::fprintf(stderr, "unknown --perf '%s' (use auto|off|force)\n",
                 perf_mode.c_str());
    return 2;
  }
  server.profile_hz = static_cast<int>(
      flags.get_int("profile-hz", static_cast<std::int64_t>(server.profile_hz)));
  // A 10k-connection load test needs more than the usual 1024 soft
  // limit; raise it toward the hard limit before the listener opens.
  const std::uint64_t nofile = raise_nofile_limit(server.max_connections + 256);

  static Framework framework(config, store);
  static ApiServer api(framework, server);
  const int port = static_cast<int>(flags.get_int("port", 8080));
  if (!api.start(port)) {
    std::fprintf(stderr, "failed to bind port %d\n", port);
    return 1;
  }
  std::printf("MCBound API on http://127.0.0.1:%d (model %s, alpha %d)\n", api.port(),
              framework.model_name().c_str(), config.alpha_days);
  std::printf("executor: %zu workers, %zu pending, %d ms request deadline\n",
              server.worker_threads, server.max_pending, server.request_deadline_ms);
  std::printf("reactor: backlog %d (effective %d after somaxconn), %zu max "
              "connections, %llu fd soft limit\n",
              server.listen_backlog, api.server().effective_backlog(),
              server.max_connections, static_cast<unsigned long long>(nofile));
  std::printf("perf counters: %s (mode %s); GET /debug/profile?seconds=N for\n"
              "collapsed stacks at %d Hz\n",
              api.tracer().counters_attached() ? "attached" : "unavailable (latency-only)",
              perf_mode.c_str(), server.profile_hz);
  std::printf("POST /train to build the first model version; GET /metrics for\n"
              "server-side counters and latency (add ?format=prometheus for the\n"
              "text exposition); GET /healthz, /readyz, /debug/requests for\n"
              "probes and the flight recorder; Ctrl-C to stop.\n");
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = CliFlags::parse(
      argc - 1, argv + 1,
      {"out", "trace", "jobs-per-day", "seed", "extended", "model", "alpha", "beta",
       "theta", "sampling", "port", "registry", "http-threads", "http-queue",
       "timeout-ms", "drain-ms", "http-backlog", "max-conns", "perf", "profile-hz",
       "log-level", "log-json"},
      kUsage);
  if (!flags.has_value()) return 2;
  if (flags->help_requested()) return 0;

  if (command == "generate") return cmd_generate(*flags);
  if (command == "characterize") return cmd_characterize(*flags);
  if (command == "evaluate") return cmd_evaluate(*flags);
  if (command == "serve") return cmd_serve(*flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}
