// bench_check — the bench-smoke CI gate (DESIGN.md §8).
//
// Compares freshly generated BENCH_*.json artifacts (mcb-bench-v1,
// written by the benches' --json flag) against the committed baselines
// in bench/baselines/ (mcb-bench-baseline-v1). Usage:
//
//   bench_check BASELINE FRESH [BASELINE FRESH ...]
//
// Each baseline metric carries its own policy:
//
//   {"schema": "mcb-bench-baseline-v1",
//    "metrics": {"rf_batch_speedup": {"value": 3.0,
//                                     "direction": "higher",
//                                     "gate": "fail"}}}
//
// direction: which way is better ("higher" = throughput/speedup,
//            "lower" = latency). gate: "fail" metrics hard-fail the run
//            when they regress past 2x; "warn" metrics only ever warn.
// Any gated metric regressed >= 2.0x  -> exit 1 (hard failure).
// Any metric regressed >= 1.25x       -> WARN line, exit stays 0.
//
// The 2x hard threshold is deliberately loose so shared CI runners
// (noisy neighbors, frequency scaling) do not flake the gate; the
// "fail"-gated metrics are machine-relative ratios (scalar vs batched
// on the same box, same run), which are far more stable than absolute
// throughput. To refresh a baseline after an intentional change, run
// the bench with --json locally (or download the CI artifact) and copy
// the new values into bench/baselines/, keeping direction/gate.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace {

using mcb::Json;

constexpr double kWarnFactor = 1.25;
constexpr double kFailFactor = 2.0;

std::optional<Json> load_json(const std::string& path, const char* role) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_check: cannot open %s file %s\n", role, path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  auto json = Json::parse(buffer.str(), &error);
  if (!json.has_value()) {
    std::fprintf(stderr, "bench_check: %s is not valid JSON: %s\n", path.c_str(), error.c_str());
  }
  return json;
}

/// Checks one baseline/fresh pair; returns the number of hard failures.
int check_pair(const std::string& baseline_path, const std::string& fresh_path) {
  const auto baseline = load_json(baseline_path, "baseline");
  const auto fresh = load_json(fresh_path, "fresh");
  if (!baseline.has_value() || !fresh.has_value()) return 1;
  if ((*baseline)["schema"].as_string() != "mcb-bench-baseline-v1") {
    std::fprintf(stderr, "bench_check: %s: expected schema mcb-bench-baseline-v1\n",
                 baseline_path.c_str());
    return 1;
  }
  if ((*fresh)["schema"].as_string() != "mcb-bench-v1") {
    std::fprintf(stderr, "bench_check: %s: expected schema mcb-bench-v1\n", fresh_path.c_str());
    return 1;
  }

  const Json& fresh_metrics = (*fresh)["metrics"];
  int failures = 0;
  std::printf("bench_check: %s vs %s\n", fresh_path.c_str(), baseline_path.c_str());
  for (const auto& [name, entry] : (*baseline)["metrics"].as_object()) {
    const double base_value = entry["value"].as_double();
    const std::string direction = entry["direction"].as_string();
    const std::string gate = entry["gate"].as_string();
    if (base_value <= 0.0 || (direction != "higher" && direction != "lower") ||
        (gate != "fail" && gate != "warn")) {
      std::fprintf(stderr, "  FAIL  %s: malformed baseline entry\n", name.c_str());
      ++failures;
      continue;
    }
    if (!fresh_metrics.contains(name)) {
      std::fprintf(stderr, "  FAIL  %s: missing from fresh artifact\n", name.c_str());
      ++failures;
      continue;
    }
    const double fresh_value = fresh_metrics[name].as_double();
    if (fresh_value <= 0.0) {
      std::fprintf(stderr, "  FAIL  %s: non-positive fresh value %g\n", name.c_str(), fresh_value);
      ++failures;
      continue;
    }
    // factor > 1 means the fresh value is worse than the baseline.
    const double factor =
        direction == "higher" ? base_value / fresh_value : fresh_value / base_value;
    const char* verdict = "ok  ";
    if (factor >= kFailFactor && gate == "fail") {
      verdict = "FAIL";
      ++failures;
    } else if (factor >= kWarnFactor) {
      verdict = "WARN";
    }
    std::printf("  %s  %-28s fresh %12.6g  baseline %12.6g  (%.2fx %s, gate=%s)\n", verdict,
                name.c_str(), fresh_value, base_value, factor,
                factor >= 1.0 ? "worse" : "better-or-equal", gate.c_str());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || (argc - 1) % 2 != 0) {
    std::fprintf(stderr, "usage: bench_check BASELINE FRESH [BASELINE FRESH ...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    failures += check_pair(argv[i], argv[i + 1]);
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_check: %d hard failure(s) — a gated metric regressed >= %.1fx.\n"
                 "If the regression is intentional, refresh bench/baselines/ (see header).\n",
                 failures, kFailFactor);
    return 1;
  }
  std::printf("bench_check: all gated metrics within %.1fx of baseline\n", kFailFactor);
  return 0;
}
