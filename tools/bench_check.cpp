// bench_check — the bench-smoke CI gate (DESIGN.md §8).
//
// Compares freshly generated BENCH_*.json artifacts (mcb-bench-v1,
// written by the benches' --json flag) against the committed baselines
// in bench/baselines/ (mcb-bench-baseline-v1). Usage:
//
//   bench_check BASELINE FRESH [BASELINE FRESH ...]
//
// Each baseline metric carries its own policy:
//
//   {"schema": "mcb-bench-baseline-v1",
//    "metrics": {"rf_batch_speedup": {"value": 3.0,
//                                     "direction": "higher",
//                                     "gate": "fail"}}}
//
// direction: which way is better ("higher" = throughput/speedup,
//            "lower" = latency). gate: "fail" metrics hard-fail the run
//            when they regress past 2x; "warn" metrics only ever warn;
//            "floor" metrics are absolute acceptance thresholds — any
//            fresh value worse than the baseline value hard-fails, with
//            no regression slack (used for contractual minimums like
//            the spatial-index speedup, where the baseline is the
//            requirement itself rather than a measured sample).
// Any gated metric regressed >= 2.0x  -> exit 1 (hard failure).
// Any metric regressed >= 1.25x       -> WARN line, exit stays 0.
// Any "floor" metric below its value  -> exit 1; within 25% above the
//                                        floor -> WARN.
//
// The 2x hard threshold is deliberately loose so shared CI runners
// (noisy neighbors, frequency scaling) do not flake the gate; the
// "fail"-gated metrics are machine-relative ratios (scalar vs batched
// on the same box, same run), which are far more stable than absolute
// throughput. To refresh a baseline after an intentional change, run
// the bench with --json locally (or download the CI artifact) and copy
// the new values into bench/baselines/, keeping direction/gate.
//
// A second mode validates a Prometheus text-exposition scrape (the
// bench-smoke job scrapes the live server's /metrics?format=prometheus):
//
//   bench_check --prom FILE
//
// checks that every sample belongs to a family announced by # TYPE,
// every family has # HELP, histogram buckets are cumulative with
// ascending le bounds, and each histogram's +Inf bucket equals _count.
//
// A third mode validates a collapsed-stack profile (the load-test job
// captures GET /debug/profile against the live server — DESIGN.md §14):
//
//   bench_check --collapsed FILE
//
// every line must be `frame[;frame...] COUNT` — frames non-empty with
// no embedded spaces (the profiler sanitizes demangled names), a single
// space, and a positive integer count. An empty capture fails: even an
// idle server's parked threads produce wall-clock samples.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using mcb::Json;

constexpr double kWarnFactor = 1.25;
constexpr double kFailFactor = 2.0;

std::optional<Json> load_json(const std::string& path, const char* role) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_check: cannot open %s file %s\n", role, path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  auto json = Json::parse(buffer.str(), &error);
  if (!json.has_value()) {
    std::fprintf(stderr, "bench_check: %s is not valid JSON: %s\n", path.c_str(), error.c_str());
  }
  return json;
}

/// Checks one baseline/fresh pair; returns the number of hard failures.
int check_pair(const std::string& baseline_path, const std::string& fresh_path) {
  const auto baseline = load_json(baseline_path, "baseline");
  const auto fresh = load_json(fresh_path, "fresh");
  if (!baseline.has_value() || !fresh.has_value()) return 1;
  if ((*baseline)["schema"].as_string() != "mcb-bench-baseline-v1") {
    std::fprintf(stderr, "bench_check: %s: expected schema mcb-bench-baseline-v1\n",
                 baseline_path.c_str());
    return 1;
  }
  if ((*fresh)["schema"].as_string() != "mcb-bench-v1") {
    std::fprintf(stderr, "bench_check: %s: expected schema mcb-bench-v1\n", fresh_path.c_str());
    return 1;
  }

  const Json& fresh_metrics = (*fresh)["metrics"];
  int failures = 0;
  std::printf("bench_check: %s vs %s\n", fresh_path.c_str(), baseline_path.c_str());
  for (const auto& [name, entry] : (*baseline)["metrics"].as_object()) {
    const double base_value = entry["value"].as_double();
    const std::string direction = entry["direction"].as_string();
    const std::string gate = entry["gate"].as_string();
    if (base_value <= 0.0 || (direction != "higher" && direction != "lower") ||
        (gate != "fail" && gate != "warn" && gate != "floor")) {
      std::fprintf(stderr, "  FAIL  %s: malformed baseline entry\n", name.c_str());
      ++failures;
      continue;
    }
    if (!fresh_metrics.contains(name)) {
      std::fprintf(stderr, "  FAIL  %s: missing from fresh artifact\n", name.c_str());
      ++failures;
      continue;
    }
    const double fresh_value = fresh_metrics[name].as_double();
    if (fresh_value <= 0.0) {
      std::fprintf(stderr, "  FAIL  %s: non-positive fresh value %g\n", name.c_str(), fresh_value);
      ++failures;
      continue;
    }
    // factor > 1 means the fresh value is worse than the baseline.
    const double factor =
        direction == "higher" ? base_value / fresh_value : fresh_value / base_value;
    const char* verdict = "ok  ";
    if (gate == "floor") {
      // Absolute threshold: the baseline value IS the requirement.
      if (factor > 1.0) {
        verdict = "FAIL";
        ++failures;
      } else if (factor >= 1.0 / kWarnFactor) {
        verdict = "WARN";  // passing, but within 25% of the floor
      }
    } else if (factor >= kFailFactor && gate == "fail") {
      verdict = "FAIL";
      ++failures;
    } else if (factor >= kWarnFactor) {
      verdict = "WARN";
    }
    std::printf("  %s  %-28s fresh %12.6g  baseline %12.6g  (%.2fx %s, gate=%s)\n", verdict,
                name.c_str(), fresh_value, base_value, factor,
                factor >= 1.0 ? "worse" : "better-or-equal", gate.c_str());
  }
  return failures;
}

// --------------------------------------------------------------- --prom

struct PromSample {
  std::string name;          // full sample name (incl. _bucket/_sum/_count)
  std::string series_key;    // labels with any le="..." removed
  std::string le;            // le label value ("" when absent)
  double value = 0.0;
  std::size_t line = 0;
};

/// Parse `name{labels} value` / `name value`. Returns false (with a
/// diagnostic) on anything structurally broken.
bool parse_prom_sample(std::string_view text, std::size_t line_no, PromSample& out,
                       int& errors) {
  const auto bad = [&](const char* why) {
    std::fprintf(stderr, "  FAIL  line %zu: %s\n", line_no, why);
    ++errors;
    return false;
  };
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) != 0 || text[i] == '_' ||
          text[i] == ':')) {
    ++i;
  }
  if (i == 0) return bad("sample does not start with a metric name");
  out.name = std::string(text.substr(0, i));
  out.series_key.clear();
  out.le.clear();
  out.line = line_no;

  if (i < text.size() && text[i] == '{') {
    ++i;
    while (i < text.size() && text[i] != '}') {
      std::size_t key_start = i;
      while (i < text.size() && text[i] != '=') ++i;
      if (i >= text.size()) return bad("unterminated label pair");
      const std::string key(text.substr(key_start, i - key_start));
      ++i;  // '='
      if (i >= text.size() || text[i] != '"') return bad("label value not quoted");
      ++i;
      std::string value;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) {
          value += text[i + 1];
          i += 2;
        } else {
          value += text[i];
          ++i;
        }
      }
      if (i >= text.size()) return bad("unterminated label value");
      ++i;  // closing quote
      if (key == "le") {
        out.le = value;
      } else {
        if (!out.series_key.empty()) out.series_key += ',';
        out.series_key += key;
        out.series_key += '=';
        out.series_key += value;
      }
      if (i < text.size() && text[i] == ',') ++i;
    }
    if (i >= text.size()) return bad("unterminated label block");
    ++i;  // '}'
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i >= text.size()) return bad("sample has no value");
  char* end = nullptr;
  const std::string value_text(text.substr(i));
  out.value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str()) return bad("sample value is not a number");
  return true;
}

int check_prometheus(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_check: cannot open exposition file %s\n", path.c_str());
    return 1;
  }
  int errors = 0;
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::map<std::string, bool> helped;        // family -> has # HELP
  // family -> series_key -> buckets in file order (le text, cumulative count)
  std::map<std::string, std::map<std::string, std::vector<std::pair<std::string, double>>>>
      buckets;
  // family -> series_key -> _count value
  std::map<std::string, std::map<std::string, double>> counts;
  std::size_t samples = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::vector<std::string> parts = mcb::split(line, ' ');
      if (parts.size() >= 3 && parts[1] == "HELP") {
        helped[parts[2]] = true;
      } else if (parts.size() >= 4 && parts[1] == "TYPE") {
        if (types.count(parts[2]) != 0) {
          std::fprintf(stderr, "  FAIL  line %zu: duplicate # TYPE for %s\n", line_no,
                       parts[2].c_str());
          ++errors;
        }
        types[parts[2]] = parts[3];
      }
      continue;
    }
    PromSample sample;
    if (!parse_prom_sample(line, line_no, sample, errors)) continue;
    ++samples;

    // Resolve the owning family: histogram series names carry a suffix.
    std::string family = sample.name;
    bool is_bucket = false, is_count = false;
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (family.size() > suffix.size() &&
          family.compare(family.size() - suffix.size(), suffix.size(), suffix) == 0) {
        const std::string base = family.substr(0, family.size() - suffix.size());
        if (types.count(base) != 0 && types[base] == "histogram") {
          is_bucket = suffix == "_bucket";
          is_count = suffix == "_count";
          family = base;
          break;
        }
      }
    }
    if (types.count(family) == 0) {
      std::fprintf(stderr, "  FAIL  line %zu: sample %s precedes/lacks its # TYPE\n",
                   line_no, sample.name.c_str());
      ++errors;
      continue;
    }
    if (types[family] == "histogram" && family == sample.name) {
      std::fprintf(stderr,
                   "  FAIL  line %zu: bare sample %s for a histogram family\n",
                   line_no, sample.name.c_str());
      ++errors;
      continue;
    }
    if (is_bucket) {
      if (sample.le.empty()) {
        std::fprintf(stderr, "  FAIL  line %zu: _bucket sample without le label\n",
                     line_no);
        ++errors;
        continue;
      }
      buckets[family][sample.series_key].emplace_back(sample.le, sample.value);
    } else if (is_count) {
      counts[family][sample.series_key] = sample.value;
    }
  }

  for (const auto& [family, series] : buckets) {
    for (const auto& [key, entries] : series) {
      const std::string where = family + "{" + key + "}";
      double prev_le = -1.0, prev_count = -1.0;
      bool saw_inf = false;
      for (const auto& [le_text, cumulative] : entries) {
        if (saw_inf) {
          std::fprintf(stderr, "  FAIL  %s: bucket after le=\"+Inf\"\n", where.c_str());
          ++errors;
          break;
        }
        if (le_text == "+Inf") {
          saw_inf = true;
        } else {
          char* end = nullptr;
          const double le = std::strtod(le_text.c_str(), &end);
          if (end == le_text.c_str() || le <= prev_le) {
            std::fprintf(stderr, "  FAIL  %s: le bounds not ascending (le=\"%s\")\n",
                         where.c_str(), le_text.c_str());
            ++errors;
          }
          prev_le = le;
        }
        if (cumulative < prev_count) {
          std::fprintf(stderr, "  FAIL  %s: buckets not cumulative at le=\"%s\"\n",
                       where.c_str(), le_text.c_str());
          ++errors;
        }
        prev_count = cumulative;
      }
      if (!saw_inf) {
        std::fprintf(stderr, "  FAIL  %s: missing le=\"+Inf\" bucket\n", where.c_str());
        ++errors;
      } else if (counts.count(family) == 0 || counts[family].count(key) == 0) {
        std::fprintf(stderr, "  FAIL  %s: histogram series without _count\n",
                     where.c_str());
        ++errors;
      } else if (entries.back().second != counts[family][key]) {
        std::fprintf(stderr, "  FAIL  %s: +Inf bucket %g != _count %g\n", where.c_str(),
                     entries.back().second, counts[family][key]);
        ++errors;
      }
    }
  }
  for (const auto& [family, type] : types) {
    (void)type;
    if (helped.count(family) == 0) {
      std::fprintf(stderr, "  FAIL  %s: # TYPE without # HELP\n", family.c_str());
      ++errors;
    }
  }
  if (samples == 0) {
    std::fprintf(stderr, "  FAIL  %s: no samples in exposition\n", path.c_str());
    ++errors;
  }
  if (errors == 0) {
    std::printf(
        "bench_check: %s OK — %zu samples, %zu families, %zu histogram series valid\n",
        path.c_str(), samples, types.size(), [&] {
          std::size_t n = 0;
          for (const auto& [f, s] : buckets) {
            (void)f;
            n += s.size();
          }
          return n;
        }());
  }
  return errors;
}

// ---------------------------------------------------------- --collapsed

int check_collapsed(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "bench_check: cannot open collapsed profile %s\n", path.c_str());
    return 1;
  }
  int errors = 0;
  std::size_t stacks = 0;
  std::uint64_t total_samples = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const auto bad = [&](const char* why) {
      std::fprintf(stderr, "  FAIL  line %zu: %s\n", line_no, why);
      ++errors;
    };
    if (line.empty()) {
      bad("empty line in collapsed profile");
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      bad("expected 'frames COUNT' with exactly one separating space");
      continue;
    }
    const std::string_view stack = std::string_view(line).substr(0, space);
    const std::string_view count_text = std::string_view(line).substr(space + 1);
    if (stack.find(' ') != std::string_view::npos) {
      bad("frame names contain an unsanitized space");
      continue;
    }
    bool frame_ok = true;
    std::size_t frame_start = 0;
    for (std::size_t i = 0; i <= stack.size(); ++i) {
      if (i == stack.size() || stack[i] == ';') {
        if (i == frame_start) frame_ok = false;  // empty frame (";;" or edge)
        frame_start = i + 1;
      }
    }
    if (!frame_ok) {
      bad("empty frame in stack");
      continue;
    }
    std::uint64_t count = 0;
    if (!mcb::parse_u64(count_text, count) || count == 0) {
      bad("count is not a positive integer");
      continue;
    }
    ++stacks;
    total_samples += count;
  }
  if (stacks == 0) {
    std::fprintf(stderr, "  FAIL  %s: no stacks in collapsed profile\n", path.c_str());
    ++errors;
  }
  if (errors == 0) {
    std::printf("bench_check: %s OK — %zu unique stacks, %llu samples\n", path.c_str(),
                stacks, static_cast<unsigned long long>(total_samples));
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string_view(argv[1]) == "--prom") {
    return check_prometheus(argv[2]) == 0 ? 0 : 1;
  }
  if (argc == 3 && std::string_view(argv[1]) == "--collapsed") {
    return check_collapsed(argv[2]) == 0 ? 0 : 1;
  }
  if (argc < 3 || (argc - 1) % 2 != 0) {
    std::fprintf(stderr,
                 "usage: bench_check BASELINE FRESH [BASELINE FRESH ...]\n"
                 "       bench_check --prom EXPOSITION_FILE\n"
                 "       bench_check --collapsed PROFILE_FILE\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    failures += check_pair(argv[i], argv[i + 1]);
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_check: %d hard failure(s) — a gated metric regressed >= %.1fx.\n"
                 "If the regression is intentional, refresh bench/baselines/ (see header).\n",
                 failures, kFailFactor);
    return 1;
  }
  std::printf("bench_check: all gated metrics within %.1fx of baseline\n", kFailFactor);
  return 0;
}
