// ExtendedCharacterizer — the paper's §VI future-work direction:
// "by adding to the Roofline model the bandwidth of other hardware
// components (e.g. cache, interconnect and GPUs) it is possible to
// expand the Job Characterizer to create other labels for the job data,
// such as interconnect-bound and GPU-bound."
//
// Formulation: for each modeled resource r with per-node peak P_r and
// per-node attained rate a_r, the job's utilization of r is u_r = a_r /
// P_r; the job is bound by the resource with the highest utilization.
// For the two classic resources this is *exactly* the Roofline rule:
// argmax(p/P_peak, mb/B_peak) picks compute iff op = p/mb > P/B = op_r.
// Adding the interconnect adds a third utilization u_net = nb / N_peak
// from the Tofu byte counter (perf6).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>

#include "roofline/characterizer.hpp"

namespace mcb {

enum class ExtendedBoundedness : std::uint8_t {
  kMemoryBound = 0,
  kComputeBound = 1,
  kInterconnectBound = 2,
};

const char* extended_boundedness_name(ExtendedBoundedness b) noexcept;

/// Per-job utilizations of the three modeled resources.
struct ResourceUtilization {
  double compute = 0.0;       ///< p_j / peak_gflops
  double memory = 0.0;        ///< mb_j / peak_bandwidth
  double interconnect = 0.0;  ///< nb_j / peak_network (0 when unmodeled)

  ExtendedBoundedness dominant() const noexcept;
};

class ExtendedCharacterizer {
 public:
  /// Requires spec.peak_network_gbs > 0 for the interconnect roof; with
  /// 0 the classifier degenerates to the two-class characterizer.
  explicit ExtendedCharacterizer(MachineSpec spec, CounterModel model = {});

  const MachineSpec& spec() const noexcept { return base_.spec(); }
  const Characterizer& base() const noexcept { return base_; }

  /// Per-node-average attained network bandwidth, GByte/s (from perf6).
  static double network_bandwidth_gbs(const JobRecord& job);

  std::optional<ResourceUtilization> utilization(const JobRecord& job) const;
  std::optional<ExtendedBoundedness> characterize(const JobRecord& job) const;

  /// Three-class labels for a batch; uncharacterizable jobs fall back to
  /// memory-bound (majority class), counted in `skipped`.
  std::vector<ExtendedBoundedness> generate_labels(std::span<const JobRecord> jobs,
                                                   std::size_t* skipped = nullptr) const;

 private:
  Characterizer base_;
};

}  // namespace mcb
