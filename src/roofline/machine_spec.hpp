// Per-node machine specification for the Roofline model (Williams 2009).
//
// The ridge point op_r = peak_performance / peak_memory_bandwidth is the
// minimum operational intensity (flops per byte of memory traffic) at
// which a computation can reach the node's peak performance. Jobs with
// op < op_r are memory-bound; op >= op_r compute-bound (paper §III-C:
// "compute-bound if op_j is greater than op_r, memory-bound otherwise").
#pragma once

#include <string>

namespace mcb {

struct MachineSpec {
  std::string name = "node";
  double peak_gflops = 0.0;        ///< FP64 peak per node, GFlop/s
  double peak_bandwidth_gbs = 0.0; ///< memory bandwidth per node, GByte/s
  /// Interconnect injection bandwidth per node, GByte/s (0 = unmodeled).
  /// Used by the ExtendedCharacterizer for the paper's future-work
  /// interconnect-bound class (§VI); the classic two-class Roofline
  /// ignores it.
  double peak_network_gbs = 0.0;

  /// Ridge-point operational intensity, Flops/Byte.
  double ridge_point() const noexcept {
    return peak_bandwidth_gbs > 0.0 ? peak_gflops / peak_bandwidth_gbs : 0.0;
  }

  /// Attainable performance at intensity `op` (the roofline curve),
  /// GFlop/s: min(peak, op * bandwidth).
  double attainable_gflops(double op) const noexcept {
    const double bw_bound = op * peak_bandwidth_gbs;
    return bw_bound < peak_gflops ? bw_bound : peak_gflops;
  }
};

/// A Fugaku FX1000 node in boost mode (2.2 GHz): ~3.3 TFlop/s FP64 and
/// 1024 GB/s of HBM2 bandwidth, giving a ridge point of ~3.3 Flops/Byte
/// (paper Table I and §IV-B; boost mode is used because the Roofline must
/// reflect the best attainable performance).
MachineSpec fugaku_node_spec();

/// Fugaku system-level facts from paper Table I, for bench_table1.
struct FugakuSystemFacts {
  std::string architecture = "Armv8.2-A SVE 512 bit";
  std::string os = "Red Hat Enterprise Linux 8";
  int nodes = 158'976;
  int cores_per_node = 48;
  int assistant_cores_per_node = 4;
  std::string memory = "HBM2, 32 GiB, 1024 GBytes/s";
  double system_peak_pflops = 537.0;
  double node_peak_tflops = 3.3;
  std::string network = "Tofu D Interconnect (28 Gbps)";
};

}  // namespace mcb
