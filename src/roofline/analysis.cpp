#include "roofline/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mcb {

std::uint64_t JobTypeBreakdown::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& row : counts)
    for (const auto c : row) sum += c;
  return sum;
}

std::uint64_t JobTypeBreakdown::by_label(Boundedness b) const noexcept {
  const auto i = static_cast<std::size_t>(b);
  return counts[0][i] + counts[1][i];
}

std::uint64_t JobTypeBreakdown::by_frequency(FrequencyMode f) const noexcept {
  const auto i = static_cast<std::size_t>(f);
  return counts[i][0] + counts[i][1];
}

double JobTypeBreakdown::memory_to_compute_ratio() const noexcept {
  const auto comp = by_label(Boundedness::kComputeBound);
  if (comp == 0) return 0.0;
  return static_cast<double>(by_label(Boundedness::kMemoryBound)) / static_cast<double>(comp);
}

double JobTypeBreakdown::memory_bound_normal_fraction() const noexcept {
  const auto mem = by_label(Boundedness::kMemoryBound);
  if (mem == 0) return 0.0;
  return static_cast<double>(at(FrequencyMode::kNormal, Boundedness::kMemoryBound)) /
         static_cast<double>(mem);
}

double JobTypeBreakdown::compute_bound_boost_fraction() const noexcept {
  const auto comp = by_label(Boundedness::kComputeBound);
  if (comp == 0) return 0.0;
  return static_cast<double>(at(FrequencyMode::kBoost, Boundedness::kComputeBound)) /
         static_cast<double>(comp);
}

RooflineAnalysis analyze_jobs(const Characterizer& characterizer,
                              std::span<const JobRecord> jobs) {
  RooflineAnalysis analysis;
  analysis.jobs.reserve(jobs.size());
  for (const JobRecord& job : jobs) {
    const auto metrics = characterizer.compute_metrics(job);
    if (!metrics.has_value()) {
      ++analysis.skipped;
      continue;
    }
    CharacterizedJob cj;
    cj.job = &job;
    cj.metrics = *metrics;
    cj.label = characterizer.classify_intensity(metrics->operational_intensity);
    analysis.breakdown.counts[static_cast<std::size_t>(job.frequency)]
                             [static_cast<std::size_t>(cj.label)] += 1;
    analysis.jobs.push_back(cj);
  }
  return analysis;
}

double RooflineAnalysis::fraction_near_roofline(const Characterizer& characterizer,
                                                double fraction) const {
  if (jobs.empty()) return 0.0;
  std::size_t near = 0;
  for (const auto& cj : jobs) {
    const double roof = characterizer.spec().attainable_gflops(
        cj.metrics.operational_intensity);
    if (roof > 0.0 && cj.metrics.performance_gflops >= fraction * roof) ++near;
  }
  return static_cast<double>(near) / static_cast<double>(jobs.size());
}

double RooflineAnalysis::frequency_intensity_correlation() const {
  std::vector<double> freq, log_op;
  freq.reserve(jobs.size());
  log_op.reserve(jobs.size());
  for (const auto& cj : jobs) {
    if (!std::isfinite(cj.metrics.operational_intensity) ||
        cj.metrics.operational_intensity <= 0.0) {
      continue;
    }
    freq.push_back(cj.job->frequency == FrequencyMode::kBoost ? 1.0 : 0.0);
    log_op.push_back(std::log10(cj.metrics.operational_intensity));
  }
  return pearson_correlation(freq, log_op);
}

LogGrid2D roofline_grid(const RooflineAnalysis& analysis, std::size_t x_bins,
                        std::size_t y_bins, const FrequencyMode* frequency) {
  // Fixed axes matching the paper's Fig. 3: intensity 1e-3..1e3 F/B,
  // performance 1e-3..1e4 GFlop/s.
  LogGrid2D grid(1e-3, 1e3, x_bins, 1e-3, 1e4, y_bins);
  for (const auto& cj : analysis.jobs) {
    if (frequency != nullptr && cj.job->frequency != *frequency) continue;
    if (!std::isfinite(cj.metrics.operational_intensity)) continue;
    grid.add(cj.metrics.operational_intensity, cj.metrics.performance_gflops);
  }
  return grid;
}

DailyTypeCounts daily_type_counts(const RooflineAnalysis& analysis, TimePoint start,
                                  TimePoint end) {
  DailyTypeCounts out;
  const std::int64_t days = std::max<std::int64_t>(0, day_index(end - 1, start) + 1);
  out.memory_bound.assign(static_cast<std::size_t>(days), 0);
  out.compute_bound.assign(static_cast<std::size_t>(days), 0);
  for (const auto& cj : analysis.jobs) {
    const TimePoint t = cj.job->submit_time;
    if (t < start || t >= end) continue;
    const auto day = static_cast<std::size_t>(day_index(t, start));
    if (cj.label == Boundedness::kMemoryBound) {
      ++out.memory_bound[day];
    } else {
      ++out.compute_bound[day];
    }
  }
  return out;
}

}  // namespace mcb
