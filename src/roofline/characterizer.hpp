// Job Characterizer (paper §III-C and §IV-B).
//
// Converts raw A64FX performance counters into per-node-average
// performance p_j, memory bandwidth mb_j and operational intensity op_j
// (Equations 1-5 of the paper), and labels each job memory-bound or
// compute-bound by comparing op_j against the machine's ridge point.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/job_record.hpp"
#include "roofline/machine_spec.hpp"

namespace mcb {

enum class Boundedness : std::uint8_t {
  kMemoryBound = 0,
  kComputeBound = 1,
};

inline const char* boundedness_name(Boundedness b) noexcept {
  return b == Boundedness::kComputeBound ? "compute-bound" : "memory-bound";
}

/// Parse "memory-bound"/"compute-bound" (also accepts "memory"/"compute").
std::optional<Boundedness> parse_boundedness(const std::string& text);

/// Operational intensity reported for jobs with measured floating-point
/// work but zero measured memory traffic ("pure compute"). Eq. 3 would
/// divide by zero; instead of returning +inf (which poisons downstream
/// log10/binning arithmetic and trips UBSan's float checks) we report
/// this finite sentinel. It sits far above any physical ridge point
/// (Fugaku's is ~3.3 F/B), so such jobs always classify compute-bound.
inline constexpr double kPureComputeIntensity = 1e9;

/// Derived per-job metrics, normalized to a single node (Eq. 1-3).
struct JobMetrics {
  double flops = 0.0;               ///< total FP64 operations (Eq. 4)
  double moved_bytes = 0.0;         ///< total memory traffic in bytes (Eq. 5)
  double performance_gflops = 0.0;  ///< p_j, per-node GFlop/s (Eq. 1)
  double bandwidth_gbs = 0.0;       ///< mb_j, per-node GByte/s (Eq. 2)
  double operational_intensity = 0.0;  ///< op_j = p_j / mb_j (Eq. 3)
};

/// A64FX counter conversion constants (paper §IV-B).
struct CounterModel {
  double sve_width_factor = 4.0;   ///< 512-bit SVE = 4 x 128-bit slices (Eq. 4)
  double cache_line_bytes = 256.0; ///< bytes moved per memory request (Eq. 5)
  double cmg_core_count = 12.0;    ///< CMG duplication divisor (Eq. 5)
};

/// Total floating-point operations from counters:
///   #flops = perf2 + perf3 * 4                                   (Eq. 4)
double flops_from_counters(const JobRecord& job, const CounterModel& model = {});

/// Total moved memory bytes from counters:
///   #moved_bytes = (perf4 + perf5) * 256 / 12                    (Eq. 5)
double moved_bytes_from_counters(const JobRecord& job, const CounterModel& model = {});

class Characterizer {
 public:
  /// The characterizer is bound to a node specification at construction;
  /// the ridge point is computed once here (paper: at class init time).
  explicit Characterizer(MachineSpec spec, CounterModel model = {});

  const MachineSpec& spec() const noexcept { return spec_; }
  double ridge_point() const noexcept { return ridge_point_; }

  /// Eq. 1-5. Jobs with non-positive duration or node count — or with no
  /// counter activity at all (zero flops AND zero memory traffic) — yield
  /// std::nullopt (cannot be characterized). Jobs with flops but zero
  /// memory traffic get op = kPureComputeIntensity (documented finite
  /// sentinel; labels compute-bound).
  std::optional<JobMetrics> compute_metrics(const JobRecord& job) const;

  /// Label a single job; nullopt when metrics are undefined.
  std::optional<Boundedness> characterize(const JobRecord& job) const;

  /// Paper's generate_labels: label a batch. Uncharacterizable jobs are
  /// labelled memory-bound (the conservative majority class) and counted
  /// in `skipped` if provided.
  std::vector<Boundedness> generate_labels(std::span<const JobRecord> jobs,
                                           std::size_t* skipped = nullptr) const;

  /// Classification from a precomputed intensity.
  Boundedness classify_intensity(double op) const noexcept {
    return op > ridge_point_ ? Boundedness::kComputeBound : Boundedness::kMemoryBound;
  }

 private:
  MachineSpec spec_;
  CounterModel model_;
  double ridge_point_;
};

}  // namespace mcb
