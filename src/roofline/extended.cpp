#include "roofline/extended.hpp"

namespace mcb {

const char* extended_boundedness_name(ExtendedBoundedness b) noexcept {
  switch (b) {
    case ExtendedBoundedness::kMemoryBound: return "memory-bound";
    case ExtendedBoundedness::kComputeBound: return "compute-bound";
    case ExtendedBoundedness::kInterconnectBound: return "interconnect-bound";
  }
  return "unknown";
}

ExtendedBoundedness ResourceUtilization::dominant() const noexcept {
  // Ties resolve toward the earlier resource in (memory, compute,
  // interconnect) order, matching the base characterizer's convention
  // that op == ridge is memory-bound.
  ExtendedBoundedness best = ExtendedBoundedness::kMemoryBound;
  double best_util = memory;
  if (compute > best_util) {
    best = ExtendedBoundedness::kComputeBound;
    best_util = compute;
  }
  if (interconnect > best_util) {
    best = ExtendedBoundedness::kInterconnectBound;
  }
  return best;
}

ExtendedCharacterizer::ExtendedCharacterizer(MachineSpec spec, CounterModel model)
    : base_(std::move(spec), model) {}

double ExtendedCharacterizer::network_bandwidth_gbs(const JobRecord& job) {
  const std::int64_t duration = job.duration();
  if (duration <= 0 || job.nodes_allocated == 0) return 0.0;
  return job.perf6 /
         (static_cast<double>(duration) * static_cast<double>(job.nodes_allocated)) / 1e9;
}

std::optional<ResourceUtilization> ExtendedCharacterizer::utilization(
    const JobRecord& job) const {
  const auto metrics = base_.compute_metrics(job);
  if (!metrics.has_value()) return std::nullopt;
  ResourceUtilization util;
  const MachineSpec& machine = base_.spec();
  if (machine.peak_gflops > 0.0) {
    util.compute = metrics->performance_gflops / machine.peak_gflops;
  }
  if (machine.peak_bandwidth_gbs > 0.0) {
    util.memory = metrics->bandwidth_gbs / machine.peak_bandwidth_gbs;
  }
  if (machine.peak_network_gbs > 0.0 && job.perf6 >= 0.0) {
    util.interconnect = network_bandwidth_gbs(job) / machine.peak_network_gbs;
  }
  return util;
}

std::optional<ExtendedBoundedness> ExtendedCharacterizer::characterize(
    const JobRecord& job) const {
  const auto util = utilization(job);
  if (!util.has_value()) return std::nullopt;
  return util->dominant();
}

std::vector<ExtendedBoundedness> ExtendedCharacterizer::generate_labels(
    std::span<const JobRecord> jobs, std::size_t* skipped) const {
  std::vector<ExtendedBoundedness> labels;
  labels.reserve(jobs.size());
  std::size_t skip_count = 0;
  for (const JobRecord& job : jobs) {
    const auto label = characterize(job);
    if (label.has_value()) {
      labels.push_back(*label);
    } else {
      labels.push_back(ExtendedBoundedness::kMemoryBound);
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return labels;
}

}  // namespace mcb
