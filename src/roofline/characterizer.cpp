#include "roofline/characterizer.hpp"

namespace mcb {

MachineSpec fugaku_node_spec() {
  MachineSpec spec;
  spec.name = "Fugaku FX1000 node (boost mode, 2.2 GHz)";
  spec.peak_gflops = 3380.0;        // ~3.38 TFlop/s FP64 per node
  spec.peak_bandwidth_gbs = 1024.0; // HBM2
  spec.peak_network_gbs = 40.8;     // Tofu-D, 6 ports x 6.8 GB/s injection
  return spec;
}

std::optional<Boundedness> parse_boundedness(const std::string& text) {
  if (text == "memory-bound" || text == "memory") return Boundedness::kMemoryBound;
  if (text == "compute-bound" || text == "compute") return Boundedness::kComputeBound;
  return std::nullopt;
}

double flops_from_counters(const JobRecord& job, const CounterModel& model) {
  return job.perf2 + job.perf3 * model.sve_width_factor;
}

double moved_bytes_from_counters(const JobRecord& job, const CounterModel& model) {
  return (job.perf4 + job.perf5) * model.cache_line_bytes / model.cmg_core_count;
}

Characterizer::Characterizer(MachineSpec spec, CounterModel model)
    : spec_(std::move(spec)), model_(model), ridge_point_(spec_.ridge_point()) {}

std::optional<JobMetrics> Characterizer::compute_metrics(const JobRecord& job) const {
  const std::int64_t duration = job.duration();
  if (duration <= 0 || job.nodes_allocated == 0) return std::nullopt;

  JobMetrics m;
  m.flops = flops_from_counters(job, model_);
  m.moved_bytes = moved_bytes_from_counters(job, model_);
  if (!(m.flops >= 0.0) || !(m.moved_bytes >= 0.0)) return std::nullopt;  // also rejects NaN
  // No counter activity at all: the job did no measurable work, so Eq. 3
  // is 0/0 — uncharacterizable rather than arbitrarily labelled.
  if (m.flops == 0.0 && m.moved_bytes == 0.0) return std::nullopt;

  const double node_seconds = static_cast<double>(duration) *
                              static_cast<double>(job.nodes_allocated);
  m.performance_gflops = m.flops / node_seconds / 1e9;       // Eq. 1
  m.bandwidth_gbs = m.moved_bytes / node_seconds / 1e9;      // Eq. 2
  m.operational_intensity =
      m.bandwidth_gbs > 0.0 ? m.performance_gflops / m.bandwidth_gbs  // Eq. 3
                            : kPureComputeIntensity;  // zero traffic: documented sentinel
  return m;
}

std::optional<Boundedness> Characterizer::characterize(const JobRecord& job) const {
  const auto metrics = compute_metrics(job);
  if (!metrics.has_value()) return std::nullopt;
  return classify_intensity(metrics->operational_intensity);
}

std::vector<Boundedness> Characterizer::generate_labels(std::span<const JobRecord> jobs,
                                                        std::size_t* skipped) const {
  std::vector<Boundedness> labels;
  labels.reserve(jobs.size());
  std::size_t skip_count = 0;
  for (const JobRecord& job : jobs) {
    const auto label = characterize(job);
    if (label.has_value()) {
      labels.push_back(*label);
    } else {
      labels.push_back(Boundedness::kMemoryBound);
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return labels;
}

}  // namespace mcb
