// Workload-level roofline analysis (paper §IV-C): the aggregate numbers
// behind Table II and Figures 3-5, computed from a batch of jobs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "data/job_record.hpp"
#include "roofline/characterizer.hpp"
#include "util/histogram.hpp"

namespace mcb {

/// Per-job characterization output retained for plotting/analysis.
struct CharacterizedJob {
  const JobRecord* job = nullptr;
  JobMetrics metrics;
  Boundedness label = Boundedness::kMemoryBound;
};

/// Table II: job counts broken down by frequency mode and label.
struct JobTypeBreakdown {
  // [frequency mode][label] with FrequencyMode / Boundedness as indices.
  std::array<std::array<std::uint64_t, 2>, 2> counts{};

  std::uint64_t total() const noexcept;
  std::uint64_t by_label(Boundedness b) const noexcept;
  std::uint64_t by_frequency(FrequencyMode f) const noexcept;
  std::uint64_t at(FrequencyMode f, Boundedness b) const noexcept {
    return counts[static_cast<std::size_t>(f)][static_cast<std::size_t>(b)];
  }
  /// memory-bound : compute-bound ratio (paper reports ~3.4x).
  double memory_to_compute_ratio() const noexcept;
  /// Fraction of memory-bound jobs run in *normal* mode (paper ~54%).
  double memory_bound_normal_fraction() const noexcept;
  /// Fraction of compute-bound jobs run in *boost* mode (paper ~30%).
  double compute_bound_boost_fraction() const noexcept;
};

struct RooflineAnalysis {
  std::vector<CharacterizedJob> jobs;   ///< only characterizable jobs
  std::size_t skipped = 0;              ///< jobs without valid metrics
  JobTypeBreakdown breakdown;

  /// Fraction of jobs whose attained performance is within `fraction`
  /// of the roofline at their intensity ("well-engineered" jobs; the
  /// paper observes only a few clusters close to the roofline).
  double fraction_near_roofline(const Characterizer& characterizer,
                                double fraction = 0.5) const;

  /// Pearson correlation between frequency choice (0/1) and log10
  /// operational intensity — the paper observes no correlation (Fig. 5).
  double frequency_intensity_correlation() const;
};

/// Characterize a batch and accumulate the aggregate statistics.
RooflineAnalysis analyze_jobs(const Characterizer& characterizer,
                              std::span<const JobRecord> jobs);

/// Build the textual roofline density plot (Figs. 3/5). When `frequency`
/// is set, only jobs submitted at that mode are included (Fig. 5 panels).
LogGrid2D roofline_grid(const RooflineAnalysis& analysis,
                        std::size_t x_bins = 100, std::size_t y_bins = 24,
                        const FrequencyMode* frequency = nullptr);

/// Daily counts by label (Fig. 4) over [start, end) in whole days.
struct DailyTypeCounts {
  std::vector<std::uint64_t> memory_bound;   ///< per day
  std::vector<std::uint64_t> compute_bound;  ///< per day
};
DailyTypeCounts daily_type_counts(const RooflineAnalysis& analysis,
                                  TimePoint start, TimePoint end);

}  // namespace mcb
