// Roofline self-profiling of the serving stack (DESIGN.md §14).
//
// MCBound classifies *jobs* as memory- or compute-bound from perf
// counters; this collector dogfoods the same model onto the server's
// own request pipeline. The tracer accumulates per-stage hardware
// counters (instructions, LLC misses) via the Span seam; at scrape time
// this collector derives each stage's live arithmetic intensity
//
//     op_stage = instructions / (llc_misses * 64 bytes)
//
// and labels the stage through the existing Characterizer ridge-point
// comparison — the serving-stack analogue of PAPER.md Eq. 3–5, with
// instructions standing in for FLOPs (the serving pipeline is integer
// hashing and tree walks, not FP64 SVE).
//
// Layering: roofline sits above obs (tools/lint/layers.txt), so the
// derived-intensity families live here while the raw counter totals are
// exported by the tracer itself. In the degraded path (no counters) the
// families are present but empty; mcb_perf_available 0 on the tracer
// side tells scrapers why.
#pragma once

#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "roofline/characterizer.hpp"

namespace mcb {

/// Collector deriving mcb_stage_arith_intensity and
/// mcb_stage_boundedness from the tracer's counter totals. Registered by
/// the API server next to the tracer; safe to scrape from any thread
/// (reads only monotonic atomics + an immutable Characterizer copy).
class StageProfileCollector final : public obs::Collector {
 public:
  /// `tracer` must outlive the collector; `characterizer` is copied (it
  /// is a value type whose ridge point is fixed at construction).
  StageProfileCollector(const obs::RequestTracer& tracer,
                        Characterizer characterizer);

  /// Intensity for one stage right now; kPureComputeIntensity when the
  /// stage has instructions but no measured misses, 0 with no data.
  double stage_intensity(obs::Stage stage) const noexcept;

  void collect_metrics(std::vector<obs::MetricFamily>& out) const override;

 private:
  const obs::RequestTracer& tracer_;
  Characterizer characterizer_;
};

}  // namespace mcb
