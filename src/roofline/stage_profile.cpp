#include "roofline/stage_profile.hpp"

namespace mcb {

StageProfileCollector::StageProfileCollector(const obs::RequestTracer& tracer,
                                            Characterizer characterizer)
    : tracer_(tracer), characterizer_(std::move(characterizer)) {}

double StageProfileCollector::stage_intensity(obs::Stage stage) const noexcept {
  const std::uint64_t instructions =
      tracer_.stage_counter_total(stage, obs::perf::Counter::kInstructions);
  if (instructions == 0) return 0.0;
  const std::uint64_t miss_bytes =
      tracer_.stage_counter_total(stage, obs::perf::Counter::kLlcMisses) *
      obs::perf::kLlcLineBytes;
  if (miss_bytes == 0) return kPureComputeIntensity;  // Eq. 3 sentinel
  return static_cast<double>(instructions) / static_cast<double>(miss_bytes);
}

void StageProfileCollector::collect_metrics(
    std::vector<obs::MetricFamily>& out) const {
  obs::MetricFamily intensity;
  intensity.name = "mcb_stage_arith_intensity";
  intensity.help =
      "Live arithmetic intensity per request stage: instructions / LLC-miss "
      "bytes (paper Eq. 3 applied to the serving stack)";
  intensity.type = obs::MetricType::kGauge;

  obs::MetricFamily bounded;
  bounded.name = "mcb_stage_boundedness";
  bounded.help =
      "Stage classification against the roofline ridge point: 1 = "
      "compute-bound, 0 = memory-bound (label carries the name)";
  bounded.type = obs::MetricType::kGauge;

  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    // Stages with no counted instructions stay absent from both
    // families: an empty family (degraded path / cold stage) is honest,
    // a fabricated 0-intensity "memory-bound" point is not.
    if (tracer_.stage_counter_total(stage, obs::perf::Counter::kInstructions) ==
        0) {
      continue;
    }
    const double op = stage_intensity(stage);
    const Boundedness label = characterizer_.classify_intensity(op);
    intensity.points.push_back(
        obs::scalar_point({{"stage", obs::stage_name(stage)}}, op));
    bounded.points.push_back(obs::scalar_point(
        {{"stage", obs::stage_name(stage)},
         {"label", boundedness_name(label)}},
        label == Boundedness::kComputeBound ? 1.0 : 0.0));
  }
  out.push_back(std::move(intensity));
  out.push_back(std::move(bounded));
}

}  // namespace mcb
