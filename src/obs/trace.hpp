// Request tracing (DESIGN.md §10): per-request trace IDs, RAII stage
// spans, per-stage latency histograms, and a fixed-size flight recorder
// retaining the most recent slow/errored traces.
//
// Model: the serving layer creates one TraceContext per request (the ID
// is adopted from an X-Request-Id header or generated) and installs it
// as the thread's current trace (TraceScope). Any code on that thread —
// the router, the handler, the encoder, the classifier — opens a
// Span(stage) that measures steady-clock time into the context's stage
// slot and the tracer's per-stage histogram. When no trace is current
// (training workflows, benchmarks, tests calling library code
// directly), a Span costs one thread-local load and a branch — the
// disabled-span overhead is gated at <= ~20 ns by bench_check.
//
// finish() feeds the flight recorder: a mutex-sharded ring buffer of
// fixed-size slots (no allocation beyond copying into the pre-sized
// slot) that keeps the last N traces that were slow (>= threshold) or
// errored (status >= 400), with per-stage breakdowns, served as JSON by
// GET /debug/requests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace mcb::obs {

/// Request pipeline stages (paper §III: the online inference path).
/// Stages may nest (kEncode contains the cache-miss encoding that
/// kCacheLookup precedes), so stage times are attributions, not a
/// partition of wall time.
enum class Stage : std::uint8_t {
  kParse = 0,    ///< HTTP + body JSON parsing
  kRoute,        ///< routing-table lookup / method match
  kEncode,       ///< feature-string hashing into the embedding
  kCacheLookup,  ///< sharded embedding-cache probe
  kClassify,     ///< KNN / flat-forest inference
  kSerialize,    ///< response serialization
};
inline constexpr std::size_t kStageCount = 6;

const char* stage_name(Stage stage) noexcept;

class RequestTracer;

/// Per-request trace state. Created by RequestTracer::make_trace() on
/// the request thread; spans accumulate into the stage slots without
/// synchronization (one trace is owned by one thread at a time).
class TraceContext {
 public:
  const std::string& id() const noexcept { return id_; }
  /// Adopt a client-supplied ID (sanitized + truncated); empty keeps
  /// the generated one.
  void adopt_id(std::string_view client_id);

  /// Bounded route key recorded by the router ("POST /predict",
  /// "(unmatched)") — never the raw attacker-controlled path.
  void set_route(std::string_view route) { route_.assign(route); }
  const std::string& route() const noexcept { return route_; }

  std::uint64_t stage_ns(Stage stage) const noexcept {
    return stage_ns_[static_cast<std::size_t>(stage)];
  }
  std::uint32_t stage_calls(Stage stage) const noexcept {
    return stage_calls_[static_cast<std::size_t>(stage)];
  }
  RequestTracer* tracer() const noexcept { return tracer_; }

 private:
  friend class RequestTracer;
  friend class Span;

  RequestTracer* tracer_ = nullptr;
  std::string id_;
  std::string route_;
  std::uint64_t start_ns_ = 0;
  std::array<std::uint64_t, kStageCount> stage_ns_{};
  std::array<std::uint32_t, kStageCount> stage_calls_{};
};

/// The thread's current trace, or nullptr outside a request.
TraceContext* current_trace() noexcept;

/// RAII installer for the thread-local current trace (restores the
/// previous one, so nested scopes — socketless dispatch from inside a
/// handler — behave).
class TraceScope {
 public:
  explicit TraceScope(TraceContext* trace) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* previous_;
};

/// RAII stage timer. The one-argument form binds to the thread's
/// current trace; when none is installed the span is disabled and costs
/// a thread-local read plus a branch.
class Span {
 public:
  explicit Span(Stage stage) noexcept : Span(current_trace(), stage) {}
  Span(TraceContext* trace, Stage stage) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceContext* trace_;
  Stage stage_;
  std::uint64_t start_ns_ = 0;
};

/// One retained trace in the flight recorder. Fixed-size POD slot: the
/// hot-path copy into it allocates nothing.
struct TraceRecord {
  static constexpr std::size_t kIdCapacity = 64;
  static constexpr std::size_t kRouteCapacity = 64;

  char id[kIdCapacity + 1] = {};
  char route[kRouteCapacity + 1] = {};
  int status = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kStageCount> stage_ns{};
  std::array<std::uint32_t, kStageCount> stage_calls{};
  std::uint64_t seq = 0;  ///< admission order (monotone across shards)
  bool used = false;
};

struct TracerConfig {
  std::size_t recorder_slots = 128;        ///< total ring capacity
  std::size_t recorder_shards = 4;         ///< independent mutexed rings
  std::uint64_t slow_threshold_ns = 10'000'000;  ///< retain when >= (10 ms)
  bool record_errors = true;               ///< retain any status >= 400
};

/// Owns the per-stage latency histograms (lock-free atomics) and the
/// flight recorder. One per HttpServer; registered as a Collector so
/// the stage histograms appear on /metrics in both formats.
class RequestTracer final : public Collector {
 public:
  explicit RequestTracer(TracerConfig config = {});

  /// Start a trace on the current thread; `client_id` non-empty adopts
  /// the client's ID, otherwise a process-unique one is generated.
  TraceContext make_trace(std::string_view client_id = {});

  /// Complete a trace: feeds the flight recorder when the request was
  /// slow or errored. `route` is the bounded route key ("POST /predict"
  /// or "(unmatched)"), never the raw attacker-controlled path.
  void finish(TraceContext& trace, int status, std::string_view route);

  /// Record a stage sample into the histograms without a trace context
  /// (used by Span; exposed for tests).
  void record_stage(Stage stage, std::uint64_t ns) noexcept;

  /// Current steady time through the clock seam, in ns. noexcept so the
  /// Span destructor (which calls this on the hot path) is provably
  /// non-throwing: clock_ is never empty — the constructor installs
  /// steady_now_ns and set_clock() replaces an empty argument with it —
  /// so the std::function invocation cannot raise bad_function_call.
  // NOLINTNEXTLINE(bugprone-exception-escape) — see invariant above
  std::uint64_t now_ns() const noexcept { return clock_(); }

  /// Replace the steady-clock seam (tests inject a fake clock). Not
  /// thread-safe; call before serving starts.
  void set_clock(std::function<std::uint64_t()> clock);

  const TracerConfig& config() const noexcept { return config_; }
  std::uint64_t traces_started() const noexcept {
    // relaxed: monotonic stat counter, no ordering needed
    return seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t traces_recorded() const noexcept {
    // relaxed: monotonic stat counter, no ordering needed
    return recorded_.load(std::memory_order_relaxed);
  }

  /// The newest retained traces (most recent first), at most `limit`.
  /// {"count":N,"requests":[{id,route,status,total_us,stages:{...}}]}
  Json debug_requests_json(std::size_t limit = 32) const;

  /// Per-stage latency histograms as mcb_stage_duration_seconds.
  void collect_metrics(std::vector<MetricFamily>& out) const override;

  /// JSON summary of the stage histograms for the default /metrics view:
  /// {stage: {count, total_us, p50_us, p99_us}}.
  Json stages_json() const;

 private:
  // Finite bucket upper bounds in seconds for stage latencies: 1 us ..
  // 4 s in x4 steps — spans two decades around the paper's per-job
  // costs (characterize ~1e-6 s, SBERT encode ~2e-3 s).
  static constexpr std::array<double, 12> kBucketBounds = {
      1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1.0, 4.0};

  struct StageHist {
    std::array<std::atomic<std::uint64_t>, kBucketBounds.size() + 1> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };

  struct Shard {
    mutable Mutex mutex;
    std::vector<TraceRecord> slots MCB_GUARDED_BY(mutex);
    std::size_t next MCB_GUARDED_BY(mutex) = 0;
  };

  TracerConfig config_;
  std::function<std::uint64_t()> clock_;
  std::uint64_t id_base_ = 0;  ///< random per-process prefix for generated IDs
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::array<StageHist, kStageCount> stages_;
  std::vector<Shard> shards_;
};

}  // namespace mcb::obs
