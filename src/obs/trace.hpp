// Request tracing (DESIGN.md §10): per-request trace IDs, RAII stage
// spans, per-stage latency histograms, and a fixed-size flight recorder
// retaining the most recent slow/errored traces.
//
// Model: the serving layer creates one TraceContext per request (the ID
// is adopted from an X-Request-Id header or generated) and installs it
// as the thread's current trace (TraceScope). Any code on that thread —
// the router, the handler, the encoder, the classifier — opens a
// Span(stage) that measures steady-clock time into the context's stage
// slot and the tracer's per-stage histogram. When no trace is current
// (training workflows, benchmarks, tests calling library code
// directly), a Span costs one thread-local load and a branch — the
// disabled-span overhead is gated at <= ~20 ns by bench_check.
//
// finish() feeds the flight recorder: a mutex-sharded ring buffer of
// fixed-size slots (no allocation beyond copying into the pre-sized
// slot) that keeps the last N traces that were slow (>= threshold) or
// errored (status >= 400), with per-stage breakdowns, served as JSON by
// GET /debug/requests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf/counters.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace mcb::obs {

/// Request pipeline stages (paper §III: the online inference path).
/// Stages may nest (kEncode contains the cache-miss encoding that
/// kCacheLookup precedes), so stage times are attributions, not a
/// partition of wall time.
enum class Stage : std::uint8_t {
  kParse = 0,    ///< HTTP + body JSON parsing
  kRoute,        ///< routing-table lookup / method match
  kEncode,       ///< feature-string hashing into the embedding
  kCacheLookup,  ///< sharded embedding-cache probe
  kClassify,     ///< KNN / flat-forest inference
  kSerialize,    ///< response serialization
};
inline constexpr std::size_t kStageCount = 6;

const char* stage_name(Stage stage) noexcept;

/// The tracer's built-in clock: monotonic nanoseconds via the invariant
/// TSC when the CPU advertises one (calibrated against the steady clock
/// once, on first RequestTracer construction), clock_gettime otherwise.
/// A span pays for two clock reads, so this is the single largest term
/// in the span_counters_ns bench gate (DESIGN.md §14).
std::uint64_t fast_now_ns() noexcept;

class RequestTracer;

/// Per-request trace state. Created by RequestTracer::make_trace() on
/// the request thread; spans accumulate into the stage slots without
/// synchronization (one trace is owned by one thread at a time).
class TraceContext {
 public:
  const std::string& id() const noexcept { return id_; }
  /// Adopt a client-supplied ID (sanitized + truncated); empty keeps
  /// the generated one.
  void adopt_id(std::string_view client_id);

  /// Bounded route key recorded by the router ("POST /predict",
  /// "(unmatched)") — never the raw attacker-controlled path.
  void set_route(std::string_view route) { route_.assign(route); }
  const std::string& route() const noexcept { return route_; }

  std::uint64_t stage_ns(Stage stage) const noexcept {
    return stage_ns_[static_cast<std::size_t>(stage)];
  }
  std::uint32_t stage_calls(Stage stage) const noexcept {
    return stage_calls_[static_cast<std::size_t>(stage)];
  }
  /// Hardware-counter delta attributed to `stage` so far (0 when the
  /// trace runs latency-only).
  std::uint64_t stage_counter(Stage stage, perf::Counter counter) const noexcept {
    return stage_counters_[static_cast<std::size_t>(stage)]
                          [static_cast<std::size_t>(counter)];
  }
  /// False when the tracer was disabled at make_trace() time: every span
  /// on this trace is a no-op and finish() discards it. The flag is a
  /// per-request snapshot, so a set_enabled() flip mid-request cannot
  /// tear one request's recording (DESIGN.md §10).
  bool armed() const noexcept { return armed_; }
  RequestTracer* tracer() const noexcept { return tracer_; }

 private:
  friend class RequestTracer;
  friend class Span;

  RequestTracer* tracer_ = nullptr;
  /// Counter source snapshot taken at make_trace(); nullptr runs the
  /// request latency-only. Snapshotting (rather than consulting the
  /// tracer per span) keeps attachment atomic per request.
  perf::CounterSource* counters_ = nullptr;
  bool armed_ = true;
  std::string id_;
  std::string route_;
  std::uint64_t start_ns_ = 0;
  std::array<std::uint64_t, kStageCount> stage_ns_{};
  std::array<std::uint32_t, kStageCount> stage_calls_{};
  std::array<std::array<std::uint64_t, perf::kCounterCount>, kStageCount>
      stage_counters_{};
};

/// The thread's current trace, or nullptr outside a request.
TraceContext* current_trace() noexcept;

/// RAII installer for the thread-local current trace (restores the
/// previous one, so nested scopes — socketless dispatch from inside a
/// handler — behave).
class TraceScope {
 public:
  explicit TraceScope(TraceContext* trace) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* previous_;
};

/// RAII stage timer. The one-argument form binds to the thread's
/// current trace; when none is installed the span is disabled and costs
/// a thread-local read plus a branch.
class Span {
 public:
  explicit Span(Stage stage) noexcept : Span(current_trace(), stage) {}
  Span(TraceContext* trace, Stage stage) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceContext* trace_;
  Stage stage_;
  bool counted_ = false;  ///< start_counters_ holds a valid group read
  std::uint64_t start_ns_ = 0;
  perf::CounterSample start_counters_;
};

/// One retained trace in the flight recorder. Fixed-size POD slot: the
/// hot-path copy into it allocates nothing.
struct TraceRecord {
  static constexpr std::size_t kIdCapacity = 64;
  static constexpr std::size_t kRouteCapacity = 64;

  char id[kIdCapacity + 1] = {};
  char route[kRouteCapacity + 1] = {};
  int status = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kStageCount> stage_ns{};
  std::array<std::uint32_t, kStageCount> stage_calls{};
  std::uint64_t seq = 0;  ///< admission order (monotone across shards)
  bool used = false;
};

struct TracerConfig {
  std::size_t recorder_slots = 128;        ///< total ring capacity
  std::size_t recorder_shards = 4;         ///< independent mutexed rings
  std::uint64_t slow_threshold_ns = 10'000'000;  ///< retain when >= (10 ms)
  bool record_errors = true;               ///< retain any status >= 400
};

/// Owns the per-stage latency histograms (lock-free atomics) and the
/// flight recorder. One per HttpServer; registered as a Collector so
/// the stage histograms appear on /metrics in both formats.
class RequestTracer final : public Collector {
 public:
  explicit RequestTracer(TracerConfig config = {});

  /// Start a trace on the current thread; `client_id` non-empty adopts
  /// the client's ID, otherwise a process-unique one is generated.
  TraceContext make_trace(std::string_view client_id = {});

  /// Complete a trace: feeds the flight recorder when the request was
  /// slow or errored. `route` is the bounded route key ("POST /predict"
  /// or "(unmatched)"), never the raw attacker-controlled path.
  void finish(TraceContext& trace, int status, std::string_view route);

  /// Record a stage sample into the histograms without a trace context
  /// (used by Span; exposed for tests).
  void record_stage(Stage stage, std::uint64_t ns) noexcept;

  /// Current steady time through the clock seam, in ns. With the
  /// built-in clock this is fast_now_ns() — the calibrated invariant-TSC
  /// read (~2x cheaper per span than clock_gettime on the VMs we serve
  /// from). noexcept so the Span destructor (which calls this on the hot
  /// path) is provably non-throwing: clock_ is never empty — the
  /// constructor installs the default and set_clock() replaces an empty
  /// argument with it — so the std::function invocation cannot raise
  /// bad_function_call.
  // NOLINTNEXTLINE(bugprone-exception-escape) — see invariant above
  std::uint64_t now_ns() const noexcept {
    return default_clock_ ? fast_now_ns() : clock_();
  }

  /// Replace the steady-clock seam (tests inject a fake clock). Not
  /// thread-safe; call before serving starts.
  void set_clock(std::function<std::uint64_t()> clock);

  /// Runtime enable/disable. The flag is consulted exactly once per
  /// request (make_trace snapshots it into TraceContext::armed_), so a
  /// flip mid-request never produces a request whose spans recorded
  /// under one state and whose finish() ran under another.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Install the hardware-counter seam (not owned; must outlive the
  /// tracer). New traces attach counters only when the source is
  /// available and hot-path capable (userspace rdpmc reads) — `force`
  /// overrides the capability check for operators who accept syscall
  /// read cost per span (--perf force). Not thread-safe; wire before
  /// serving starts.
  void set_counter_source(perf::CounterSource* source, bool force = false);
  perf::CounterSource* counter_source() const noexcept {
    return counter_source_;
  }
  /// True when new traces will carry counter attribution.
  bool counters_attached() const noexcept { return counters_attached_; }

  /// Process-lifetime multiplexing-scaled total of `counter` attributed
  /// to `stage` across finished traces (roofline's StageProfileCollector
  /// derives live arithmetic intensity from these).
  std::uint64_t stage_counter_total(Stage stage,
                                    perf::Counter counter) const noexcept {
    // relaxed: monotonic scrape-time read
    return stage_counter_totals_[static_cast<std::size_t>(stage)][static_cast<
        std::size_t>(counter)].load(std::memory_order_relaxed);
  }
  /// Finished traces that carried counter attribution.
  std::uint64_t counted_requests() const noexcept {
    // relaxed: monotonic stat counter, no ordering needed
    return counted_requests_.load(std::memory_order_relaxed);
  }

  const TracerConfig& config() const noexcept { return config_; }
  std::uint64_t traces_started() const noexcept {
    // relaxed: monotonic stat counter, no ordering needed
    return seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t traces_recorded() const noexcept {
    // relaxed: monotonic stat counter, no ordering needed
    return recorded_.load(std::memory_order_relaxed);
  }

  /// The newest retained traces (most recent first), at most `limit`.
  /// {"count":N,"requests":[{id,route,status,total_us,stages:{...}}]}
  Json debug_requests_json(std::size_t limit = 32) const;

  /// Per-stage latency histograms as mcb_stage_duration_seconds, plus
  /// the hardware-counter families: mcb_perf_available (present whether
  /// or not counters work — the degraded-path contract), and per-stage
  /// mcb_stage_cycles_total / mcb_stage_instructions_total /
  /// mcb_stage_llc_miss_bytes_total.
  void collect_metrics(std::vector<MetricFamily>& out) const override;

  /// JSON summary of the stage histograms for the default /metrics view:
  /// {stage: {count, total_us, p50_us, p99_us}}.
  Json stages_json() const;

 private:
  // Finite bucket upper bounds in seconds for stage latencies: 1 us ..
  // 4 s in x4 steps — spans two decades around the paper's per-job
  // costs (characterize ~1e-6 s, SBERT encode ~2e-3 s).
  static constexpr std::array<double, 12> kBucketBounds = {
      1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1.0, 4.0};
  /// kBucketBounds in integer nanoseconds: the hot-path bucket search
  /// compares the raw ns sample without converting to double.
  static constexpr std::array<std::uint64_t, 12> kBucketBoundsNs = {
      1000,     4000,     16000,     64000,     256000,     1000000,
      4000000,  16000000, 64000000,  256000000, 1000000000, 4000000000};

  /// Sample count is derived at scrape time as the sum of all buckets
  /// (including +Inf) — the hot path maintains two cells, not three.
  struct StageHist {
    std::array<std::atomic<std::uint64_t>, kBucketBounds.size() + 1> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };

  struct Shard {
    mutable Mutex mutex;
    std::vector<TraceRecord> slots MCB_GUARDED_BY(mutex);
    std::size_t next MCB_GUARDED_BY(mutex) = 0;
  };

  TracerConfig config_;
  std::function<std::uint64_t()> clock_;
  /// True while clock_ is the built-in steady clock; now_ns() then takes
  /// the TSC fast path instead of the std::function indirection.
  bool default_clock_ = true;
  std::uint64_t id_base_ = 0;  ///< random per-process prefix for generated IDs
  std::atomic<bool> enabled_{true};
  perf::CounterSource* counter_source_ = nullptr;
  bool counters_attached_ = false;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> counted_requests_{0};
  std::array<StageHist, kStageCount> stages_;
  std::array<std::array<std::atomic<std::uint64_t>, perf::kCounterCount>,
             kStageCount>
      stage_counter_totals_{};
  std::vector<Shard> shards_;
};

}  // namespace mcb::obs
