#include "obs/metrics.hpp"

#include <cstdio>

namespace mcb::obs {
namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

/// %g-style shortest representation; Prometheus accepts scientific
/// notation and "+Inf" (handled by callers where needed).
std::string format_value(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void append_labels(std::string& out, const LabelSet& labels,
                   const char* extra_key = nullptr,
                   const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prometheus_escape(value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;  // bucket edges are numeric; no escaping needed
    out += '"';
  }
  out += '}';
}

Json labels_json(const LabelSet& labels) {
  Json out = Json::object();
  for (const auto& [key, value] : labels) out.set(key, value);
  return out;
}

}  // namespace

void Registry::add(const Collector* collector) {
  if (collector == nullptr) return;
  MutexLock lock(mutex_);
  collectors_.push_back(collector);
}

std::vector<MetricFamily> Registry::gather() const {
  std::vector<const Collector*> snapshot;
  {
    MutexLock lock(mutex_);
    snapshot = collectors_;
  }
  std::vector<MetricFamily> families;
  for (const Collector* collector : snapshot) {
    collector->collect_metrics(families);
  }
  return families;
}

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const auto& family : families) {
    out += "# HELP ";
    out += family.name;
    out += ' ';
    // HELP text uses the same escaping rules minus the quote.
    for (const char c : family.help) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '\n';
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += type_name(family.type);
    out += '\n';

    for (const auto& point : family.points) {
      if (family.type == MetricType::kHistogram) {
        std::uint64_t running = 0;
        for (std::size_t b = 0; b < point.bounds.size(); ++b) {
          running = b < point.cumulative.size() ? point.cumulative[b] : running;
          out += family.name;
          out += "_bucket";
          append_labels(out, point.labels, "le", format_value(point.bounds[b]));
          out += ' ';
          out += std::to_string(running);
          out += '\n';
        }
        out += family.name;
        out += "_bucket";
        append_labels(out, point.labels, "le", "+Inf");
        out += ' ';
        out += std::to_string(point.count);
        out += '\n';
        out += family.name;
        out += "_sum";
        append_labels(out, point.labels);
        out += ' ';
        out += format_value(point.sum);
        out += '\n';
        out += family.name;
        out += "_count";
        append_labels(out, point.labels);
        out += ' ';
        out += std::to_string(point.count);
        out += '\n';
      } else {
        out += family.name;
        append_labels(out, point.labels);
        out += ' ';
        out += format_value(point.value);
        out += '\n';
      }
    }
  }
  return out;
}

Json render_json(const std::vector<MetricFamily>& families) {
  Json out = Json::object();
  for (const auto& family : families) {
    Json entry = Json::object();
    entry.set("type", type_name(family.type));
    entry.set("help", family.help);
    Json points = Json::array();
    for (const auto& point : family.points) {
      Json p = Json::object();
      if (!point.labels.empty()) p.set("labels", labels_json(point.labels));
      if (family.type == MetricType::kHistogram) {
        Json bounds = Json::array();
        for (const double b : point.bounds) bounds.push_back(b);
        Json cumulative = Json::array();
        for (const std::uint64_t c : point.cumulative) {
          cumulative.push_back(static_cast<std::int64_t>(c));
        }
        p.set("bounds", bounds);
        p.set("cumulative", cumulative);
        p.set("count", static_cast<std::int64_t>(point.count));
        p.set("sum", point.sum);
      } else {
        p.set("value", point.value);
      }
      points.push_back(p);
    }
    entry.set("points", points);
    out.set(family.name, entry);
  }
  return out;
}

MetricPoint scalar_point(LabelSet labels, double value) {
  MetricPoint point;
  point.labels = std::move(labels);
  point.value = value;
  return point;
}

}  // namespace mcb::obs
