// Sampling wall-clock profiler (DESIGN.md §14, "Self-characterization").
//
// A POSIX timer (CLOCK_MONOTONIC → SIGPROF) fires process-wide at a
// configurable rate; the async-signal-safe handler captures a raw
// backtrace into a fixed lock-free ring (one atomic fetch_add claims a
// slot, a per-slot ready flag publishes it). Everything unsafe —
// symbolization, demangling, aggregation, string building — happens
// after the timer is disarmed, on the capturing thread. The output is
// flamegraph-ready collapsed stacks ("frame;frame;frame count" lines),
// served by GET /debug/profile?seconds=N.
//
// Wall-clock (not CPU-time) sampling is deliberate: a mostly idle
// server still produces stacks (worker threads parked in epoll_wait /
// condition waits), which is what the CI capture against a live
// `mcbound serve` relies on.
//
// Signal-safety rules (enforced by mcbound_lint R22): the handler is
// marked MCB_SIGNAL_HANDLER and may not allocate, lock, or touch stdio;
// `backtrace()` is warmed once before the timer is armed so its lazy
// libgcc initialization cannot run in signal context.
#pragma once

#include <cstddef>
#include <string>

namespace mcb::obs::perf {

struct ProfileOptions {
  /// Sampling frequency. Prime defaults avoid lockstep with periodic
  /// work. Clamped to [1, 1000].
  int hz = 97;
  /// Capture duration. Clamped to [0.1, 30] seconds.
  double seconds = 2.0;
};

/// Result of one capture.
struct ProfileReport {
  std::size_t samples = 0;   ///< stacks aggregated into `collapsed`
  std::size_t dropped = 0;   ///< signals that found the ring full
  std::string collapsed;     ///< "frame;frame;... count\n" lines
};

class SamplingProfiler {
 public:
  /// Run one blocking capture: arm the timer, sleep for the duration,
  /// disarm, aggregate. Only one capture may run at a time process-wide;
  /// a concurrent call fails fast with "profiler busy" so the HTTP layer
  /// can answer 503 without queueing. On failure returns false and sets
  /// `error` (allocating: error paths are cold).
  static bool capture(const ProfileOptions& options, ProfileReport& out,
                      std::string& error);

  /// True while a capture is in flight (for status endpoints).
  static bool busy() noexcept;
};

}  // namespace mcb::obs::perf
