#include "obs/perf/counters.hpp"

#include <cerrno>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

#include "util/annotations.hpp"

namespace mcb::obs::perf {

const char* counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kCycles: return "cycles";
    case Counter::kInstructions: return "instructions";
    case Counter::kLlcLoads: return "llc_loads";
    case Counter::kLlcMisses: return "llc_misses";
    case Counter::kBranchMisses: return "branch_misses";
  }
  return "unknown";
}

std::uint64_t scale_for_multiplexing(std::uint64_t raw, std::uint64_t time_enabled,
                                     std::uint64_t time_running) noexcept {
  if (time_running >= time_enabled) return raw;  // never multiplexed out
  if (time_running == 0) return 0;  // never scheduled: nothing to extrapolate
  const double scale =
      static_cast<double>(time_enabled) / static_cast<double>(time_running);
  return static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
}

#if defined(__linux__)

namespace {

// Availability is a process property: the perf syscall either works for
// this process (paranoid level, seccomp, PMU presence) or it does not.
// 0 = unprobed, 1 = available, -1 = hard failure.
std::atomic<int> g_state{0};
std::atomic<int> g_errno{0};
// True once a thread group mapped with cap_user_rdpmc on every event —
// the userspace fast path the span hot path requires.
std::atomic<bool> g_rdpmc{false};

constexpr std::uint64_t kEventConfig[kCounterCount] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

/// Grouped read(2) layout for PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED |
/// TOTAL_TIME_RUNNING.
struct GroupReadBuffer {
  std::uint64_t nr = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  std::uint64_t value[kCounterCount] = {};
};

/// One perf event group owned by one thread (pid=0, cpu=-1: this thread
/// wherever it runs, userspace only). Opened lazily on the thread's
/// first read; torn down when the thread exits.
struct ThreadGroup {
  int fd[kCounterCount] = {-1, -1, -1, -1, -1};
  void* page[kCounterCount] = {nullptr, nullptr, nullptr, nullptr, nullptr};
  bool tried = false;
  bool ok = false;
  bool rdpmc_ok = false;

  ~ThreadGroup() {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (page[i] != nullptr) ::munmap(page[i], static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)));
      if (fd[i] >= 0) ::close(fd[i]);
    }
  }
};

thread_local ThreadGroup t_group;

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

// Cold once-per-thread setup reached from the Span hot path on a
// thread's first counted span; everything after it is the fast read.
MCB_HOT_PATH_BOUNDARY bool open_thread_group(ThreadGroup& group) {
  group.tried = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kEventConfig[i];
    attr.disabled = i == 0 ? 1 : 0;  // the whole group starts with the leader
    attr.exclude_kernel = 1;         // paranoid<=2 permits user-only self-profiling
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group_fd = i == 0 ? -1 : group.fd[0];
    const long fd = perf_event_open(&attr, 0, -1, group_fd, 0);
    if (fd < 0) {
      // ENOSYS (seccomp), EACCES/EPERM (perf_event_paranoid), ENOENT
      // (no PMU in this VM): all mean "no counters for this process".
      g_errno.store(errno, std::memory_order_relaxed);  // relaxed: diagnostic only
      g_state.store(-1, std::memory_order_release);
      return false;
    }
    group.fd[i] = static_cast<int>(fd);
  }
  const long page_size = ::sysconf(_SC_PAGESIZE);
  bool rdpmc_ok = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    void* page = ::mmap(nullptr, static_cast<std::size_t>(page_size), PROT_READ,
                        MAP_SHARED, group.fd[i], 0);
    if (page == MAP_FAILED) {
      rdpmc_ok = false;
      break;
    }
    group.page[i] = page;
    const auto* pc = static_cast<const perf_event_mmap_page*>(page);
    if (pc->cap_user_rdpmc == 0) rdpmc_ok = false;
  }
  if (::ioctl(group.fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    g_errno.store(errno, std::memory_order_relaxed);  // relaxed: diagnostic only
    g_state.store(-1, std::memory_order_release);
    return false;
  }
  group.ok = true;
  group.rdpmc_ok = rdpmc_ok;
  int expected = 0;
  // The first thread to finish the probe publishes availability; the
  // rdpmc capability is process-wide (same PMU, same sysctl).
  // relaxed: failure order only — a losing CAS acts on nothing it read.
  if (g_state.compare_exchange_strong(expected, 1, std::memory_order_release,
                                      std::memory_order_relaxed)) {
    g_rdpmc.store(rdpmc_ok, std::memory_order_release);
  }
  return true;
}

#if defined(__x86_64__)
inline std::uint64_t rdpmc(std::uint32_t counter) noexcept {
  std::uint32_t lo = 0, hi = 0;
  asm volatile("rdpmc" : "=a"(lo), "=d"(hi) : "c"(counter));  // NOLINT(hicpp-no-assembler)
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
#endif

/// Userspace read of one mmap'd event via the seqlock protocol from
/// perf_event_open(2): snapshot lock, read index/offset/times, rdpmc,
/// retry if the kernel moved the event underneath us.
inline bool read_event_fast(const volatile perf_event_mmap_page* pc,
                            std::uint64_t& out) noexcept {
#if defined(__x86_64__)
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint32_t seq = pc->lock;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t index = pc->index;
    std::uint64_t count = pc->offset;
    const std::uint64_t enabled = pc->time_enabled;
    const std::uint64_t running = pc->time_running;
    const std::uint16_t width = pc->pmc_width;
    if (index != 0) {
      std::uint64_t pmc = rdpmc(index - 1);
      if (width < 64) {
        // Sign-extend the raw PMC value into the 64-bit count space.
        pmc <<= 64 - width;
        pmc = static_cast<std::uint64_t>(static_cast<std::int64_t>(pmc) >>
                                         (64 - width));
      }
      count += pmc;
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (pc->lock == seq) {
      out = scale_for_multiplexing(count, enabled, running);
      return true;
    }
  }
#else
  (void)pc;
  (void)out;
#endif
  return false;
}

bool read_group_syscall(ThreadGroup& group, CounterSample& out) noexcept {
  GroupReadBuffer buffer;
  const ssize_t n = ::read(group.fd[0], &buffer, sizeof(buffer));
  if (n < static_cast<ssize_t>(sizeof(std::uint64_t) * 3) ||
      buffer.nr != kCounterCount) {
    return false;
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out.value[i] = scale_for_multiplexing(buffer.value[i], buffer.time_enabled,
                                          buffer.time_running);
  }
  return true;
}

}  // namespace

PerfCounterSource::PerfCounterSource() {
  // Probe on the constructing thread so availability and the rdpmc
  // capability are known before the tracer decides to attach counters.
  CounterSample sample;
  (void)read_counters(sample);
}

PerfCounterSource::~PerfCounterSource() = default;

bool PerfCounterSource::read_counters(CounterSample& out) noexcept {
  if (g_state.load(std::memory_order_acquire) < 0) return false;
  ThreadGroup& group = t_group;
  if (!group.ok) {
    if (group.tried) return false;  // this thread's open already failed
    if (!open_thread_group(group)) return false;
  }
  if (group.rdpmc_ok) {
    CounterSample sample;
    bool fast = true;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const auto* pc =
          static_cast<const volatile perf_event_mmap_page*>(group.page[i]);
      if (!read_event_fast(pc, sample.value[i])) {
        fast = false;
        break;
      }
    }
    if (fast) {
      out = sample;
      return true;
    }
  }
  return read_group_syscall(group, out);
}

bool PerfCounterSource::available() const noexcept {
  return g_state.load(std::memory_order_acquire) > 0;
}

int PerfCounterSource::error() const noexcept {
  return g_errno.load(std::memory_order_relaxed);  // relaxed: diagnostic only
}

bool PerfCounterSource::hot_path_capable() const noexcept {
  return available() && g_rdpmc.load(std::memory_order_acquire);
}

#else  // !__linux__

PerfCounterSource::PerfCounterSource() = default;
PerfCounterSource::~PerfCounterSource() = default;

bool PerfCounterSource::read_counters(CounterSample&) noexcept { return false; }
bool PerfCounterSource::available() const noexcept { return false; }
int PerfCounterSource::error() const noexcept { return ENOSYS; }
bool PerfCounterSource::hot_path_capable() const noexcept { return false; }

#endif

}  // namespace mcb::obs::perf
