#include "obs/perf/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "util/annotations.hpp"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>  // NOLINT(modernize-deprecated-headers) sigaction/sigevent need the POSIX header
#include <time.h>    // NOLINT(modernize-deprecated-headers) timer_create needs the POSIX header
#endif

namespace mcb::obs::perf {

#if defined(__linux__)

namespace {

constexpr std::size_t kMaxDepth = 32;
constexpr std::size_t kRingSize = 8192;

/// One raw sample. `ready` is the publication flag: the handler stores
/// frames first, then releases `ready`; the aggregator acquires it.
struct RawSample {
  std::atomic<std::uint32_t> ready{0};
  std::uint32_t depth = 0;
  void* frames[kMaxDepth] = {};
};

// Fixed ring in BSS: the handler never allocates. 8192 slots covers the
// clamped worst case (1000 Hz x 30 s = 30000 would overflow; overflow is
// counted and reported, not an error).
RawSample g_ring[kRingSize];
std::atomic<std::uint32_t> g_head{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_active{false};
std::atomic<bool> g_busy{false};

/// Async-signal context: one atomic slot claim, one backtrace, one
/// release store. backtrace() is warmed by capture() before the timer is
/// armed, so its lazy libgcc load never happens here.
MCB_SIGNAL_HANDLER void profile_signal_handler(int /*signum*/) {
  if (!g_active.load(std::memory_order_acquire)) return;
  // relaxed: slot claims only need to be unique, not ordered.
  const std::uint32_t slot = g_head.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kRingSize) {
    // relaxed: overflow tally is diagnostic only.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSample& sample = g_ring[slot];
  const int depth = ::backtrace(sample.frames, static_cast<int>(kMaxDepth));
  sample.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
  sample.ready.store(1, std::memory_order_release);
}

/// Collapsed-stack format: frames joined by ';', count after the last
/// space. Demangled C++ names can contain both separators ("unsigned
/// long", "operator;;"... in theory), so frame names are sanitized to
/// keep every emitted line machine-parseable.
std::string sanitize_frame(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
    if (c == ';') c = ':';
  }
  return name;
}

/// Best-effort name for one return address (post-capture only: dladdr
/// and __cxa_demangle are not async-signal-safe).
std::string symbolize(void* addr) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);  // __cxa_demangle contract: caller frees
      return sanitize_frame(std::move(name));
    }
    if (demangled != nullptr) std::free(demangled);
    return sanitize_frame(info.dli_sname);
  }
  // Static functions and stripped modules: fall back to module+offset so
  // the frame still folds deterministically.
  char buf[128];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    const auto offset = reinterpret_cast<std::uintptr_t>(addr) -
                        reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<std::size_t>(offset));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<std::uintptr_t>(addr));
  }
  return buf;
}

void sleep_monotonic(double seconds) {
  timespec deadline{};
  ::clock_gettime(CLOCK_MONOTONIC, &deadline);
  const auto whole = static_cast<time_t>(seconds);
  deadline.tv_sec += whole;
  deadline.tv_nsec +=
      static_cast<long>((seconds - static_cast<double>(whole)) * 1e9);
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1000000000L;
  }
  for (;;) {
    timespec now{};
    ::clock_gettime(CLOCK_MONOTONIC, &now);
    if (now.tv_sec > deadline.tv_sec ||
        (now.tv_sec == deadline.tv_sec && now.tv_nsec >= deadline.tv_nsec)) {
      return;
    }
    timespec remaining{deadline.tv_sec - now.tv_sec,
                       deadline.tv_nsec - now.tv_nsec};
    if (remaining.tv_nsec < 0) {
      remaining.tv_sec -= 1;
      remaining.tv_nsec += 1000000000L;
    }
    // EINTR from our own SIGPROF just re-enters the loop.
    ::nanosleep(&remaining, nullptr);
  }
}

}  // namespace

bool SamplingProfiler::capture(const ProfileOptions& options,
                               ProfileReport& out, std::string& error) {
  bool expected = false;
  if (!g_busy.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    error = "profiler busy: another capture is in flight";
    return false;
  }
  struct BusyGuard {
    ~BusyGuard() { g_busy.store(false, std::memory_order_release); }
  } busy_guard;

  int hz = options.hz;
  if (hz < 1) hz = 1;
  if (hz > 1000) hz = 1000;
  double seconds = options.seconds;
  if (seconds < 0.1) seconds = 0.1;
  if (seconds > 30.0) seconds = 30.0;

  // Warm backtrace()'s lazy libgcc initialization outside signal context
  // (DESIGN.md §14 signal-safety rules; lint R22 assumes this).
  void* warm[4];
  (void)::backtrace(warm, 4);

  // Reset the ring: clear publication flags so stale samples from a
  // previous capture can never be aggregated into this one.
  // relaxed: pre-arm reset — the timer is off, no handler can race it.
  for (auto& slot : g_ring) slot.ready.store(0, std::memory_order_relaxed);
  g_head.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);  // relaxed: pre-arm reset

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &profile_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  struct sigaction previous_action;
  std::memset(&previous_action, 0, sizeof(previous_action));
  if (::sigaction(SIGPROF, &action, &previous_action) != 0) {
    error = "sigaction(SIGPROF) failed";
    return false;
  }

  // A wall-clock POSIX timer, not ITIMER_PROF: idle servers accumulate
  // almost no CPU time, but their parked threads are exactly the stacks
  // the live-capture CI gate needs to see.
  sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  timer_t timer;
  if (::timer_create(CLOCK_MONOTONIC, &event, &timer) != 0) {
    (void)::sigaction(SIGPROF, &previous_action, nullptr);
    error = "timer_create(CLOCK_MONOTONIC) failed";
    return false;
  }

  const long interval_ns = 1000000000L / hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = 0;
  spec.it_interval.tv_nsec = interval_ns;
  spec.it_value = spec.it_interval;
  g_active.store(true, std::memory_order_release);
  if (::timer_settime(timer, 0, &spec, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    (void)::timer_delete(timer);
    (void)::sigaction(SIGPROF, &previous_action, nullptr);
    error = "timer_settime failed";
    return false;
  }

  sleep_monotonic(seconds);

  // Disarm, then give any in-flight handler a grace period before the
  // disposition is restored and the ring is read.
  g_active.store(false, std::memory_order_release);
  itimerspec disarm{};
  (void)::timer_settime(timer, 0, &disarm, nullptr);
  (void)::timer_delete(timer);
  sleep_monotonic(0.1);
  (void)::sigaction(SIGPROF, &previous_action, nullptr);

  // Aggregate: fold identical stacks, then symbolize each unique frame
  // once. Stack keys are raw addresses so the fold itself is cheap.
  std::uint32_t used = g_head.load(std::memory_order_acquire);
  if (used > kRingSize) used = static_cast<std::uint32_t>(kRingSize);
  std::map<std::vector<void*>, std::uint64_t> folded;
  std::size_t aggregated = 0;
  for (std::uint32_t i = 0; i < used; ++i) {
    RawSample& sample = g_ring[i];
    if (sample.ready.load(std::memory_order_acquire) == 0) continue;
    // frames[0] is the handler, frames[1] the signal trampoline; the
    // interrupted stack starts at frames[2].
    const std::uint32_t skip = sample.depth > 2 ? 2 : 0;
    std::vector<void*> key(sample.frames + skip,
                           sample.frames + sample.depth);
    if (key.empty()) continue;
    ++folded[key];
    ++aggregated;
  }
  if (aggregated == 0) {
    error = "no samples captured";
    return false;
  }

  std::map<void*, std::string> names;
  std::string collapsed;
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  lines.reserve(folded.size());
  for (const auto& [key, count] : folded) {
    std::string line;
    // backtrace is leaf-first; collapsed format is root-first.
    for (auto it = key.rbegin(); it != key.rend(); ++it) {
      auto cached = names.find(*it);
      if (cached == names.end()) {
        cached = names.emplace(*it, symbolize(*it)).first;
      }
      if (!line.empty()) line += ';';
      line += cached->second;
    }
    lines.emplace_back(std::move(line), count);
  }
  // Hottest first, ties lexicographic: deterministic output for the CI
  // format gate and for diffing captures.
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [stack, count] : lines) {
    collapsed += stack;
    collapsed += ' ';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
    collapsed += buf;
    collapsed += '\n';
  }

  out.samples = aggregated;
  // relaxed: overflow tally is diagnostic only.
  out.dropped =
      static_cast<std::size_t>(g_dropped.load(std::memory_order_relaxed));
  out.collapsed = std::move(collapsed);
  return true;
}

bool SamplingProfiler::busy() noexcept {
  return g_busy.load(std::memory_order_acquire);
}

#else  // !__linux__

bool SamplingProfiler::capture(const ProfileOptions&, ProfileReport&,
                               std::string& error) {
  error = "sampling profiler unavailable on this platform";
  return false;
}

bool SamplingProfiler::busy() noexcept { return false; }

#endif

}  // namespace mcb::obs::perf
