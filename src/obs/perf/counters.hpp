// Hardware-counter telemetry (DESIGN.md §14, "Self-characterization").
//
// A CounterSource is the injectable seam between the span tracer and the
// kernel's perf subsystem: one grouped read returns the calling thread's
// cycles, instructions, LLC loads/misses and branch misses, already
// scaled for multiplexing. The production implementation
// (PerfCounterSource) opens one perf_event_open(2) group per thread —
// leader = cycles with PERF_FORMAT_GROUP so all five counts come from a
// single self-consistent kernel read — and prefers the userspace rdpmc
// fast path (mmap'd perf pages + the seqlock protocol) so a Span's two
// reads cost tens of nanoseconds instead of two read(2) syscalls.
//
// Degradation contract: perf_event_open fails in most containers and
// locked-down VMs (ENOSYS under seccomp, EACCES/EPERM under
// perf_event_paranoid, ENOENT with no PMU). The source then reports
// available() == false with the first errno, the tracer never attaches
// counters to a request, spans fall back to latency-only, and /metrics
// exports mcb_perf_available 0. Tests drive both sides through fake
// CounterSources; nothing in the serving stack branches on #ifdefs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mcb::obs::perf {

/// The fixed counter group, in group (and read_format) order.
enum class Counter : std::uint8_t {
  kCycles = 0,       ///< PERF_COUNT_HW_CPU_CYCLES (group leader)
  kInstructions,     ///< PERF_COUNT_HW_INSTRUCTIONS
  kLlcLoads,         ///< PERF_COUNT_HW_CACHE_REFERENCES (LLC accesses)
  kLlcMisses,        ///< PERF_COUNT_HW_CACHE_MISSES (LLC misses -> DRAM)
  kBranchMisses,     ///< PERF_COUNT_HW_BRANCH_MISSES
};
inline constexpr std::size_t kCounterCount = 5;

const char* counter_name(Counter counter) noexcept;

/// Bytes moved per LLC miss: one x86-64 cache line. This is the serving
/// stack's own traffic model, distinct from the paper's A64FX
/// CounterModel (256-byte lines / CMG divisor) used for *job* counters.
inline constexpr std::uint64_t kLlcLineBytes = 64;

/// One grouped, multiplexing-scaled reading for the calling thread.
struct CounterSample {
  std::array<std::uint64_t, kCounterCount> value{};
};

/// The injectable counter seam. Implementations must keep read() free of
/// allocation and locks — Span calls it twice on the serving hot path
/// (R10–R12/R18 apply transitively).
class CounterSource {
 public:
  virtual ~CounterSource() = default;

  /// Read all counters for the calling thread in one consistent group.
  /// Returns false when the source is (or just became) unavailable.
  /// (Named read_counters, not read, so the lint call graph cannot
  /// conflate it with file/socket `read` functions.)
  virtual bool read_counters(CounterSample& out) noexcept = 0;

  /// True while grouped reads are expected to succeed. Once a hard
  /// failure is observed this stays false for the process lifetime.
  virtual bool available() const noexcept = 0;

  /// errno of the first hard failure (0 while available).
  virtual int error() const noexcept = 0;

  /// True when read() is cheap enough for per-span use (userspace rdpmc;
  /// no syscall). The tracer only attaches counters to requests when
  /// this holds, unless the operator forces syscall reads (--perf force).
  virtual bool hot_path_capable() const noexcept = 0;
};

/// perf_event_open(2)-backed production source. One counter group is
/// opened lazily per thread on first read (pid=0, cpu=-1: this thread,
/// any CPU, userspace only). Availability is a process-wide property:
/// the first thread to fail hard marks the source unavailable for all.
class PerfCounterSource final : public CounterSource {
 public:
  PerfCounterSource();
  ~PerfCounterSource() override;

  PerfCounterSource(const PerfCounterSource&) = delete;
  PerfCounterSource& operator=(const PerfCounterSource&) = delete;

  bool read_counters(CounterSample& out) noexcept override;
  bool available() const noexcept override;
  int error() const noexcept override;
  bool hot_path_capable() const noexcept override;
};

/// Scale a raw grouped reading for multiplexing: when the PMU had more
/// events than slots the kernel time-shares the group and reports
/// time_running < time_enabled; the estimate is raw * enabled/running
/// (perf_event_open(2)). Exposed for the fake-source tests so they
/// exercise the exact production arithmetic.
std::uint64_t scale_for_multiplexing(std::uint64_t raw, std::uint64_t time_enabled,
                                     std::uint64_t time_running) noexcept;

}  // namespace mcb::obs::perf
