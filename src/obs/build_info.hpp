// Build/version identity surfaced by /metrics (mcb_build_info) and the
// default JSON metrics view. The version is bumped when the serving
// surface changes shape (new endpoints, metric renames), so dashboards
// can key on it across rollouts.
#pragma once

namespace mcb::obs {

inline constexpr const char* kBuildVersion = "0.5.0";

/// Compiler identity captured at compile time ("clang 17.0.6", ...).
const char* build_compiler() noexcept;

/// Build type ("release"/"debug") from NDEBUG.
const char* build_mode() noexcept;

}  // namespace mcb::obs
