// Metrics registry + exposition (DESIGN.md §10, "Observability").
//
// One metrics surface for the whole process: every component that has
// counters or latency distributions implements (or registers) a
// Collector; the Registry gathers snapshot MetricFamily lists from all
// of them at scrape time and the renderers turn one snapshot into
// either the Prometheus text exposition format (GET /metrics?format=
// prometheus) or a JSON tree (the default /metrics view). Collection is
// pull-based: nothing is copied or locked until a scrape happens, so
// the serving hot path only ever touches its own atomics/histograms.
//
// Histogram points follow the Prometheus model: `bounds` holds the
// finite upper bucket edges (ascending), `cumulative[i]` counts samples
// <= bounds[i], and `count`/`sum` describe the whole distribution (the
// implicit +Inf bucket equals `count`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace mcb::obs {

using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// One sample (counter/gauge) or one labelled histogram series.
struct MetricPoint {
  LabelSet labels;
  double value = 0.0;  ///< counter/gauge value; unused for histograms

  // Histogram-only fields (empty bounds => scalar point).
  std::vector<double> bounds;              ///< finite upper edges, ascending
  std::vector<std::uint64_t> cumulative;   ///< samples <= bounds[i]
  std::uint64_t count = 0;                 ///< total samples (+Inf bucket)
  double sum = 0.0;                        ///< sum of observed values
};

struct MetricFamily {
  std::string name;  ///< Prometheus-safe: [a-zA-Z_:][a-zA-Z0-9_:]*
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricPoint> points;
};

/// Interface for anything that can contribute metric families to a
/// scrape. Implementations must be safe to call from any thread.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void collect_metrics(std::vector<MetricFamily>& out) const = 0;
};

/// Adapter for components that don't want to inherit: wraps a lambda.
class CallbackCollector final : public Collector {
 public:
  explicit CallbackCollector(std::function<void(std::vector<MetricFamily>&)> fn)
      : fn_(std::move(fn)) {}
  void collect_metrics(std::vector<MetricFamily>& out) const override { fn_(out); }

 private:
  std::function<void(std::vector<MetricFamily>&)> fn_;
};

/// Holds non-owning pointers to registered collectors and gathers their
/// snapshots. Registration happens at wiring time (server construction);
/// gather() may run concurrently with itself and with registration.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The collector must outlive the registry (it is not owned).
  void add(const Collector* collector);

  /// Snapshot every registered collector, in registration order.
  std::vector<MetricFamily> gather() const;

 private:
  mutable Mutex mutex_;
  std::vector<const Collector*> collectors_ MCB_GUARDED_BY(mutex_);
};

/// Escape a label value for the exposition format: backslash, double
/// quote and newline are escaped per the Prometheus spec.
std::string prometheus_escape(std::string_view value);

/// Render a snapshot in the Prometheus text exposition format
/// (text/plain; version=0.0.4): one # HELP + # TYPE pair per family,
/// histogram series expanded into _bucket{le=...}/_sum/_count.
std::string render_prometheus(const std::vector<MetricFamily>& families);

/// Render the same snapshot as JSON: {family: {"type":..., "help":...,
/// "points":[{"labels":{...},"value":...} | histogram fields]}}.
Json render_json(const std::vector<MetricFamily>& families);

/// Convenience: build a scalar (counter/gauge) point.
MetricPoint scalar_point(LabelSet labels, double value);

}  // namespace mcb::obs
