#include "obs/build_info.hpp"

#define MCB_STR_INNER(x) #x
#define MCB_STR(x) MCB_STR_INNER(x)

namespace mcb::obs {

const char* build_compiler() noexcept {
#if defined(__clang__)
  return "clang " MCB_STR(__clang_major__) "." MCB_STR(__clang_minor__) "." MCB_STR(
      __clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " MCB_STR(__GNUC__) "." MCB_STR(__GNUC_MINOR__) "." MCB_STR(
      __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

const char* build_mode() noexcept {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

}  // namespace mcb::obs
