// mcb::log — leveled structured logging (DESIGN.md §10).
//
// One JSON object per line on the configured sink (stderr by default):
//
//   {"ts":"2026-08-06T12:00:00.123Z","level":"info","component":"serve",
//    "trace_id":"ab12...","msg":"listening","port":8080}
//
// or, with JSON mode off, a human-oriented single line:
//
//   2026-08-06T12:00:00.123Z INFO  [serve] listening port=8080
//
// Time comes through an injected wall-clock seam (tests pin it; library
// rule R1 keeps ambient wall-clock reads out of everything else).
// Each sink carries a token-bucket rate limiter: past `max_per_second`
// lines in one wall-clock second, messages are dropped and a single
// summary line ("suppressed N log lines") is emitted when the window
// rolls over — a hot error path cannot flood the sink.
//
// R9 (mcbound_lint): src/ code outside src/obs/ and src/util/cli.cpp
// must not write to stdout/stderr directly; it goes through mcb::log.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

#include "util/sync.hpp"

namespace mcb::log {

enum class Level : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* level_name(Level level) noexcept;
std::optional<Level> parse_level(std::string_view text) noexcept;

/// One structured key/value. The constructors cover the value types the
/// call sites need; everything renders as native JSON types.
struct Field {
  enum class Kind : std::uint8_t { kString, kInt, kUint, kDouble, kBool };

  Field(std::string key, std::string_view value)
      : key(std::move(key)), kind(Kind::kString), str(value) {}
  Field(std::string key, const char* value)
      : Field(std::move(key), std::string_view(value != nullptr ? value : "")) {}
  Field(std::string key, const std::string& value)
      : Field(std::move(key), std::string_view(value)) {}
  Field(std::string key, std::int64_t value)
      : key(std::move(key)), kind(Kind::kInt), i64(value) {}
  Field(std::string key, int value) : Field(std::move(key), static_cast<std::int64_t>(value)) {}
  Field(std::string key, std::uint64_t value)
      : key(std::move(key)), kind(Kind::kUint), u64(value) {}
  Field(std::string key, double value)
      : key(std::move(key)), kind(Kind::kDouble), f64(value) {}
  Field(std::string key, bool value) : key(std::move(key)), kind(Kind::kBool), b(value) {}

  std::string key;
  Kind kind;
  std::string str;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  bool b = false;
};

/// A logger instance: level filter, format, sink, rate limiter, clock.
/// All methods are thread-safe; line emission is serialized so lines
/// never interleave.
class Logger {
 public:
  struct Options {
    Level level = Level::kInfo;
    bool json = true;
    std::size_t max_per_second = 500;  ///< per-sink rate limit (0 = off)
    /// Wall clock in ns since the Unix epoch; defaults to system_clock.
    std::function<std::int64_t()> wall_ns;
    /// Receives one complete line (no trailing newline); defaults to
    /// stderr. Must be callable from any thread.
    std::function<void(std::string_view)> sink;
  };

  Logger();  // defaults: kInfo, JSON, stderr sink, system clock
  explicit Logger(Options options);

  Level level() const noexcept {
    // relaxed: a racing set_level just means one line more or less
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  void set_level(Level level) noexcept {
    // relaxed: see level()
    level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  bool json() const noexcept {
    // relaxed: format flag, no ordering dependency
    return json_.load(std::memory_order_relaxed);
  }
  void set_json(bool json) noexcept {
    // relaxed: see json()
    json_.store(json, std::memory_order_relaxed);
  }

  bool enabled(Level level) const noexcept {
    return static_cast<std::uint8_t>(level) >=
           static_cast<std::uint8_t>(this->level());
  }

  /// Emit one structured line. `trace_id` is included when non-empty
  /// (call sites pass obs::current_trace()->id() when in a request).
  void write(Level level, std::string_view component, std::string_view message,
             std::initializer_list<Field> fields = {}, std::string_view trace_id = {});

  /// Lines dropped by the rate limiter since construction.
  std::uint64_t suppressed_total() const noexcept {
    // relaxed: monotonic stat counter
    return suppressed_total_.load(std::memory_order_relaxed);
  }

 private:
  std::string format_line(Level level, std::string_view component,
                          std::string_view message,
                          std::initializer_list<Field> fields,
                          std::string_view trace_id, std::int64_t now_ns) const;

  std::atomic<std::uint8_t> level_;
  std::atomic<bool> json_;
  std::size_t max_per_second_;
  std::function<std::int64_t()> wall_ns_;
  std::function<void(std::string_view)> sink_;

  mutable Mutex mutex_;
  std::int64_t window_second_ MCB_GUARDED_BY(mutex_) = 0;
  std::size_t window_count_ MCB_GUARDED_BY(mutex_) = 0;
  std::uint64_t window_suppressed_ MCB_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> suppressed_total_{0};
};

/// The process-wide logger used by the library call sites below.
Logger& global();

/// Convenience wrappers over global() — the trace id is picked up from
/// the thread's current trace automatically.
void debug(std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});
void info(std::string_view component, std::string_view message,
          std::initializer_list<Field> fields = {});
void warn(std::string_view component, std::string_view message,
          std::initializer_list<Field> fields = {});
void error(std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

}  // namespace mcb::log
