#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/time.hpp"

namespace mcb::log {
namespace {

std::int64_t system_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void stderr_sink(std::string_view line) {
  // One fwrite per line keeps lines whole even across processes
  // sharing the stream; the logger mutex already serializes threads.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

/// "2026-08-06T12:00:00.123Z" from epoch ns, built on util/time's civil
/// conversion so there is exactly one calendar implementation.
std::string format_ts(std::int64_t ns) {
  const std::int64_t seconds =
      ns >= 0 ? ns / 1'000'000'000 : (ns - 999'999'999) / 1'000'000'000;
  const auto millis =
      static_cast<std::int64_t>((ns - seconds * 1'000'000'000) / 1'000'000);
  std::string ts = format_datetime(seconds);  // "YYYY-MM-DD HH:MM:SS"
  if (ts.size() > 10) ts[10] = 'T';
  char frac[8];
  std::snprintf(frac, sizeof(frac), ".%03dZ", static_cast<int>(millis));
  ts += frac;
  return ts;
}

void append_field_value(std::string& out, const Field& field, bool json_mode) {
  char buf[40];
  switch (field.kind) {
    case Field::Kind::kString:
      out += '"';
      out += json_escape(field.str);
      out += '"';
      break;
    case Field::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(field.i64));
      out += buf;
      break;
    case Field::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(field.u64));
      out += buf;
      break;
    case Field::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", field.f64);
      out += buf;
      break;
    case Field::Kind::kBool:
      out += field.b ? "true" : "false";
      break;
  }
  (void)json_mode;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view text) noexcept {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn" || text == "warning") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off" || text == "none") return Level::kOff;
  return std::nullopt;
}

Logger::Logger() : Logger(Options()) {}

Logger::Logger(Options options)
    : level_(static_cast<std::uint8_t>(options.level)),
      json_(options.json),
      max_per_second_(options.max_per_second),
      wall_ns_(options.wall_ns ? std::move(options.wall_ns)
                               : std::function<std::int64_t()>(&system_now_ns)),
      sink_(options.sink ? std::move(options.sink)
                         : std::function<void(std::string_view)>(&stderr_sink)) {}

std::string Logger::format_line(Level level, std::string_view component,
                                std::string_view message,
                                std::initializer_list<Field> fields,
                                std::string_view trace_id,
                                std::int64_t now_ns) const {
  std::string out;
  out.reserve(128);
  if (json()) {
    out += R"({"ts":")";
    out += format_ts(now_ns);
    out += R"(","level":")";
    out += level_name(level);
    out += R"(","component":")";
    out += json_escape(component);
    out += '"';
    if (!trace_id.empty()) {
      out += R"(,"trace_id":")";
      out += json_escape(trace_id);
      out += '"';
    }
    out += R"(,"msg":")";
    out += json_escape(message);
    out += '"';
    for (const Field& field : fields) {
      out += ",\"";
      out += json_escape(field.key);
      out += "\":";
      append_field_value(out, field, /*json_mode=*/true);
    }
    out += '}';
  } else {
    out += format_ts(now_ns);
    out += ' ';
    char level_buf[8];
    std::snprintf(level_buf, sizeof(level_buf), "%-5s", level_name(level));
    out += level_buf;
    out += " [";
    out += component;
    out += "] ";
    out += message;
    if (!trace_id.empty()) {
      out += " trace_id=";
      out += trace_id;
    }
    for (const Field& field : fields) {
      out += ' ';
      out += field.key;
      out += '=';
      append_field_value(out, field, /*json_mode=*/false);
    }
  }
  return out;
}

void Logger::write(Level level, std::string_view component,
                   std::string_view message, std::initializer_list<Field> fields,
                   std::string_view trace_id) {
  if (!enabled(level) || level == Level::kOff) return;
  const std::int64_t now_ns = wall_ns_();
  const std::int64_t second = now_ns / 1'000'000'000;
  std::string summary;

  {
    MutexLock lock(mutex_);
    if (second != window_second_) {
      if (window_suppressed_ > 0) {
        summary = format_line(
            Level::kWarn, "log", "suppressed log lines",
            {Field("suppressed", static_cast<std::uint64_t>(window_suppressed_)),
             Field("max_per_second", static_cast<std::uint64_t>(max_per_second_))},
            {}, now_ns);
      }
      window_second_ = second;
      window_count_ = 0;
      window_suppressed_ = 0;
    }
    if (max_per_second_ > 0 && window_count_ >= max_per_second_) {
      ++window_suppressed_;
      suppressed_total_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      return;
    }
    ++window_count_;
    const std::string line =
        format_line(level, component, message, fields, trace_id, now_ns);
    // Emit under the mutex so concurrent writers cannot interleave
    // lines on a shared sink.
    if (!summary.empty()) sink_(summary);
    sink_(line);
  }
}

Logger& global() {
  static Logger logger;
  return logger;
}

namespace {

std::string_view current_trace_id() {
  const obs::TraceContext* trace = obs::current_trace();
  return trace != nullptr ? std::string_view(trace->id()) : std::string_view();
}

}  // namespace

void debug(std::string_view component, std::string_view message,
           std::initializer_list<Field> fields) {
  global().write(Level::kDebug, component, message, fields, current_trace_id());
}

void info(std::string_view component, std::string_view message,
          std::initializer_list<Field> fields) {
  global().write(Level::kInfo, component, message, fields, current_trace_id());
}

void warn(std::string_view component, std::string_view message,
          std::initializer_list<Field> fields) {
  global().write(Level::kWarn, component, message, fields, current_trace_id());
}

void error(std::string_view component, std::string_view message,
           std::initializer_list<Field> fields) {
  global().write(Level::kError, component, message, fields, current_trace_id());
}

}  // namespace mcb::log
