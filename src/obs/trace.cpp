#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>

#include "util/annotations.hpp"

namespace mcb::obs {
namespace {

thread_local TraceContext* t_current_trace = nullptr;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool id_char_ok(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.';
}

void copy_bounded(char* dst, std::size_t capacity, std::string_view src) {
  const std::size_t n = std::min(capacity, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kEncode: return "encode";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kClassify: return "classify";
    case Stage::kSerialize: return "serialize";
  }
  return "unknown";
}

void TraceContext::adopt_id(std::string_view client_id) {
  std::string sanitized;
  // mcb-lint: suppress(R18: reserve is capped at kIdCapacity; ids stay one small block)
  sanitized.reserve(std::min(client_id.size(), TraceRecord::kIdCapacity));
  for (const char c : client_id) {
    if (sanitized.size() >= TraceRecord::kIdCapacity) break;
    if (id_char_ok(c)) sanitized += c;
  }
  if (!sanitized.empty()) id_ = std::move(sanitized);
}

TraceContext* current_trace() noexcept { return t_current_trace; }

MCB_HOT_PATH TraceScope::TraceScope(TraceContext* trace) noexcept
    : previous_(t_current_trace) {
  t_current_trace = trace;
}

MCB_HOT_PATH TraceScope::~TraceScope() { t_current_trace = previous_; }

MCB_HOT_PATH Span::Span(TraceContext* trace, Stage stage) noexcept
    : trace_(trace), stage_(stage) {
  if (trace_ != nullptr) start_ns_ = trace_->tracer_->now_ns();
}

MCB_HOT_PATH Span::~Span() {
  if (trace_ == nullptr) return;
  const std::uint64_t end_ns = trace_->tracer_->now_ns();
  const std::uint64_t elapsed = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  const auto index = static_cast<std::size_t>(stage_);
  trace_->stage_ns_[index] += elapsed;
  ++trace_->stage_calls_[index];
  trace_->tracer_->record_stage(stage_, elapsed);
}

RequestTracer::RequestTracer(TracerConfig config)
    : config_(config), clock_(&steady_now_ns) {
  if (config_.recorder_shards == 0) config_.recorder_shards = 1;
  if (config_.recorder_slots < config_.recorder_shards) {
    config_.recorder_slots = config_.recorder_shards;
  }
  // Per-process random prefix so IDs from restarted servers don't
  // collide; std::random_device is entropy, not the banned libc rand.
  std::random_device device;
  id_base_ = (static_cast<std::uint64_t>(device()) << 32) ^ device();
  shards_ = std::vector<Shard>(config_.recorder_shards);
  const std::size_t per_shard =
      (config_.recorder_slots + config_.recorder_shards - 1) / config_.recorder_shards;
  for (auto& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.slots.resize(per_shard);
  }
}

void RequestTracer::set_clock(std::function<std::uint64_t()> clock) {
  clock_ = clock ? std::move(clock) : std::function<std::uint64_t()>(&steady_now_ns);
}

TraceContext RequestTracer::make_trace(std::string_view client_id) {
  TraceContext trace;
  trace.tracer_ = this;
  trace.start_ns_ = now_ns();
  // relaxed: uniqueness only needs atomicity of the increment
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx-%08llx",
                static_cast<unsigned long long>(id_base_),
                static_cast<unsigned long long>(seq));
  trace.id_ = buf;
  trace.adopt_id(client_id);
  return trace;
}

void RequestTracer::record_stage(Stage stage, std::uint64_t ns) noexcept {
  StageHist& hist = stages_[static_cast<std::size_t>(stage)];
  const double seconds = static_cast<double>(ns) * 1e-9;
  std::size_t bucket = kBucketBounds.size();  // +Inf
  for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
    if (seconds <= kBucketBounds[b]) {
      bucket = b;
      break;
    }
  }
  // relaxed: independent monotonic histogram cells; scrapes tolerate a
  // momentarily inconsistent count/sum pair.
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);      // relaxed: see above
  hist.sum_ns.fetch_add(ns, std::memory_order_relaxed);    // relaxed: see above
}

void RequestTracer::finish(TraceContext& trace, int status, std::string_view route) {
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t total =
      end_ns >= trace.start_ns_ ? end_ns - trace.start_ns_ : 0;

  const bool errored = config_.record_errors && status >= 400;
  const bool slow = total >= config_.slow_threshold_ns;
  if (!errored && !slow) return;

  // relaxed: the sequence only orders retained records; the shard mutex
  // publishes the slot contents.
  const std::uint64_t seq = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shards_[seq % shards_.size()];
  // mcb-lint: suppress(R18: only errored or slow traces reach the shard lock; the ring-slot write is bounded) mcb-lint: suppress(R19: only errored or slow traces reach the shard lock; the ring-slot write is bounded)
  MutexLock lock(shard.mutex);
  TraceRecord& slot = shard.slots[shard.next];
  shard.next = (shard.next + 1) % shard.slots.size();
  copy_bounded(slot.id, TraceRecord::kIdCapacity, trace.id_);
  copy_bounded(slot.route, TraceRecord::kRouteCapacity, route);
  slot.status = status;
  slot.total_ns = total;
  slot.stage_ns = trace.stage_ns_;
  slot.stage_calls = trace.stage_calls_;
  slot.seq = seq;
  slot.used = true;
}

Json RequestTracer::debug_requests_json(std::size_t limit) const {
  std::vector<TraceRecord> records;
  records.reserve(config_.recorder_slots);
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& slot : shard.slots) {
      if (slot.used) records.push_back(slot);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq > b.seq; });
  if (records.size() > limit) records.resize(limit);

  Json list = Json::array();
  for (const auto& record : records) {
    Json entry = Json::object();
    entry.set("trace_id", record.id);
    entry.set("route", record.route);
    entry.set("status", record.status);
    entry.set("total_us", static_cast<double>(record.total_ns) * 1e-3);
    Json stages = Json::object();
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (record.stage_calls[s] == 0) continue;
      Json stage = Json::object();
      stage.set("us", static_cast<double>(record.stage_ns[s]) * 1e-3);
      stage.set("calls", static_cast<std::int64_t>(record.stage_calls[s]));
      stages.set(stage_name(static_cast<Stage>(s)), stage);
    }
    entry.set("stages", stages);
    list.push_back(entry);
  }
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(list.size()));
  out.set("slow_threshold_us",
          static_cast<double>(config_.slow_threshold_ns) * 1e-3);
  out.set("recorded_total", static_cast<std::int64_t>(traces_recorded()));
  out.set("requests", list);
  return out;
}

void RequestTracer::collect_metrics(std::vector<MetricFamily>& out) const {
  MetricFamily family;
  family.name = "mcb_stage_duration_seconds";
  family.help = "Per-stage request latency (parse/route/encode/cache/classify/serialize)";
  family.type = MetricType::kHistogram;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageHist& hist = stages_[s];
    MetricPoint point;
    point.labels = {{"stage", stage_name(static_cast<Stage>(s))}};
    point.bounds.assign(kBucketBounds.begin(), kBucketBounds.end());
    std::uint64_t running = 0;
    point.cumulative.reserve(kBucketBounds.size());
    for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
      // relaxed: scrape-time read of monotonic cells
      running += hist.buckets[b].load(std::memory_order_relaxed);
      point.cumulative.push_back(running);
    }
    // The +Inf bucket: everything, including samples past the last edge.
    point.count = hist.count.load(std::memory_order_relaxed);  // relaxed: see above
    // A scrape racing an insert can observe count < cumulative tail;
    // clamp so the exposition stays monotone.
    if (point.count < running) point.count = running;
    point.sum =
        static_cast<double>(hist.sum_ns.load(std::memory_order_relaxed)) * 1e-9;  // relaxed: see above
    family.points.push_back(std::move(point));
  }
  out.push_back(std::move(family));
}

Json RequestTracer::stages_json() const {
  Json out = Json::object();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageHist& hist = stages_[s];
    // relaxed: scrape-time reads of monotonic stat cells
    const std::uint64_t count = hist.count.load(std::memory_order_relaxed);
    const std::uint64_t sum_ns = hist.sum_ns.load(std::memory_order_relaxed);  // relaxed: see above
    Json stage = Json::object();
    stage.set("count", static_cast<std::int64_t>(count));
    stage.set("total_us", static_cast<double>(sum_ns) * 1e-3);
    stage.set("mean_us",
              count > 0 ? static_cast<double>(sum_ns) * 1e-3 / static_cast<double>(count) : 0.0);
    // Quantiles interpolated inside the containing bucket.
    const auto quantile_us = [&](double q) {
      if (count == 0) return 0.0;
      auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
      if (target == 0) target = 1;
      if (target > count) target = count;
      std::uint64_t running = 0;
      double lower = 0.0;
      for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
        const std::uint64_t in_bucket =
            hist.buckets[b].load(std::memory_order_relaxed);  // relaxed: see above
        if (running + in_bucket >= target) {
          const double upper = kBucketBounds[b];
          const double frac =
              in_bucket == 0 ? 1.0
                             : static_cast<double>(target - running) /
                                   static_cast<double>(in_bucket);
          return (lower + (upper - lower) * frac) * 1e6;
        }
        running += in_bucket;
        lower = kBucketBounds[b];
      }
      return kBucketBounds.back() * 1e6;
    };
    stage.set("p50_us", quantile_us(0.50));
    stage.set("p99_us", quantile_us(0.99));
    out.set(stage_name(static_cast<Stage>(s)), stage);
  }
  return out;
}

}  // namespace mcb::obs
