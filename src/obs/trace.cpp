#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

#include "util/annotations.hpp"

namespace mcb::obs {
namespace {

thread_local TraceContext* t_current_trace = nullptr;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)

/// Calibration state for the invariant-TSC fast clock: absolute time is
/// anchored to the steady clock once, then each read is one rdtsc and a
/// multiply. ok stays false when the CPU does not advertise an invariant
/// TSC and fast_now_ns() falls back to clock_gettime.
struct TscClock {
  bool ok = false;
  std::uint64_t base_tsc = 0;
  std::uint64_t base_ns = 0;
  double ns_per_tick = 0.0;
};

bool invariant_tsc_supported() noexcept {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (__get_cpuid_max(0x80000000u, nullptr) < 0x80000007u) return false;
  if (__get_cpuid(0x80000007u, &a, &b, &c, &d) == 0) return false;
  return (d & (1u << 8)) != 0;  // CPUID.80000007H:EDX[8] = invariant TSC
}

TscClock calibrate_tsc() noexcept {
  TscClock clock;
  if (!invariant_tsc_supported()) return clock;
  const std::uint64_t ns0 = steady_now_ns();
  const std::uint64_t tsc0 = __rdtsc();
  // Spin ~1 ms: clock_gettime resolution (tens of ns) over a 1 ms window
  // bounds the rate error near 0.01%, and both endpoints sample the two
  // clocks back to back so the anchor offset is one call apart.
  std::uint64_t ns1 = ns0;
  std::uint64_t tsc1 = tsc0;
  while (ns1 - ns0 < 1000000) {
    ns1 = steady_now_ns();
    tsc1 = __rdtsc();
  }
  if (tsc1 <= tsc0) return clock;  // TSC not advancing: do not trust it
  clock.ns_per_tick = static_cast<double>(ns1 - ns0) /
                      static_cast<double>(tsc1 - tsc0);
  clock.base_tsc = tsc1;
  clock.base_ns = ns1;
  clock.ok = true;
  return clock;
}

const TscClock& tsc_clock() noexcept {
  // First caller pays the ~1 ms calibration; RequestTracer's constructor
  // warms it so no span ever does. After that the magic-static guard is
  // one acquire load.
  static const TscClock clock = calibrate_tsc();
  return clock;
}

#endif  // __x86_64__

bool id_char_ok(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.';
}

void copy_bounded(char* dst, std::size_t capacity, std::string_view src) {
  const std::size_t n = std::min(capacity, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

MCB_HOT_PATH std::uint64_t fast_now_ns() noexcept {
#if defined(__x86_64__)
  const TscClock& clock = tsc_clock();
  if (clock.ok) {
    const std::uint64_t ticks = __rdtsc() - clock.base_tsc;
    return clock.base_ns + static_cast<std::uint64_t>(
                               static_cast<double>(ticks) * clock.ns_per_tick);
  }
#endif
  return steady_now_ns();
}

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kEncode: return "encode";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kClassify: return "classify";
    case Stage::kSerialize: return "serialize";
  }
  return "unknown";
}

void TraceContext::adopt_id(std::string_view client_id) {
  std::string sanitized;
  // mcb-lint: suppress(R18: reserve is capped at kIdCapacity; ids stay one small block)
  sanitized.reserve(std::min(client_id.size(), TraceRecord::kIdCapacity));
  for (const char c : client_id) {
    if (sanitized.size() >= TraceRecord::kIdCapacity) break;
    if (id_char_ok(c)) sanitized += c;
  }
  if (!sanitized.empty()) id_ = std::move(sanitized);
}

TraceContext* current_trace() noexcept { return t_current_trace; }

MCB_HOT_PATH TraceScope::TraceScope(TraceContext* trace) noexcept
    : previous_(t_current_trace) {
  t_current_trace = trace;
}

MCB_HOT_PATH TraceScope::~TraceScope() { t_current_trace = previous_; }

MCB_HOT_PATH Span::Span(TraceContext* trace, Stage stage) noexcept
    : trace_(trace), stage_(stage) {
  // armed_ is the per-request snapshot of the tracer's enabled flag: a
  // span on a disarmed trace behaves exactly like a span with no trace,
  // so a set_enabled() flip mid-request can never record half a request.
  if (trace_ != nullptr && !trace_->armed_) trace_ = nullptr;
  if (trace_ == nullptr) return;
  start_ns_ = trace_->tracer_->now_ns();
  if (trace_->counters_ != nullptr) {
    counted_ = trace_->counters_->read_counters(start_counters_);
  }
}

MCB_HOT_PATH Span::~Span() {
  if (trace_ == nullptr) return;
  const std::uint64_t end_ns = trace_->tracer_->now_ns();
  const std::uint64_t elapsed = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  const auto index = static_cast<std::size_t>(stage_);
  if (counted_) {
    perf::CounterSample end_counters;
    if (trace_->counters_->read_counters(end_counters)) {
      for (std::size_t c = 0; c < perf::kCounterCount; ++c) {
        // Clamp instead of wrapping: a counter that wrapped (or was
        // rescaled downward by multiplexing) contributes 0, never a
        // ~2^64 delta that would poison the stage totals.
        const std::uint64_t start = start_counters_.value[c];
        const std::uint64_t end = end_counters.value[c];
        trace_->stage_counters_[index][c] += end >= start ? end - start : 0;
      }
    }
  }
  trace_->stage_ns_[index] += elapsed;
  ++trace_->stage_calls_[index];
  trace_->tracer_->record_stage(stage_, elapsed);
}

RequestTracer::RequestTracer(TracerConfig config)
    : config_(config), clock_(&steady_now_ns) {
  if (config_.recorder_shards == 0) config_.recorder_shards = 1;
  if (config_.recorder_slots < config_.recorder_shards) {
    config_.recorder_slots = config_.recorder_shards;
  }
  // Warm the TSC calibration here, off the hot path, so the first span
  // never pays the ~1 ms calibration spin.
  (void)fast_now_ns();
  // Per-process random prefix so IDs from restarted servers don't
  // collide; std::random_device is entropy, not the banned libc rand.
  std::random_device device;
  id_base_ = (static_cast<std::uint64_t>(device()) << 32) ^ device();
  shards_ = std::vector<Shard>(config_.recorder_shards);
  const std::size_t per_shard =
      (config_.recorder_slots + config_.recorder_shards - 1) / config_.recorder_shards;
  for (auto& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.slots.resize(per_shard);
  }
}

void RequestTracer::set_clock(std::function<std::uint64_t()> clock) {
  // An injected clock disables the TSC fast path; an empty argument
  // restores the built-in clock (and with it the fast path).
  default_clock_ = !clock;
  clock_ = clock ? std::move(clock) : std::function<std::uint64_t()>(&steady_now_ns);
}

void RequestTracer::set_counter_source(perf::CounterSource* source,
                                       bool force) {
  counter_source_ = source;
  counters_attached_ =
      source != nullptr && source->available() &&
      (force || source->hot_path_capable());
}

TraceContext RequestTracer::make_trace(std::string_view client_id) {
  TraceContext trace;
  trace.tracer_ = this;
  // Both the enable flag and the counter attachment are snapshotted
  // here, once per request — spans consult only the snapshot.
  trace.armed_ = enabled();
  trace.counters_ = counters_attached_ ? counter_source_ : nullptr;
  trace.start_ns_ = now_ns();
  // relaxed: uniqueness only needs atomicity of the increment
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx-%08llx",
                static_cast<unsigned long long>(id_base_),
                static_cast<unsigned long long>(seq));
  trace.id_ = buf;
  trace.adopt_id(client_id);
  return trace;
}

void RequestTracer::record_stage(Stage stage, std::uint64_t ns) noexcept {
  StageHist& hist = stages_[static_cast<std::size_t>(stage)];
  std::size_t bucket = kBucketBounds.size();  // +Inf
  for (std::size_t b = 0; b < kBucketBoundsNs.size(); ++b) {
    if (ns <= kBucketBoundsNs[b]) {
      bucket = b;
      break;
    }
  }
  // relaxed: independent monotonic histogram cells; scrapes tolerate a
  // momentarily inconsistent bucket/sum pair.
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  hist.sum_ns.fetch_add(ns, std::memory_order_relaxed);  // relaxed: see above
}

void RequestTracer::finish(TraceContext& trace, int status, std::string_view route) {
  if (!trace.armed_) return;  // disarmed at make_trace: nothing recorded
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t total =
      end_ns >= trace.start_ns_ ? end_ns - trace.start_ns_ : 0;

  // Flush the request's counter deltas into the process totals once per
  // request (spans accumulate into the unsynchronized trace arrays).
  if (trace.counters_ != nullptr) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      for (std::size_t c = 0; c < perf::kCounterCount; ++c) {
        const std::uint64_t delta = trace.stage_counters_[s][c];
        if (delta != 0) {
          // relaxed: independent monotonic cells; scrape view may tear.
          stage_counter_totals_[s][c].fetch_add(delta,
                                                std::memory_order_relaxed);
        }
      }
    }
    // relaxed: monotonic stat counter, no ordering needed
    counted_requests_.fetch_add(1, std::memory_order_relaxed);
  }

  const bool errored = config_.record_errors && status >= 400;
  const bool slow = total >= config_.slow_threshold_ns;
  if (!errored && !slow) return;

  // relaxed: the sequence only orders retained records; the shard mutex
  // publishes the slot contents.
  const std::uint64_t seq = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shards_[seq % shards_.size()];
  // mcb-lint: suppress(R18: only errored or slow traces reach the shard lock; the ring-slot write is bounded) mcb-lint: suppress(R19: only errored or slow traces reach the shard lock; the ring-slot write is bounded)
  MutexLock lock(shard.mutex);
  TraceRecord& slot = shard.slots[shard.next];
  shard.next = (shard.next + 1) % shard.slots.size();
  copy_bounded(slot.id, TraceRecord::kIdCapacity, trace.id_);
  copy_bounded(slot.route, TraceRecord::kRouteCapacity, route);
  slot.status = status;
  slot.total_ns = total;
  slot.stage_ns = trace.stage_ns_;
  slot.stage_calls = trace.stage_calls_;
  slot.seq = seq;
  slot.used = true;
}

Json RequestTracer::debug_requests_json(std::size_t limit) const {
  std::vector<TraceRecord> records;
  records.reserve(config_.recorder_slots);
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& slot : shard.slots) {
      if (slot.used) records.push_back(slot);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq > b.seq; });
  if (records.size() > limit) records.resize(limit);

  Json list = Json::array();
  for (const auto& record : records) {
    Json entry = Json::object();
    entry.set("trace_id", record.id);
    entry.set("route", record.route);
    entry.set("status", record.status);
    entry.set("total_us", static_cast<double>(record.total_ns) * 1e-3);
    Json stages = Json::object();
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (record.stage_calls[s] == 0) continue;
      Json stage = Json::object();
      stage.set("us", static_cast<double>(record.stage_ns[s]) * 1e-3);
      stage.set("calls", static_cast<std::int64_t>(record.stage_calls[s]));
      stages.set(stage_name(static_cast<Stage>(s)), stage);
    }
    entry.set("stages", stages);
    list.push_back(entry);
  }
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(list.size()));
  out.set("slow_threshold_us",
          static_cast<double>(config_.slow_threshold_ns) * 1e-3);
  out.set("recorded_total", static_cast<std::int64_t>(traces_recorded()));
  out.set("requests", list);
  return out;
}

void RequestTracer::collect_metrics(std::vector<MetricFamily>& out) const {
  MetricFamily family;
  family.name = "mcb_stage_duration_seconds";
  family.help = "Per-stage request latency (parse/route/encode/cache/classify/serialize)";
  family.type = MetricType::kHistogram;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageHist& hist = stages_[s];
    MetricPoint point;
    point.labels = {{"stage", stage_name(static_cast<Stage>(s))}};
    point.bounds.assign(kBucketBounds.begin(), kBucketBounds.end());
    std::uint64_t running = 0;
    point.cumulative.reserve(kBucketBounds.size());
    for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
      // relaxed: scrape-time read of monotonic cells
      running += hist.buckets[b].load(std::memory_order_relaxed);
      point.cumulative.push_back(running);
    }
    // Total count is the bucket sum including +Inf — derived here rather
    // than maintained as a third hot-path cell, so the exposition's
    // count >= cumulative-tail invariant holds by construction.
    // relaxed: scrape-time read of monotonic cells
    point.count = running + hist.buckets[kBucketBounds.size()].load(
                                std::memory_order_relaxed);
    point.sum =
        static_cast<double>(hist.sum_ns.load(std::memory_order_relaxed)) * 1e-9;  // relaxed: see above
    family.points.push_back(std::move(point));
  }
  out.push_back(std::move(family));

  // Hardware-counter families. mcb_perf_available is exported in both
  // states — scrapers (and the CI gate) distinguish "counters off" from
  // "metrics broken" by its presence with value 0.
  MetricFamily available;
  available.name = "mcb_perf_available";
  available.help =
      "1 when per-span hardware counters are attached, 0 in the "
      "latency-only fallback (ENOSYS/EACCES/EPERM/no PMU)";
  available.type = MetricType::kGauge;
  available.points.push_back(scalar_point({}, counters_attached_ ? 1.0 : 0.0));
  out.push_back(std::move(available));

  struct CounterFamily {
    const char* name;
    const char* help;
    perf::Counter counter;
    double unit_scale;
  };
  const CounterFamily counter_families[] = {
      {"mcb_stage_cycles_total",
       "CPU cycles attributed to each request stage (multiplexing-scaled)",
       perf::Counter::kCycles, 1.0},
      {"mcb_stage_instructions_total",
       "Instructions retired in each request stage (multiplexing-scaled)",
       perf::Counter::kInstructions, 1.0},
      {"mcb_stage_llc_miss_bytes_total",
       "Estimated DRAM traffic per stage: LLC misses x 64-byte lines",
       perf::Counter::kLlcMisses,
       static_cast<double>(perf::kLlcLineBytes)},
  };
  for (const auto& spec : counter_families) {
    MetricFamily counters;
    counters.name = spec.name;
    counters.help = spec.help;
    counters.type = MetricType::kCounter;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto stage = static_cast<Stage>(s);
      counters.points.push_back(scalar_point(
          {{"stage", stage_name(stage)}},
          static_cast<double>(stage_counter_total(stage, spec.counter)) *
              spec.unit_scale));
    }
    out.push_back(std::move(counters));
  }
}

Json RequestTracer::stages_json() const {
  Json out = Json::object();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageHist& hist = stages_[s];
    // One snapshot of the buckets for both the count (their sum — there
    // is no separate count cell) and the quantile walk below, so the two
    // cannot disagree about a sample that lands mid-scrape.
    std::array<std::uint64_t, kBucketBounds.size() + 1> bucket_counts{};
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
      // relaxed: scrape-time reads of monotonic stat cells
      bucket_counts[b] = hist.buckets[b].load(std::memory_order_relaxed);
      count += bucket_counts[b];
    }
    const std::uint64_t sum_ns =
        hist.sum_ns.load(std::memory_order_relaxed);  // relaxed: see above
    Json stage = Json::object();
    stage.set("count", static_cast<std::int64_t>(count));
    stage.set("total_us", static_cast<double>(sum_ns) * 1e-3);
    stage.set("mean_us",
              count > 0 ? static_cast<double>(sum_ns) * 1e-3 / static_cast<double>(count) : 0.0);
    // Quantiles interpolated inside the containing bucket.
    const auto quantile_us = [&](double q) {
      if (count == 0) return 0.0;
      auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
      if (target == 0) target = 1;
      if (target > count) target = count;
      std::uint64_t running = 0;
      double lower = 0.0;
      for (std::size_t b = 0; b < kBucketBounds.size(); ++b) {
        const std::uint64_t in_bucket = bucket_counts[b];
        if (running + in_bucket >= target) {
          const double upper = kBucketBounds[b];
          const double frac =
              in_bucket == 0 ? 1.0
                             : static_cast<double>(target - running) /
                                   static_cast<double>(in_bucket);
          return (lower + (upper - lower) * frac) * 1e6;
        }
        running += in_bucket;
        lower = kBucketBounds[b];
      }
      return kBucketBounds.back() * 1e6;
    };
    stage.set("p50_us", quantile_us(0.50));
    stage.set("p99_us", quantile_us(0.99));
    out.set(stage_name(static_cast<Stage>(s)), stage);
  }
  return out;
}

}  // namespace mcb::obs
