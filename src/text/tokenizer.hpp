// Tokenization for job feature strings.
//
// Feature strings look like "u02194,wrf_ensemble_run12,384,8,lang/tcsds-1.2.38,2200".
// We lower-case, split on any non-alphanumeric character, and expand each
// word into boundary-marked character n-grams so that job-name *families*
// ("wrf_run_a" vs "wrf_run_b") share most of their features — the property
// SBERT embeddings give the paper's KNN.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcb {

/// Lower-cased alphanumeric word tokens ("wrf_run12" -> {"wrf","run12"}).
std::vector<std::string> word_tokens(std::string_view text);

/// Boundary-marked character n-grams of a single word:
/// ngrams("wrf", 3) -> {"^wr", "wrf", "rf$"}. Words shorter than n yield
/// the whole padded word once.
std::vector<std::string> char_ngrams(std::string_view word, std::size_t n);

/// FNV-1a 64-bit hash of a byte string, optionally salted (used by the
/// encoder for index/sign hashing).
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t salt = 0) noexcept;

}  // namespace mcb
