#include "text/sentence_encoder.hpp"

#include <cmath>
#include <unordered_map>

#include "text/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

SentenceEncoder::SentenceEncoder(EncoderConfig config) : config_(std::move(config)) {
  if (config_.dim == 0) config_.dim = 1;
}

void SentenceEncoder::accumulate(std::string_view feature, double weight,
                                 std::vector<double>& accum) const {
  const std::uint64_t h_index = fnv1a64(feature, config_.seed);
  const std::uint64_t h_sign = fnv1a64(feature, config_.seed + 1);
  for (std::size_t h = 0; h < config_.hashes_per_feature; ++h) {
    const std::size_t index =
        static_cast<std::size_t>(mix64(h_index + h * 0x9e3779b97f4a7c15ULL) % config_.dim);
    const double sign = ((h_sign >> (63 - h)) & 1U) != 0 ? 1.0 : -1.0;
    accum[index] += sign * weight;
  }
}

std::vector<float> SentenceEncoder::encode(std::string_view sentence) const {
  // Term-frequency pass: features are few (short feature strings), so a
  // transient map is cheap and gives sub-linear tf weighting.
  std::unordered_map<std::string, std::pair<double, int>> features;  // weight, count
  const auto add_feature = [&features](std::string feature, double weight) {
    auto [it, inserted] = features.try_emplace(std::move(feature), std::make_pair(weight, 0));
    it->second.second += 1;
    (void)inserted;
  };

  if (config_.use_field_tokens) {
    std::size_t field = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= sentence.size(); ++i) {
      if (i == sentence.size() || sentence[i] == ',') {
        add_feature("f" + std::to_string(field) + ":" +
                        std::string(sentence.substr(start, i - start)),
                    config_.field_weight);
        ++field;
        start = i + 1;
      }
    }
  }

  const auto words = word_tokens(sentence);
  for (const auto& word : words) {
    if (config_.use_word_tokens) add_feature("w:" + word, config_.word_weight);
    for (const std::size_t n : config_.ngram_sizes) {
      for (auto& gram : char_ngrams(word, n)) {
        add_feature("g" + std::to_string(n) + ":" + std::move(gram), config_.ngram_weight);
      }
    }
  }

  std::vector<double> accum(config_.dim, 0.0);
  for (const auto& [feature, info] : features) {
    accumulate(feature, info.first * std::log1p(static_cast<double>(info.second)), accum);
  }

  if (config_.densify) {
    // Random-sign rotation: out[j] = sum_i accum[i] * R[i][j] with
    // R[i][j] = +-1 drawn from a per-row SplitMix64 stream. Only the
    // nonzero inputs contribute, so cost is O(nnz * dim).
    std::vector<double> dense(config_.dim, 0.0);
    for (std::size_t i = 0; i < config_.dim; ++i) {
      const double v = accum[i];
      if (v == 0.0) continue;
      std::uint64_t stream = config_.seed * 0x9e3779b97f4a7c15ULL + i + 2;
      std::uint64_t bits = 0;
      for (std::size_t j = 0; j < config_.dim; ++j) {
        if ((j & 63U) == 0) bits = splitmix64(stream);
        dense[j] += (bits & 1U) != 0 ? v : -v;
        bits >>= 1;
      }
    }
    accum.swap(dense);
  }

  double norm_sq = 0.0;
  for (const double v : accum) norm_sq += v * v;
  const double inv_norm = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;

  std::vector<float> out(config_.dim);
  for (std::size_t i = 0; i < config_.dim; ++i) {
    out[i] = static_cast<float>(accum[i] * inv_norm);
  }
  return out;
}

std::vector<float> SentenceEncoder::encode_batch(std::span<const std::string> sentences,
                                                 ThreadPool* pool) const {
  std::vector<float> out(sentences.size() * config_.dim);
  parallel_for_each(
      pool, 0, sentences.size(),
      [&](std::size_t i) {
        const auto vec = encode(sentences[i]);
        std::copy(vec.begin(), vec.end(), out.begin() + static_cast<std::ptrdiff_t>(i * config_.dim));
      },
      /*grain=*/16);
  return out;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace mcb
