#include "text/embedding_cache.hpp"

#include <algorithm>

#include "util/annotations.hpp"

namespace mcb {

ShardedEmbeddingCache::ShardedEmbeddingCache(std::size_t dim, EmbeddingCacheConfig config)
    : dim_(dim),
      capacity_(std::max<std::size_t>(config.capacity, 1)),
      shards_(std::clamp<std::size_t>(config.shards, 1, 256)) {
  // Round per-shard capacity up so the configured total is a floor, not
  // a ceiling-by-truncation (capacity 10 over 8 shards must not mean 8).
  per_shard_capacity_ = (capacity_ + shards_.size() - 1) / shards_.size();
}

ShardedEmbeddingCache::Shard& ShardedEmbeddingCache::shard_for(std::string_view key) noexcept {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

const ShardedEmbeddingCache::Shard& ShardedEmbeddingCache::shard_for(
    std::string_view key) const noexcept {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

MCB_HOT_PATH
// mcb-lint: suppress(R12: sharded per-key mutex — the critical section is a find + splice, contention bounded by the shard count)
bool ShardedEmbeddingCache::lookup(std::string_view key, std::span<float> out) {
  Shard& shard = shard_for(key);
  {
    MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // promote to MRU
      const auto& embedding = it->second->second;
      if (out.size() == embedding.size()) {
        std::copy(embedding.begin(), embedding.end(), out.begin());
        hits_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
  return false;
}

void ShardedEmbeddingCache::insert(std::string_view key, std::span<const float> embedding) {
  if (embedding.size() != dim_) return;
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: promote and overwrite (identical content in practice —
    // the encoder is deterministic — but keep the cache authoritative).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second.assign(embedding.begin(), embedding.end());
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
  }
  shard.lru.emplace_front(std::string(key),
                          std::vector<float>(embedding.begin(), embedding.end()));
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
}

void ShardedEmbeddingCache::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.index.clear();
    shard.lru.clear();
  }
}

std::size_t ShardedEmbeddingCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

ShardedEmbeddingCache::Stats ShardedEmbeddingCache::stats() const {
  Stats s;
  // Monotonic counters read independently; the snapshot has no
  // cross-counter consistency requirement.
  s.hits = hits_.load(std::memory_order_relaxed);            // relaxed: stat snapshot
  s.misses = misses_.load(std::memory_order_relaxed);        // relaxed: stat snapshot
  s.insertions = insertions_.load(std::memory_order_relaxed);  // relaxed: stat snapshot
  s.evictions = evictions_.load(std::memory_order_relaxed);  // relaxed: stat snapshot
  return s;
}

}  // namespace mcb
