// Bounded, mutex-sharded LRU cache from canonicalized job text to its
// embedding vector.
//
// Production job streams are dominated by recurring job names (the
// MIT Supercloud challenge and GPU-telemetry workload studies both
// report heavy recurrence; Fugaku's trace is no different), so the
// serving layer sees the same canonical feature string — "user,job
// name,cores,nodes,env,frequency" — over and over. Encoding is the
// dominant per-request cost (paper §V-C: SBERT at ~2 ms/job dwarfs
// model inference), which makes text-keyed embedding reuse a near-free
// latency win.
//
// Design:
//  * The key is the canonical feature string itself (FeatureEncoder::
//    feature_string). Identical text => identical embedding because the
//    encoder is deterministic; the cache is valid for exactly one
//    encoder identity (dim + hashing seed + weights). Swapping the
//    encoder config requires clear(); retraining the *model* does not —
//    embeddings do not depend on model parameters (DESIGN.md §8).
//  * N independent shards, each its own mutex + LRU list + index map,
//    selected by key hash: concurrent /classify traffic on different
//    keys rarely contends on the same lock.
//  * Each shard holds at most capacity/shards entries; insertion past
//    that evicts the shard's least-recently-used entry, so memory is
//    strictly bounded (capacity * (dim * 4 bytes + key)).
//  * hits/misses/insertions/evictions are lock-free atomics surfaced by
//    the /metrics endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace mcb {

struct EmbeddingCacheConfig {
  std::size_t capacity = 4096;  ///< total entries across all shards
  std::size_t shards = 8;       ///< independent mutex-protected segments
};

class ShardedEmbeddingCache {
 public:
  explicit ShardedEmbeddingCache(std::size_t dim, EmbeddingCacheConfig config = {});

  std::size_t dim() const noexcept { return dim_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Copy the cached embedding for `key` into `out` (size dim()) and
  /// promote the entry to most-recently-used. Returns false on miss.
  bool lookup(std::string_view key, std::span<float> out);

  /// Insert (or refresh) `key` -> `embedding`; evicts the shard's LRU
  /// entry when the shard is full. Vectors of the wrong width are
  /// ignored (defensive: one cache serves one encoder identity).
  void insert(std::string_view key, std::span<const float> embedding);

  /// Drop every entry (encoder identity change); stats are preserved.
  void clear();

  /// Entries currently resident (racy snapshot across shards).
  std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    /// Per-shard capability: each shard's state is guarded by its own
    /// mutex, so touching one shard's LRU under another shard's lock is
    /// a compile error on Clang, not a latent cross-shard race.
    mutable Mutex mutex;
    /// Front = most recently used. The list owns the key string; the
    /// index refers into it.
    std::list<std::pair<std::string, std::vector<float>>> lru MCB_GUARDED_BY(mutex);
    std::unordered_map<std::string, std::list<std::pair<std::string, std::vector<float>>>::iterator,
                       StringHash, std::equal_to<>>
        index MCB_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::string_view key) noexcept;
  const Shard& shard_for(std::string_view key) const noexcept;

  std::size_t dim_;
  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace mcb
