#include "text/tokenizer.hpp"

namespace mcb {

std::vector<std::string> word_tokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (alnum) {
      current += c;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> char_ngrams(std::string_view word, std::size_t n) {
  std::vector<std::string> grams;
  if (n == 0) return grams;
  std::string padded;
  padded.reserve(word.size() + 2);
  padded += '^';
  padded.append(word);
  padded += '$';
  if (padded.size() <= n) {
    grams.push_back(padded);
    return grams;
  }
  grams.reserve(padded.size() - n + 1);
  for (std::size_t i = 0; i + n <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, n));
  }
  return grams;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t salt) noexcept {
  std::uint64_t hash = 1469598103934665603ULL ^ (salt * 0x9e3779b97f4a7c15ULL);
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace mcb
