// HashedSentenceEncoder — the repository's stand-in for SBERT
// (all-MiniLM-L6-v2) in the Feature Encoder (paper §III-B).
//
// The paper encodes the comma-joined job feature string with SBERT into a
// fixed 384-dimensional float vector. What the downstream models need
// from that representation is:
//   (1) determinism — identical strings map to identical vectors;
//   (2) locality — strings sharing tokens (same user, same job-name
//       family, same resource shape) land close in cosine distance;
//   (3) a fixed, modest dimensionality.
// A signed feature-hashing ("hashing trick") encoder over word tokens and
// boundary-marked character n-grams provides exactly these properties
// without a 90 MB transformer checkpoint, and is what we ship offline.
// DESIGN.md §3 documents the substitution; bench_micro_overhead compares
// its cost with the paper's reported 2 ms/job SBERT encoding time.
//
// Vector construction for a sentence s:
//   for each feature f (word token, weighted kWordWeight; or char n-gram,
//   weighted kNgramWeight):
//     i    = fnv1a64(f, salt=seed)            mod dim
//     sign = bit 63 of fnv1a64(f, salt=seed+1) ? +1 : -1
//     v[i] += sign * weight * log(1 + tf(f))
//   v /= ||v||2                 (zero vectors are left as all-zeros)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mcb {

class ThreadPool;

struct EncoderConfig {
  std::size_t dim = 384;              ///< matches SBERT all-MiniLM output
  std::vector<std::size_t> ngram_sizes = {3, 4};
  bool use_word_tokens = true;
  /// Positions each feature is hashed to (Bloom-style multi-hashing;
  /// >1 makes single-dimension collisions recoverable for tree splits).
  std::size_t hashes_per_feature = 3;
  double word_weight = 1.0;
  double ngram_weight = 0.5;
  /// Ablation option (off by default; see bench_ablation_encoder):
  /// treat top-level comma-separated segments as fields and hash each
  /// whole (index, value) pair as one feature. Job feature strings are
  /// comma-joined by construction (paper §III-B), so this gives every
  /// exact field value its own signed dimension — the positional
  /// awareness a learned sentence embedding provides — which axis-
  /// aligned tree splits exploit directly.
  bool use_field_tokens = false;
  double field_weight = 1.5;
  /// Ablation option (off by default; hurts tree splits in practice):
  /// apply a deterministic random-sign rotation (dense Johnson-
  /// Lindenstrauss projection) to the hashed vector before
  /// normalization. Pairwise distances are approximately preserved, so
  /// KNN behaviour is unchanged, but every output dimension becomes a
  /// dense linear view of the whole token set — the dense geometry a
  /// learned sentence embedding has, which axis-aligned decision-tree
  /// splits need (bench_ablation_encoder measures the effect).
  bool densify = false;
  std::uint64_t seed = 0x5be11aULL;   ///< hashing salt (model identity)
};

class SentenceEncoder {
 public:
  explicit SentenceEncoder(EncoderConfig config = {});

  const EncoderConfig& config() const noexcept { return config_; }
  std::size_t dim() const noexcept { return config_.dim; }

  /// Encode one sentence into an L2-normalized vector of `dim()` floats.
  std::vector<float> encode(std::string_view sentence) const;

  /// Encode a batch (optionally in parallel) into a row-major matrix
  /// laid out as out[i * dim() + j].
  std::vector<float> encode_batch(std::span<const std::string> sentences,
                                  ThreadPool* pool = nullptr) const;

 private:
  void accumulate(std::string_view feature, double weight,
                  std::vector<double>& accum) const;
  EncoderConfig config_;
};

/// Cosine similarity between two equal-length vectors.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

}  // namespace mcb
