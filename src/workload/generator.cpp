#include "workload/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <cstdio>

namespace mcb {
namespace {

// Domain-flavoured name fragments; apps draw a unique base name from
// these pools plus a base36 app token, so job-name *families* share
// character n-grams while remaining distinguishable.
constexpr std::array<const char*, 20> kDomains = {
    "cfd",    "qcd",     "md",      "wrf",     "nicam",  "genesis", "lqcd",
    "fem",    "spmv",    "stencil", "gemm",    "dlrm",   "genome",  "seismic",
    "climate", "plasma", "fusion",  "mlperf",  "cosmo",  "lattice"};

constexpr std::array<const char*, 10> kVerbs = {
    "solve", "run", "sim", "train", "bench", "prod", "scan", "opt", "sweep", "calc"};

constexpr std::array<const char*, 9> kEnvironments = {
    "lang/tcsds-1.2.38",
    "lang/tcsds-1.2.38;mpi/fujitsu",
    "gcc/12.2;openmpi/4.1",
    "lang/tcsds-1.2.36",
    "python/3.11;pytorch/2.1",
    "fujitsu/clang-16;mpi/fujitsu",
    "spack/2024a;gcc/13.1",
    "lang/tcsds-1.2.38;eigen/3.4",
    "container/singularity-3.8",
};

std::string base36(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::string out;
  do {
    out += kDigits[value % 36];
    value /= 36;
  } while (value != 0);
  std::reverse(out.begin(), out.end());
  return out;
}

enum class AppCategory { kMemory, kStraddler, kCompute };

}  // namespace

WorkloadConfig scaled_workload_config(double jobs_per_day, std::uint64_t seed) {
  WorkloadConfig config;
  config.jobs_per_day = jobs_per_day;
  config.seed = seed;
  return config;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(std::move(config)) {}

AppArchetype WorkloadGenerator::make_app(std::uint32_t app_id, std::int64_t birth_day,
                                         Rng& rng) const {
  AppArchetype app;
  app.app_id = app_id;
  app.birth_day = birth_day;
  const double lifetime =
      std::max(5.0, rng.exponential(1.0 / config_.app_lifetime_mean_days));
  app.death_day = birth_day + static_cast<std::int64_t>(std::ceil(lifetime));

  // Owning user: power-law so a few users own many apps (realistic for
  // production systems with heavy-hitter groups).
  const std::size_t n_users = std::max<std::size_t>(10, config_.target_active_apps / 2);
  const double u = rng.uniform();
  const auto user_idx = static_cast<std::size_t>(u * u * static_cast<double>(n_users));
  char user_buf[16];
  std::snprintf(user_buf, sizeof(user_buf), "u%05zu", user_idx);
  app.user_name = user_buf;

  app.base_name = std::string(kDomains[rng.bounded(kDomains.size())]) + "_" +
                  kVerbs[rng.bounded(kVerbs.size())] + "_" + base36(app_id + 36);
  app.environment = kEnvironments[rng.bounded(kEnvironments.size())];

  // Intensity category: the mixture that yields the paper's ~77.5%
  // memory-bound share, with straddlers providing the irreducible error.
  const double ridge_ln = std::log(config_.machine.ridge_point());
  const std::array<double, 3> weights = {config_.frac_memory_apps,
                                         config_.frac_straddler_apps,
                                         config_.frac_compute_apps};
  const auto draw_op_mu = [&](AppCategory category) {
    switch (category) {
      case AppCategory::kMemory: return rng.normal(std::log(0.15), 0.9);
      case AppCategory::kStraddler: return rng.normal(ridge_ln, 0.35);
      case AppCategory::kCompute: return rng.normal(std::log(20.0), 0.8);
    }
    return 0.0;
  };
  const auto category = static_cast<AppCategory>(rng.categorical(weights));
  app.op_mu = draw_op_mu(category);

  // Mid-life phase change: the app's workload shifts (new solver, new
  // problem size), re-drawing from the full mixture — this is the drift
  // that makes old training data actively misleading.
  if (rng.bernoulli(config_.phase_change_probability)) {
    app.phase_change_day =
        birth_day + rng.range(1, std::max<std::int64_t>(1, app.death_day - birth_day - 1));
    const auto new_category = static_cast<AppCategory>(rng.categorical(weights));
    app.op_mu_after_change = draw_op_mu(new_category);
  } else {
    app.op_mu_after_change = app.op_mu;
  }

  // Attained fraction of the roofline: the bulk of jobs sit well below
  // the roof, with a small "well-engineered" population near it (the
  // clusters visible in Fig. 3).
  if (rng.bernoulli(0.08)) {
    app.efficiency = rng.uniform(0.55, 0.95);
  } else {
    app.efficiency = std::clamp(rng.lognormal(std::log(0.08), 1.0), 0.001, 0.95);
  }

  // Frequency-mode propensity calibrated to Table II, noisy per app and
  // independent of the app's intensity *value* (Fig. 5: no correlation).
  double boost_center = 0.40;
  if (category == AppCategory::kMemory) boost_center = config_.memory_app_boost_prob;
  if (category == AppCategory::kCompute) boost_center = config_.compute_app_boost_prob;
  app.boost_probability = std::clamp(rng.normal(boost_center, 0.15), 0.05, 0.95);

  // Durations: paper §V-C(d) reports ~6000 s average for memory-bound
  // jobs in boost mode and ~13500 s for compute-bound in normal mode.
  switch (category) {
    case AppCategory::kMemory: app.duration_mu = rng.normal(8.4, 0.7); break;
    case AppCategory::kStraddler: app.duration_mu = rng.normal(8.8, 0.7); break;
    case AppCategory::kCompute: app.duration_mu = rng.normal(9.3, 0.7); break;
  }
  app.duration_sigma = rng.uniform(0.3, 0.8);

  app.nodes_typical = static_cast<std::uint32_t>(
      std::clamp(std::lround(rng.lognormal(std::log(2.0), 1.2)), 1L, 1024L));
  app.sve_fraction = rng.uniform(0.5, 0.98);
  app.read_fraction = rng.uniform(0.5, 0.85);
  // Communication intensity: ~10% of apps are communication-heavy
  // (halo exchanges, all-to-alls) and can become interconnect-bound.
  if (rng.bernoulli(0.10)) {
    app.net_bytes_per_flop = rng.lognormal(std::log(0.2), 0.7);
  } else {
    app.net_bytes_per_flop = rng.lognormal(std::log(1e-3), 1.2);
  }
  return app;
}

void WorkloadGenerator::build_app_population(Rng& rng) {
  apps_.clear();
  const auto total_days = day_index(config_.end_time - 1, config_.start_time) + 1;
  // Steady-state birth rate; warm-up horizon covers apps alive at day 0.
  const double birth_rate =
      static_cast<double>(config_.target_active_apps) / config_.app_lifetime_mean_days;
  const auto warmup = static_cast<std::int64_t>(config_.app_lifetime_mean_days * 4.0);

  std::uint32_t app_id = 0;
  for (std::int64_t day = -warmup; day < total_days; ++day) {
    const std::uint64_t births = rng.poisson(birth_rate);
    for (std::uint64_t b = 0; b < births; ++b) {
      AppArchetype app = make_app(app_id++, day, rng);
      if (app.death_day > 0) apps_.push_back(std::move(app));  // alive inside the period
    }
  }
}

JobRecord WorkloadGenerator::synthesize_job(const AppArchetype& app,
                                            const std::string& job_name, FrequencyMode freq,
                                            std::uint32_t nodes, std::uint32_t cores,
                                            TimePoint submit, Rng& rng) const {
  JobRecord job;
  job.user_name = app.user_name;
  job.job_name = job_name;
  job.environment = app.environment;
  job.nodes_requested = nodes;
  job.cores_requested = cores;
  job.frequency = freq;
  job.submit_time = submit;
  job.nodes_allocated = nodes;

  // Scheduling wait: ~3 minutes on average in the observed period.
  const auto wait = static_cast<std::int64_t>(rng.exponential(1.0 / 180.0));
  job.start_time = submit + wait;
  const std::int64_t day_rel = day_index(submit, config_.start_time);
  const double op_mu = (app.phase_change_day >= 0 && day_rel >= app.phase_change_day)
                           ? app.op_mu_after_change
                           : app.op_mu;
  const double op = std::exp(rng.normal(op_mu, config_.job_intensity_sigma));

  const auto duration = static_cast<std::int64_t>(
      std::clamp(rng.lognormal(app.duration_mu, app.duration_sigma), 60.0, 172'800.0));
  job.end_time = job.start_time + duration;
  job.exit_status = rng.bernoulli(0.03) ? 1 : 0;

  // Per-node performance: efficiency x attainable roofline, where the
  // compute roof scales with the selected clock (normal mode runs the
  // FP pipeline ~9% slower; memory bandwidth is unaffected).
  const double clock_scale = static_cast<double>(frequency_mhz(freq)) / 2200.0;
  const double compute_roof = config_.machine.peak_gflops * clock_scale;
  const double bandwidth_roof = op * config_.machine.peak_bandwidth_gbs;
  // Communication-heavy jobs are additionally capped by the per-node
  // interconnect injection bandwidth (multi-node jobs only).
  double network_roof = std::numeric_limits<double>::infinity();
  if (config_.machine.peak_network_gbs > 0.0 && nodes > 1 &&
      app.net_bytes_per_flop > 0.0) {
    network_roof = config_.machine.peak_network_gbs / app.net_bytes_per_flop;
  }
  const double p_node_gflops =
      app.efficiency * std::min({compute_roof, bandwidth_roof, network_roof});

  const double node_seconds = static_cast<double>(duration) * static_cast<double>(nodes);
  const double total_flops = p_node_gflops * 1e9 * node_seconds;
  const double total_bytes = total_flops / op;

  // Invert the characterizer's counter model (Eq. 4-5).
  job.perf3 = total_flops * app.sve_fraction / 4.0;
  job.perf2 = total_flops * (1.0 - app.sve_fraction);
  const double requests = total_bytes * 12.0 / 256.0;
  job.perf4 = requests * app.read_fraction;
  job.perf5 = requests * (1.0 - app.read_fraction);
  job.perf6 = nodes > 1 ? total_flops * app.net_bytes_per_flop : 0.0;

  // Node power model: idle + dynamic compute power (scales with clock)
  // + memory-subsystem power, with small telemetry noise.
  const double util_compute = p_node_gflops / compute_roof;
  const double util_memory =
      std::min(1.0, p_node_gflops / op / config_.machine.peak_bandwidth_gbs);
  const double node_watts = 65.0 + 150.0 * util_compute * clock_scale +
                            70.0 * util_memory + rng.normal(0.0, 3.0);
  job.avg_power_watts = std::max(30.0, node_watts) * static_cast<double>(nodes);
  return job;
}

void WorkloadGenerator::emit_campaign(const AppArchetype& app, std::int64_t day, Rng& rng,
                                      std::vector<JobRecord>& out) {
  const std::size_t size =
      1 + static_cast<std::size_t>(rng.geometric(1.0 / config_.campaign_mean_size));

  // Campaign-level choices shared by its near-identical jobs.
  std::string name = app.base_name;
  if (rng.bernoulli(0.35)) {
    name += "_r" + std::to_string(1 + rng.bounded(12));
  }
  const FrequencyMode freq =
      rng.bernoulli(app.boost_probability) ? FrequencyMode::kBoost : FrequencyMode::kNormal;

  std::uint32_t nodes = app.nodes_typical;
  if (rng.bernoulli(0.2)) {
    nodes = rng.bernoulli(0.5) ? std::max(1U, nodes / 2) : std::min(2048U, nodes * 2);
  }
  std::uint32_t cores = nodes * 48;
  if (nodes == 1 && rng.bernoulli(0.25)) {
    cores = rng.bernoulli(0.5) ? 12 : 24;  // sub-node core requests
  }

  TimePoint submit = config_.start_time + day * kSecondsPerDay +
                     static_cast<std::int64_t>(rng.uniform(0.0, 79'200.0));
  for (std::size_t i = 0; i < size; ++i) {
    if (submit >= config_.end_time) break;
    if (submit >= config_.maintenance_start && submit < config_.maintenance_end) break;
    out.push_back(synthesize_job(app, name, freq, nodes, cores, submit, rng));
    submit += 1 + static_cast<std::int64_t>(rng.exponential(1.0 / 120.0));
  }
}

std::vector<JobRecord> WorkloadGenerator::generate() {
  Rng rng(config_.seed);
  build_app_population(rng);
  next_job_id_ = config_.first_job_id;

  const auto total_days = day_index(config_.end_time - 1, config_.start_time) + 1;

  // Index apps by liveness to avoid rescanning the population per day.
  std::vector<JobRecord> jobs;
  jobs.reserve(static_cast<std::size_t>(config_.jobs_per_day *
                                        static_cast<double>(total_days) * 1.1));

  for (std::int64_t day = 0; day < total_days; ++day) {
    const TimePoint day_start = config_.start_time + day * kSecondsPerDay;
    if (day_start >= config_.maintenance_start && day_start < config_.maintenance_end) {
      continue;  // scheduled shutdown: no submissions (Fig. 2 dip)
    }
    std::vector<const AppArchetype*> active;
    for (const auto& app : apps_) {
      if (app.birth_day <= day && day < app.death_day) active.push_back(&app);
    }
    if (active.empty()) continue;
    const double campaigns_per_app = config_.jobs_per_day /
                                     (config_.campaign_mean_size *
                                      static_cast<double>(active.size()));
    for (const AppArchetype* app : active) {
      const std::uint64_t n_campaigns = rng.poisson(campaigns_per_app);
      for (std::uint64_t c = 0; c < n_campaigns; ++c) {
        emit_campaign(*app, day, rng, jobs);
      }
    }
  }

  std::sort(jobs.begin(), jobs.end(), [](const JobRecord& a, const JobRecord& b) {
    return a.submit_time != b.submit_time ? a.submit_time < b.submit_time
                                          : a.end_time < b.end_time;
  });
  for (auto& job : jobs) job.job_id = next_job_id_++;
  return jobs;
}

}  // namespace mcb
