// Synthetic Fugaku workload generator — the repository's substitute for
// the F-DATA job traces (2.2M jobs, Zenodo) used by the paper.
//
// The generator is NOT a random job sprayer: it models the *mechanisms*
// the paper's findings rest on, so the evaluation shape reproduces:
//
//  * Application archetypes. Each app has a characteristic operational
//    intensity (lognormal around an app mean), an attainable fraction of
//    the roofline, a resource shape (nodes/cores), a duration scale, an
//    environment string and an owning user. Most apps sit clearly below
//    the ridge point (memory-bound), a smaller group clearly above, and
//    a "straddler" group lies near the ridge so its jobs flip labels
//    run-to-run — the irreducible error that caps F1 near 0.9.
//  * Campaigns. Users submit batches of near-identical jobs (the paper:
//    "Fugaku jobs are usually submitted in batches of identical jobs").
//    This is what makes random theta-sampling beat latest-theta-sampling
//    in Figs. 9/10.
//  * Drift. Apps are born and die over weeks (Poisson births,
//    exponential lifetimes), and some apps change behaviour mid-life
//    (phase changes re-draw the intensity mean). Old training data loses
//    value, which is why the sliding alpha-window beats the growing
//    alpha-plus window and why larger beta (staler models) hurts.
//  * Frequency selection. Users pick normal/boost mode per campaign with
//    app-specific propensities calibrated to Table II (54% of
//    memory-bound jobs in normal mode, only ~30% of compute-bound jobs
//    in boost mode) and *independently of roofline position* (Fig. 5).
//  * Calendar. Submissions are uniform across the period except for a
//    maintenance shutdown in early February (Fig. 2). Scheduling wait
//    times average ~3 minutes (paper §V-C).
//
// Performance counters are synthesized back from the sampled intensity
// and efficiency through the inverse of the characterizer's Eq. 1-5, so
// characterizing a generated job recovers exactly the intended roofline
// position.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/job_record.hpp"
#include "roofline/machine_spec.hpp"
#include "util/rng.hpp"

namespace mcb {

struct WorkloadConfig {
  // --- calendar ---
  TimePoint start_time = timepoint_from_ymd(2023, 12, 1);
  TimePoint end_time = timepoint_from_ymd(2024, 4, 1);
  TimePoint maintenance_start = timepoint_from_ymd(2024, 2, 5);
  TimePoint maintenance_end = timepoint_from_ymd(2024, 2, 8);

  // --- volume ---
  double jobs_per_day = 25'000.0;  ///< paper scale; benches pass less
  std::size_t target_active_apps = 130;
  double campaign_mean_size = 8.0;

  // --- app population dynamics ---
  double app_lifetime_mean_days = 45.0;
  double phase_change_probability = 0.25;  ///< app re-draws intensity mid-life

  // --- intensity mixture (fractions sum to 1) ---
  double frac_memory_apps = 0.70;    ///< clearly below the ridge
  double frac_straddler_apps = 0.15; ///< near the ridge; labels flip
  double frac_compute_apps = 0.15;   ///< clearly above the ridge
  double job_intensity_sigma = 0.20; ///< per-job lognormal jitter (ln units)

  // --- frequency-mode propensities (Table II calibration) ---
  double memory_app_boost_prob = 0.46;
  double compute_app_boost_prob = 0.31;

  // --- machine ---
  MachineSpec machine = fugaku_node_spec();

  std::uint64_t seed = 15;  ///< default chosen so Table II statistics match the paper
  std::uint64_t first_job_id = 1;
};

/// One synthetic application archetype (exposed for tests/inspection).
struct AppArchetype {
  std::uint32_t app_id = 0;
  std::string base_name;
  std::string user_name;
  std::string environment;
  double op_mu = 0.0;           ///< ln of app-mean operational intensity
  double op_mu_after_change = 0.0;
  std::int64_t phase_change_day = -1;  ///< relative day; -1 = none
  double efficiency = 0.1;      ///< fraction of roofline attained
  double boost_probability = 0.4;
  double duration_mu = 8.0;     ///< ln seconds
  double duration_sigma = 0.6;
  std::uint32_t nodes_typical = 1;
  double sve_fraction = 0.9;    ///< share of flops issued as SVE ops
  double read_fraction = 0.65;  ///< share of memory requests that are reads
  double net_bytes_per_flop = 1e-3;  ///< interconnect traffic intensity
  std::int64_t birth_day = 0;   ///< relative to config.start_time
  std::int64_t death_day = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config = {});

  const WorkloadConfig& config() const noexcept { return config_; }

  /// Generate the full trace, sorted by submit_time. Deterministic for a
  /// fixed config (including seed).
  std::vector<JobRecord> generate();

  /// The app population built for the last generate() call.
  const std::vector<AppArchetype>& apps() const noexcept { return apps_; }

 private:
  void build_app_population(Rng& rng);
  AppArchetype make_app(std::uint32_t app_id, std::int64_t birth_day, Rng& rng) const;
  void emit_campaign(const AppArchetype& app, std::int64_t day, Rng& rng,
                     std::vector<JobRecord>& out);
  JobRecord synthesize_job(const AppArchetype& app, const std::string& job_name,
                           FrequencyMode freq, std::uint32_t nodes,
                           std::uint32_t cores, TimePoint submit, Rng& rng) const;

  WorkloadConfig config_;
  std::vector<AppArchetype> apps_;
  std::uint64_t next_job_id_ = 1;
};

/// Convenience: a scaled-down config for tests/benches (same calendar,
/// fewer jobs per day).
WorkloadConfig scaled_workload_config(double jobs_per_day, std::uint64_t seed = 15);

}  // namespace mcb
