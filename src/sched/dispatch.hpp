// Dispatching simulator — the paper's §VI direction: "We are currently
// developing job dispatching strategies that can benefit from the
// predictions of MCBound, aiming to optimize system throughput and
// energy efficiency."
//
// An event-driven cluster simulator replays a job trace under three
// policies, all FCFS at the queue level:
//
//   1. exclusive        — nodes are exclusive, the user's frequency
//                         choice is honored (today's behaviour; baseline).
//   2. frequency advisor— MCBound's pre-execution label re-pins the
//                         frequency: predicted compute-bound -> boost
//                         (≈10% faster if truly compute-bound, paper
//                         §V-C d), predicted memory-bound -> normal
//                         (≈15% lower power if truly memory-bound).
//                         Mispredictions apply the *true* physics: e.g.
//                         a memory-bound job wrongly pinned to boost
//                         gains nothing and burns boost power.
//   3. co-schedule      — in addition, a queued job may be co-located on
//                         the node set of a running job with the
//                         *opposite predicted* label (Breitbart et al.'s
//                         complementary co-scheduling, refs [8], [9]).
//                         Complementary pairs contend mildly; pairs that
//                         are secretly same-typed (a misprediction)
//                         contend heavily.
//
// The simulator charges energy as sum(power x duration) with the
// frequency-dependent power model of the workload generator, so the
// policies can be compared on makespan, waiting time, node-hours and
// energy — with oracle labels or with a trained MCBound model's labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/job_record.hpp"
#include "roofline/characterizer.hpp"

namespace mcb {

/// One job as the dispatcher sees it: the submission plus the label
/// MCBound predicted at submission time and (for scoring the physics)
/// the Roofline ground truth.
struct DispatchJob {
  std::uint64_t job_id = 0;
  TimePoint submit_time = 0;
  std::uint32_t nodes = 1;
  /// Duration the job would take at *normal* frequency in exclusive mode.
  double base_duration_s = 0.0;
  /// Average power at *normal* frequency, whole job (all nodes).
  double base_power_w = 0.0;
  Boundedness predicted = Boundedness::kMemoryBound;
  Boundedness truth = Boundedness::kMemoryBound;
  FrequencyMode user_frequency = FrequencyMode::kNormal;
};

struct DispatchConfig {
  std::uint32_t total_nodes = 512;
  bool frequency_advisor = false;
  bool co_schedule = false;

  // Frequency physics (paper §V-C d, after Kodama et al. 2020).
  double boost_speedup_compute = 0.10;  ///< compute-bound runs 10% faster at boost
  double boost_power_premium = 0.1765;  ///< boost power = normal power x (1/0.85)

  // Co-scheduling contention model (after Breitbart et al.).
  double coshare_slowdown_memory = 1.05;   ///< mem job sharing with comp job
  double coshare_slowdown_compute = 1.15;  ///< comp job sharing with mem job
  double coshare_slowdown_conflict = 1.45; ///< same-type pair (misprediction)
};

struct DispatchResult {
  std::size_t jobs_completed = 0;
  double makespan_s = 0.0;          ///< last completion - first submission
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double node_seconds_busy = 0.0;   ///< occupancy integral
  double total_energy_gj = 0.0;
  double mean_slowdown = 0.0;       ///< response time / exclusive duration
  std::size_t co_scheduled_jobs = 0;
  std::size_t conflict_pairs = 0;   ///< same-type pairs formed by mistake
  std::size_t frequency_overrides = 0;
};

/// Build DispatchJobs from executed records: the true label comes from
/// the characterizer, the predicted label is supplied by the caller
/// (model output or oracle). `predicted` must be jobs.size() long.
std::vector<DispatchJob> make_dispatch_jobs(std::span<const JobRecord> jobs,
                                            std::span<const Boundedness> predicted,
                                            const Characterizer& characterizer);

/// Run the event-driven simulation. Jobs must be sorted by submit_time;
/// jobs requesting more than total_nodes are truncated to total_nodes.
DispatchResult simulate_dispatch(std::span<const DispatchJob> jobs,
                                 const DispatchConfig& config);

}  // namespace mcb
