#include "sched/dispatch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <deque>
#include <queue>

#include "util/stats.hpp"

namespace mcb {

std::vector<DispatchJob> make_dispatch_jobs(std::span<const JobRecord> jobs,
                                            std::span<const Boundedness> predicted,
                                            const Characterizer& characterizer) {
  std::vector<DispatchJob> out;
  out.reserve(jobs.size());
  const DispatchConfig physics;  // for the boost/normal conversion constants
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& job = jobs[i];
    const auto truth = characterizer.characterize(job);
    if (!truth.has_value() || job.duration() <= 0) continue;

    DispatchJob dj;
    dj.job_id = job.job_id;
    dj.submit_time = job.submit_time;
    dj.nodes = std::max<std::uint32_t>(1, job.nodes_allocated);
    dj.user_frequency = job.frequency;
    dj.truth = *truth;
    dj.predicted = i < predicted.size() ? predicted[i] : *truth;

    // Normalize the recorded duration/power to normal-frequency values.
    double duration = static_cast<double>(job.duration());
    double power = job.avg_power_watts > 0.0
                       ? job.avg_power_watts
                       : 100.0 * static_cast<double>(dj.nodes);  // telemetry fallback
    if (job.frequency == FrequencyMode::kBoost) {
      if (*truth == Boundedness::kComputeBound) {
        duration /= (1.0 - physics.boost_speedup_compute);
      }
      power /= (1.0 + physics.boost_power_premium);
    }
    dj.base_duration_s = duration;
    dj.base_power_w = power;
    out.push_back(dj);
  }
  std::sort(out.begin(), out.end(), [](const DispatchJob& a, const DispatchJob& b) {
    return a.submit_time != b.submit_time ? a.submit_time < b.submit_time
                                          : a.job_id < b.job_id;
  });
  return out;
}

namespace {

struct Allocation {
  std::uint32_t nodes = 0;
  Boundedness primary_predicted = Boundedness::kMemoryBound;
  double primary_end = 0.0;
  bool has_partner = false;
  double partner_end = 0.0;
  double start = 0.0;
  bool released = false;
};

struct Completion {
  double time = 0.0;
  std::size_t alloc_id = 0;
  bool is_partner = false;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

DispatchResult simulate_dispatch(std::span<const DispatchJob> jobs,
                                 const DispatchConfig& config) {
  DispatchResult result;
  if (jobs.empty() || config.total_nodes == 0) return result;

  std::uint32_t free_nodes = config.total_nodes;
  std::vector<Allocation> allocations;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::deque<std::size_t> queue;  // indices into `jobs`, FCFS

  std::vector<double> waits;
  waits.reserve(jobs.size());
  OnlineStats slowdowns;
  double last_completion = 0.0;
  const double first_submission = static_cast<double>(jobs.front().submit_time);

  // Assigned frequency + exclusive-mode duration/power under the policy.
  const auto assigned_frequency = [&config](const DispatchJob& job) {
    if (!config.frequency_advisor) return job.user_frequency;
    return job.predicted == Boundedness::kComputeBound ? FrequencyMode::kBoost
                                                       : FrequencyMode::kNormal;
  };
  const auto exclusive_duration = [&config](const DispatchJob& job, FrequencyMode freq) {
    // Only truly compute-bound jobs speed up at boost (paper §V-C d).
    if (freq == FrequencyMode::kBoost && job.truth == Boundedness::kComputeBound) {
      return job.base_duration_s * (1.0 - config.boost_speedup_compute);
    }
    return job.base_duration_s;
  };
  const auto job_power = [&config](const DispatchJob& job, FrequencyMode freq) {
    return freq == FrequencyMode::kBoost
               ? job.base_power_w * (1.0 + config.boost_power_premium)
               : job.base_power_w;
  };

  const auto start_job = [&](std::size_t index, double now, bool co_located,
                             std::size_t host_alloc) {
    const DispatchJob& job = jobs[index];
    const FrequencyMode freq = assigned_frequency(job);
    if (freq != job.user_frequency) ++result.frequency_overrides;

    double duration = exclusive_duration(job, freq);
    if (co_located) {
      const Allocation& host = allocations[host_alloc];
      const bool conflict =
          (job.truth == Boundedness::kMemoryBound) ==
          (host.primary_predicted == Boundedness::kMemoryBound);
      // Contention factor by the *pair type actually formed*.
      if (conflict) {
        duration *= config.coshare_slowdown_conflict;
        ++result.conflict_pairs;
      } else if (job.truth == Boundedness::kMemoryBound) {
        duration *= config.coshare_slowdown_memory;
      } else {
        duration *= config.coshare_slowdown_compute;
      }
      ++result.co_scheduled_jobs;
    }

    const double wait = now - static_cast<double>(job.submit_time);
    waits.push_back(wait);
    slowdowns.add((wait + duration) / std::max(1.0, exclusive_duration(job, freq)));
    result.total_energy_gj += job_power(job, freq) * duration / 1e9;
    ++result.jobs_completed;

    const double end = now + duration;
    last_completion = std::max(last_completion, end);
    if (co_located) {
      allocations[host_alloc].has_partner = true;
      allocations[host_alloc].partner_end = end;
      completions.push({end, host_alloc, true});
    } else {
      Allocation alloc;
      alloc.nodes = std::min(job.nodes, config.total_nodes);
      alloc.primary_predicted = job.predicted;
      alloc.primary_end = end;
      alloc.start = now;
      free_nodes -= alloc.nodes;
      allocations.push_back(alloc);
      completions.push({end, allocations.size() - 1, false});
    }
  };

  // Try to start queued jobs in FCFS order; stop at the first job that
  // cannot be placed (no backfill, same discipline for all policies).
  const auto drain_queue = [&](double now) {
    while (!queue.empty()) {
      const std::size_t index = queue.front();
      const DispatchJob& job = jobs[index];
      const std::uint32_t need = std::min(job.nodes, config.total_nodes);
      if (need <= free_nodes) {
        queue.pop_front();
        start_job(index, now, false, 0);
        continue;
      }
      if (config.co_schedule) {
        // Label-aware backfill: when the head is blocked, co-locate the
        // first queued job (any position) whose *predicted* label is
        // complementary to a running allocation with a free partner
        // slot and enough nodes. This never delays the head job — the
        // co-located job consumes no free nodes.
        bool placed = false;
        for (auto it = queue.begin(); it != queue.end() && !placed; ++it) {
          const DispatchJob& candidate = jobs[*it];
          const std::uint32_t candidate_need =
              std::min(candidate.nodes, config.total_nodes);
          for (std::size_t a = 0; a < allocations.size(); ++a) {
            Allocation& alloc = allocations[a];
            if (alloc.released || alloc.has_partner) continue;
            if (alloc.nodes < candidate_need) continue;
            if (alloc.primary_end <= now) continue;  // about to finish
            if ((alloc.primary_predicted == Boundedness::kMemoryBound) ==
                (candidate.predicted == Boundedness::kMemoryBound)) {
              continue;  // not complementary
            }
            // Fit-in-time guard: the partner must be expected to finish
            // before (or shortly after) the host does, otherwise it pins
            // the host's nodes and hurts the queue. Uses the walltime
            // estimate a real scheduler would have.
            const double estimate =
                exclusive_duration(candidate, assigned_frequency(candidate)) *
                config.coshare_slowdown_compute;
            if (estimate > (alloc.primary_end - now) * 1.25) continue;
            const std::size_t candidate_index = *it;
            queue.erase(it);
            start_job(candidate_index, now, true, a);
            placed = true;
            break;
          }
        }
        if (placed) continue;
      }
      break;  // head of line blocked
    }
  };

  const auto release_if_done = [&](std::size_t alloc_id, double now) {
    Allocation& alloc = allocations[alloc_id];
    if (alloc.released) return;
    const bool primary_done = alloc.primary_end <= now + 1e-9;
    const bool partner_done = !alloc.has_partner || alloc.partner_end <= now + 1e-9;
    if (primary_done && partner_done) {
      alloc.released = true;
      free_nodes += alloc.nodes;
      result.node_seconds_busy += static_cast<double>(alloc.nodes) * (now - alloc.start);
    }
  };

  std::size_t next_arrival = 0;
  while (next_arrival < jobs.size() || !completions.empty()) {
    const double arrival_time = next_arrival < jobs.size()
                                    ? static_cast<double>(jobs[next_arrival].submit_time)
                                    : std::numeric_limits<double>::infinity();
    const double completion_time =
        !completions.empty() ? completions.top().time
                             : std::numeric_limits<double>::infinity();

    if (completion_time <= arrival_time) {
      const Completion event = completions.top();
      completions.pop();
      release_if_done(event.alloc_id, event.time);
      drain_queue(event.time);
    } else {
      queue.push_back(next_arrival++);
      drain_queue(arrival_time);
    }
  }

  if (!waits.empty()) {
    double sum = 0.0;
    for (const double w : waits) sum += w;
    result.mean_wait_s = sum / static_cast<double>(waits.size());
    result.p95_wait_s = percentile(waits, 95.0);
  }
  result.mean_slowdown = slowdowns.mean();
  result.makespan_s = last_completion - first_submission;
  return result;
}

}  // namespace mcb
