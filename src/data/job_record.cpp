#include "data/job_record.hpp"

#include "util/strings.hpp"

namespace mcb {

const std::vector<std::string>& job_csv_header() {
  static const std::vector<std::string> header = {
      "job_id",       "user_name",  "job_name",      "environment",
      "nodes_req",    "cores_req",  "freq_mhz",      "submit_time",
      "start_time",   "end_time",   "nodes_alloc",   "exit_status",
      "perf2",        "perf3",      "perf4",         "perf5",
      "perf6",        "avg_power_w",
  };
  return header;
}

std::vector<std::string> job_to_csv(const JobRecord& job) {
  return {
      std::to_string(job.job_id),
      job.user_name,
      job.job_name,
      job.environment,
      std::to_string(job.nodes_requested),
      std::to_string(job.cores_requested),
      std::to_string(frequency_mhz(job.frequency)),
      std::to_string(job.submit_time),
      std::to_string(job.start_time),
      std::to_string(job.end_time),
      std::to_string(job.nodes_allocated),
      std::to_string(job.exit_status),
      format_double(job.perf2, 0),
      format_double(job.perf3, 0),
      format_double(job.perf4, 0),
      format_double(job.perf5, 0),
      format_double(job.perf6, 0),
      format_double(job.avg_power_watts, 1),
  };
}

bool job_from_csv(const std::vector<std::string>& fields, JobRecord& out) {
  if (fields.size() != job_csv_header().size()) return false;
  JobRecord job;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;

  if (!parse_u64(fields[0], u)) return false;
  job.job_id = u;
  job.user_name = fields[1];
  job.job_name = fields[2];
  job.environment = fields[3];
  if (!parse_u64(fields[4], u)) return false;
  job.nodes_requested = static_cast<std::uint32_t>(u);
  if (!parse_u64(fields[5], u)) return false;
  job.cores_requested = static_cast<std::uint32_t>(u);
  if (!parse_u64(fields[6], u)) return false;
  job.frequency = (u >= 2200) ? FrequencyMode::kBoost : FrequencyMode::kNormal;
  if (!parse_i64(fields[7], i)) return false;
  job.submit_time = i;
  if (!parse_i64(fields[8], i)) return false;
  job.start_time = i;
  if (!parse_i64(fields[9], i)) return false;
  job.end_time = i;
  if (!parse_u64(fields[10], u)) return false;
  job.nodes_allocated = static_cast<std::uint32_t>(u);
  if (!parse_i64(fields[11], i)) return false;
  job.exit_status = static_cast<std::int32_t>(i);
  if (!parse_double(fields[12], d)) return false;
  job.perf2 = d;
  if (!parse_double(fields[13], d)) return false;
  job.perf3 = d;
  if (!parse_double(fields[14], d)) return false;
  job.perf4 = d;
  if (!parse_double(fields[15], d)) return false;
  job.perf5 = d;
  if (!parse_double(fields[16], d)) return false;
  job.perf6 = d;
  if (!parse_double(fields[17], d)) return false;
  job.avg_power_watts = d;

  out = std::move(job);
  return true;
}

}  // namespace mcb
