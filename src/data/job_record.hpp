// The job-centric data model.
//
// A JobRecord mirrors the fields MCBound needs from the Fugaku operations
// database (an extension of PBS): submission-time features (available
// before execution and thus usable for prediction), execution/completion
// statistics, and the A64FX performance counters used by the Roofline
// characterizer.
//
// Counter semantics on Fugaku (paper §IV-B):
//   perf2 = FP_FIXED_OPS_SPEC    (fixed-width FP operations)
//   perf3 = FP_SCALE_OPS_SPEC    (ops per 128-bit SVE slice; x4 for 512-bit)
//   perf4 = BUS_READ_TOTAL_MEM   (memory read requests, summed per CMG)
//   perf5 = BUS_WRITE_TOTAL_MEM  (memory write requests, summed per CMG)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace mcb {

/// Frequency modes selectable at submission on Fugaku (A64FX).
enum class FrequencyMode : std::uint8_t {
  kNormal = 0,  ///< 2.0 GHz
  kBoost = 1,   ///< 2.2 GHz
};

inline constexpr int frequency_mhz(FrequencyMode mode) noexcept {
  return mode == FrequencyMode::kBoost ? 2200 : 2000;
}

inline const char* frequency_mode_name(FrequencyMode mode) noexcept {
  return mode == FrequencyMode::kBoost ? "boost" : "normal";
}

struct JobRecord {
  // --- identity & submission-time features (usable for prediction) ---
  std::uint64_t job_id = 0;
  std::string user_name;          ///< anonymized user, e.g. "u01234"
  std::string job_name;           ///< script/app name given by the user
  std::string environment;        ///< toolchain/runtime string, e.g. "lang/tcsds-1.2.38;mpi"
  std::uint32_t nodes_requested = 1;
  std::uint32_t cores_requested = 48;
  FrequencyMode frequency = FrequencyMode::kNormal;
  TimePoint submit_time = 0;

  // --- execution / completion statistics ---
  TimePoint start_time = 0;
  TimePoint end_time = 0;
  std::uint32_t nodes_allocated = 1;
  std::int32_t exit_status = 0;

  // --- aggregate A64FX performance counters over the whole job ---
  double perf2 = 0.0;  ///< FP_FIXED_OPS_SPEC
  double perf3 = 0.0;  ///< FP_SCALE_OPS_SPEC (128-bit slices)
  double perf4 = 0.0;  ///< BUS_READ_TOTAL_MEM (CMG-summed)
  double perf5 = 0.0;  ///< BUS_WRITE_TOTAL_MEM (CMG-summed)
  double perf6 = 0.0;  ///< Tofu-D interconnect bytes transferred (total)

  // --- power telemetry (F-DATA carries per-job power averages) ---
  double avg_power_watts = 0.0;  ///< average whole-job power draw

  /// Wall-clock duration in seconds.
  std::int64_t duration() const noexcept { return end_time - start_time; }
};

/// CSV header shared by the store export/import (column order contract).
const std::vector<std::string>& job_csv_header();

/// Serialize one record to CSV fields in job_csv_header() order.
std::vector<std::string> job_to_csv(const JobRecord& job);

/// Parse a record from CSV fields; returns false on malformed input.
bool job_from_csv(const std::vector<std::string>& fields, JobRecord& out);

}  // namespace mcb
