// Data Fetcher — the paper's storage-abstraction component (§III-A).
//
// The Fetcher decouples the rest of the framework from the concrete
// storage technology. The paper implements it against Fugaku's
// relational database; we provide the interface plus a JobStore-backed
// implementation. A deployment against a different backend implements
// DataFetcher and plugs it into mcbound::Framework.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "data/job_record.hpp"
#include "data/job_store.hpp"

namespace mcb {

class DataFetcher {
 public:
  virtual ~DataFetcher() = default;

  /// Fetch a single job by id (paper: fetch(job_id)).
  virtual std::optional<JobRecord> fetch(std::uint64_t job_id) const = 0;

  /// Fetch all jobs whose `field` timestamp lies in [start, end)
  /// (paper: fetch(start_time, end_time)).
  virtual std::vector<JobRecord> fetch(TimePoint start_time, TimePoint end_time,
                                       JobQuery::TimeField field =
                                           JobQuery::TimeField::kEndTime) const = 0;
};

/// Fetcher over an in-process JobStore (non-owning; the store must
/// outlive the fetcher).
class StoreDataFetcher final : public DataFetcher {
 public:
  explicit StoreDataFetcher(const JobStore& store) : store_(&store) {}

  std::optional<JobRecord> fetch(std::uint64_t job_id) const override;
  std::vector<JobRecord> fetch(TimePoint start_time, TimePoint end_time,
                               JobQuery::TimeField field) const override;

  /// The SQL this fetch would issue against a relational backend.
  static std::string render_sql(TimePoint start_time, TimePoint end_time,
                                JobQuery::TimeField field);

 private:
  const JobStore* store_;
};

}  // namespace mcb
