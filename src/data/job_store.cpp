#include "data/job_store.hpp"

#include <algorithm>
#include <fstream>

#include "util/csv.hpp"

namespace mcb {

std::string JobQuery::to_sql() const {
  const char* column = field == TimeField::kEndTime ? "end_time" : "submit_time";
  std::string sql = "SELECT * FROM jobs WHERE ";
  sql += column;
  sql += " >= " + std::to_string(start_time);
  sql += " AND ";
  sql += column;
  sql += " < " + std::to_string(end_time);
  if (user_name.has_value()) sql += " AND user_name = '" + *user_name + "'";
  if (frequency.has_value()) {
    sql += " AND freq_mhz = " + std::to_string(frequency_mhz(*frequency));
  }
  sql += " ORDER BY ";
  sql += column;
  return sql;
}

bool JobStore::insert(JobRecord job) {
  if (id_index_.contains(job.job_id)) return false;
  if (!jobs_.empty() && sorted_) {
    const JobRecord& last = jobs_.back();
    if (job.end_time < last.end_time ||
        (job.end_time == last.end_time && job.job_id < last.job_id)) {
      sorted_ = false;
      id_index_valid_ = false;
    }
  }
  id_index_.emplace(job.job_id, static_cast<std::uint32_t>(jobs_.size()));
  jobs_.push_back(std::move(job));
  submit_index_valid_ = false;
  return true;
}

std::size_t JobStore::insert_all(std::vector<JobRecord> jobs) {
  std::size_t inserted = 0;
  jobs_.reserve(jobs_.size() + jobs.size());
  for (auto& job : jobs) {
    if (insert(std::move(job))) ++inserted;
  }
  return inserted;
}

void JobStore::ensure_sorted() const {
  if (!sorted_) {
    std::sort(jobs_.begin(), jobs_.end(), [](const JobRecord& a, const JobRecord& b) {
      return a.end_time != b.end_time ? a.end_time < b.end_time : a.job_id < b.job_id;
    });
    sorted_ = true;
  }
  if (!id_index_valid_) {
    auto& index = const_cast<JobStore*>(this)->id_index_;
    index.clear();
    index.reserve(jobs_.size());
    for (std::uint32_t i = 0; i < jobs_.size(); ++i) index.emplace(jobs_[i].job_id, i);
    id_index_valid_ = true;
  }
}

const JobRecord* JobStore::find(std::uint64_t job_id) const {
  ensure_sorted();
  const auto it = id_index_.find(job_id);
  return it != id_index_.end() ? &jobs_[it->second] : nullptr;
}

std::vector<const JobRecord*> JobStore::query(const JobQuery& q) const {
  ensure_sorted();
  std::vector<const JobRecord*> out;

  const auto matches_filters = [&q](const JobRecord& job) {
    if (q.user_name.has_value() && job.user_name != *q.user_name) return false;
    if (q.frequency.has_value() && job.frequency != *q.frequency) return false;
    return true;
  };

  if (q.field == JobQuery::TimeField::kEndTime) {
    const auto lo = std::lower_bound(jobs_.begin(), jobs_.end(), q.start_time,
                                     [](const JobRecord& j, TimePoint t) { return j.end_time < t; });
    for (auto it = lo; it != jobs_.end() && it->end_time < q.end_time; ++it) {
      if (matches_filters(*it)) out.push_back(&*it);
    }
    return out;
  }

  // submit_time queries go through the secondary index.
  if (!submit_index_valid_) {
    by_submit_.resize(jobs_.size());
    for (std::uint32_t i = 0; i < jobs_.size(); ++i) by_submit_[i] = i;
    std::sort(by_submit_.begin(), by_submit_.end(), [this](std::uint32_t a, std::uint32_t b) {
      return jobs_[a].submit_time != jobs_[b].submit_time
                 ? jobs_[a].submit_time < jobs_[b].submit_time
                 : jobs_[a].job_id < jobs_[b].job_id;
    });
    submit_index_valid_ = true;
  }
  const auto lo = std::lower_bound(
      by_submit_.begin(), by_submit_.end(), q.start_time,
      [this](std::uint32_t idx, TimePoint t) { return jobs_[idx].submit_time < t; });
  for (auto it = lo; it != by_submit_.end() && jobs_[*it].submit_time < q.end_time; ++it) {
    if (matches_filters(jobs_[*it])) out.push_back(&jobs_[*it]);
  }
  return out;
}

std::span<const JobRecord> JobStore::all() const {
  ensure_sorted();
  return {jobs_.data(), jobs_.size()};
}

TimePoint JobStore::min_end_time() const {
  ensure_sorted();
  return jobs_.empty() ? 0 : jobs_.front().end_time;
}

TimePoint JobStore::max_end_time() const {
  ensure_sorted();
  return jobs_.empty() ? 0 : jobs_.back().end_time;
}

bool JobStore::save_csv(const std::string& path) const {
  ensure_sorted();
  std::ofstream out(path);
  if (!out) return false;
  CsvWriter writer(out);
  writer.write_row(job_csv_header());
  for (const auto& job : jobs_) writer.write_row(job_to_csv(job));
  return static_cast<bool>(out);
}

bool JobStore::load_csv(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return load_csv(in, error);
}

bool JobStore::load_csv(std::istream& in, std::string* error) {
  jobs_.clear();
  id_index_.clear();
  sorted_ = true;
  id_index_valid_ = true;
  submit_index_valid_ = false;

  CsvReader reader(in);
  std::vector<std::string> fields;
  if (!reader.next_row(fields) || fields != job_csv_header()) {
    if (error != nullptr) *error = "missing or mismatched CSV header";
    return false;
  }
  std::size_t line = 1;
  while (reader.next_row(fields)) {
    ++line;
    JobRecord job;
    if (!job_from_csv(fields, job)) {
      if (error != nullptr) *error = "malformed record at data row " + std::to_string(line);
      return false;
    }
    if (!insert(std::move(job))) {
      if (error != nullptr) *error = "duplicate job id at data row " + std::to_string(line);
      return false;
    }
  }
  return true;
}

}  // namespace mcb
