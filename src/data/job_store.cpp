#include "data/job_store.hpp"

#include <algorithm>
#include <fstream>

#include "util/csv.hpp"

namespace mcb {

std::string JobQuery::to_sql() const {
  const char* column = field == TimeField::kEndTime ? "end_time" : "submit_time";
  std::string sql = "SELECT * FROM jobs WHERE ";
  sql += column;
  sql += " >= " + std::to_string(start_time);
  sql += " AND ";
  sql += column;
  sql += " < " + std::to_string(end_time);
  if (user_name.has_value()) sql += " AND user_name = '" + *user_name + "'";
  if (frequency.has_value()) {
    sql += " AND freq_mhz = " + std::to_string(frequency_mhz(*frequency));
  }
  sql += " ORDER BY ";
  sql += column;
  return sql;
}

JobStore::JobStore(JobStore&& other) noexcept {
  ExclusiveLock lock(other.mutex_);
  jobs_ = std::move(other.jobs_);
  sorted_ = other.sorted_;
  by_submit_ = std::move(other.by_submit_);
  submit_index_valid_ = other.submit_index_valid_;
  id_index_ = std::move(other.id_index_);
  id_index_valid_ = other.id_index_valid_;
  other.jobs_.clear();
  other.by_submit_.clear();
  other.id_index_.clear();
  other.sorted_ = true;
  other.submit_index_valid_ = false;
  other.id_index_valid_ = true;
}

bool JobStore::insert(JobRecord job) {
  ExclusiveLock lock(mutex_);
  return insert_locked(std::move(job));
}

bool JobStore::insert_locked(JobRecord job) {
  if (id_index_valid_ && id_index_.contains(job.job_id)) return false;
  if (!id_index_valid_) {
    // The id index is stale (slots moved under a pending re-sort); fall
    // back to a linear duplicate scan rather than rebuilding mid-insert.
    for (const JobRecord& existing : jobs_) {
      if (existing.job_id == job.job_id) return false;
    }
  }
  if (!jobs_.empty() && sorted_) {
    const JobRecord& last = jobs_.back();
    if (job.end_time < last.end_time ||
        (job.end_time == last.end_time && job.job_id < last.job_id)) {
      sorted_ = false;
      id_index_valid_ = false;
    }
  }
  if (id_index_valid_) {
    id_index_.emplace(job.job_id, static_cast<std::uint32_t>(jobs_.size()));
  }
  jobs_.push_back(std::move(job));
  submit_index_valid_ = false;
  return true;
}

std::size_t JobStore::insert_all(std::vector<JobRecord> jobs) {
  ExclusiveLock lock(mutex_);
  std::size_t inserted = 0;
  jobs_.reserve(jobs_.size() + jobs.size());
  for (auto& job : jobs) {
    if (insert_locked(std::move(job))) ++inserted;
  }
  return inserted;
}

std::size_t JobStore::size() const {
  SharedLock lock(mutex_);
  return jobs_.size();
}

bool JobStore::empty() const {
  SharedLock lock(mutex_);
  return jobs_.empty();
}

void JobStore::ensure_sorted_locked() const {
  if (!sorted_) {
    std::sort(jobs_.begin(), jobs_.end(), [](const JobRecord& a, const JobRecord& b) {
      return a.end_time != b.end_time ? a.end_time < b.end_time : a.job_id < b.job_id;
    });
    sorted_ = true;
  }
  if (!id_index_valid_) {
    id_index_.clear();
    id_index_.reserve(jobs_.size());
    for (std::uint32_t i = 0; i < jobs_.size(); ++i) id_index_.emplace(jobs_[i].job_id, i);
    id_index_valid_ = true;
  }
}

void JobStore::ensure_submit_index_locked() const {
  ensure_sorted_locked();
  if (submit_index_valid_) return;
  by_submit_.resize(jobs_.size());
  for (std::uint32_t i = 0; i < jobs_.size(); ++i) by_submit_[i] = i;
  // Bind the guarded vector to a local under the (held) lock: the
  // analysis cannot see through lambda captures, but a plain reference
  // read here is checked and the comparator stays annotation-free.
  const std::vector<JobRecord>& jobs = jobs_;
  std::sort(by_submit_.begin(), by_submit_.end(),
            [&jobs](std::uint32_t a, std::uint32_t b) {
              return jobs[a].submit_time != jobs[b].submit_time
                         ? jobs[a].submit_time < jobs[b].submit_time
                         : jobs[a].job_id < jobs[b].job_id;
            });
  submit_index_valid_ = true;
}

bool JobStore::sorted_ready_locked() const { return sorted_; }

bool JobStore::find_ready_locked() const { return sorted_ && id_index_valid_; }

bool JobStore::query_ready_locked(JobQuery::TimeField field) const {
  return field == JobQuery::TimeField::kEndTime ? sorted_
                                                : sorted_ && submit_index_valid_;
}

const JobRecord* JobStore::find_locked(std::uint64_t job_id) const {
  const auto it = id_index_.find(job_id);
  return it != id_index_.end() ? &jobs_[it->second] : nullptr;
}

const JobRecord* JobStore::find(std::uint64_t job_id) const {
  {
    SharedLock lock(mutex_);
    if (find_ready_locked()) return find_locked(job_id);
  }
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  return find_locked(job_id);
}

std::optional<JobRecord> JobStore::find_record(std::uint64_t job_id) const {
  {
    SharedLock lock(mutex_);
    if (find_ready_locked()) {
      const JobRecord* job = find_locked(job_id);
      return job != nullptr ? std::optional<JobRecord>(*job) : std::nullopt;
    }
  }
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  const JobRecord* job = find_locked(job_id);
  return job != nullptr ? std::optional<JobRecord>(*job) : std::nullopt;
}

std::vector<const JobRecord*> JobStore::query_locked(const JobQuery& q) const {
  std::vector<const JobRecord*> out;

  const auto matches_filters = [&q](const JobRecord& job) {
    if (q.user_name.has_value() && job.user_name != *q.user_name) return false;
    if (q.frequency.has_value() && job.frequency != *q.frequency) return false;
    return true;
  };

  if (q.field == JobQuery::TimeField::kEndTime) {
    const auto lo = std::lower_bound(jobs_.begin(), jobs_.end(), q.start_time,
                                     [](const JobRecord& j, TimePoint t) { return j.end_time < t; });
    for (auto it = lo; it != jobs_.end() && it->end_time < q.end_time; ++it) {
      if (matches_filters(*it)) out.push_back(&*it);
    }
    return out;
  }

  // submit_time queries go through the secondary index (built by
  // ensure_submit_index_locked before this runs). The comparator reads
  // jobs_ through a local reference bound under the held lock — see
  // ensure_submit_index_locked for why.
  const std::vector<JobRecord>& jobs = jobs_;
  const auto lo = std::lower_bound(
      by_submit_.begin(), by_submit_.end(), q.start_time,
      [&jobs](std::uint32_t idx, TimePoint t) { return jobs[idx].submit_time < t; });
  for (auto it = lo; it != by_submit_.end() && jobs_[*it].submit_time < q.end_time; ++it) {
    if (matches_filters(jobs_[*it])) out.push_back(&jobs_[*it]);
  }
  return out;
}

std::vector<const JobRecord*> JobStore::query(const JobQuery& q) const {
  {
    SharedLock lock(mutex_);
    if (query_ready_locked(q.field)) return query_locked(q);
  }
  ExclusiveLock lock(mutex_);
  if (q.field == JobQuery::TimeField::kSubmitTime) {
    ensure_submit_index_locked();
  } else {
    ensure_sorted_locked();
  }
  return query_locked(q);
}

std::vector<JobRecord> JobStore::query_records(const JobQuery& q) const {
  const auto materialize = [](const std::vector<const JobRecord*>& hits) {
    std::vector<JobRecord> out;
    out.reserve(hits.size());
    for (const JobRecord* job : hits) out.push_back(*job);
    return out;
  };
  {
    SharedLock lock(mutex_);
    if (query_ready_locked(q.field)) return materialize(query_locked(q));
  }
  ExclusiveLock lock(mutex_);
  if (q.field == JobQuery::TimeField::kSubmitTime) {
    ensure_submit_index_locked();
  } else {
    ensure_sorted_locked();
  }
  return materialize(query_locked(q));
}

std::span<const JobRecord> JobStore::all() const {
  {
    SharedLock lock(mutex_);
    if (sorted_ready_locked()) return {jobs_.data(), jobs_.size()};
  }
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  return {jobs_.data(), jobs_.size()};
}

TimePoint JobStore::min_end_time() const {
  {
    SharedLock lock(mutex_);
    if (sorted_ready_locked()) return jobs_.empty() ? 0 : jobs_.front().end_time;
  }
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  return jobs_.empty() ? 0 : jobs_.front().end_time;
}

TimePoint JobStore::max_end_time() const {
  {
    SharedLock lock(mutex_);
    if (sorted_ready_locked()) return jobs_.empty() ? 0 : jobs_.back().end_time;
  }
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  return jobs_.empty() ? 0 : jobs_.back().end_time;
}

bool JobStore::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  CsvWriter writer(out);
  writer.write_row(job_csv_header());
  ExclusiveLock lock(mutex_);
  ensure_sorted_locked();
  for (const auto& job : jobs_) writer.write_row(job_to_csv(job));
  return static_cast<bool>(out);
}

bool JobStore::load_csv(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return load_csv(in, error);
}

bool JobStore::load_csv(std::istream& in, std::string* error) {
  ExclusiveLock lock(mutex_);
  jobs_.clear();
  id_index_.clear();
  sorted_ = true;
  id_index_valid_ = true;
  submit_index_valid_ = false;

  CsvReader reader(in);
  std::vector<std::string> fields;
  if (!reader.next_row(fields) || fields != job_csv_header()) {
    if (error != nullptr) *error = "missing or mismatched CSV header";
    return false;
  }
  std::size_t line = 1;
  while (reader.next_row(fields)) {
    ++line;
    JobRecord job;
    if (!job_from_csv(fields, job)) {
      if (error != nullptr) *error = "malformed record at data row " + std::to_string(line);
      return false;
    }
    if (!insert_locked(std::move(job))) {
      if (error != nullptr) *error = "duplicate job id at data row " + std::to_string(line);
      return false;
    }
  }
  return true;
}

}  // namespace mcb
