#include "data/data_fetcher.hpp"

namespace mcb {

std::optional<JobRecord> StoreDataFetcher::fetch(std::uint64_t job_id) const {
  const JobRecord* job = store_->find(job_id);
  if (job == nullptr) return std::nullopt;
  return *job;
}

std::vector<JobRecord> StoreDataFetcher::fetch(TimePoint start_time, TimePoint end_time,
                                               JobQuery::TimeField field) const {
  JobQuery q;
  q.field = field;
  q.start_time = start_time;
  q.end_time = end_time;
  std::vector<JobRecord> out;
  const auto results = store_->query(q);
  out.reserve(results.size());
  for (const JobRecord* job : results) out.push_back(*job);
  return out;
}

std::string StoreDataFetcher::render_sql(TimePoint start_time, TimePoint end_time,
                                         JobQuery::TimeField field) {
  JobQuery q;
  q.field = field;
  q.start_time = start_time;
  q.end_time = end_time;
  return q.to_sql();
}

}  // namespace mcb
