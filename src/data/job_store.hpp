// JobStore — the "jobs data storage" substrate.
//
// On Fugaku the operations software records every job in a relational
// database; MCBound's Data Fetcher issues time-range SQL queries against
// it. Here the store is an embeddable in-memory table with:
//   * O(1) lookup by job id,
//   * O(log n + k) range scans over end_time (jobs *executed* in a
//     window — what the Training Workflow fetches) and over submit_time
//     (what the Inference Workflow fetches),
//   * CSV persistence (our stand-in for the F-DATA export).
//
// Records are kept sorted by end_time; insertion is amortized append
// (the workload generator emits jobs roughly in completion order) with a
// lazy re-sort when out-of-order inserts accumulate.
//
// Concurrency: the store is internally synchronized by a reader/writer
// SharedMutex — the serving layer reads it from HTTP handlers while
// ingest code appends (paper §III: the online framework's Data Fetcher
// and Inference Workflow run concurrently). Reads take a shared hold
// when the lazy indexes are fresh and upgrade to exclusive only to
// rebuild them. Two kinds of read API:
//   * copying (find_record, query_records, size, min/max_end_time):
//     safe under concurrent insert — results are materialized under the
//     lock.
//   * borrowing (find, query, all): return pointers/spans into the
//     table; insert invalidates them, so they are for single-writer
//     phases (analysis passes, tests) — not for concurrent use.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/job_record.hpp"
#include "util/sync.hpp"
#include "util/time.hpp"

namespace mcb {

/// Declarative range query; `to_sql()` renders the equivalent SQL the
/// Fugaku deployment would issue (used for logging and tested for
/// fidelity with the paper's description of the Data Fetcher).
struct JobQuery {
  enum class TimeField { kEndTime, kSubmitTime };

  TimeField field = TimeField::kEndTime;
  TimePoint start_time = 0;                 ///< inclusive
  TimePoint end_time = 0;                   ///< exclusive
  std::optional<std::string> user_name;     ///< optional equality filter
  std::optional<FrequencyMode> frequency;   ///< optional equality filter

  std::string to_sql() const;
};

class JobStore {
 public:
  JobStore() = default;

  /// Move is a construction-time hand-off (workload builders return
  /// stores by value); the source must not be in concurrent use. Each
  /// store keeps its own mutex — only the data moves.
  JobStore(JobStore&& other) noexcept;
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;
  JobStore& operator=(JobStore&&) = delete;

  /// Insert one record. Duplicate job ids are rejected (returns false).
  bool insert(JobRecord job) MCB_EXCLUDES(mutex_);

  /// Bulk insert; returns the number of records actually inserted.
  std::size_t insert_all(std::vector<JobRecord> jobs) MCB_EXCLUDES(mutex_);

  std::size_t size() const MCB_EXCLUDES(mutex_);
  bool empty() const MCB_EXCLUDES(mutex_);

  /// Lookup by id; nullptr if absent. Pointers are invalidated by insert
  /// (single-writer phases only — concurrent readers use find_record).
  const JobRecord* find(std::uint64_t job_id) const MCB_EXCLUDES(mutex_);

  /// Copying lookup, safe while other threads insert.
  std::optional<JobRecord> find_record(std::uint64_t job_id) const
      MCB_EXCLUDES(mutex_);

  /// Execute a range query; results ordered by the queried time field.
  /// Borrowing variant — see find() for the invalidation caveat.
  std::vector<const JobRecord*> query(const JobQuery& q) const MCB_EXCLUDES(mutex_);

  /// Copying range query, safe while other threads insert: matching
  /// records are materialized under the store lock.
  std::vector<JobRecord> query_records(const JobQuery& q) const MCB_EXCLUDES(mutex_);

  /// All records ordered by end_time (stable view for analysis passes;
  /// invalidated by insert like the other borrowing reads).
  std::span<const JobRecord> all() const MCB_EXCLUDES(mutex_);

  /// Earliest / latest end_time in the store (0 if empty).
  TimePoint min_end_time() const MCB_EXCLUDES(mutex_);
  TimePoint max_end_time() const MCB_EXCLUDES(mutex_);

  /// CSV persistence. save() writes header + one row per record;
  /// load() replaces the store contents. Both return false on I/O or
  /// parse failure (load leaves a partially-filled store on failure).
  /// Malformed input (truncated rows, non-numeric fields, duplicate job
  /// ids, mismatched header) is always reported through `error` with the
  /// offending data row — never an abort or exception.
  bool save_csv(const std::string& path) const MCB_EXCLUDES(mutex_);
  bool load_csv(const std::string& path, std::string* error = nullptr)
      MCB_EXCLUDES(mutex_);
  /// Stream variant of load_csv (used directly by the fuzz harness).
  bool load_csv(std::istream& in, std::string* error = nullptr) MCB_EXCLUDES(mutex_);

 private:
  bool insert_locked(JobRecord job) MCB_REQUIRES(mutex_);
  void ensure_sorted_locked() const MCB_REQUIRES(mutex_);
  void ensure_submit_index_locked() const MCB_REQUIRES(mutex_);
  bool sorted_ready_locked() const MCB_REQUIRES_SHARED(mutex_);
  bool find_ready_locked() const MCB_REQUIRES_SHARED(mutex_);
  bool query_ready_locked(JobQuery::TimeField field) const
      MCB_REQUIRES_SHARED(mutex_);
  const JobRecord* find_locked(std::uint64_t job_id) const
      MCB_REQUIRES_SHARED(mutex_);
  std::vector<const JobRecord*> query_locked(const JobQuery& q) const
      MCB_REQUIRES_SHARED(mutex_);

  mutable SharedMutex mutex_;
  mutable std::vector<JobRecord> jobs_
      MCB_GUARDED_BY(mutex_);  // sorted by (end_time, job_id)
  mutable bool sorted_ MCB_GUARDED_BY(mutex_) = true;
  mutable std::vector<std::uint32_t> by_submit_
      MCB_GUARDED_BY(mutex_);  // indices sorted by submit_time
  mutable bool submit_index_valid_ MCB_GUARDED_BY(mutex_) = false;
  mutable std::unordered_map<std::uint64_t, std::uint32_t> id_index_
      MCB_GUARDED_BY(mutex_);  // id -> slot
  mutable bool id_index_valid_ MCB_GUARDED_BY(mutex_) = true;
};

}  // namespace mcb
