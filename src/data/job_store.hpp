// JobStore — the "jobs data storage" substrate.
//
// On Fugaku the operations software records every job in a relational
// database; MCBound's Data Fetcher issues time-range SQL queries against
// it. Here the store is an embeddable in-memory table with:
//   * O(1) lookup by job id,
//   * O(log n + k) range scans over end_time (jobs *executed* in a
//     window — what the Training Workflow fetches) and over submit_time
//     (what the Inference Workflow fetches),
//   * CSV persistence (our stand-in for the F-DATA export).
//
// Records are kept sorted by end_time; insertion is amortized append
// (the workload generator emits jobs roughly in completion order) with a
// lazy re-sort when out-of-order inserts accumulate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/job_record.hpp"
#include "util/time.hpp"

namespace mcb {

/// Declarative range query; `to_sql()` renders the equivalent SQL the
/// Fugaku deployment would issue (used for logging and tested for
/// fidelity with the paper's description of the Data Fetcher).
struct JobQuery {
  enum class TimeField { kEndTime, kSubmitTime };

  TimeField field = TimeField::kEndTime;
  TimePoint start_time = 0;                 ///< inclusive
  TimePoint end_time = 0;                   ///< exclusive
  std::optional<std::string> user_name;     ///< optional equality filter
  std::optional<FrequencyMode> frequency;   ///< optional equality filter

  std::string to_sql() const;
};

class JobStore {
 public:
  JobStore() = default;

  /// Insert one record. Duplicate job ids are rejected (returns false).
  bool insert(JobRecord job);

  /// Bulk insert; returns the number of records actually inserted.
  std::size_t insert_all(std::vector<JobRecord> jobs);

  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }

  /// Lookup by id; nullptr if absent. Pointers are invalidated by insert.
  const JobRecord* find(std::uint64_t job_id) const;

  /// Execute a range query; results ordered by the queried time field.
  std::vector<const JobRecord*> query(const JobQuery& q) const;

  /// All records ordered by end_time (stable view for analysis passes).
  std::span<const JobRecord> all() const;

  /// Earliest / latest end_time in the store (0 if empty).
  TimePoint min_end_time() const;
  TimePoint max_end_time() const;

  /// CSV persistence. save() writes header + one row per record;
  /// load() replaces the store contents. Both return false on I/O or
  /// parse failure (load leaves a partially-filled store on failure).
  /// Malformed input (truncated rows, non-numeric fields, duplicate job
  /// ids, mismatched header) is always reported through `error` with the
  /// offending data row — never an abort or exception.
  bool save_csv(const std::string& path) const;
  bool load_csv(const std::string& path, std::string* error = nullptr);
  /// Stream variant of load_csv (used directly by the fuzz harness).
  bool load_csv(std::istream& in, std::string* error = nullptr);

 private:
  void ensure_sorted() const;

  mutable std::vector<JobRecord> jobs_;       // sorted by (end_time, job_id)
  mutable bool sorted_ = true;
  mutable std::vector<std::uint32_t> by_submit_;  // indices sorted by submit_time
  mutable bool submit_index_valid_ = false;
  std::unordered_map<std::uint64_t, std::uint32_t> id_index_;  // id -> slot
  mutable bool id_index_valid_ = true;
};

}  // namespace mcb
