#include "serve/http.hpp"

#include "util/annotations.hpp"
#include "util/strings.hpp"

namespace mcb {

std::string_view http_status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

MCB_HOT_PATH
// mcb-lint: suppress(R10: builds the owning HttpRequest — one bounded copy of the head per request by design)
std::optional<HttpRequest> parse_http_request(std::string_view raw) {
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;
  const std::string_view head = raw.substr(0, head_end);

  HttpRequest request;
  std::size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line = head.substr(line_start, line_end - line_start);

    if (first_line) {
      // METHOD SP target SP HTTP/x.y — exactly two spaces. find/rfind
      // would let "GET /a b HTTP/1.1" through with path "/a b".
      const std::size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos) return std::nullopt;
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos) return std::nullopt;
      if (line.find(' ', sp2 + 1) != std::string_view::npos) return std::nullopt;
      request.method = std::string(line.substr(0, sp1));
      std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view version = line.substr(sp2 + 1);
      if (!starts_with(version, "HTTP/")) return std::nullopt;
      const std::size_t qmark = target.find('?');
      if (qmark != std::string_view::npos) {
        request.query = std::string(target.substr(qmark + 1));
        target = target.substr(0, qmark);
      }
      request.path = std::string(target);
      if (request.method.empty() || request.path.empty() || request.path[0] != '/') {
        return std::nullopt;
      }
      first_line = false;
    } else if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      std::string key = to_lower(trim(line.substr(0, colon)));
      const auto [it, inserted] =
          request.headers.emplace(std::move(key), std::string(trim(line.substr(colon + 1))));
      // Duplicate Content-Length is a request-smuggling vector: reject it
      // outright instead of silently keeping the first value.
      if (!inserted && it->first == "content-length") return std::nullopt;
    }
    if (line_end >= head.size()) break;
    line_start = line_end + 2;
  }
  if (first_line) return std::nullopt;

  const auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    std::uint64_t length = 0;
    if (!parse_u64(it->second, length)) return std::nullopt;
    const std::string_view body = raw.substr(head_end + 4);
    if (body.size() < length) return std::nullopt;  // incomplete
    request.body = std::string(body.substr(0, length));
  }
  return request;
}

std::string serialize_http_response(const HttpResponse& response, bool keep_alive) {
  // mcb-lint: suppress(R18: status formatting; the reactor reaches this only on rare 503 reject paths — workers own per-request serialization)
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += http_status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  // mcb-lint: suppress(R18: length formatting; the reactor reaches this only on rare 503 reject paths — workers own per-request serialization)
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  for (const auto& [key, value] : response.headers) {
    // Response-splitting guard: a header carrying CR/LF is dropped, not
    // emitted broken.
    if (key.find_first_of("\r\n") != std::string::npos ||
        value.find_first_of("\r\n") != std::string::npos) {
      continue;
    }
    out += "\r\n";
    out += key;
    out += ": ";
    out += value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n" : "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

MCB_HOT_PATH std::size_t expected_request_length(std::string_view received) {
  const std::size_t head_end = received.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return 0;
  std::size_t content_length = 0;
  // Scan for the Content-Length header inside the head. This runs once
  // per recv() chunk, so it must stay allocation-free: the previous
  // to_lower(substr(...)) shape copied and re-lowered the whole head on
  // every chunk of a slowly-arriving request.
  const std::string_view head = received.substr(0, head_end);
  const std::size_t pos = ifind(head, "content-length:");
  if (pos != std::string_view::npos) {
    if (ifind(head, "content-length:", pos + 1) != std::string_view::npos) {
      return kInvalidRequestFraming;  // duplicate header: framing ambiguous
    }
    std::uint64_t length = 0;
    std::size_t value_start = pos + 15;
    std::size_t value_end = head.find("\r\n", value_start);
    if (value_end == std::string_view::npos) value_end = head.size();
    if (!parse_u64(trim(head.substr(value_start, value_end - value_start)), length)) {
      return kInvalidRequestFraming;  // would silently truncate the body
    }
    // Guard the head + 4 + length sum against size_t wraparound: a hostile
    // Content-Length near SIZE_MAX would otherwise alias the "complete"
    // or sentinel values. Anything above 1 GiB is rejected here; the
    // server's own body cap is far smaller.
    if (length > (std::size_t{1} << 30)) return kInvalidRequestFraming;
    content_length = static_cast<std::size_t>(length);
  }
  return head_end + 4 + content_length;
}

}  // namespace mcb
