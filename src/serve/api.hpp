// The MCBound REST API (paper §III-E): a JSON-over-HTTP facade over
// mcbound::Framework, matching the operations the flask backend exposes.
//
//   GET  /health        -> {"status":"ok","model":...,"version":...}
//   GET  /model/info    -> model kind, version, feature set, ridge point
//   POST /characterize  -> executed-job JSON -> {"label":...,"metrics":{...}}
//   POST /encode        -> job JSON -> {"embedding":[384 floats]}
//   GET  /jobs?from=A&to=B[&field=submit|end] -> job list from the store
//   POST /predict       -> submitted-job JSON -> {"label":"memory-bound"|...}
//   POST /classify_batch-> {"jobs":[...]} -> {"labels":[...]} (batched fast path)
//   POST /train         -> {"now": <epoch s>} -> training report JSON
//   GET  /metrics       -> server-side counters + per-route latency summaries
//                          + app section (embedding cache, batch sizes)
//   GET  /debug/profile -> ?seconds=N&hz=H: blocking SIGPROF capture of the
//                          whole process; flamegraph-ready collapsed stacks
//
// Mutating endpoints are serialized by an internal mutex; read endpoints
// take the same lock briefly to snapshot model state (the framework is
// not internally synchronized). /predict and /classify_batch run the
// batched inference fast path: embeddings come from a sharded
// canonical-text LRU cache (recurring job names hit without encoding)
// and the whole batch goes through the flat-forest / tiled-KNN kernels
// in one pool dispatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/mcbound.hpp"
#include "obs/metrics.hpp"
#include "obs/perf/counters.hpp"
#include "roofline/stage_profile.hpp"
#include "serve/server.hpp"
#include "text/embedding_cache.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace mcb {

/// JSON <-> JobRecord conversion used by the API (exposed for tests).
Json job_to_json(const JobRecord& job);
std::optional<JobRecord> job_from_json(const Json& json, std::string* error = nullptr);

/// Binds the MCBound operations onto an HttpServer. The framework must
/// outlive the ApiServer.
class ApiServer {
 public:
  /// `server_config` tunes the connection executor (pool size, pending
  /// queue bound, timeouts, drain budget) — see ServerConfig;
  /// `cache_config` sizes the canonical-text embedding cache.
  explicit ApiServer(Framework& framework, ServerConfig server_config = {},
                     EmbeddingCacheConfig cache_config = {});

  /// Start serving on the given port (0 = ephemeral). Returns false on
  /// bind failure.
  bool start(int port);
  void stop() { server_.stop(); }
  int port() const noexcept { return server_.port(); }

  /// The /metrics payload (also reachable without sockets): executor +
  /// route stats from the HttpServer plus the app section (embedding
  /// cache hit/miss/evict, classify_batch batch-size counters).
  Json metrics() const;

  /// The serving-side embedding cache (exposed for tests/ops).
  ShardedEmbeddingCache& embedding_cache() noexcept { return embedding_cache_; }

  /// The metrics registry (server stats + tracer + app counters); the
  /// Prometheus exposition is render_prometheus(registry().gather()).
  const obs::Registry& registry() const noexcept { return registry_; }

  /// The per-request tracer owned by the underlying HttpServer.
  obs::RequestTracer& tracer() noexcept { return server_.tracer(); }

  /// The underlying reactor/executor (exposed for ops introspection,
  /// e.g. the effective listen backlog after the somaxconn clamp).
  const HttpServer& server() const noexcept { return server_; }

  /// Route table access for socket-less testing.
  HttpResponse dispatch(const HttpRequest& request) const { return server_.dispatch(request); }

 private:
  void install_routes();
  void collect_app_metrics(std::vector<obs::MetricFamily>& out) const;
  double uptime_seconds() const;

  HttpResponse handle_health(const HttpRequest& request);
  HttpResponse handle_healthz(const HttpRequest& request);
  HttpResponse handle_readyz(const HttpRequest& request);
  HttpResponse handle_metrics(const HttpRequest& request);
  HttpResponse handle_debug_requests(const HttpRequest& request);
  HttpResponse handle_debug_profile(const HttpRequest& request);
  HttpResponse handle_model_info(const HttpRequest& request);
  HttpResponse handle_characterize(const HttpRequest& request);
  HttpResponse handle_encode(const HttpRequest& request);
  HttpResponse handle_jobs(const HttpRequest& request);
  HttpResponse handle_predict(const HttpRequest& request);
  HttpResponse handle_classify_batch(const HttpRequest& request);
  HttpResponse handle_train(const HttpRequest& request);

  /// The framework is not internally synchronized: every handler that
  /// touches it (train, predict, encode, characterize, model info)
  /// derefs under mutex_ — enforced at compile time by pt_guarded_by.
  Framework* framework_ MCB_PT_GUARDED_BY(mutex_);
  HttpServer server_;
  mutable Mutex mutex_;

  mutable ShardedEmbeddingCache embedding_cache_;
  std::atomic<std::uint64_t> batch_requests_{0};  ///< /classify_batch calls served
  std::atomic<std::uint64_t> batch_jobs_{0};      ///< jobs classified across them
  std::atomic<std::uint64_t> batch_max_{0};       ///< largest single batch

  /// Steady-clock ns at start() (through the tracer's clock seam);
  /// 0 before the server has listened. Feeds uptime_seconds.
  std::atomic<std::uint64_t> start_ns_{0};

  /// Hardware-counter seam (DESIGN.md §14): the production
  /// perf_event_open source, installed on the tracer per
  /// ServerConfig::perf_mode (tests swap in fakes through
  /// tracer().set_counter_source). Probed at construction; harmlessly
  /// inert where perf is unavailable.
  obs::perf::PerfCounterSource counter_source_;
  /// Derives mcb_stage_arith_intensity / mcb_stage_boundedness from the
  /// tracer's counter totals through the framework's Characterizer.
  StageProfileCollector stage_profile_;

  obs::CallbackCollector app_collector_;
  obs::Registry registry_;
};

}  // namespace mcb
