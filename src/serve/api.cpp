#include "serve/api.hpp"

#include "obs/build_info.hpp"
#include "obs/log.hpp"
#include "obs/perf/profiler.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace mcb {

Json job_to_json(const JobRecord& job) {
  Json out = Json::object();
  out.set("job_id", static_cast<std::int64_t>(job.job_id));
  out.set("user_name", job.user_name);
  out.set("job_name", job.job_name);
  out.set("environment", job.environment);
  out.set("nodes_requested", static_cast<std::int64_t>(job.nodes_requested));
  out.set("cores_requested", static_cast<std::int64_t>(job.cores_requested));
  out.set("frequency_mhz", frequency_mhz(job.frequency));
  out.set("submit_time", static_cast<std::int64_t>(job.submit_time));
  out.set("start_time", static_cast<std::int64_t>(job.start_time));
  out.set("end_time", static_cast<std::int64_t>(job.end_time));
  out.set("nodes_allocated", static_cast<std::int64_t>(job.nodes_allocated));
  out.set("exit_status", job.exit_status);
  out.set("perf2", job.perf2);
  out.set("perf3", job.perf3);
  out.set("perf4", job.perf4);
  out.set("perf5", job.perf5);
  out.set("perf6", job.perf6);
  out.set("avg_power_watts", job.avg_power_watts);
  return out;
}

std::optional<JobRecord> job_from_json(const Json& json, std::string* error) {
  const auto fail = [error](const std::string& message) -> std::optional<JobRecord> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!json.is_object()) return fail("job must be a JSON object");
  JobRecord job;
  job.job_id = static_cast<std::uint64_t>(json["job_id"].as_int(0));
  job.user_name = json["user_name"].as_string();
  job.job_name = json["job_name"].as_string();
  if (job.job_name.empty()) return fail("missing job_name");
  job.environment = json["environment"].as_string();
  const std::int64_t nodes = json["nodes_requested"].as_int(1);
  const std::int64_t cores = json["cores_requested"].as_int(48);
  if (nodes <= 0 || cores <= 0) return fail("nodes/cores must be positive");
  job.nodes_requested = static_cast<std::uint32_t>(nodes);
  job.cores_requested = static_cast<std::uint32_t>(cores);
  job.frequency = json["frequency_mhz"].as_int(2000) >= 2200 ? FrequencyMode::kBoost
                                                             : FrequencyMode::kNormal;
  job.submit_time = json["submit_time"].as_int(0);
  job.start_time = json["start_time"].as_int(0);
  job.end_time = json["end_time"].as_int(0);
  job.nodes_allocated =
      static_cast<std::uint32_t>(json["nodes_allocated"].as_int(nodes));
  job.exit_status = static_cast<std::int32_t>(json["exit_status"].as_int(0));
  job.perf2 = json["perf2"].as_double(0.0);
  job.perf3 = json["perf3"].as_double(0.0);
  job.perf4 = json["perf4"].as_double(0.0);
  job.perf5 = json["perf5"].as_double(0.0);
  job.perf6 = json["perf6"].as_double(0.0);
  job.avg_power_watts = json["avg_power_watts"].as_double(0.0);
  return job;
}

namespace {

HttpResponse error_response(int status, const std::string& message) {
  Json body = Json::object();
  body.set("error", message);
  return HttpResponse::json(status, body.dump());
}

std::optional<JobRecord> parse_job_body(const HttpRequest& request, HttpResponse& error) {
  std::string parse_error;
  const auto json = Json::parse(request.body, &parse_error);
  if (!json.has_value()) {
    error = error_response(400, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  const auto job = job_from_json(*json, &parse_error);
  if (!job.has_value()) {
    error = error_response(400, parse_error);
    return std::nullopt;
  }
  return job;
}

}  // namespace

ApiServer::ApiServer(Framework& framework, ServerConfig server_config,
                     EmbeddingCacheConfig cache_config)
    : framework_(&framework),
      server_(server_config),
      embedding_cache_(framework.encoder().dim(), cache_config),
      stage_profile_(server_.tracer(), framework.characterizer()),
      app_collector_([this](std::vector<obs::MetricFamily>& out) {
        collect_app_metrics(out);
      }) {
  // Self-characterization wiring (DESIGN.md §14): attach the hardware
  // counter seam per perf_mode; where perf is unavailable the tracer
  // stays latency-only and exports mcb_perf_available 0.
  if (server_config.perf_mode != ServerConfig::PerfMode::kOff) {
    server_.tracer().set_counter_source(
        &counter_source_,
        server_config.perf_mode == ServerConfig::PerfMode::kForce);
    if (!counter_source_.available()) {
      log::info("api", "hardware counters unavailable; spans run latency-only",
                {log::Field("errno", static_cast<std::int64_t>(
                                         counter_source_.error()))});
    }
  }
  registry_.add(&server_.stats());
  registry_.add(&server_.tracer());
  registry_.add(&stage_profile_);
  registry_.add(&app_collector_);
  install_routes();
}

bool ApiServer::start(int port) {
  if (!server_.start(port)) return false;
  start_ns_.store(server_.tracer().now_ns());
  return true;
}

double ApiServer::uptime_seconds() const {
  const std::uint64_t started = start_ns_.load();
  if (started == 0) return 0.0;
  const std::uint64_t now = server_.tracer().now_ns();
  return now > started ? static_cast<double>(now - started) * 1e-9 : 0.0;
}

void ApiServer::collect_app_metrics(std::vector<obs::MetricFamily>& out) const {
  {
    obs::MetricFamily ops;
    ops.name = "mcb_embedding_cache_ops_total";
    ops.help = "Embedding-cache operations by kind.";
    ops.type = obs::MetricType::kCounter;
    const auto stats = embedding_cache_.stats();
    const std::pair<const char*, std::uint64_t> kinds[] = {
        {"hit", stats.hits},
        {"miss", stats.misses},
        {"insert", stats.insertions},
        {"evict", stats.evictions},
    };
    for (const auto& [kind, value] : kinds) {
      ops.points.push_back(
          obs::scalar_point({{"op", kind}}, static_cast<double>(value)));
    }
    out.push_back(std::move(ops));

    obs::MetricFamily size;
    size.name = "mcb_embedding_cache_entries";
    size.help = "Embedding-cache entries (current / capacity).";
    size.type = obs::MetricType::kGauge;
    size.points.push_back(obs::scalar_point(
        {{"kind", "current"}}, static_cast<double>(embedding_cache_.size())));
    size.points.push_back(obs::scalar_point(
        {{"kind", "capacity"}}, static_cast<double>(embedding_cache_.capacity())));
    out.push_back(std::move(size));
  }

  {
    obs::MetricFamily batches;
    batches.name = "mcb_classify_batch_jobs_total";
    batches.help = "Jobs classified through POST /classify_batch.";
    batches.type = obs::MetricType::kCounter;
    batches.points.push_back(
        obs::scalar_point({}, static_cast<double>(batch_jobs_.load())));
    out.push_back(std::move(batches));

    obs::MetricFamily requests;
    requests.name = "mcb_classify_batch_requests_total";
    requests.help = "POST /classify_batch requests served.";
    requests.type = obs::MetricType::kCounter;
    requests.points.push_back(
        obs::scalar_point({}, static_cast<double>(batch_requests_.load())));
    out.push_back(std::move(requests));
  }

  {
    obs::MetricFamily uptime;
    uptime.name = "mcb_uptime_seconds";
    uptime.help = "Seconds since the server started listening.";
    uptime.type = obs::MetricType::kGauge;
    uptime.points.push_back(obs::scalar_point({}, uptime_seconds()));
    out.push_back(std::move(uptime));

    obs::MetricFamily ready;
    ready.name = "mcb_ready";
    ready.help = "1 once a trained model is loaded (readiness probe).";
    ready.type = obs::MetricType::kGauge;
    bool is_ready = false;
    KnnIndexStats index_stats;  // mode defaults to kNone = scan
    {
      MutexLock lock(mutex_);
      is_ready = framework_->has_model();
      const ClassificationModel* model = framework_->model();
      const KnnIndexStats* stats =
          model != nullptr ? model->knn_index_stats() : nullptr;
      if (stats != nullptr) index_stats = *stats;
    }
    ready.points.push_back(obs::scalar_point({}, is_ready ? 1.0 : 0.0));
    out.push_back(std::move(ready));

    // How KNN inference is served (DESIGN.md §11). mode="none" means
    // the brute-force scan; unique_rows < rows quantifies the duplicate
    // grouping that drives the index speedup on batchy HPC traces.
    obs::MetricFamily index_info;
    index_info.name = "mcb_knn_index_info";
    index_info.help = "Constant 1; KNN spatial index mode/exactness in the labels.";
    index_info.type = obs::MetricType::kGauge;
    index_info.points.push_back(obs::scalar_point(
        {{"mode", knn_index_mode_name(index_stats.mode)},
         {"exact", index_stats.mode == KnnIndexMode::kNone || index_stats.exact
                       ? "true"
                       : "false"}},
        1.0));
    out.push_back(std::move(index_info));

    obs::MetricFamily index_rows;
    index_rows.name = "mcb_knn_index_rows";
    index_rows.help = "Rows held by the KNN spatial index (0 = scan).";
    index_rows.type = obs::MetricType::kGauge;
    index_rows.points.push_back(obs::scalar_point(
        {{"kind", "total"}}, static_cast<double>(index_stats.rows)));
    index_rows.points.push_back(obs::scalar_point(
        {{"kind", "unique"}}, static_cast<double>(index_stats.unique_rows)));
    out.push_back(std::move(index_rows));

    obs::MetricFamily build;
    build.name = "mcb_build_info";
    build.help = "Constant 1; build metadata in the labels.";
    build.type = obs::MetricType::kGauge;
    build.points.push_back(obs::scalar_point({{"version", obs::kBuildVersion},
                                              {"compiler", obs::build_compiler()},
                                              {"mode", obs::build_mode()}},
                                             1.0));
    out.push_back(std::move(build));
  }
}

void ApiServer::install_routes() {
  server_.route("GET", "/health",
                [this](const HttpRequest& r) { return handle_health(r); });
  server_.route("GET", "/model/info",
                [this](const HttpRequest& r) { return handle_model_info(r); });
  server_.route("POST", "/characterize",
                [this](const HttpRequest& r) { return handle_characterize(r); });
  server_.route("POST", "/predict",
                [this](const HttpRequest& r) { return handle_predict(r); });
  server_.route("POST", "/classify_batch",
                [this](const HttpRequest& r) { return handle_classify_batch(r); });
  server_.route("POST", "/train",
                [this](const HttpRequest& r) { return handle_train(r); });
  server_.route("POST", "/encode",
                [this](const HttpRequest& r) { return handle_encode(r); });
  server_.route("GET", "/jobs", [this](const HttpRequest& r) { return handle_jobs(r); });
  // Observability: /metrics and /debug/requests take no framework lock —
  // executor/server state + app counters only. /healthz is liveness
  // (trivially 200 once the listener answers); /readyz gates on a
  // trained model being loaded.
  server_.route("GET", "/metrics",
                [this](const HttpRequest& r) { return handle_metrics(r); });
  server_.route("GET", "/healthz",
                [this](const HttpRequest& r) { return handle_healthz(r); });
  server_.route("GET", "/readyz",
                [this](const HttpRequest& r) { return handle_readyz(r); });
  server_.route("GET", "/debug/requests",
                [this](const HttpRequest& r) { return handle_debug_requests(r); });
  // Blocking whole-process SIGPROF capture; runs on a pool worker for
  // its whole duration, so `seconds` is clamped well below the socket
  // send timeout and only one capture may be in flight at a time.
  server_.route("GET", "/debug/profile",
                [this](const HttpRequest& r) { return handle_debug_profile(r); });
}

HttpResponse ApiServer::handle_healthz(const HttpRequest&) {
  return HttpResponse::json(200, R"({"status":"ok"})");
}

HttpResponse ApiServer::handle_readyz(const HttpRequest&) {
  bool is_ready = false;
  {
    MutexLock lock(mutex_);
    is_ready = framework_->has_model();
  }
  if (!is_ready) {
    return HttpResponse::json(
        503, R"({"ready":false,"reason":"no trained model; POST /train first"})");
  }
  return HttpResponse::json(200, R"({"ready":true})");
}

HttpResponse ApiServer::handle_metrics(const HttpRequest& request) {
  // format=prometheus selects the text exposition; default stays JSON.
  for (const auto& pair : split(request.query, '&')) {
    if (pair == "format=prometheus") {
      HttpResponse response;
      response.status = 200;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::render_prometheus(registry_.gather());
      return response;
    }
  }
  return HttpResponse::json(200, metrics().dump());
}

HttpResponse ApiServer::handle_debug_requests(const HttpRequest& request) {
  std::int64_t limit = 32;
  for (const auto& pair : split(request.query, '&')) {
    const auto eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == "limit") {
      std::int64_t parsed = 0;
      if (parse_i64(pair.substr(eq + 1), parsed)) limit = parsed;
    }
  }
  if (limit < 1) limit = 1;
  if (limit > 1024) limit = 1024;
  return HttpResponse::json(
      200, server_.tracer().debug_requests_json(static_cast<std::size_t>(limit)).dump());
}

HttpResponse ApiServer::handle_debug_profile(const HttpRequest& request) {
  obs::perf::ProfileOptions options;
  options.hz = server_.config().profile_hz;
  std::int64_t seconds = 2;
  for (const auto& pair : split(request.query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    std::int64_t parsed = 0;
    if (!parse_i64(pair.substr(eq + 1), parsed)) continue;
    if (key == "seconds") seconds = parsed;
    if (key == "hz") options.hz = static_cast<int>(parsed);
  }
  // The capture occupies one pool worker for its whole duration; keep it
  // comfortably inside the client's socket timeouts (5 s send budget).
  if (seconds < 1) seconds = 1;
  if (seconds > 8) seconds = 8;
  options.seconds = static_cast<double>(seconds);

  if (obs::perf::SamplingProfiler::busy()) {
    return error_response(503, "profiler busy: another capture is in flight");
  }
  obs::perf::ProfileReport report;
  std::string error;
  if (!obs::perf::SamplingProfiler::capture(options, report, error)) {
    const bool busy = error.find("busy") != std::string::npos;
    return error_response(busy ? 503 : 500, error);
  }
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; charset=utf-8";
  response.headers.emplace_back("X-Profile-Samples", std::to_string(report.samples));
  response.headers.emplace_back("X-Profile-Dropped", std::to_string(report.dropped));
  response.body = std::move(report.collapsed);
  return response;
}

Json ApiServer::metrics() const {
  Json out = server_.stats_json();
  const auto cache_stats = embedding_cache_.stats();
  Json cache = Json::object();
  cache.set("hits", static_cast<std::int64_t>(cache_stats.hits));
  cache.set("misses", static_cast<std::int64_t>(cache_stats.misses));
  cache.set("insertions", static_cast<std::int64_t>(cache_stats.insertions));
  cache.set("evictions", static_cast<std::int64_t>(cache_stats.evictions));
  cache.set("size", static_cast<std::int64_t>(embedding_cache_.size()));
  cache.set("capacity", static_cast<std::int64_t>(embedding_cache_.capacity()));
  cache.set("shards", static_cast<std::int64_t>(embedding_cache_.shard_count()));
  Json batch = Json::object();
  batch.set("requests", static_cast<std::int64_t>(batch_requests_.load()));
  batch.set("jobs", static_cast<std::int64_t>(batch_jobs_.load()));
  batch.set("max_batch", static_cast<std::int64_t>(batch_max_.load()));
  Json app = Json::object();
  app.set("embedding_cache", cache);
  app.set("classify_batch", batch);
  out.set("app", app);
  out.set("stages", server_.tracer().stages_json());
  out.set("uptime_seconds", uptime_seconds());
  Json build = Json::object();
  build.set("version", obs::kBuildVersion);
  build.set("compiler", obs::build_compiler());
  build.set("mode", obs::build_mode());
  out.set("build", build);
  return out;
}

HttpResponse ApiServer::handle_encode(const HttpRequest& request) {
  HttpResponse error;
  const auto job = parse_job_body(request, error);
  if (!job.has_value()) return error;
  MutexLock lock(mutex_);
  const auto embedding = framework_->encoder().encode(*job);
  Json body = Json::object();
  body.set("feature_string", framework_->encoder().feature_string(*job));
  Json values = Json::array();
  for (const float v : embedding) values.push_back(static_cast<double>(v));
  body.set("embedding", values);
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_jobs(const HttpRequest& request) {
  // Query string: from=<epoch>&to=<epoch>[&field=submit|end][&limit=N]
  std::int64_t from = 0, to = 0, limit = 1000;
  std::string field = "end";
  for (const auto& pair : split(request.query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "from") parse_i64(value, from);
    if (key == "to") parse_i64(value, to);
    if (key == "limit") parse_i64(value, limit);
    if (key == "field") field = value;
  }
  if (to <= from) return error_response(400, "need from < to");
  if (field != "submit" && field != "end") {
    return error_response(400, "field must be 'submit' or 'end'");
  }
  JobQuery query;
  query.field = field == "submit" ? JobQuery::TimeField::kSubmitTime
                                  : JobQuery::TimeField::kEndTime;
  query.start_time = from;
  query.end_time = to;
  // The store is internally synchronized; only the framework_ deref
  // needs mutex_, so the scan itself runs without the API lock.
  const JobStore* store = nullptr;
  {
    MutexLock lock(mutex_);
    store = &framework_->store();
  }
  const std::vector<JobRecord> jobs = store->query_records(query);
  Json body = Json::object();
  body.set("count", static_cast<std::int64_t>(jobs.size()));
  Json list = Json::array();
  for (std::size_t i = 0; i < jobs.size() && i < static_cast<std::size_t>(limit); ++i) {
    list.push_back(job_to_json(jobs[i]));
  }
  body.set("jobs", list);
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_health(const HttpRequest&) {
  MutexLock lock(mutex_);
  Json body = Json::object();
  body.set("status", "ok");
  body.set("model", framework_->model_name());
  body.set("trained", framework_->has_model());
  if (framework_->model_version().has_value()) {
    body.set("version", static_cast<std::int64_t>(*framework_->model_version()));
  }
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_model_info(const HttpRequest&) {
  MutexLock lock(mutex_);
  Json body = Json::object();
  body.set("model", framework_->model_name());
  body.set("trained", framework_->has_model());
  body.set("alpha_days", framework_->config().alpha_days);
  body.set("beta_days", framework_->config().beta_days);
  body.set("encoder_dim", static_cast<std::int64_t>(framework_->encoder().dim()));
  body.set("ridge_point_flops_per_byte", framework_->characterizer().ridge_point());
  Json features = Json::array();
  for (const JobFeature f : framework_->encoder().features()) {
    features.push_back(job_feature_name(f));
  }
  body.set("features", features);
  if (framework_->model_version().has_value()) {
    body.set("version", static_cast<std::int64_t>(*framework_->model_version()));
  }
  if (framework_->config().model == ModelKind::kKnn) {
    // Surface how KNN queries are served (DESIGN.md §11): the pruned
    // spatial index when one is built, otherwise the brute-force scan
    // (index disabled, p != 2, or training set below min_rows).
    Json index_json = Json::object();
    const ClassificationModel* model = framework_->model();
    const KnnIndexStats* stats = model != nullptr ? model->knn_index_stats() : nullptr;
    if (stats != nullptr) {
      index_json.set("mode", knn_index_mode_name(stats->mode));
      index_json.set("exact", stats->exact);
      index_json.set("rows", static_cast<std::int64_t>(stats->rows));
      index_json.set("unique_rows", static_cast<std::int64_t>(stats->unique_rows));
      index_json.set("nodes", static_cast<std::int64_t>(stats->nodes));
      index_json.set("leaves", static_cast<std::int64_t>(stats->leaves));
      index_json.set("clusters", static_cast<std::int64_t>(stats->clusters));
      index_json.set("nprobe", static_cast<std::int64_t>(stats->nprobe));
    } else {
      index_json.set("mode", "none");
      index_json.set("exact", true);  // the scan is exact by definition
    }
    body.set("knn_index", index_json);
  }
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_characterize(const HttpRequest& request) {
  HttpResponse error;
  const auto job = parse_job_body(request, error);
  if (!job.has_value()) return error;

  MutexLock lock(mutex_);
  const auto metrics = framework_->job_metrics(*job);
  if (!metrics.has_value()) {
    return error_response(400, "job cannot be characterized (invalid duration/nodes)");
  }
  const auto label = framework_->characterize_job(*job);
  Json body = Json::object();
  body.set("label", boundedness_name(*label));
  Json m = Json::object();
  m.set("flops", metrics->flops);
  m.set("moved_bytes", metrics->moved_bytes);
  m.set("performance_gflops", metrics->performance_gflops);
  m.set("bandwidth_gbs", metrics->bandwidth_gbs);
  m.set("operational_intensity", metrics->operational_intensity);
  body.set("metrics", m);
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_predict(const HttpRequest& request) {
  HttpResponse error;
  std::optional<JobRecord> job;
  {
    obs::Span parse_span(obs::Stage::kParse);
    job = parse_job_body(request, error);
  }
  if (!job.has_value()) return error;

  MutexLock lock(mutex_);
  if (!framework_->has_model()) {
    return error_response(503, "no trained model; POST /train first");
  }
  // Single-job requests ride the batched fast path too, so recurring
  // submissions (same canonical feature string) hit the embedding cache.
  const auto labels = framework_->predict_batch({&*job, 1}, &embedding_cache_);
  if (labels.empty()) return error_response(500, "prediction failed");
  Json body = Json::object();
  body.set("job_id", static_cast<std::int64_t>(job->job_id));
  body.set("label", boundedness_name(to_boundedness(labels.front())));
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_classify_batch(const HttpRequest& request) {
  // Caps the per-request work so one request cannot monopolize the
  // connection executor past the server's socket timeouts.
  constexpr std::size_t kMaxBatch = 4096;

  std::string parse_error;
  std::optional<Json> json;
  {
    obs::Span parse_span(obs::Stage::kParse);
    json = Json::parse(request.body, &parse_error);
  }
  if (!json.has_value()) return error_response(400, "invalid JSON: " + parse_error);
  if (!json->is_object() || !json->contains("jobs") || !(*json)["jobs"].is_array()) {
    return error_response(400, "body must be {\"jobs\": [...]}");
  }
  const JsonArray& list = (*json)["jobs"].as_array();
  if (list.empty()) return error_response(400, "jobs must be non-empty");
  if (list.size() > kMaxBatch) {
    return error_response(413, "batch too large (max " + std::to_string(kMaxBatch) + " jobs)");
  }

  std::vector<JobRecord> jobs;
  jobs.reserve(list.size());
  {
    obs::Span parse_span(obs::Stage::kParse);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const auto job = job_from_json(list[i], &parse_error);
      if (!job.has_value()) {
        return error_response(400, "jobs[" + std::to_string(i) + "]: " + parse_error);
      }
      jobs.push_back(*job);
    }
  }

  std::vector<Label> labels;
  {
    MutexLock lock(mutex_);
    if (!framework_->has_model()) {
      return error_response(503, "no trained model; POST /train first");
    }
    labels = framework_->predict_batch(jobs, &embedding_cache_);
  }
  if (labels.size() != jobs.size()) return error_response(500, "prediction failed");

  // relaxed: independent monotonic batch counters read only by
  // /metrics; no ordering is needed between them or with the labels.
  batch_requests_.fetch_add(1, std::memory_order_relaxed);
  batch_jobs_.fetch_add(jobs.size(), std::memory_order_relaxed);  // relaxed: see above
  std::uint64_t prev = batch_max_.load(std::memory_order_relaxed);  // relaxed: max-tracking CAS loop
  while (prev < jobs.size() &&
         !batch_max_.compare_exchange_weak(prev, jobs.size(), std::memory_order_relaxed)) {
  }

  Json body = Json::object();
  body.set("count", static_cast<std::int64_t>(labels.size()));
  Json out_labels = Json::array();
  for (const Label label : labels) {
    out_labels.push_back(boundedness_name(to_boundedness(label)));
  }
  body.set("labels", out_labels);
  return HttpResponse::json(200, body.dump());
}

HttpResponse ApiServer::handle_train(const HttpRequest& request) {
  std::string parse_error;
  const auto json = Json::parse(request.body.empty() ? "{}" : request.body, &parse_error);
  if (!json.has_value()) return error_response(400, "invalid JSON: " + parse_error);
  MutexLock lock(mutex_);
  const TimePoint now = json->contains("now")
                            ? (*json)["now"].as_int()
                            : framework_->store().max_end_time() + 1;
  const TrainingReport report = framework_->train_now(now);
  if (report.jobs_used == 0) {
    log::warn("api", "training window empty; no model produced",
              {log::Field("now", static_cast<std::int64_t>(now))});
    return error_response(409, "training window is empty; no model produced");
  }
  log::info("api", "model trained",
            {log::Field("jobs_used", static_cast<std::int64_t>(report.jobs_used)),
             log::Field("train_seconds", report.train_seconds),
             log::Field("version", static_cast<std::int64_t>(
                                       framework_->model_version().value_or(0)))});
  Json body = Json::object();
  body.set("jobs_used", static_cast<std::int64_t>(report.jobs_used));
  body.set("train_seconds", report.train_seconds);
  body.set("encode_seconds", report.encode_seconds);
  body.set("characterize_seconds", report.characterize_seconds);
  if (framework_->model_version().has_value()) {
    body.set("version", static_cast<std::int64_t>(*framework_->model_version()));
  }
  return HttpResponse::json(201, body.dump());
}

}  // namespace mcb
