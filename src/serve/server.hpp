// Threaded TCP HTTP server with a path-based router, built on a bounded
// connection executor. Listens on 127.0.0.1; accepted sockets are
// dispatched to a fixed-size worker pool with a bounded pending queue —
// when the pool is saturated the accept loop sheds load with an
// immediate 503 instead of queueing without bound. Connections are
// short-lived (Connection: close) and carry receive/send socket
// timeouts plus an overall per-request deadline, so a client that
// connects and sends nothing (or drips bytes forever) is cut off at the
// deadline rather than pinning a worker. stop() is graceful: it stops
// accepting, drains in-flight connections for a bounded time, then
// force-closes stragglers. Port 0 binds an ephemeral port — tests read
// the bound port back.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Tuning knobs for the connection executor. The defaults are sized for
/// the test/demo deployments; production front-ends raise worker_threads
/// and max_pending together.
struct ServerConfig {
  std::size_t worker_threads = 8;     ///< fixed pool size (>= 1)
  std::size_t max_pending = 64;       ///< queued connections beyond busy workers
  int recv_timeout_ms = 5000;         ///< per-recv idle timeout (SO_RCVTIMEO)
  int send_timeout_ms = 5000;         ///< per-send stall timeout (SO_SNDTIMEO)
  int request_deadline_ms = 10000;    ///< whole-request wall-clock budget
  int drain_timeout_ms = 2000;        ///< stop(): budget to drain in-flight work
  std::size_t max_request_bytes = 16 * 1024 * 1024;  ///< 413 beyond this
};

/// Server-side observability counters, exported as JSON by GET /metrics
/// and — as an obs::Collector — in the Prometheus exposition, so there
/// is exactly one metrics surface (DESIGN.md §10). Counter updates are
/// lock-free atomics; per-route latency histograms (log10 microseconds
/// on util/histogram) take a short mutex.
class ServerStats : public obs::Collector {
 public:
  std::atomic<std::uint64_t> accepted{0};       ///< sockets accept()ed
  std::atomic<std::uint64_t> handled{0};        ///< responses fully written
  std::atomic<std::uint64_t> rejected{0};       ///< shed with 503 (queue full / draining)
  std::atomic<std::uint64_t> timed_out{0};      ///< cut off at a deadline (408)
  std::atomic<std::uint64_t> malformed{0};      ///< unparsable / bad framing (400, 413)

  /// Record one dispatched request: per-route count, status class and
  /// handler latency. Unmatched routes aggregate under "(unmatched)" so
  /// abusive path scans cannot grow the map without bound.
  void record_route(const std::string& route_key, int status, double seconds);

  /// Snapshot all counters/histograms as the /metrics JSON body.
  Json to_json() const;

  /// The same counters/histograms as Prometheus families
  /// (mcb_http_connections_total, mcb_http_requests_total,
  /// mcb_http_request_duration_seconds).
  void collect_metrics(std::vector<obs::MetricFamily>& out) const override;

 private:
  struct RouteStats {
    std::uint64_t count = 0;
    /// Status classes partition `count`: 2xx = [200,300), 4xx =
    /// [400,500), 5xx = [500,...); 1xx/3xx land in `status_other`
    /// instead of being silently folded into 2xx.
    std::uint64_t status_2xx = 0, status_4xx = 0, status_5xx = 0;
    std::uint64_t status_other = 0;
    double sum_us = 0.0, max_us = 0.0;
    // log10(latency in us) over [1us, 100s) — wide enough for /train.
    Histogram log10_us{0.0, 8.0, 32};
  };
  mutable Mutex mutex_;
  std::map<std::string, RouteStats> routes_ MCB_GUARDED_BY(mutex_);
};

class HttpServer {
 public:
  explicit HttpServer(ServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for (method, exact path). Must be called before
  /// start(); the routing table is read-only while serving.
  void route(const std::string& method, const std::string& path, HttpHandler handler);

  /// Bind + listen + spawn the worker pool and accept loop. Returns
  /// false on bind failure. Thread-safe to call once per stop() cycle.
  bool start(int port);

  /// Graceful shutdown: stop accepting, drain in-flight connections for
  /// up to config().drain_timeout_ms, force-close stragglers, join the
  /// pool. Bounded: returns within roughly the drain budget plus one
  /// socket timeout even with hung clients attached.
  void stop();

  bool is_running() const noexcept { return running_.load(); }
  int port() const noexcept { return port_; }
  const ServerConfig& config() const noexcept { return config_; }
  ServerStats& stats() noexcept { return stats_; }

  /// Request tracer: per-stage latency histograms + flight recorder.
  /// Every socket request gets a trace; dispatch() adopts/echoes
  /// X-Request-Id through it.
  obs::RequestTracer& tracer() noexcept { return tracer_; }
  const obs::RequestTracer& tracer() const noexcept { return tracer_; }

  /// Connections currently being served (racy snapshot, for /metrics).
  std::size_t active_connections() const;

  /// Dispatch a request through the routing table without any sockets
  /// (used by unit tests and by in-process clients). Records per-route
  /// stats exactly like the socket path.
  HttpResponse dispatch(const HttpRequest& request) const;

  /// The /metrics payload: executor state + ServerStats snapshot.
  Json stats_json() const;

 private:
  void accept_loop();
  void handle_connection(int fd);

  ServerConfig config_;
  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable Mutex conn_mutex_;
  CondVar drain_cv_;  // signalled when active_fds_ empties
  std::unordered_set<int> active_fds_ MCB_GUARDED_BY(conn_mutex_);

  mutable ServerStats stats_;
  mutable obs::RequestTracer tracer_;
};

/// Blocking loopback HTTP client for tests/examples: send one request to
/// 127.0.0.1:port and return the parsed response body + status. Returns
/// false on connection failure.
bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out);

/// Parsed response from the full-fidelity client overload.
struct HttpClientResponse {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  ///< lower-cased keys
};

/// Like http_request, but sends caller-supplied extra request headers
/// (e.g. X-Request-Id) and returns the response headers — used by the
/// trace-ID adoption/echo tests.
bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>& extra_headers,
                  HttpClientResponse& response_out);

}  // namespace mcb
