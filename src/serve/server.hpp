// Event-driven HTTP server: one epoll reactor thread owns the
// non-blocking listener and every connection; request handlers run on a
// bounded worker pool *behind* the reactor (DESIGN.md §6).
//
// The reactor never blocks on a handler and never performs a blocking
// syscall: sockets are O_NONBLOCK, accepts are drained until EAGAIN,
// reads/writes resume across partial I/O via epoll interest, and
// idle/request/write-stall deadlines live on a timer wheel instead of
// SO_RCVTIMEO. Connections are keep-alive by default (HTTP/1.1) with
// pipelining support — requests on one connection are answered strictly
// in order — and the per-connection read/write buffers are reused
// across requests. When the handler pool is saturated the reactor sheds
// the request with an immediate 503 instead of queueing without bound.
// stop() is graceful: stop accepting, close idle connections, drain
// in-flight requests for a bounded budget, then force-close stragglers.
// Port 0 binds an ephemeral port — tests read the bound port back.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/timer_wheel.hpp"

struct epoll_event;  // <sys/epoll.h> — kept out of this header

namespace mcb {

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Tuning knobs for the reactor + handler pool. The defaults are sized
/// for the test/demo deployments; production front-ends raise
/// worker_threads, max_pending and max_connections together.
struct ServerConfig {
  std::size_t worker_threads = 8;     ///< handler pool size (>= 1)
  std::size_t max_pending = 64;       ///< queued requests beyond busy workers
  int recv_timeout_ms = 5000;         ///< idle timeout between received bytes (<=0: none)
  int send_timeout_ms = 5000;         ///< response write-stall budget (<=0: none)
  int request_deadline_ms = 10000;    ///< whole-request receive budget (<=0: none)
  int drain_timeout_ms = 2000;        ///< stop(): budget to drain in-flight work
  std::size_t max_request_bytes = 16 * 1024 * 1024;  ///< 413 beyond this
  /// listen() backlog. The kernel clamps this to net.core.somaxconn —
  /// start() logs the effective value so a 10k-connection deployment
  /// can see the clamp instead of debugging mysterious SYN drops.
  int listen_backlog = 4096;
  /// Concurrent-connection cap; accepts beyond it are shed with a 503.
  std::size_t max_connections = 32768;

  /// Per-span hardware-counter attribution (DESIGN.md §14). kAuto
  /// attaches counters only when perf_event_open works *and* the
  /// userspace rdpmc fast path is mapped (a group read per span then
  /// costs tens of ns); kForce attaches even when every read is a
  /// read(2) syscall — diagnostics only, it multiplies span cost by
  /// ~50x; kOff never probes. Containers without perf (ENOSYS/EACCES/
  /// EPERM/no PMU) degrade from kAuto to latency-only spans and
  /// mcb_perf_available 0 automatically.
  enum class PerfMode : std::uint8_t { kAuto = 0, kOff, kForce };
  PerfMode perf_mode = PerfMode::kAuto;
  /// Default SIGPROF sampling frequency for GET /debug/profile when the
  /// request carries no hz= parameter. Prime to avoid lockstep.
  int profile_hz = 97;
};

/// Server-side observability counters, exported as JSON by GET /metrics
/// and — as an obs::Collector — in the Prometheus exposition, so there
/// is exactly one metrics surface (DESIGN.md §10). Counter updates are
/// lock-free atomics; per-route latency histograms (log10 microseconds
/// on util/histogram) take a short mutex.
class ServerStats : public obs::Collector {
 public:
  std::atomic<std::uint64_t> accepted{0};       ///< sockets accept()ed
  std::atomic<std::uint64_t> handled{0};        ///< responses fully written
  std::atomic<std::uint64_t> rejected{0};       ///< shed with 503 (pool full / draining)
  std::atomic<std::uint64_t> timed_out{0};      ///< cut off at a deadline (408)
  std::atomic<std::uint64_t> malformed{0};      ///< unparsable / bad framing (400, 413)

  /// Record one dispatched request: per-route count, status class and
  /// handler latency. Unmatched routes aggregate under "(unmatched)" so
  /// abusive path scans cannot grow the map without bound.
  void record_route(const std::string& route_key, int status, double seconds);

  /// Snapshot all counters/histograms as the /metrics JSON body.
  Json to_json() const;

  /// The same counters/histograms as Prometheus families
  /// (mcb_http_connections_total, mcb_http_requests_total,
  /// mcb_http_request_duration_seconds).
  void collect_metrics(std::vector<obs::MetricFamily>& out) const override;

 private:
  struct RouteStats {
    std::uint64_t count = 0;
    /// Status classes partition `count`: 2xx = [200,300), 4xx =
    /// [400,500), 5xx = [500,...); 1xx/3xx land in `status_other`
    /// instead of being silently folded into 2xx.
    std::uint64_t status_2xx = 0, status_4xx = 0, status_5xx = 0;
    std::uint64_t status_other = 0;
    double sum_us = 0.0, max_us = 0.0;
    // log10(latency in us) over [1us, 100s) — wide enough for /train.
    Histogram log10_us{0.0, 8.0, 32};
  };
  mutable Mutex mutex_;
  std::map<std::string, RouteStats> routes_ MCB_GUARDED_BY(mutex_);
};

class HttpServer {
 public:
  explicit HttpServer(ServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for (method, exact path). Must be called before
  /// start(); the routing table is read-only while serving.
  void route(const std::string& method, const std::string& path, HttpHandler handler);

  /// Bind + listen + spawn the handler pool and reactor thread. Returns
  /// false on bind failure. Thread-safe to call once per stop() cycle.
  bool start(int port);

  /// Graceful shutdown: stop accepting, close idle keep-alive
  /// connections, drain in-flight requests for up to
  /// config().drain_timeout_ms, force-close stragglers, join the pool.
  /// Bounded: returns within roughly the drain budget plus the longest
  /// in-flight handler even with hung clients attached.
  void stop();

  bool is_running() const noexcept { return running_.load(); }
  int port() const noexcept { return port_; }
  const ServerConfig& config() const noexcept { return config_; }
  ServerStats& stats() noexcept { return stats_; }

  /// The backlog listen() actually got: config().listen_backlog clamped
  /// to the kernel's net.core.somaxconn. Valid after start().
  int effective_backlog() const noexcept { return effective_backlog_; }

  /// Request tracer: per-stage latency histograms + flight recorder.
  /// Every socket request gets a trace; dispatch() adopts/echoes
  /// X-Request-Id through it.
  obs::RequestTracer& tracer() noexcept { return tracer_; }
  const obs::RequestTracer& tracer() const noexcept { return tracer_; }

  /// Connections currently open (racy snapshot, for /metrics).
  std::size_t active_connections() const;

  /// Dispatch a request through the routing table without any sockets
  /// (used by unit tests and by in-process clients). Records per-route
  /// stats exactly like the socket path.
  HttpResponse dispatch(const HttpRequest& request) const;

  /// The /metrics payload: reactor + pool state + ServerStats snapshot.
  Json stats_json() const;

 private:
  struct Connection;  // per-connection state machine (server.cpp)

  /// A finished handler's output, posted from a pool worker back to the
  /// reactor through the completion queue + eventfd wake.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string wire;          ///< serialized response bytes
    bool keep_alive = false;   ///< connection survives after the response
    bool dispatched = false;   ///< counts toward `handled` once flushed
  };

  /// One request in flight on the handler pool. Self-contained — owns
  /// the raw bytes and the trace — so the reactor may destroy the
  /// Connection while the handler is still running (the completion is
  /// then simply dropped).
  struct PendingRequest {
    std::uint64_t conn_id = 0;
    std::string raw;
    obs::TraceContext trace;
  };

  void reactor_loop();
  void reactor_tick(const epoll_event* events, int n_events);
  void handle_event(Connection* conn, std::uint32_t events);
  void handle_accepts();
  void pump_input(Connection* conn);
  void drain_input(Connection* conn);
  void process_inbuf(Connection* conn);
  void dispatch_request(Connection* conn, std::size_t wire_len);
  void run_handler(PendingRequest& pending);
  void wake_reactor() const;
  void consume_wake() const;
  void enqueue_response(Connection* conn, std::string_view wire, bool count_handled);
  void flush_output(Connection* conn);
  void fail_request(Connection* conn, const HttpResponse& response,
                    const char* route_key);
  void finish_abandoned(Connection* conn);
  void close_connection(Connection* conn);
  void destroy_closed();
  void arm_timer(Connection* conn);
  std::uint64_t connection_deadline(const Connection* conn) const;
  void on_timer(std::uint64_t id);
  void expire_timers();
  void drain_completions();
  void begin_drain();
  void force_close_all();
  void update_epoll(Connection* conn, bool want_write);
  std::uint64_t now_ms() const;
  Connection* find_connection(std::uint64_t id);

  ServerConfig config_;
  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completion + stop wake-ups
  int port_ = 0;
  int effective_backlog_ = 0;
  std::chrono::steady_clock::time_point epoch_{};  ///< reactor time base
  std::thread reactor_thread_;
  std::unique_ptr<ThreadPool> pool_;

  // Reactor-private state. Connection *contents* are only ever touched
  // by the reactor thread; the table itself is mutex-guarded because
  // active_connections() snapshots its size from other threads.
  mutable Mutex conn_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_
      MCB_GUARDED_BY(conn_mutex_);
  std::uint64_t next_conn_id_ = 0;  ///< reactor-only; never reused
  TimerWheel wheel_;                ///< reactor-only
  std::vector<std::uint64_t> expired_scratch_;          ///< reactor-only
  std::vector<std::unique_ptr<Connection>> closed_scratch_;  ///< deferred frees
  bool draining_ = false;           ///< reactor-only: stop() observed
  std::uint64_t drain_deadline_ms_ = 0;  ///< reactor-only

  mutable Mutex completion_mutex_;
  std::vector<Completion> completions_ MCB_GUARDED_BY(completion_mutex_);

  mutable ServerStats stats_;
  mutable obs::RequestTracer tracer_;
};

/// Blocking loopback HTTP client for tests/examples: send one request
/// (Connection: close) to 127.0.0.1:port and return the parsed response
/// body + status. Returns false on connection failure.
bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out);

/// Parsed response from the full-fidelity client overload.
struct HttpClientResponse {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  ///< lower-cased keys
};

/// Like http_request, but sends caller-supplied extra request headers
/// (e.g. X-Request-Id) and returns the response headers — used by the
/// trace-ID adoption/echo tests.
bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>& extra_headers,
                  HttpClientResponse& response_out);

}  // namespace mcb
