// Threaded TCP HTTP server with a path-based router. Listens on
// 127.0.0.1, one worker thread per accepted connection (connections are
// short-lived: Connection: close). Port 0 binds an ephemeral port —
// tests read the bound port back.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"

namespace mcb {

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for (method, exact path). Must be called before
  /// start().
  void route(const std::string& method, const std::string& path, HttpHandler handler);

  /// Bind + listen + spawn the accept loop. Returns false on bind
  /// failure. Thread-safe to call once.
  bool start(int port);

  /// Stop accepting, close the listener and join workers.
  void stop();

  bool is_running() const noexcept { return running_.load(); }
  int port() const noexcept { return port_; }

  /// Dispatch a request through the routing table without any sockets
  /// (used by unit tests and by in-process clients).
  HttpResponse dispatch(const HttpRequest& request) const;

 private:
  void accept_loop();
  void handle_connection(int fd);

  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mutex_;
};

/// Blocking loopback HTTP client for tests/examples: send one request to
/// 127.0.0.1:port and return the parsed response body + status. Returns
/// false on connection failure.
bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out);

}  // namespace mcb
